"""Fidelity tests pinned to concrete examples from the paper's text."""

import numpy as np

from repro.core.aggregation import (
    M0,
    aggregate_advanced,
    aggregate_advanced_traced,
    _fold_sorted,
)
from repro.fl.client import LocalUpdate
from repro.sgx.memory import Trace


class TestFigure9RunningExample:
    """The paper's worked Advanced example: n=3, k=2, d=4.

    g1 = [(1,0.2),(4,0.5)], g2 = [(2,0.6),(4,0.2)], g3 = [(1,0.1),(4,0.2)]
    => g* = [0.3, 0.6, 0.0, 0.9]   (paper uses 1-based indices).
    """

    def _updates(self):
        # Paper indices are 1-based; ours 0-based.
        return [
            LocalUpdate(0, np.asarray([0, 3]), np.asarray([0.2, 0.5])),
            LocalUpdate(1, np.asarray([1, 3]), np.asarray([0.6, 0.2])),
            LocalUpdate(2, np.asarray([0, 3]), np.asarray([0.1, 0.2])),
        ]

    def test_fast_advanced_matches_paper(self):
        result = aggregate_advanced(self._updates(), 4)
        assert np.allclose(result, [0.3, 0.6, 0.0, 0.9])

    def test_traced_advanced_matches_paper(self):
        result = aggregate_advanced_traced(self._updates(), 4, Trace())
        assert np.allclose(result, [0.3, 0.6, 0.0, 0.9])

    def test_folding_intermediate_state(self):
        # After the first sort the example's vector is
        # [(1,.2),(1,.1),(1,0),(2,.6),(2,0),(3,0),(4,.5),(4,.2),(4,.2),(4,0)]
        # (paper Figure 9, line 4-5 state); folding must leave the run
        # totals on the last element of each run and M0 elsewhere.
        idx = np.asarray([0, 0, 0, 1, 1, 2, 3, 3, 3, 3], dtype=np.int64)
        val = np.asarray([0.2, 0.1, 0.0, 0.6, 0.0, 0.0, 0.5, 0.2, 0.2, 0.0])
        out_idx, out_val = _fold_sorted(idx, val)
        keep = out_idx != M0
        assert out_idx[keep].tolist() == [0, 1, 2, 3]
        assert np.allclose(out_val[keep], [0.3, 0.6, 0.0, 0.9])
        assert np.allclose(out_val[~keep], 0.0)


class TestPaperDefaultParameters:
    """(N, q, T, alpha, sigma) = (1000, 0.1, 3, 0.1, 1.12): the privacy
    budget of the paper's default attack setting is realistic."""

    def test_default_budget(self):
        from repro.dp.accountant import epsilon_for

        eps = epsilon_for(q=0.1, noise_multiplier=1.12, steps=3, delta=1e-5)
        assert 0.1 < eps < 3.0

    def test_extreme_sigma_is_overstrict(self):
        # Figure 7: "sigma over 4 ... is over-strict in practical
        # privacy degree" -- i.e. the budget becomes tiny.
        from repro.dp.accountant import epsilon_for

        strict = epsilon_for(q=0.1, noise_multiplier=4.0, steps=3, delta=1e-5)
        default = epsilon_for(q=0.1, noise_multiplier=1.12, steps=3,
                              delta=1e-5)
        assert strict < default / 4


class TestSection51CachelineArithmetic:
    """Section 5.1: 4-byte weights, 64-byte lines => c = 16, 'up to
    16x speedup' for the Baseline sweep."""

    def test_weights_per_cacheline(self):
        from repro.core.aggregation import WEIGHTS_PER_CACHELINE

        assert WEIGHTS_PER_CACHELINE == 64 // 4 == 16

    def test_baseline_touches_d_over_c_lines_per_weight(self):
        from repro.core.aggregation import aggregate_baseline_traced

        d = 64
        updates = [LocalUpdate(0, np.asarray([9]), np.asarray([1.0]))]
        trace = Trace()
        aggregate_baseline_traced(updates, d, trace)
        # 1 weight: 1 read of g + (d/16) read+write pairs on g_star.
        assert len(trace) == 1 + 2 * (d // 16)


class TestSection53MemoryArithmetic:
    """Section 5.3's sizing example: each sorted cell is 8 bytes
    (u32 index + f32 value); the N=10^4 MNIST case needs ~122 MB."""

    def test_paper_memory_estimate(self):
        n_participants = 3000       # q*N with q=0.3, N=10^4
        k = 5089                    # alpha=0.1 of 50890
        d = 50890
        cell_bytes = 8
        total = (n_participants * k + d) * cell_bytes
        assert 110e6 < total < 130e6   # the paper's ~122 MB

    def test_advanced_working_set_formula(self):
        from repro.oblivious.sort import next_power_of_two

        # Our Advanced pads to a power of two; the working set is
        # m * 8 bytes, as charged by the cost model streams.
        nk, d = 16_000, 50_890
        m = next_power_of_two(nk + d)
        assert m == 131_072
