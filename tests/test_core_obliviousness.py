"""Machine checks of the paper's obliviousness propositions.

Proposition 3.1: Linear is fully oblivious for *dense* gradients.
Proposition 3.2: Linear is NOT oblivious for sparsified gradients (the
    adversary recovers the exact index sets).
Proposition 5.1: Baseline is fully oblivious at cacheline granularity.
Proposition 5.2: Advanced is fully oblivious (word granularity).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregation import (
    aggregate_advanced_traced,
    aggregate_baseline_traced,
    aggregate_linear_traced,
)
from repro.core.obliviousness import (
    check_oblivious,
    empirical_statistical_distance,
    leaked_index_sets,
    trace_distance,
    trace_key,
    traces_equal,
)
from repro.fl.client import LocalUpdate
from repro.sgx.memory import Trace

ITEMSIZES = {"g": 8, "g_star": 4}


def sparse_updates(seed, n_clients=4, d=30, k=5):
    rng = np.random.default_rng(seed)
    out = []
    for cid in range(n_clients):
        idx = np.sort(rng.choice(d, size=k, replace=False)).astype(np.int64)
        out.append(LocalUpdate(cid, idx, rng.normal(size=k)))
    return out


def dense_updates(seed, n_clients=4, d=30):
    rng = np.random.default_rng(seed)
    return [
        LocalUpdate(cid, np.arange(d, dtype=np.int64), rng.normal(size=d))
        for cid in range(n_clients)
    ]


def run_traced(aggregator, updates, d):
    trace = Trace()
    aggregator(updates, d, trace)
    return trace


class TestProposition31:
    """Linear is fully oblivious for dense gradients."""

    def test_dense_traces_identical(self):
        d = 30
        t1 = run_traced(aggregate_linear_traced, dense_updates(1, d=d), d)
        t2 = run_traced(aggregate_linear_traced, dense_updates(2, d=d), d)
        assert traces_equal(t1, t2)

    def test_check_oblivious_over_many_inputs(self):
        d = 20
        report = check_oblivious(
            lambda s: run_traced(aggregate_linear_traced, dense_updates(s, d=d), d),
            inputs=range(8),
        )
        assert report.oblivious
        assert report.trials == 8


class TestProposition32:
    """Linear leaks everything on sparse input."""

    def test_sparse_traces_differ(self):
        d = 30
        t1 = run_traced(aggregate_linear_traced, sparse_updates(1, d=d), d)
        t2 = run_traced(aggregate_linear_traced, sparse_updates(2, d=d), d)
        assert not traces_equal(t1, t2)
        assert trace_distance(t1, t2) > 0

    def test_statistical_distance_is_one(self):
        # Deterministic disjoint traces: TV distance 1 (the paper's
        # "delta = 1, not oblivious" worst case).
        d = 30
        dist = empirical_statistical_distance(
            lambda ups: run_traced(aggregate_linear_traced, ups, d),
            sparse_updates(1, d=d),
            sparse_updates(2, d=d),
            samples=5,
        )
        assert dist == 1.0

    def test_adversary_recovers_exact_index_sets(self):
        d = 30
        updates = sparse_updates(3, d=d)
        trace = run_traced(aggregate_linear_traced, updates, d)
        boundaries = [0]
        for u in updates:
            boundaries.append(boundaries[-1] + u.k)
        recovered = leaked_index_sets(trace, "g_star", boundaries)
        for u, leak in zip(updates, recovered):
            assert leak == frozenset(u.indices.tolist())

    def test_check_oblivious_finds_witness(self):
        d = 20
        report = check_oblivious(
            lambda s: run_traced(aggregate_linear_traced, sparse_updates(s, d=d), d),
            inputs=range(5),
        )
        assert not report.oblivious
        assert report.first_mismatch_trial is not None


class TestProposition51:
    """Baseline: cacheline-level fully oblivious, word-level leaky-ish."""

    @pytest.mark.parametrize("d", [16, 30, 37, 64])
    def test_cacheline_traces_identical(self, d):
        t1 = run_traced(aggregate_baseline_traced, sparse_updates(1, d=d), d)
        t2 = run_traced(aggregate_baseline_traced, sparse_updates(2, d=d), d)
        assert traces_equal(t1, t2, granularity="cacheline",
                            itemsizes=ITEMSIZES)

    def test_word_traces_may_differ(self):
        # Word-granularity addresses depend on (index mod 16); with d=30
        # two different index sets almost surely differ.
        d = 30
        t1 = run_traced(aggregate_baseline_traced, sparse_updates(1, d=d), d)
        t2 = run_traced(aggregate_baseline_traced, sparse_updates(2, d=d), d)
        assert not traces_equal(t1, t2)

    def test_every_cacheline_swept_per_weight(self):
        d = 64
        updates = [LocalUpdate(0, np.asarray([5]), np.asarray([1.0]))]
        trace = run_traced(aggregate_baseline_traced, updates, d)
        lines = set(trace.cachelines("g_star", itemsize=4))
        assert lines == {0, 1, 2, 3}

    def test_check_oblivious_at_cacheline(self):
        d = 37
        report = check_oblivious(
            lambda s: run_traced(
                aggregate_baseline_traced, sparse_updates(s, d=d), d
            ),
            inputs=range(6),
            granularity="cacheline",
            itemsizes=ITEMSIZES,
        )
        assert report.oblivious


class TestProposition52:
    """Advanced is fully oblivious at word granularity."""

    @pytest.mark.parametrize("d", [8, 20, 33])
    def test_traces_identical_across_inputs(self, d):
        t1 = run_traced(aggregate_advanced_traced, sparse_updates(1, d=d), d)
        t2 = run_traced(aggregate_advanced_traced, sparse_updates(2, d=d), d)
        assert traces_equal(t1, t2)

    def test_extreme_inputs_same_trace(self):
        # All clients hitting one index vs spread indices: same trace.
        d = 16
        k = 4
        concentrated = [
            LocalUpdate(c, np.zeros(k, dtype=np.int64), np.ones(k))
            for c in range(3)
        ]
        spread = [
            LocalUpdate(c, np.arange(k, dtype=np.int64) + c, np.ones(k))
            for c in range(3)
        ]
        t1 = run_traced(aggregate_advanced_traced, concentrated, d)
        t2 = run_traced(aggregate_advanced_traced, spread, d)
        assert traces_equal(t1, t2)

    def test_check_oblivious_many_inputs(self):
        d = 16
        report = check_oblivious(
            lambda s: run_traced(
                aggregate_advanced_traced, sparse_updates(s, d=d, k=3), d
            ),
            inputs=range(10),
        )
        assert report.oblivious

    @given(st.integers(0, 1000), st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_trace_depends_only_on_shape(self, seed_a, seed_b):
        d = 12
        t1 = run_traced(
            aggregate_advanced_traced, sparse_updates(seed_a, d=d, k=3), d
        )
        t2 = run_traced(
            aggregate_advanced_traced, sparse_updates(seed_b, d=d, k=3), d
        )
        assert traces_equal(t1, t2)

    def test_different_shapes_allowed_to_differ(self):
        # Obliviousness is defined over equal-length inputs; different k
        # naturally yields a different (public-shape) trace.
        d = 16
        t1 = run_traced(aggregate_advanced_traced, sparse_updates(1, d=d, k=2), d)
        t2 = run_traced(aggregate_advanced_traced, sparse_updates(1, d=d, k=6), d)
        assert len(t1) != len(t2)


class TestTraceKeyHelpers:
    def test_trace_key_granularities(self):
        trace = Trace()
        trace.record("g_star", 17, "read")
        assert trace_key(trace) == (("g_star", 17, "read"),)
        assert trace_key(trace, "cacheline", itemsizes={"g_star": 4}) == (
            ("g_star", 1, "read"),
        )

    def test_trace_key_unknown_granularity(self):
        with pytest.raises(ValueError):
            trace_key(Trace(), "page")

    def test_trace_distance_zero_for_equal(self):
        t = Trace()
        t.record("g", 0, "read")
        assert trace_distance(t, t) == 0

    def test_trace_distance_counts_length_difference(self):
        t1, t2 = Trace(), Trace()
        t1.record("g", 0, "read")
        assert trace_distance(t1, t2) == 1
