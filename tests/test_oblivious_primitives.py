"""Tests for the register-level oblivious primitives."""

from hypothesis import given, strategies as st

from repro.oblivious.primitives import (
    o_access,
    o_equal,
    o_max,
    o_min,
    o_mov,
    o_swap,
    o_write,
)
from repro.sgx.memory import Trace, TracedArray


class TestOMov:
    def test_true_selects_first(self):
        assert o_mov(True, 1.0, 2.0) == 1.0

    def test_false_selects_second(self):
        assert o_mov(False, 1.0, 2.0) == 2.0

    def test_tuple_selection(self):
        assert o_mov(True, (1, 0.5), (2, 0.25)) == (1, 0.5)
        assert o_mov(False, (1, 0.5), (2, 0.25)) == (2, 0.25)

    def test_integer_flags(self):
        assert o_mov(1, 10, 20) == 10
        assert o_mov(0, 10, 20) == 20
        assert o_mov(5 > 3, 10, 20) == 10

    @given(st.booleans(),
           st.floats(allow_nan=False, allow_infinity=False),
           st.floats(allow_nan=False, allow_infinity=False))
    def test_matches_python_conditional(self, flag, x, y):
        assert o_mov(flag, x, y) == (x if flag else y)

    @given(st.booleans(), st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    def test_integers_exact(self, flag, x, y):
        assert o_mov(flag, x, y) == (x if flag else y)


class TestOSwap:
    @given(st.booleans(),
           st.floats(allow_nan=False, allow_infinity=False, width=32),
           st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_matches_python_swap(self, flag, x, y):
        a, b = o_swap(flag, x, y)
        assert (a, b) == ((y, x) if flag else (x, y))

    def test_tuple_swap(self):
        a, b = o_swap(True, (1, 0.5), (2, 0.25))
        assert a == (2, 0.25) and b == (1, 0.5)

    def test_no_swap_preserves(self):
        a, b = o_swap(False, (1, 0.5), (2, 0.25))
        assert a == (1, 0.5) and b == (2, 0.25)


class TestComparisons:
    @given(st.floats(allow_nan=False, allow_infinity=False),
           st.floats(allow_nan=False, allow_infinity=False))
    def test_min_max(self, x, y):
        assert o_min(x, y) == min(x, y)
        assert o_max(x, y) == max(x, y)

    def test_equal(self):
        assert o_equal(3, 3) == 1
        assert o_equal(3, 4) == 0


class TestObliviousArrayAccess:
    def test_o_access_reads_correct_value(self):
        arr = TracedArray("r", [10.0, 20.0, 30.0])
        assert o_access(arr, 1) == 20.0

    def test_o_access_trace_independent_of_offset(self):
        traces = []
        for secret in (0, 1, 3):
            trace = Trace()
            arr = TracedArray("r", [1.0, 2.0, 3.0, 4.0], trace=trace)
            o_access(arr, secret)
            traces.append(trace.signature())
        assert traces[0] == traces[1] == traces[2]

    def test_o_write_writes_correct_slot(self):
        arr = TracedArray("r", [0.0] * 4)
        o_write(arr, 2, 9.0)
        assert arr.snapshot() == [0.0, 0.0, 9.0, 0.0]

    def test_o_write_trace_independent_of_offset(self):
        traces = []
        for secret in (0, 2, 3):
            trace = Trace()
            arr = TracedArray("r", [0.0] * 4, trace=trace)
            o_write(arr, secret, 1.0)
            traces.append(trace.signature())
        assert traces[0] == traces[1] == traces[2]

    def test_o_write_touches_every_slot(self):
        trace = Trace()
        arr = TracedArray("r", [0.0] * 5, trace=trace)
        o_write(arr, 0, 1.0)
        assert set(trace.offsets("r", op="write")) == set(range(5))
