"""Tests for simulated remote attestation (repro.sgx.attestation)."""

import pytest

from repro.sgx.attestation import (
    AttestationError,
    AttestationService,
    DiffieHellman,
    Quote,
    client_attest,
    measure,
)


class TestMeasurement:
    def test_deterministic(self):
        assert measure(b"code") == measure(b"code")

    def test_distinguishes_code(self):
        assert measure(b"code-v1") != measure(b"code-v2")

    def test_length(self):
        assert len(measure(b"anything")) == 32


class TestQuotes:
    def test_sign_and_verify(self):
        service = AttestationService(signing_key=b"k" * 32)
        quote = service.sign_quote(measure(b"enclave"), dh_public=12345)
        assert service.verify_quote(quote)

    def test_forged_signature_rejected(self):
        service = AttestationService(signing_key=b"k" * 32)
        quote = service.sign_quote(measure(b"enclave"), dh_public=12345)
        forged = Quote(quote.measurement, quote.dh_public, b"\x00" * 32)
        assert not service.verify_quote(forged)

    def test_altered_measurement_rejected(self):
        service = AttestationService(signing_key=b"k" * 32)
        quote = service.sign_quote(measure(b"enclave"), dh_public=12345)
        forged = Quote(measure(b"evil"), quote.dh_public, quote.signature)
        assert not service.verify_quote(forged)

    def test_altered_dh_share_rejected(self):
        service = AttestationService(signing_key=b"k" * 32)
        quote = service.sign_quote(measure(b"enclave"), dh_public=12345)
        forged = Quote(quote.measurement, 54321, quote.signature)
        assert not service.verify_quote(forged)

    def test_different_services_do_not_cross_verify(self):
        s1 = AttestationService(signing_key=b"a" * 32)
        s2 = AttestationService(signing_key=b"b" * 32)
        quote = s1.sign_quote(measure(b"enclave"), dh_public=1)
        assert not s2.verify_quote(quote)


class TestDiffieHellman:
    def test_key_agreement(self):
        alice = DiffieHellman(secret=1234567)
        bob = DiffieHellman(secret=7654321)
        assert alice.shared_key(bob.public) == bob.shared_key(alice.public)

    def test_different_peers_different_keys(self):
        alice = DiffieHellman(secret=1234567)
        bob = DiffieHellman(secret=7654321)
        carol = DiffieHellman(secret=1111111)
        assert alice.shared_key(bob.public) != alice.shared_key(carol.public)

    def test_invalid_public_share_rejected(self):
        alice = DiffieHellman(secret=1234567)
        with pytest.raises(AttestationError):
            alice.shared_key(0)
        with pytest.raises(AttestationError):
            alice.shared_key(1)

    def test_shared_key_length(self):
        alice = DiffieHellman(secret=1234567)
        bob = DiffieHellman(secret=7654321)
        assert len(alice.shared_key(bob.public)) == 32


class TestClientAttest:
    def _setup(self):
        service = AttestationService()
        enclave_dh = DiffieHellman(secret=999888777)
        m = measure(b"olive-enclave")
        quote = service.sign_quote(m, enclave_dh.public)
        return service, enclave_dh, m, quote

    def test_happy_path_agrees_with_enclave(self):
        service, enclave_dh, m, quote = self._setup()
        client_dh = DiffieHellman(secret=123123)
        key = client_attest(service, quote, m, client_dh)
        assert key == enclave_dh.shared_key(client_dh.public)

    def test_wrong_measurement_aborts(self):
        service, _, _, quote = self._setup()
        with pytest.raises(AttestationError):
            client_attest(service, quote, measure(b"other"), DiffieHellman())

    def test_forged_quote_aborts(self):
        service, _, m, quote = self._setup()
        forged = Quote(quote.measurement, quote.dh_public, b"\x11" * 32)
        with pytest.raises(AttestationError):
            client_attest(service, forged, m, DiffieHellman())
