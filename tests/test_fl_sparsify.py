"""Tests for sparsification and clipping (repro.fl.sparsify)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fl.sparsify import densify, l2_clip, random_k, threshold, top_k, top_ratio


class TestTopK:
    def test_picks_largest_magnitudes(self):
        delta = np.asarray([0.1, -5.0, 0.2, 3.0, -0.05])
        idx, val = top_k(delta, 2)
        assert idx.tolist() == [1, 3]
        assert val.tolist() == [-5.0, 3.0]

    def test_k_equals_d_keeps_everything(self):
        delta = np.asarray([1.0, -2.0, 3.0])
        idx, val = top_k(delta, 3)
        assert idx.tolist() == [0, 1, 2]
        assert val.tolist() == [1.0, -2.0, 3.0]

    def test_indices_sorted_ascending(self):
        delta = np.asarray([5.0, 1.0, 4.0, 2.0, 3.0])
        idx, _ = top_k(delta, 3)
        assert idx.tolist() == sorted(idx.tolist())

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            top_k(np.asarray([1.0]), 0)
        with pytest.raises(ValueError):
            top_k(np.asarray([1.0]), 2)

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=50),
           st.integers(1, 50))
    @settings(max_examples=50, deadline=None)
    def test_selected_dominate_unselected(self, values, k):
        delta = np.asarray(values)
        k = min(k, delta.size)
        idx, val = top_k(delta, k)
        assert len(idx) == k
        chosen = set(idx.tolist())
        if k < delta.size:
            min_chosen = min(abs(v) for v in val)
            max_rest = max(
                abs(delta[i]) for i in range(delta.size) if i not in chosen
            )
            assert min_chosen >= max_rest - 1e-12

    @given(st.lists(st.floats(-10, 10), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_values_match_indices(self, values):
        delta = np.asarray(values)
        idx, val = top_k(delta, max(1, delta.size // 2))
        assert np.array_equal(delta[idx], val)


class TestTopRatio:
    def test_ratio_sets_k(self):
        delta = np.arange(100, dtype=float)
        idx, _ = top_ratio(delta, 0.1)
        assert len(idx) == 10

    def test_small_ratio_keeps_at_least_one(self):
        idx, _ = top_ratio(np.asarray([1.0, 2.0]), 0.001)
        assert len(idx) == 1

    def test_ratio_one_is_dense(self):
        idx, _ = top_ratio(np.arange(7, dtype=float) + 1, 1.0)
        assert len(idx) == 7

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            top_ratio(np.asarray([1.0]), 0.0)
        with pytest.raises(ValueError):
            top_ratio(np.asarray([1.0]), 1.5)


class TestThreshold:
    def test_keeps_above_tau(self):
        delta = np.asarray([0.1, -2.0, 0.5, 3.0])
        idx, val = threshold(delta, 0.5)
        assert idx.tolist() == [1, 2, 3]
        assert val.tolist() == [-2.0, 0.5, 3.0]

    def test_empty_result_possible(self):
        idx, val = threshold(np.asarray([0.1, 0.2]), 10.0)
        assert len(idx) == 0

    def test_negative_tau_rejected(self):
        with pytest.raises(ValueError):
            threshold(np.asarray([1.0]), -1.0)


class TestRandomK:
    def test_count_and_range(self):
        rng = np.random.default_rng(0)
        idx, val = random_k(np.arange(20, dtype=float), 5, rng)
        assert len(idx) == 5
        assert len(set(idx.tolist())) == 5
        assert all(0 <= i < 20 for i in idx)

    def test_data_independent_choice(self):
        # Same rng state, different data -> same indices chosen.
        a_idx, _ = random_k(np.arange(20, dtype=float),
                            5, np.random.default_rng(42))
        b_idx, _ = random_k(np.zeros(20), 5, np.random.default_rng(42))
        assert np.array_equal(a_idx, b_idx)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            random_k(np.asarray([1.0]), 0, np.random.default_rng(0))


class TestDensify:
    def test_roundtrip_with_top_k(self):
        delta = np.asarray([0.0, 5.0, 0.0, -3.0])
        idx, val = top_k(delta, 2)
        assert np.array_equal(densify(idx, val, 4), delta)

    def test_duplicate_indices_accumulate(self):
        dense = densify(np.asarray([1, 1]), np.asarray([2.0, 3.0]), 3)
        assert dense.tolist() == [0.0, 5.0, 0.0]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            densify(np.asarray([5]), np.asarray([1.0]), 3)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            densify(np.asarray([1, 2]), np.asarray([1.0]), 5)

    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=30),
           st.floats(0.05, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_sparsify_densify_preserves_topk_coords(self, values, alpha):
        delta = np.asarray(values)
        idx, val = top_ratio(delta, alpha)
        dense = densify(idx, val, delta.size)
        assert np.array_equal(dense[idx], delta[idx])


class TestClip:
    def test_below_bound_untouched(self):
        v = np.asarray([0.3, 0.4])
        assert np.array_equal(l2_clip(v, 1.0), v)

    def test_above_bound_scaled_to_clip(self):
        v = np.asarray([3.0, 4.0])
        clipped = l2_clip(v, 1.0)
        assert np.linalg.norm(clipped) == pytest.approx(1.0)
        # Direction preserved.
        assert clipped[1] / clipped[0] == pytest.approx(4.0 / 3.0)

    def test_zero_vector_safe(self):
        assert np.array_equal(l2_clip(np.zeros(3), 1.0), np.zeros(3))

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            l2_clip(np.asarray([1.0]), 0.0)

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=20),
           st.floats(0.1, 10))
    @settings(max_examples=50, deadline=None)
    def test_norm_never_exceeds_bound(self, values, clip):
        out = l2_clip(np.asarray(values), clip)
        assert np.linalg.norm(out) <= clip * (1 + 1e-9)

    def test_returns_copy(self):
        v = np.asarray([0.1])
        out = l2_clip(v, 1.0)
        out[0] = 99.0
        assert v[0] == 0.1
