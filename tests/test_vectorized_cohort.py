"""Equivalence suite for the vectorized mega-cohort client path.

Pins the tentpole contract: the ``vectorized`` executor -- batched
seed derivation, batched local training over a leading client axis,
axis-1 sparsification, chunked batched sealing -- produces results
**bit-identical** to the serial reference executor, across every
sparsifier, both FL algorithms, encrypted/plain/quantized modes, and
injected faults.  Also pins the batched seeding primitives against
their scalar counterparts and the ``clip_override`` falsy-zero
regression.
"""

import numpy as np
import pytest

from repro.fl.client import TrainingConfig, compute_update
from repro.fl.datasets import ClientData, SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model
from repro.runtime import (
    STREAM_MODEL,
    STREAM_NONCE,
    STREAM_TRAIN,
    CohortRuntime,
    FaultConfig,
    RuntimeConfig,
    derive_nonce,
    derive_nonces_batch,
    derive_rng,
    derive_rngs_batch,
)
from repro.sgx import crypto

ENTROPY = 11
N_CLIENTS = 12


def make_runtime(executor, *, model_name="tiny_mlp", sealed=True,
                 faults=None, vector_chunk=8192, n_clients=N_CLIENTS,
                 samples=20):
    gen = SyntheticClassData(SPECS["tiny"], seed=0)
    clients = partition_clients(gen, n_clients, samples, 2, seed=0)
    model = build_model(model_name, seed=0)
    if model_name != "tiny_mlp":
        spec = next(s for s in SPECS.values() if s.model_name == model_name)
        gen = SyntheticClassData(spec, seed=0)
        clients = partition_clients(gen, n_clients, samples, 2, seed=0)
    keys = None
    if sealed:
        keys = {c.client_id: crypto.generate_key(b"k%d" % c.client_id)
                for c in clients}
    config = RuntimeConfig(executor=executor, vector_chunk=vector_chunk,
                           faults=faults or FaultConfig())
    return (CohortRuntime(config, model, clients, ENTROPY, keys=keys),
            [c.client_id for c in clients], model.get_flat())


def run_round(executor, training, *, rounds=1, **kwargs):
    runtime, cohort, weights = make_runtime(executor, **kwargs)
    results = []
    with runtime:
        for r in range(rounds):
            results.append(runtime.run_cohort(r, cohort, weights, training))
    return results


def assert_rounds_identical(a_rounds, b_rounds):
    """Outcome statuses and delivery bytes/arrays must match exactly."""
    assert len(a_rounds) == len(b_rounds)
    for a, b in zip(a_rounds, b_rounds):
        assert {cid: o.status for cid, o in a.outcomes.items()} == \
               {cid: o.status for cid, o in b.outcomes.items()}
        assert len(a.deliveries) == len(b.deliveries)
        for da, db in zip(a.deliveries, b.deliveries):
            assert da.client_id == db.client_id
            if da.ciphertext is not None:
                assert da.ciphertext.to_bytes() == db.ciphertext.to_bytes()
            else:
                assert np.array_equal(da.result.indices, db.result.indices)
                assert np.array_equal(da.result.values, db.result.values)


class TestBatchedSeeding:
    """derive_rngs_batch / derive_nonces_batch vs their scalar forms."""

    @pytest.mark.parametrize("stream,suffix", [
        (STREAM_TRAIN, ()), (STREAM_TRAIN, (1,)), (STREAM_MODEL, (0,)),
        (STREAM_MODEL, (2,)),
    ])
    def test_rngs_match_scalar(self, stream, suffix):
        cids = [0, 1, 5, 17, 1000, 2**31]
        batch = derive_rngs_batch(ENTROPY, stream, 3, cids, *suffix)
        for cid, rng in zip(cids, batch):
            ref = derive_rng(ENTROPY, stream, 3, cid, *suffix)
            assert np.array_equal(rng.random(16), ref.random(16))
            assert np.array_equal(rng.permutation(40), ref.permutation(40))

    def test_wide_entropy_and_ids_fall_back(self):
        # Components past u32 take the scalar fallback path; bits must
        # still match the scalar derivation exactly.
        wide_entropy = 2**80 + 3
        cids = [1, 2**40, 7]
        batch = derive_rngs_batch(wide_entropy, STREAM_TRAIN, 0, cids)
        for cid, rng in zip(cids, batch):
            ref = derive_rng(wide_entropy, STREAM_TRAIN, 0, cid)
            assert np.array_equal(rng.random(8), ref.random(8))

    def test_nonces_match_scalar(self):
        cids = [0, 3, 250, 2**33]
        batch = derive_nonces_batch(ENTROPY, 5, cids)
        for cid, nonce in zip(cids, batch):
            assert nonce == derive_nonce(ENTROPY, 5, cid)
            assert len(nonce) == 16

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            derive_rngs_batch(ENTROPY, STREAM_TRAIN, -1, [0, 1])
        with pytest.raises(ValueError):
            derive_nonces_batch(ENTROPY, 0, [-2])

    def test_streams_partition_the_namespace(self):
        a = derive_rngs_batch(ENTROPY, STREAM_TRAIN, 0, [4])[0].random(8)
        b = derive_rngs_batch(ENTROPY, STREAM_NONCE, 0, [4])[0].random(8)
        assert not np.array_equal(a, b)


class TestClipOverride:
    """compute_update must honor falsy clip overrides (regression)."""

    def _setup(self):
        model = build_model("tiny_mlp", seed=0)
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        data = partition_clients(gen, 1, 16, 2, seed=0)[0]
        training = TrainingConfig(local_epochs=1, local_lr=0.1,
                                  batch_size=8, sparse_ratio=0.2, clip=1.0)
        return model, data, training

    def test_zero_override_is_not_silently_dropped(self):
        # Pre-fix, `clip_override or config.clip` treated 0.0 as unset
        # and fell back to config.clip; l2_clip must reject it instead.
        model, data, training = self._setup()
        rng = derive_rng(ENTROPY, STREAM_TRAIN, 0, 0)
        with pytest.raises(ValueError, match="positive"):
            compute_update(model, model.get_flat(), data, training, rng,
                           clip_override=0.0)

    def test_override_replaces_config_clip(self):
        model, data, training = self._setup()
        rng = derive_rng(ENTROPY, STREAM_TRAIN, 0, 0)
        tight = compute_update(model, model.get_flat(), data, training,
                               rng, clip_override=1e-3)
        assert float(np.linalg.norm(tight.values)) <= 1e-3 + 1e-12


class TestVectorizedEquivalence:
    """vectorized == serial, bit for bit, through the cohort runtime."""

    @pytest.mark.parametrize("sparsifier", ["top_k", "threshold", "random_k"])
    @pytest.mark.parametrize("algorithm", ["fedavg", "fedsgd"])
    def test_sparsifier_algorithm_grid(self, sparsifier, algorithm):
        training = TrainingConfig(
            local_epochs=2, local_lr=0.1, batch_size=8, sparse_ratio=0.2,
            clip=1.0, sparsifier=sparsifier, algorithm=algorithm,
            threshold_tau=1e-3,
        )
        assert_rounds_identical(run_round("serial", training),
                                run_round("vectorized", training))

    def test_plain_mode(self):
        training = TrainingConfig(local_epochs=1, local_lr=0.1,
                                  batch_size=8, sparse_ratio=0.1, clip=1.0)
        assert_rounds_identical(run_round("serial", training, sealed=False),
                                run_round("vectorized", training,
                                          sealed=False))

    def test_quantized_uploads(self):
        training = TrainingConfig(local_epochs=1, local_lr=0.1,
                                  batch_size=8, sparse_ratio=0.1, clip=1.0)
        serial, vector = [], []
        for executor, out in (("serial", serial), ("vectorized", vector)):
            runtime, cohort, weights = make_runtime(executor)
            with runtime:
                out.append(runtime.run_cohort(0, cohort, weights, training,
                                              quantize_bits=4))
        assert_rounds_identical(serial, vector)

    def test_faulty_rounds_match(self):
        faults = FaultConfig(dropout_rate=0.15, straggler_rate=0.2,
                             straggler_delay_s=0.001,
                             transient_failure_rate=0.2)
        training = TrainingConfig(local_epochs=1, local_lr=0.1,
                                  batch_size=8, sparse_ratio=0.1, clip=1.0)
        assert_rounds_identical(
            run_round("serial", training, faults=faults, rounds=2),
            run_round("vectorized", training, faults=faults, rounds=2),
        )

    def test_small_vector_chunk(self):
        # Chunking must be invisible: 12 clients in chunks of 3.
        training = TrainingConfig(local_epochs=1, local_lr=0.1,
                                  batch_size=8, sparse_ratio=0.1, clip=1.0)
        assert_rounds_identical(
            run_round("serial", training),
            run_round("vectorized", training, vector_chunk=3),
        )

    def test_conv_model_batches_bit_identically(self):
        # LeNet-5 trains through the batched conv/pool layers (no more
        # per-job fallback) and must still match serial exactly.
        training = TrainingConfig(local_epochs=1, local_lr=0.05,
                                  batch_size=4, sparse_ratio=0.05, clip=1.0)
        assert_rounds_identical(
            run_round("serial", training, model_name="cifar10_cnn",
                      n_clients=3, samples=8),
            run_round("vectorized", training, model_name="cifar10_cnn",
                      n_clients=3, samples=8),
        )

    def test_heterogeneous_shard_shapes(self):
        # Clients with different shard sizes cannot share one tensor
        # stack; the batch path groups by shape and must still match.
        training = TrainingConfig(local_epochs=1, local_lr=0.1,
                                  batch_size=8, sparse_ratio=0.1, clip=1.0)
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        base = partition_clients(gen, 8, 24, 2, seed=0)
        clients = [
            ClientData(client_id=c.client_id,
                       x=c.x[: 12 + 4 * (i % 3)],
                       y=c.y[: 12 + 4 * (i % 3)],
                       label_set=c.label_set)
            for i, c in enumerate(base)
        ]
        model = build_model("tiny_mlp", seed=0)
        keys = {c.client_id: crypto.generate_key(b"k%d" % c.client_id)
                for c in clients}
        rounds = {}
        for executor in ("serial", "vectorized"):
            runtime = CohortRuntime(
                RuntimeConfig(executor=executor), model, clients,
                ENTROPY, keys=keys,
            )
            with runtime:
                rounds[executor] = [runtime.run_cohort(
                    0, [c.client_id for c in clients], model.get_flat(),
                    training,
                )]
        assert_rounds_identical(rounds["serial"], rounds["vectorized"])

    def test_clip_broadcast_matches(self):
        training = TrainingConfig(local_epochs=1, local_lr=0.1,
                                  batch_size=8, sparse_ratio=0.1, clip=1.0)
        rounds = {}
        for executor in ("serial", "vectorized"):
            runtime, cohort, weights = make_runtime(executor)
            with runtime:
                rounds[executor] = [runtime.run_cohort(
                    0, cohort, weights, training, clip=0.05,
                )]
        assert_rounds_identical(rounds["serial"], rounds["vectorized"])
