"""Tests for the grouping optimization (Sec. 5.3) and the DO path (5.4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregation import aggregate_advanced_traced, aggregate_linear
from repro.core.do_aggregation import (
    DoParameters,
    aggregate_do,
    do_padding_counts,
    do_padding_overhead,
    expected_padding_per_bin,
)
from repro.core.grouping import (
    aggregate_grouped,
    aggregate_grouped_traced,
    split_groups,
)
from repro.core.obliviousness import traces_equal
from repro.fl.client import LocalUpdate
from repro.sgx.memory import Trace


def make_updates(seed, n_clients=9, d=20, k=4):
    rng = np.random.default_rng(seed)
    out = []
    for cid in range(n_clients):
        idx = np.sort(rng.choice(d, size=k, replace=False)).astype(np.int64)
        out.append(LocalUpdate(cid, idx, rng.normal(size=k)))
    return out


class TestSplitGroups:
    def test_even_split(self):
        groups = split_groups(make_updates(0, n_clients=9), 3)
        assert [len(g) for g in groups] == [3, 3, 3]

    def test_remainder_group(self):
        groups = split_groups(make_updates(0, n_clients=7), 3)
        assert [len(g) for g in groups] == [3, 3, 1]

    def test_group_larger_than_n(self):
        groups = split_groups(make_updates(0, n_clients=4), 100)
        assert len(groups) == 1

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            split_groups([], 0)


class TestGroupedAggregation:
    @pytest.mark.parametrize("h", [1, 2, 3, 5, 9, 20])
    def test_matches_ungrouped(self, h):
        d = 20
        updates = make_updates(1, d=d)
        ref = aggregate_linear(updates, d)
        assert np.allclose(aggregate_grouped(updates, d, h), ref)

    @given(st.integers(1, 12))
    @settings(max_examples=12, deadline=None)
    def test_group_size_never_changes_result(self, h):
        d = 16
        updates = make_updates(2, n_clients=7, d=d, k=3)
        ref = aggregate_linear(updates, d)
        assert np.allclose(aggregate_grouped(updates, d, h), ref)

    def test_traced_matches_and_is_oblivious(self):
        d = 12
        h = 2
        ref = aggregate_linear(make_updates(3, n_clients=4, d=d, k=3), d)
        t1, t2 = Trace(), Trace()
        out = aggregate_grouped_traced(make_updates(3, n_clients=4, d=d, k=3),
                                       d, h, t1)
        aggregate_grouped_traced(make_updates(4, n_clients=4, d=d, k=3),
                                 d, h, t2)
        assert np.allclose(out, ref)
        assert traces_equal(t1, t2)

    def test_grouped_trace_differs_from_monolithic(self):
        # Grouping genuinely changes the work pattern (smaller sorts).
        d = 12
        updates = make_updates(5, n_clients=4, d=d, k=3)
        grouped, mono = Trace(), Trace()
        aggregate_grouped_traced(updates, d, 2, grouped)
        aggregate_advanced_traced(updates, d, mono)
        assert len(grouped) != len(mono)


class TestDoParameters:
    def test_per_bin_epsilon_composition(self):
        params = DoParameters(epsilon=2.0, sensitivity=4)
        assert params.per_bin_epsilon() == pytest.approx(0.5)

    def test_invalid_sensitivity(self):
        with pytest.raises(ValueError):
            DoParameters(epsilon=1.0, sensitivity=0).per_bin_epsilon()

    def test_padding_counts_shape_and_sign(self):
        params = DoParameters(epsilon=5.0, sensitivity=1)
        counts = do_padding_counts(10, params, np.random.default_rng(0))
        assert counts.shape == (10,)
        assert counts.min() >= 0


class TestDoAggregation:
    def test_aggregate_value_unchanged_by_padding(self):
        d = 15
        updates = make_updates(0, n_clients=5, d=d, k=3)
        ref = aggregate_linear(updates, d)
        params = DoParameters(epsilon=2.0, sensitivity=3)
        out, _ = aggregate_do(updates, d, params, np.random.default_rng(0))
        assert np.allclose(out, ref)

    def test_observed_histogram_covers_true_counts(self):
        d = 10
        updates = make_updates(1, n_clients=4, d=d, k=2)
        true_hist = np.zeros(d, dtype=int)
        for u in updates:
            np.add.at(true_hist, u.indices, 1)
        params = DoParameters(epsilon=2.0, sensitivity=2)
        _, observed = aggregate_do(updates, d, params, np.random.default_rng(0))
        assert np.all(observed >= true_hist)  # one-sided noise only

    def test_histogram_is_noisy(self):
        d = 10
        updates = make_updates(2, n_clients=3, d=d, k=2)
        params = DoParameters(epsilon=1.0, sensitivity=2)
        _, observed = aggregate_do(updates, d, params, np.random.default_rng(0))
        true_hist = np.zeros(d, dtype=int)
        for u in updates:
            np.add.at(true_hist, u.indices, 1)
        assert not np.array_equal(observed, true_hist)


class TestDoCostAnalysis:
    def test_expected_padding_scales_with_sensitivity(self):
        low = expected_padding_per_bin(DoParameters(1.0, sensitivity=1))
        high = expected_padding_per_bin(DoParameters(1.0, sensitivity=50))
        assert high > low * 10

    def test_fl_scale_overhead_is_prohibitive(self):
        # The paper's point: at realistic FL scale (d large, k large),
        # DO padding dwarfs the fully-oblivious working set.
        report = do_padding_overhead(
            n=100, k=500, d=50_000, params=DoParameters(1.0, sensitivity=500)
        )
        assert report["overhead_ratio"] > 10

    def test_tiny_scale_overhead_modest(self):
        report = do_padding_overhead(
            n=100, k=2, d=20, params=DoParameters(5.0, sensitivity=1)
        )
        assert report["overhead_ratio"] < 5

    def test_report_keys(self):
        report = do_padding_overhead(10, 2, 20, DoParameters(1.0, 2))
        assert set(report) == {
            "do_elements", "advanced_elements", "overhead_ratio",
            "expected_dummies",
        }
