"""Tests for adaptive clipping integrated into the OLIVE protocol."""

import numpy as np

from repro.core.olive import OliveConfig, OliveSystem
from repro.fl.client import TrainingConfig
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model


def _system(adaptive, initial_clip, seed=0, rounds_quantile=0.5):
    gen = SyntheticClassData(SPECS["tiny"], seed=0)
    clients = partition_clients(gen, 12, 30, 2, seed=0)
    return OliveSystem(
        build_model("tiny_mlp", seed=0), clients,
        OliveConfig(
            sample_rate=0.8, noise_multiplier=0.5, aggregator="advanced",
            adaptive_clipping=adaptive,
            clip_target_quantile=rounds_quantile,
            training=TrainingConfig(local_epochs=2, local_lr=0.3,
                                    sparse_ratio=0.2, clip=initial_clip),
        ),
        seed=seed,
    )


class TestAdaptiveClippingInOlive:
    def test_disabled_by_default(self):
        system = _system(adaptive=False, initial_clip=1.0)
        assert system.clipper is None
        system.run(2)

    def test_enabled_creates_clipper(self):
        system = _system(adaptive=True, initial_clip=1.0)
        assert system.clipper is not None
        assert system.clipper.clip == 1.0

    def test_oversized_clip_shrinks(self):
        # A clip far above all update norms should be driven down.
        system = _system(adaptive=True, initial_clip=100.0)
        system.run(6)
        assert system.clipper.clip < 100.0
        assert len(system.clipper.history) == 7

    def test_undersized_clip_grows(self):
        system = _system(adaptive=True, initial_clip=1e-4)
        system.run(6)
        assert system.clipper.clip > 1e-4

    def test_updates_respect_current_clip(self):
        system = _system(adaptive=True, initial_clip=0.01)
        for log in system.run(4):
            round_clip = max(
                float(np.linalg.norm(u.values)) for u in log.updates.values()
            )
            # No update may exceed the largest clip ever active.
            assert round_clip <= max(system.clipper.history) + 1e-9

    def test_noise_scales_with_adaptive_clip(self):
        # With a tiny adaptive clip, the injected noise must be tiny
        # too (sigma tracks C); compare update step magnitudes.
        small = _system(adaptive=True, initial_clip=1e-3, seed=1)
        big = _system(adaptive=False, initial_clip=50.0, seed=1)
        step_small = np.linalg.norm(
            small.run_round().weights_after - small.history[0].weights_before
        )
        step_big = np.linalg.norm(
            big.run_round().weights_after - big.history[0].weights_before
        )
        assert step_small < step_big
