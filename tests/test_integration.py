"""Cross-module integration tests: the whole system working together."""

import numpy as np
import pytest

from repro.attack import AttackConfig, chance_top1, observe_round, run_attack
from repro.core import OliveConfig, OliveSystem
from repro.dp import noise_multiplier_for
from repro.fl import (
    SPECS,
    SyntheticClassData,
    TrainingConfig,
    build_model,
    partition_clients,
    server_test_data_by_label,
)


class TestPaperScaleModels:
    """One full round on the real Table 2 architectures."""

    @pytest.mark.parametrize("dataset", ["mnist", "purchase100"])
    def test_mlp_round(self, dataset):
        spec = SPECS[dataset]
        gen = SyntheticClassData(spec, seed=0)
        clients = partition_clients(gen, 6, 20, 2, seed=0)
        system = OliveSystem(
            build_model(spec.model_name, seed=0), clients,
            OliveConfig(
                sample_rate=0.5, noise_multiplier=1.12,
                aggregator="advanced",
                training=TrainingConfig(local_epochs=1, sparse_ratio=0.01),
            ),
            seed=0,
        )
        log = system.run_round()
        assert not np.array_equal(log.weights_before, log.weights_after)
        assert log.epsilon > 0

    def test_cnn_round(self):
        spec = SPECS["cifar10_cnn"]
        gen = SyntheticClassData(spec, seed=0)
        clients = partition_clients(gen, 4, 12, 2, seed=0)
        system = OliveSystem(
            build_model(spec.model_name, seed=0), clients,
            OliveConfig(
                sample_rate=1.0, noise_multiplier=1.12,
                aggregator="advanced",
                training=TrainingConfig(local_epochs=1, batch_size=6,
                                        sparse_ratio=0.01),
            ),
            seed=0,
        )
        log = system.run_round()
        assert system.d == 62_006
        assert not np.array_equal(log.weights_before, log.weights_after)


class TestCalibratedPrivacy:
    def test_noise_calibration_round_trip_through_system(self):
        target_eps, delta, rounds, q = 4.0, 1e-5, 3, 0.5
        sigma = noise_multiplier_for(q, rounds, target_eps, delta)
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 10, 20, 2, seed=0)
        system = OliveSystem(
            build_model("tiny_mlp", seed=0), clients,
            OliveConfig(sample_rate=q, noise_multiplier=sigma, delta=delta,
                        aggregator="advanced"),
            seed=0,
        )
        logs = system.run(rounds)
        assert logs[-1].epsilon <= target_eps + 0.05


class TestBaselineDefenseEndToEnd:
    """Cacheline adversary vs the Baseline aggregator: chance level."""

    def test_cacheline_adversary_sees_uniform_pattern(self):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 12, 30, 2, seed=0)
        model = build_model("tiny_mlp", seed=0)
        training = TrainingConfig(local_epochs=1, local_lr=0.2,
                                  sparse_ratio=0.1)
        system = OliveSystem(
            model, clients,
            OliveConfig(sample_rate=0.6, aggregator="baseline",
                        training=training),
            seed=0,
        )
        logs = system.run(2, traced=True)
        obs = observe_round(logs[0], granularity="cacheline")
        sets = list(obs.observed.values())
        # At the cacheline level every client's sweep covers every
        # line identically: no distinguishing signal (Prop. 5.1).
        assert all(s == sets[0] for s in sets)

        test_data = server_test_data_by_label(gen, 20, seed=5)
        true_labels = {c.client_id: c.label_set for c in clients}
        res = run_attack(
            logs, model, test_data, training, true_labels, system.d,
            AttackConfig(method="jac", granularity="cacheline",
                         known_label_count=2),
        )
        chance = chance_top1(true_labels, 6)
        assert res.top1_accuracy <= chance + 0.35

    def test_word_adversary_vs_baseline_gets_residue_only(self):
        # Word-level observation of Baseline leaks only (index mod 16);
        # on a 378-parameter model the stripes overlap heavily and the
        # observed sets are unions of stripes, identical across clients.
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 8, 30, 2, seed=0)
        model = build_model("tiny_mlp", seed=0)
        system = OliveSystem(
            model, clients,
            OliveConfig(sample_rate=1.0, aggregator="baseline",
                        training=TrainingConfig(sparse_ratio=0.3)),
            seed=0,
        )
        log = system.run_round(traced=True)
        obs = observe_round(log, granularity="word")
        for cid, observed in obs.observed.items():
            truth = frozenset(log.updates[cid].indices.tolist())
            residues = {i % 16 for i in truth}
            expected = frozenset(
                min(line * 16 + r, system.d - 1)
                for r in residues
                for line in range((system.d + 15) // 16)
            )
            assert observed == expected


class TestObliviousSparsifierEndToEnd:
    def test_random_k_with_linear_aggregator_is_safe_but_lossy(self):
        # random-k avoids the leak even with the non-oblivious Linear
        # aggregator, at the price of discarding the top gradient mass.
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 10, 30, 2, seed=0)
        training = TrainingConfig(sparsifier="random_k", sparse_ratio=0.1,
                                  local_lr=0.2)
        model = build_model("tiny_mlp", seed=0)
        system = OliveSystem(
            model, clients,
            OliveConfig(sample_rate=0.6, aggregator="linear",
                        training=training),
            seed=0,
        )
        logs = system.run(2, traced=True)
        test_data = server_test_data_by_label(gen, 20, seed=5)
        true_labels = {c.client_id: c.label_set for c in clients}
        res = run_attack(
            logs, model, test_data, training, true_labels, system.d,
            AttackConfig(method="jac", known_label_count=2),
        )
        chance = chance_top1(true_labels, 6)
        assert res.top1_accuracy <= chance + 0.35


class TestTrainingConvergence:
    def test_olive_learns_with_moderate_noise(self):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 20, 50, 3, seed=0)
        system = OliveSystem(
            build_model("tiny_mlp", seed=0), clients,
            OliveConfig(
                sample_rate=0.8, noise_multiplier=0.5,
                aggregator="advanced",
                training=TrainingConfig(local_epochs=3, local_lr=0.3,
                                        sparse_ratio=0.3, clip=2.0),
            ),
            seed=0,
        )
        x, y = gen.balanced(25, np.random.default_rng(3))
        before = system.evaluate(x, y)
        system.run(6)
        after = system.evaluate(x, y)
        assert after > max(before + 0.1, 1.0 / 6 + 0.15)
