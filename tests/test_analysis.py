"""Tests for leakage quantification (repro.analysis)."""

import numpy as np
import pytest

from repro.analysis import (
    index_label_correlation,
    label_separability,
    mutual_information,
    normalized_leakage,
    observation_entropy,
    trace_summary,
)
from repro.attack import observe_round
from repro.core.olive import OliveConfig, OliveSystem
from repro.fl.client import TrainingConfig
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model
from repro.sgx.memory import Trace


class TestEntropy:
    def test_constant_observations_zero_bits(self):
        assert observation_entropy([frozenset({1})] * 10) == 0.0

    def test_uniform_two_values_one_bit(self):
        obs = [frozenset({1})] * 5 + [frozenset({2})] * 5
        assert observation_entropy(obs) == pytest.approx(1.0)

    def test_empty(self):
        assert observation_entropy([]) == 0.0


class TestMutualInformation:
    def test_deterministic_mapping_reveals_everything(self):
        labels = [frozenset({i % 2}) for i in range(20)]
        observations = [frozenset({i % 2 + 100}) for i in range(20)]
        assert mutual_information(observations, labels) == pytest.approx(1.0)
        assert normalized_leakage(observations, labels) == pytest.approx(1.0)

    def test_constant_observation_reveals_nothing(self):
        labels = [frozenset({i % 4}) for i in range(40)]
        observations = [frozenset({7})] * 40
        assert mutual_information(observations, labels) == 0.0
        assert normalized_leakage(observations, labels) == 0.0

    def test_independent_variables_near_zero(self):
        rng = np.random.default_rng(0)
        labels = [frozenset({int(rng.integers(2))}) for _ in range(400)]
        observations = [frozenset({int(rng.integers(2)) + 10})
                        for _ in range(400)]
        assert mutual_information(observations, labels) < 0.05

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mutual_information([frozenset()], [])

    def test_empty_inputs(self):
        assert mutual_information([], []) == 0.0


class TestCorrelationMatrix:
    def test_perfect_block_structure(self):
        observed = {0: frozenset({0, 1}), 1: frozenset({2, 3})}
        labels = {0: frozenset({0}), 1: frozenset({1})}
        matrix = index_label_correlation(observed, labels, dim=4, n_labels=2)
        assert matrix[0].tolist() == [1.0, 1.0, 0.0, 0.0]
        assert matrix[1].tolist() == [0.0, 0.0, 1.0, 1.0]
        assert label_separability(matrix) == pytest.approx(1.0)

    def test_identical_profiles_not_separable(self):
        observed = {0: frozenset({0}), 1: frozenset({0})}
        labels = {0: frozenset({0}), 1: frozenset({1})}
        matrix = index_label_correlation(observed, labels, dim=2, n_labels=2)
        assert label_separability(matrix) == 0.0

    def test_single_label_separability_zero(self):
        assert label_separability(np.ones((1, 5))) == 0.0


class TestTraceSummary:
    def test_counts(self):
        trace = Trace()
        trace.record("g", 0, "read")
        trace.record("g", 0, "read")
        trace.record("g_star", 3, "write")
        summary = trace_summary(trace)
        assert summary.total_accesses == 3
        assert summary.reads == 2 and summary.writes == 1
        assert summary.regions == {"g": 2, "g_star": 1}
        assert summary.distinct_offsets == {"g": 1, "g_star": 1}


class TestEndToEndLeakageNumbers:
    """The headline comparison: bits leaked per aggregator."""

    def _observations(self, aggregator):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 16, 30, 1, seed=0)
        system = OliveSystem(
            build_model("tiny_mlp", seed=0), clients,
            OliveConfig(sample_rate=1.0, aggregator=aggregator,
                        training=TrainingConfig(sparse_ratio=0.1,
                                                local_lr=0.2)),
            seed=0,
        )
        log = system.run_round(traced=True)
        obs = observe_round(log)
        observations = []
        labels = []
        for cid in log.participants:
            observations.append(obs.observed[cid])
            labels.append(clients[cid].label_set)
        return observations, labels

    def test_linear_leaks_label_entropy(self):
        observations, labels = self._observations("linear")
        leak = normalized_leakage(observations, labels)
        assert leak > 0.9  # observation nearly determines the label

    def test_advanced_leaks_nothing(self):
        observations, labels = self._observations("advanced")
        assert mutual_information(observations, labels) == 0.0
        assert observation_entropy(observations) == 0.0
