"""Tests for the FL client procedure and the reference server loop."""

import numpy as np
import pytest

from repro.fl.client import (
    LocalUpdate,
    TrainingConfig,
    compute_update,
    encrypt_update,
    local_train,
)
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model
from repro.fl.server import FederatedSimulation, ServerConfig, run_ldp_round
from repro.sgx import crypto


def _setup(n_clients=6, labels_per_client=2, samples=30):
    gen = SyntheticClassData(SPECS["tiny"], seed=0)
    clients = partition_clients(gen, n_clients, samples, labels_per_client, seed=0)
    model = build_model("tiny_mlp", seed=0)
    return gen, clients, model


TRAIN = TrainingConfig(local_epochs=2, local_lr=0.1, batch_size=8,
                       sparse_ratio=0.1, clip=1.0)


class TestLocalUpdate:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LocalUpdate(0, np.asarray([1, 2]), np.asarray([1.0]))

    def test_k_property(self):
        u = LocalUpdate(0, np.asarray([1, 2]), np.asarray([1.0, 2.0]))
        assert u.k == 2


class TestLocalTraining:
    def test_delta_shape(self):
        _, clients, model = _setup()
        w0 = model.get_flat()
        delta = local_train(model, w0, clients[0], TRAIN,
                            np.random.default_rng(0))
        assert delta.shape == w0.shape

    def test_training_moves_weights(self):
        _, clients, model = _setup()
        delta = local_train(model, model.get_flat(), clients[0], TRAIN,
                            np.random.default_rng(0))
        assert np.linalg.norm(delta) > 0

    def test_training_reduces_local_loss(self):
        from repro.fl.models import softmax_cross_entropy

        _, clients, model = _setup(samples=60)
        w0 = model.get_flat()
        data = clients[0]
        loss0, _ = softmax_cross_entropy(model.forward(data.x), data.y)
        config = TrainingConfig(local_epochs=8, local_lr=0.2, batch_size=16,
                                sparse_ratio=0.1, clip=1.0)
        delta = local_train(model, w0, data, config, np.random.default_rng(0))
        model.set_flat(w0 + delta)
        loss1, _ = softmax_cross_entropy(model.forward(data.x), data.y)
        assert loss1 < loss0


class TestComputeUpdate:
    def test_sparsity_level(self):
        _, clients, model = _setup()
        update = compute_update(model, model.get_flat(), clients[0], TRAIN,
                                np.random.default_rng(0))
        d = model.num_params
        assert update.k == int(np.ceil(0.1 * d))

    def test_clip_bound_enforced(self):
        _, clients, model = _setup()
        config = TrainingConfig(local_epochs=5, local_lr=1.0, sparse_ratio=0.2,
                                clip=0.5)
        update = compute_update(model, model.get_flat(), clients[0], config,
                                np.random.default_rng(0))
        assert np.linalg.norm(update.values) <= 0.5 + 1e-9

    def test_indices_valid(self):
        _, clients, model = _setup()
        update = compute_update(model, model.get_flat(), clients[0], TRAIN,
                                np.random.default_rng(0))
        assert update.indices.min() >= 0
        assert update.indices.max() < model.num_params

    def test_client_id_propagated(self):
        _, clients, model = _setup()
        update = compute_update(model, model.get_flat(), clients[3], TRAIN,
                                np.random.default_rng(0))
        assert update.client_id == 3


class TestEncryptUpdate:
    def test_roundtrip_through_enclave_codec(self):
        _, clients, model = _setup()
        update = compute_update(model, model.get_flat(), clients[0], TRAIN,
                                np.random.default_rng(0))
        key = crypto.generate_key(b"client-0")
        ct = encrypt_update(update, key)
        idx, val = crypto.decode_sparse_gradient(crypto.open_sealed(key, ct))
        assert idx == update.indices.tolist()
        assert np.allclose(val, update.values)


class TestFederatedSimulation:
    def _sim(self, **server_kwargs):
        _, clients, model = _setup(n_clients=10)
        server = ServerConfig(sample_rate=0.5, noise_multiplier=0.5,
                              **server_kwargs)
        return FederatedSimulation(model, clients, training=TRAIN,
                                   server=server, seed=0)

    def test_round_log_structure(self):
        sim = self._sim()
        log = sim.run_round()
        assert log.round_index == 0
        assert set(log.updates) == set(log.participants)
        assert log.weights_before.shape == log.weights_after.shape

    def test_weights_change_per_round(self):
        sim = self._sim()
        log = sim.run_round()
        assert not np.array_equal(log.weights_before, log.weights_after)

    def test_multiple_rounds_accumulate_history(self):
        sim = self._sim()
        sim.run(3)
        assert [log.round_index for log in sim.history] == [0, 1, 2]

    def test_explicit_participants(self):
        sim = self._sim()
        log = sim.run_round(participants=[1, 4])
        assert log.participants == [1, 4]

    def test_sampling_respects_rate_roughly(self):
        sim = self._sim()
        counts = [len(sim.run_round().participants) for _ in range(20)]
        assert 2 <= np.mean(counts) <= 8  # 10 clients at q=0.5

    def test_evaluate_returns_accuracy(self):
        gen, clients, model = _setup(n_clients=10)
        sim = FederatedSimulation(model, clients, training=TRAIN, seed=0)
        x, y = gen.balanced(10, np.random.default_rng(5))
        assert 0.0 <= sim.evaluate(x, y) <= 1.0

    def test_zero_noise_training_learns(self):
        gen, clients, model = _setup(n_clients=10, samples=50)
        config = TrainingConfig(local_epochs=3, local_lr=0.3, batch_size=16,
                                sparse_ratio=0.3, clip=5.0)
        sim = FederatedSimulation(
            model, clients, training=config,
            server=ServerConfig(sample_rate=1.0, noise_multiplier=0.0),
            seed=0,
        )
        x, y = gen.balanced(20, np.random.default_rng(5))
        before = sim.evaluate(x, y)
        sim.run(8)
        after = sim.evaluate(x, y)
        assert after > max(before, 1.0 / 6 + 0.05)


class TestLdpRound:
    def test_returns_new_weights(self):
        _, clients, model = _setup(n_clients=4)
        w0 = model.get_flat()
        w1 = run_ldp_round(model, w0, clients, TRAIN, local_sigma=0.1,
                           rng=np.random.default_rng(0))
        assert w1.shape == w0.shape
        assert not np.array_equal(w0, w1)

    def test_huge_noise_drowns_signal(self):
        # The LDP pathology of Table 1: enormous per-client noise makes
        # the update essentially pure noise.
        _, clients, model = _setup(n_clients=4)
        w0 = model.get_flat()
        quiet = run_ldp_round(model, w0, clients, TRAIN, local_sigma=0.0,
                              rng=np.random.default_rng(0))
        loud = run_ldp_round(model, w0, clients, TRAIN, local_sigma=100.0,
                             rng=np.random.default_rng(0))
        assert np.linalg.norm(loud - w0) > 10 * np.linalg.norm(quiet - w0)
