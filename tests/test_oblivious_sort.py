"""Tests for Batcher's bitonic sorting network."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.oblivious.sort import (
    bitonic_network,
    bitonic_sort_numpy,
    bitonic_sort_traced,
    comparator_count,
    is_power_of_two,
    network_access_offsets,
    next_power_of_two,
)
from repro.sgx.memory import Trace, TracedArray


class TestPowerOfTwoHelpers:
    def test_is_power_of_two(self):
        assert all(is_power_of_two(1 << i) for i in range(12))
        assert not any(is_power_of_two(n) for n in (0, 3, 5, 6, 7, 12, -4))

    def test_next_power_of_two(self):
        assert next_power_of_two(0) == 1
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4
        assert next_power_of_two(1025) == 2048


class TestNetwork:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            list(bitonic_network(6))

    def test_comparator_count_formula(self):
        for n in (2, 4, 8, 16, 64):
            assert len(list(bitonic_network(n))) == comparator_count(n)

    def test_length_one_is_empty(self):
        assert list(bitonic_network(1)) == []

    def test_comparators_in_bounds(self):
        for i, j, _ in bitonic_network(16):
            assert 0 <= i < j < 16

    def test_network_is_length_determined(self):
        assert list(bitonic_network(8)) == list(bitonic_network(8))

    def test_access_offsets_four_per_comparator(self):
        offsets = network_access_offsets(8)
        assert len(offsets) == 4 * comparator_count(8)

    def test_access_offsets_empty_for_one(self):
        assert len(network_access_offsets(1)) == 0


class TestTracedSort:
    def _sort(self, values, key=lambda w: w):
        trace = Trace()
        arr = TracedArray("s", list(values), trace=trace)
        bitonic_sort_traced(arr, key=key)
        return arr.snapshot(), trace

    def test_sorts_floats(self):
        out, _ = self._sort([3.0, 1.0, 2.0, 0.0])
        assert out == [0.0, 1.0, 2.0, 3.0]

    def test_sorts_with_duplicates(self):
        out, _ = self._sort([2.0, 2.0, 1.0, 1.0])
        assert out == [1.0, 1.0, 2.0, 2.0]

    def test_sorts_tuples_by_key(self):
        out, _ = self._sort(
            [(3, "c"), (1, "a"), (2, "b"), (0, "z")], key=lambda w: w[0]
        )
        assert [w[0] for w in out] == [0, 1, 2, 3]

    def test_rejects_non_power_of_two(self):
        arr = TracedArray("s", [3.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            bitonic_sort_traced(arr)

    def test_trace_independent_of_data(self):
        _, t1 = self._sort([4.0, 3.0, 2.0, 1.0])
        _, t2 = self._sort([0.0, 0.0, 0.0, 0.0])
        assert t1.signature() == t2.signature()

    def test_trace_length_matches_network(self):
        _, trace = self._sort([float(x) for x in range(8)])
        assert len(trace) == 4 * comparator_count(8)

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=32))
    @settings(max_examples=40, deadline=None)
    def test_matches_sorted_builtin(self, values):
        n = next_power_of_two(len(values))
        padded = values + [10**6] * (n - len(values))
        out, _ = self._sort([float(v) for v in padded])
        assert out == sorted(float(v) for v in padded)


class TestNumpySort:
    def test_sorts_keys_and_payload_together(self):
        keys = np.asarray([3, 1, 2, 0], dtype=np.int64)
        payload = np.asarray([30.0, 10.0, 20.0, 0.0])
        bitonic_sort_numpy(keys, payload)
        assert keys.tolist() == [0, 1, 2, 3]
        assert payload.tolist() == [0.0, 10.0, 20.0, 30.0]

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            bitonic_sort_numpy(np.zeros(3))

    def test_rejects_payload_mismatch(self):
        with pytest.raises(ValueError):
            bitonic_sort_numpy(np.zeros(4), np.zeros(2))

    def test_length_one_noop(self):
        keys = np.asarray([5])
        bitonic_sort_numpy(keys)
        assert keys.tolist() == [5]

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_matches_numpy_sort(self, values):
        n = next_power_of_two(len(values))
        keys = np.asarray(values + [10**9] * (n - len(values)), dtype=np.int64)
        expected = np.sort(keys.copy())
        bitonic_sort_numpy(keys)
        assert np.array_equal(keys, expected)

    @given(st.lists(st.integers(0, 50), min_size=2, max_size=32))
    @settings(max_examples=30, deadline=None)
    def test_traced_and_numpy_agree(self, values):
        n = next_power_of_two(len(values))
        padded = values + [10**6] * (n - len(values))
        keys = np.asarray(padded, dtype=np.int64)
        payload = np.arange(n, dtype=np.float64)
        bitonic_sort_numpy(keys, payload)

        arr = TracedArray("s", [(v, float(i)) for i, v in enumerate(padded)])
        bitonic_sort_traced(arr, key=lambda w: w[0])
        traced_keys = [w[0] for w in arr.snapshot()]
        assert traced_keys == keys.tolist()

    def test_payload_permutation_consistent_with_duplicates(self):
        keys = np.asarray([1, 1, 0, 0], dtype=np.int64)
        payload = np.asarray([10.0, 11.0, 0.0, 1.0])
        bitonic_sort_numpy(keys, payload)
        assert keys.tolist() == [0, 0, 1, 1]
        assert sorted(payload[:2].tolist()) == [0.0, 1.0]
        assert sorted(payload[2:].tolist()) == [10.0, 11.0]
