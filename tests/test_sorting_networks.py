"""Validity and obliviousness of the sorting-network backends.

The 0-1 principle makes network validity exhaustively checkable: a
comparator network sorts every input iff it sorts every 0/1 input.
"""

from itertools import product

import pytest
from hypothesis import given, settings, strategies as st

from repro.oblivious.sort import (
    apply_network_traced,
    bitonic_network,
    comparator_count,
    odd_even_merge_network,
)
from repro.sgx.memory import Trace, TracedArray


def _run_network(network, values):
    arr = list(values)
    for i, j, ascending in network:
        if (arr[i] > arr[j]) == ascending:
            arr[i], arr[j] = arr[j], arr[i]
    return arr


class TestZeroOnePrinciple:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
    def test_bitonic_sorts_all_01_inputs(self, n):
        net = list(bitonic_network(n))
        for bits in product([0, 1], repeat=n):
            assert _run_network(net, bits) == sorted(bits)

    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
    def test_odd_even_merge_sorts_all_01_inputs(self, n):
        net = list(odd_even_merge_network(n))
        for bits in product([0, 1], repeat=n):
            assert _run_network(net, bits) == sorted(bits)


class TestOddEvenMerge:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            list(odd_even_merge_network(6))

    @pytest.mark.parametrize("n,expected", [(2, 1), (4, 5), (8, 19), (16, 63)])
    def test_known_comparator_counts(self, n, expected):
        assert len(list(odd_even_merge_network(n))) == expected

    @pytest.mark.parametrize("n", [4, 16, 64, 256])
    def test_fewer_comparators_than_bitonic(self, n):
        oem = len(list(odd_even_merge_network(n)))
        assert oem < comparator_count(n)

    def test_comparators_in_bounds_and_ascending(self):
        for i, j, ascending in odd_even_merge_network(32):
            assert 0 <= i < j < 32
            assert ascending

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_sorts_arbitrary_integers(self, values):
        from repro.oblivious.sort import next_power_of_two

        n = next_power_of_two(len(values))
        padded = values + [10**6] * (n - len(values))
        assert _run_network(odd_even_merge_network(n), padded) == sorted(padded)


class TestApplyNetworkTraced:
    def test_sorts_through_traced_array(self):
        arr = TracedArray("s", [3.0, 1.0, 4.0, 0.0])
        apply_network_traced(arr, odd_even_merge_network(4))
        assert arr.snapshot() == [0.0, 1.0, 3.0, 4.0]

    def test_trace_is_data_independent(self):
        signatures = []
        for data in ([3.0, 1.0, 4.0, 0.0], [0.0, 0.0, 0.0, 0.0]):
            trace = Trace()
            arr = TracedArray("s", data, trace=trace)
            apply_network_traced(arr, odd_even_merge_network(4))
            signatures.append(trace.signature())
        assert signatures[0] == signatures[1]

    def test_key_function(self):
        arr = TracedArray("s", [(2, "b"), (1, "a"), (3, "c"), (0, "z")])
        apply_network_traced(arr, odd_even_merge_network(4),
                             key=lambda w: w[0])
        assert [w[0] for w in arr.snapshot()] == [0, 1, 2, 3]

    def test_four_accesses_per_comparator(self):
        trace = Trace()
        arr = TracedArray("s", [1.0] * 8, trace=trace)
        net = list(odd_even_merge_network(8))
        apply_network_traced(arr, iter(net))
        assert len(trace) == 4 * len(net)
