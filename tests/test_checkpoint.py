"""Tests for checkpointing and trace serialization."""

import numpy as np
import pytest

from repro.core.checkpoint import (
    load_checkpoint,
    load_trace,
    save_checkpoint,
    save_trace,
)
from repro.core.obliviousness import traces_equal
from repro.core.olive import OliveConfig, OliveSystem
from repro.fl.client import TrainingConfig
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model
from repro.sgx.memory import Trace


def _system(seed=0, **cfg):
    gen = SyntheticClassData(SPECS["tiny"], seed=0)
    clients = partition_clients(gen, 8, 20, 2, seed=0)
    defaults = dict(
        sample_rate=0.5, noise_multiplier=1.12, aggregator="advanced",
        training=TrainingConfig(sparse_ratio=0.2),
    )
    defaults.update(cfg)
    return OliveSystem(build_model("tiny_mlp", seed=0), clients,
                       OliveConfig(**defaults), seed=seed)


class TestCheckpoint:
    def test_roundtrip_weights_and_ledger(self, tmp_path):
        system = _system()
        system.run(3)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(system, path)

        restored = _system(seed=9)
        meta = load_checkpoint(restored, path)
        assert np.array_equal(restored.global_weights, system.global_weights)
        assert restored.accountant.steps == 3
        assert meta["rounds"] == 3
        # The privacy ledger resumes, not resets.
        assert restored.accountant.epsilon == pytest.approx(
            system.accountant.epsilon
        )

    def test_restored_system_keeps_training(self, tmp_path):
        system = _system()
        system.run(2)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(system, path)
        restored = _system(seed=9)
        load_checkpoint(restored, path)
        log = restored.run_round()
        assert log.epsilon > system.accountant.epsilon

    def test_wrong_architecture_rejected(self, tmp_path):
        system = _system()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(system, path)
        gen = SyntheticClassData(SPECS["mnist"], seed=0)
        clients = partition_clients(gen, 4, 10, 2, seed=0)
        other = OliveSystem(
            build_model("mnist_mlp", seed=0), clients, OliveConfig(),
        )
        with pytest.raises(ValueError, match="weights"):
            load_checkpoint(other, path)

    def test_mismatched_dp_params_rejected(self, tmp_path):
        system = _system()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(system, path)
        other = _system(noise_multiplier=2.0)
        with pytest.raises(ValueError, match="noise_multiplier"):
            load_checkpoint(other, path)

    def test_adaptive_clip_restored(self, tmp_path):
        system = _system(adaptive_clipping=True)
        system.run(3)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(system, path)
        restored = _system(adaptive_clipping=True, seed=9)
        load_checkpoint(restored, path)
        assert restored.clipper.clip == pytest.approx(system.clipper.clip)


class TestTraceSerialization:
    def test_roundtrip(self, tmp_path):
        trace = Trace()
        trace.record("g", 0, "read")
        trace.record("g_star", 17, "write")
        trace.record("g", 3, "read")
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        restored = load_trace(path)
        assert traces_equal(trace, restored)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(Trace(), path)
        assert len(load_trace(path)) == 0

    def test_real_round_trace_roundtrip(self, tmp_path):
        system = _system()
        log = system.run_round(traced=True)
        path = tmp_path / "round.npz"
        save_trace(log.trace, path)
        restored = load_trace(path)
        assert traces_equal(log.trace, restored)
        assert len(restored) == len(log.trace)
