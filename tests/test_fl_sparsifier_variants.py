"""Tests for sparsifier variants and the FedSGD client algorithm.

Section 3.3's generality claim: *any* data-dependent sparsification
leaks through the aggregation access pattern -- threshold-based
selection included -- while data-independent random-k does not.
"""

import numpy as np
import pytest

from repro.core.aggregation import aggregate_linear_traced
from repro.core.obliviousness import traces_equal
from repro.fl.client import (
    ALGORITHMS,
    SPARSIFIERS,
    TrainingConfig,
    compute_update,
    local_train,
    sparsify_delta,
)
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model
from repro.sgx.memory import Trace


def _clients(n=4, seed=0):
    gen = SyntheticClassData(SPECS["tiny"], seed=seed)
    return partition_clients(gen, n, 30, 2, seed=seed)


class TestConfigValidation:
    def test_unknown_sparsifier_rejected(self):
        with pytest.raises(ValueError):
            TrainingConfig(sparsifier="magic")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            TrainingConfig(algorithm="adam")

    def test_registries(self):
        assert SPARSIFIERS == ("top_k", "threshold", "random_k")
        assert ALGORITHMS == ("fedavg", "fedsgd")


class TestSparsifyDelta:
    DELTA = np.asarray([0.5, -0.01, 0.02, -0.8, 0.003, 0.1])

    def test_top_k_selects_largest(self):
        config = TrainingConfig(sparse_ratio=0.34)  # k = 3
        idx, val = sparsify_delta(self.DELTA, config,
                                  np.random.default_rng(0))
        assert set(idx.tolist()) == {0, 3, 5}

    def test_threshold_selects_above_tau(self):
        config = TrainingConfig(sparsifier="threshold", threshold_tau=0.05)
        idx, _ = sparsify_delta(self.DELTA, config, np.random.default_rng(0))
        assert set(idx.tolist()) == {0, 3, 5}

    def test_threshold_variable_length(self):
        # Unlike top-k, threshold output length is data-dependent --
        # the paper notes it leaks k itself.
        config = TrainingConfig(sparsifier="threshold", threshold_tau=0.05)
        small = sparsify_delta(np.asarray([0.01, 0.02]), config,
                               np.random.default_rng(0))
        big = sparsify_delta(np.asarray([1.0, 2.0]), config,
                             np.random.default_rng(0))
        assert len(small[0]) != len(big[0])

    def test_threshold_never_empty(self):
        config = TrainingConfig(sparsifier="threshold", threshold_tau=100.0)
        idx, _ = sparsify_delta(self.DELTA, config, np.random.default_rng(0))
        assert len(idx) >= 1

    def test_random_k_is_data_independent(self):
        config = TrainingConfig(sparsifier="random_k", sparse_ratio=0.5)
        idx_a, _ = sparsify_delta(self.DELTA, config,
                                  np.random.default_rng(7))
        idx_b, _ = sparsify_delta(np.zeros(6), config,
                                  np.random.default_rng(7))
        assert np.array_equal(idx_a, idx_b)


class TestFedSgd:
    def test_fedsgd_moves_weights(self):
        clients = _clients()
        model = build_model("tiny_mlp", seed=0)
        config = TrainingConfig(algorithm="fedsgd", local_lr=0.5)
        delta = local_train(model, model.get_flat(), clients[0], config,
                            np.random.default_rng(0))
        assert np.linalg.norm(delta) > 0

    def test_fedsgd_is_single_step(self):
        # One full-batch gradient step: delta == -lr * grad, so scaling
        # the lr scales the delta exactly linearly (multi-epoch SGD has
        # no such exact linearity).
        clients = _clients()
        w0 = build_model("tiny_mlp", seed=0).get_flat()
        # Fresh models per call so the dropout RNG streams match.
        d1 = local_train(build_model("tiny_mlp", seed=0), w0, clients[0],
                         TrainingConfig(algorithm="fedsgd", local_lr=0.1),
                         np.random.default_rng(0))
        d2 = local_train(build_model("tiny_mlp", seed=0), w0, clients[0],
                         TrainingConfig(algorithm="fedsgd", local_lr=0.2),
                         np.random.default_rng(0))
        assert np.allclose(d2, 2 * d1)

    def test_fedsgd_update_pipeline(self):
        clients = _clients()
        model = build_model("tiny_mlp", seed=0)
        config = TrainingConfig(algorithm="fedsgd", sparse_ratio=0.1,
                                clip=1.0)
        update = compute_update(model, model.get_flat(), clients[0], config,
                                np.random.default_rng(0))
        assert update.k == int(np.ceil(0.1 * model.num_params))
        assert np.linalg.norm(update.values) <= 1.0 + 1e-9


class TestSparsifierLeakage:
    """Section 3.3: threshold leaks like top-k; random-k does not."""

    def _round_updates(self, sparsifier, data_seed, rng_seed=0):
        gen = SyntheticClassData(SPECS["tiny"], seed=data_seed)
        clients = partition_clients(gen, 4, 30, 2, seed=data_seed)
        model = build_model("tiny_mlp", seed=0)
        config = TrainingConfig(
            sparsifier=sparsifier, sparse_ratio=0.1, threshold_tau=0.02,
            local_lr=0.2,
        )
        rng = np.random.default_rng(rng_seed)
        return [
            compute_update(model, model.get_flat(), c, config, rng)
            for c in clients
        ]

    def test_topk_linear_aggregation_leaks(self):
        t1, t2 = Trace(), Trace()
        d = build_model("tiny_mlp").num_params
        aggregate_linear_traced(self._round_updates("top_k", 1), d, t1)
        aggregate_linear_traced(self._round_updates("top_k", 2), d, t2)
        assert not traces_equal(t1, t2)

    def test_threshold_linear_aggregation_leaks(self):
        t1, t2 = Trace(), Trace()
        d = build_model("tiny_mlp").num_params
        aggregate_linear_traced(self._round_updates("threshold", 1), d, t1)
        aggregate_linear_traced(self._round_updates("threshold", 2), d, t2)
        assert not traces_equal(t1, t2)

    def test_random_k_linear_aggregation_does_not_leak(self):
        # Same client-side RNG stream, different data: the index choice
        # is data-independent, so the Linear trace is identical.
        t1, t2 = Trace(), Trace()
        d = build_model("tiny_mlp").num_params
        aggregate_linear_traced(
            self._round_updates("random_k", 1, rng_seed=5), d, t1
        )
        aggregate_linear_traced(
            self._round_updates("random_k", 2, rng_seed=5), d, t2
        )
        assert traces_equal(t1, t2)
