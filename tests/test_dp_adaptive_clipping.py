"""Tests for adaptive clipping (repro.dp.adaptive_clipping)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dp.adaptive_clipping import AdaptiveClipper


class TestValidation:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AdaptiveClipper(initial_clip=0.0)
        with pytest.raises(ValueError):
            AdaptiveClipper(target_quantile=1.0)
        with pytest.raises(ValueError):
            AdaptiveClipper(target_quantile=0.0)
        with pytest.raises(ValueError):
            AdaptiveClipper(learning_rate=0.0)
        with pytest.raises(ValueError):
            AdaptiveClipper(bit_noise=-1.0)


class TestControlBehaviour:
    def test_bit_semantics(self):
        clipper = AdaptiveClipper(initial_clip=2.0)
        assert clipper.clip_bit(1.5) == 1
        assert clipper.clip_bit(2.5) == 0

    def test_all_norms_below_shrinks_clip(self):
        clipper = AdaptiveClipper(initial_clip=10.0, target_quantile=0.5)
        before = clipper.clip
        clipper.step_with_norms([1.0] * 10)
        assert clipper.clip < before

    def test_all_norms_above_grows_clip(self):
        clipper = AdaptiveClipper(initial_clip=0.1, target_quantile=0.5)
        before = clipper.clip
        clipper.step_with_norms([5.0] * 10)
        assert clipper.clip > before

    def test_at_target_quantile_is_stable(self):
        clipper = AdaptiveClipper(initial_clip=1.0, target_quantile=0.5)
        clipper.step_with_norms([0.5, 0.6, 1.5, 2.0])  # exactly half below
        assert clipper.clip == pytest.approx(1.0)

    def test_converges_to_population_quantile(self):
        rng = np.random.default_rng(0)
        norms = rng.uniform(0.0, 2.0, size=200)
        clipper = AdaptiveClipper(initial_clip=5.0, target_quantile=0.5,
                                  learning_rate=0.3)
        for _ in range(100):
            clipper.step_with_norms(norms.tolist())
        # Median of U(0,2) is 1.0.
        assert clipper.clip == pytest.approx(1.0, abs=0.15)

    def test_tracks_higher_quantile(self):
        rng = np.random.default_rng(0)
        norms = rng.uniform(0.0, 2.0, size=400)
        clipper = AdaptiveClipper(initial_clip=1.0, target_quantile=0.9,
                                  learning_rate=0.3)
        for _ in range(150):
            clipper.step_with_norms(norms.tolist())
        assert clipper.clip == pytest.approx(1.8, abs=0.2)

    def test_history_recorded(self):
        clipper = AdaptiveClipper()
        clipper.step_with_norms([1.0, 2.0])
        clipper.step_with_norms([1.0, 2.0])
        assert len(clipper.history) == 3

    def test_empty_round_is_noop(self):
        clipper = AdaptiveClipper(initial_clip=1.0)
        assert clipper.update([]) == 1.0

    def test_bit_noise_perturbs_trajectory(self):
        noisy = AdaptiveClipper(initial_clip=1.0, bit_noise=2.0)
        clean = AdaptiveClipper(initial_clip=1.0, bit_noise=0.0)
        rng = np.random.default_rng(0)
        noisy.step_with_norms([0.5] * 4, rng=rng)
        clean.step_with_norms([0.5] * 4)
        assert noisy.clip != clean.clip

    def test_noisy_tracker_still_converges_on_average(self):
        rng = np.random.default_rng(1)
        norms = rng.uniform(0.0, 2.0, size=300)
        clipper = AdaptiveClipper(initial_clip=4.0, target_quantile=0.5,
                                  learning_rate=0.2, bit_noise=3.0)
        for _ in range(200):
            clipper.step_with_norms(norms.tolist(), rng=rng)
        tail = np.asarray(clipper.history[-50:])
        assert abs(tail.mean() - 1.0) < 0.3

    @given(st.floats(0.05, 0.95), st.lists(st.floats(0.01, 5.0),
                                           min_size=5, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_clip_stays_positive(self, gamma, norms):
        clipper = AdaptiveClipper(initial_clip=1.0, target_quantile=gamma)
        for _ in range(20):
            clipper.step_with_norms(norms)
            assert clipper.clip > 0
