"""Tests for the synthetic dataset substrate (repro.fl.datasets)."""

import numpy as np
import pytest

from repro.fl.datasets import (
    SPECS,
    ClientData,
    SyntheticClassData,
    assign_label_sets,
    partition_clients,
    server_test_data_by_label,
)
from repro.fl.models import build_model


class TestSpecs:
    def test_all_paper_datasets_present(self):
        for name in ("mnist", "cifar10", "cifar10_cnn", "purchase100", "cifar100"):
            assert name in SPECS

    def test_input_dims(self):
        assert SPECS["mnist"].input_dim == 784
        assert SPECS["cifar10"].input_dim == 3072
        assert SPECS["cifar10_cnn"].input_dim == 3072
        assert SPECS["purchase100"].input_dim == 600

    def test_label_counts(self):
        assert SPECS["mnist"].n_labels == 10
        assert SPECS["purchase100"].n_labels == 100
        assert SPECS["cifar100"].n_labels == 100

    def test_spec_matches_model_input(self):
        for name, spec in SPECS.items():
            model = build_model(spec.model_name)
            x = np.zeros((2,) + spec.input_shape)
            logits = model.forward(x)
            assert logits.shape == (2, spec.n_labels), name


class TestGenerator:
    def test_sample_shapes(self):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        rng = np.random.default_rng(0)
        x = gen.sample(np.asarray([0, 1, 2]), rng)
        assert x.shape == (3, 24)

    def test_image_shaped_output(self):
        gen = SyntheticClassData(SPECS["cifar10_cnn"], seed=0)
        rng = np.random.default_rng(0)
        x = gen.sample(np.asarray([0, 1]), rng)
        assert x.shape == (2, 3, 32, 32)

    def test_purchase_is_binary(self):
        gen = SyntheticClassData(SPECS["purchase100"], seed=0)
        rng = np.random.default_rng(0)
        x = gen.sample(np.asarray([0, 5, 99]), rng)
        assert set(np.unique(x)) <= {0.0, 1.0}

    def test_classes_are_separated(self):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        rng = np.random.default_rng(0)
        a = gen.sample(np.zeros(50, dtype=int), rng)
        b = gen.sample(np.ones(50, dtype=int), rng)
        within = np.linalg.norm(a - a.mean(axis=0), axis=1).mean()
        between = np.linalg.norm(a.mean(axis=0) - b.mean(axis=0))
        assert between > within * 0.5

    def test_balanced_covers_all_labels(self):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        x, y = gen.balanced(4, np.random.default_rng(0))
        assert len(x) == 4 * 6
        assert np.bincount(y).tolist() == [4] * 6

    def test_prototypes_deterministic_by_seed(self):
        a = SyntheticClassData(SPECS["tiny"], seed=5)
        b = SyntheticClassData(SPECS["tiny"], seed=5)
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        assert np.array_equal(
            a.sample(np.asarray([2]), rng1), b.sample(np.asarray([2]), rng2)
        )


class TestLabelSets:
    def test_fixed_sizes(self):
        rng = np.random.default_rng(0)
        sets = assign_label_sets(50, 10, 3, fixed=True, rng=rng)
        assert all(len(s) == 3 for s in sets)

    def test_random_sizes_bounded(self):
        rng = np.random.default_rng(0)
        sets = assign_label_sets(200, 10, 4, fixed=False, rng=rng)
        sizes = {len(s) for s in sets}
        assert sizes <= {1, 2, 3, 4}
        assert len(sizes) > 1  # actually varies

    def test_labels_in_range(self):
        rng = np.random.default_rng(0)
        for s in assign_label_sets(30, 6, 2, fixed=True, rng=rng):
            assert all(0 <= lab < 6 for lab in s)

    def test_invalid_count_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            assign_label_sets(1, 10, 0, fixed=True, rng=rng)
        with pytest.raises(ValueError):
            assign_label_sets(1, 10, 11, fixed=True, rng=rng)


class TestPartitioning:
    def test_client_count_and_sizes(self):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 8, 20, 2, seed=0)
        assert len(clients) == 8
        assert all(len(c) == 20 for c in clients)

    def test_client_data_matches_label_set(self):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 8, 30, 2, seed=0)
        for c in clients:
            assert set(np.unique(c.y)) <= c.label_set

    def test_client_ids_sequential(self):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 5, 10, 1, seed=0)
        assert [c.client_id for c in clients] == [0, 1, 2, 3, 4]

    def test_partition_deterministic(self):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        a = partition_clients(gen, 4, 10, 2, seed=3)
        b = partition_clients(gen, 4, 10, 2, seed=3)
        for ca, cb in zip(a, b):
            assert np.array_equal(ca.x, cb.x)
            assert ca.label_set == cb.label_set

    def test_random_label_setting(self):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 50, 10, 4, fixed=False, seed=0)
        assert len({len(c.label_set) for c in clients}) > 1


class TestServerTestData:
    def test_one_entry_per_label(self):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        data = server_test_data_by_label(gen, 7, seed=1)
        assert set(data) == set(range(6))
        assert all(x.shape == (7, 24) for x in data.values())

    def test_client_data_len(self):
        c = ClientData(0, np.zeros((3, 4)), np.zeros(3, dtype=int))
        assert len(c) == 3
