"""Tests for the enclave runtime (repro.sgx.enclave)."""

import numpy as np
import pytest

from repro.sgx import crypto
from repro.sgx.attestation import DiffieHellman, client_attest
from repro.sgx.enclave import (
    Enclave,
    EnclaveSecurityError,
    KeyStore,
    provision_enclave_with_clients,
)


class TestKeyStore:
    def test_put_get(self):
        ks = KeyStore()
        ks.put(1, b"k" * 32)
        assert ks.get(1) == b"k" * 32
        assert 1 in ks
        assert len(ks) == 1

    def test_missing_key_raises(self):
        with pytest.raises(EnclaveSecurityError):
            KeyStore().get(7)


class TestProvisioning:
    def test_ra_establishes_matching_keys(self):
        enclave = Enclave(seed=0)
        keys = provision_enclave_with_clients(enclave, [0, 1, 2])
        assert set(keys) == {0, 1, 2}
        for cid, key in keys.items():
            assert enclave.keystore.get(cid) == key

    def test_manual_ra_flow(self):
        enclave = Enclave(seed=1)
        client_dh = DiffieHellman(secret=424242)
        key = client_attest(
            enclave.attestation_service, enclave.quote(),
            enclave.measurement, client_dh,
        )
        enclave.complete_ra(9, client_dh.public)
        assert enclave.keystore.get(9) == key

    def test_measurement_reflects_code_identity(self):
        a = Enclave(code_identity=b"v1", seed=0)
        b = Enclave(code_identity=b"v2", seed=0)
        assert a.measurement != b.measurement


class TestAllocation:
    def test_alloc_returns_traced_region(self):
        enclave = Enclave(seed=0)
        arr = enclave.alloc(10, itemsize=8)
        arr.read(3)
        assert enclave.trace.offsets(arr.name) == [3]

    def test_alloc_names_unique(self):
        enclave = Enclave(seed=0)
        a = enclave.alloc(4)
        b = enclave.alloc(4)
        assert a.name != b.name

    def test_epc_oversubscription_flag(self):
        enclave = Enclave(seed=0, epc_bytes=1024)
        enclave.alloc(100, itemsize=8)
        assert not enclave.oversubscribed
        enclave.alloc(100, itemsize=8)
        assert enclave.oversubscribed

    def test_reset_trace_clears_state(self):
        enclave = Enclave(seed=0)
        arr = enclave.alloc(4)
        arr.read(0)
        enclave.reset_trace()
        assert len(enclave.trace) == 0
        assert enclave.allocated_bytes == 0


class TestSecureSampling:
    def test_sampling_rate_respected(self):
        enclave = Enclave(seed=0)
        population = list(range(2000))
        sampled = enclave.sample_clients(population, 0.1)
        assert 120 <= len(sampled) <= 280
        assert set(sampled) <= set(population)

    def test_sampling_never_empty(self):
        enclave = Enclave(seed=3)
        for _ in range(50):
            assert len(enclave.sample_clients([1, 2], 0.01)) >= 1

    def test_invalid_rate_raises(self):
        enclave = Enclave(seed=0)
        with pytest.raises(ValueError):
            enclave.sample_clients([1], 0.0)
        with pytest.raises(ValueError):
            enclave.sample_clients([1], 1.5)

    def test_deterministic_with_seed(self):
        a = Enclave(seed=7).sample_clients(list(range(100)), 0.3)
        b = Enclave(seed=7).sample_clients(list(range(100)), 0.3)
        assert a == b


class TestGradientLoading:
    def _provisioned(self):
        enclave = Enclave(seed=0)
        keys = provision_enclave_with_clients(enclave, [0, 1, 2])
        enclave.sample_clients([0, 1, 2], 1.0)
        return enclave, keys

    def test_valid_gradient_accepted(self):
        enclave, keys = self._provisioned()
        ct = crypto.seal(keys[1], crypto.encode_sparse_gradient([2, 5], [1.0, -1.0]))
        idx, val = enclave.load_gradient(1, ct)
        assert idx == [2, 5]
        assert val == [1.0, -1.0]

    def test_unsampled_client_rejected(self):
        enclave = Enclave(seed=0)
        keys = provision_enclave_with_clients(enclave, [0, 1])
        enclave._sampled = {0}
        ct = crypto.seal(keys[1], crypto.encode_sparse_gradient([1], [1.0]))
        with pytest.raises(EnclaveSecurityError, match="not securely sampled"):
            enclave.load_gradient(1, ct)

    def test_wrong_key_rejected(self):
        enclave, keys = self._provisioned()
        attacker_key = crypto.generate_key(b"attacker")
        ct = crypto.seal(attacker_key, crypto.encode_sparse_gradient([1], [1.0]))
        with pytest.raises(EnclaveSecurityError, match="authentication"):
            enclave.load_gradient(1, ct)

    def test_replay_under_other_client_id_rejected(self):
        # Ciphertext from client 1 replayed as client 2's contribution.
        enclave, keys = self._provisioned()
        ct = crypto.seal(keys[1], crypto.encode_sparse_gradient([1], [1.0]))
        with pytest.raises(EnclaveSecurityError):
            enclave.load_gradient(2, ct)

    def test_tampered_ciphertext_rejected(self):
        enclave, keys = self._provisioned()
        ct = crypto.seal(keys[0], crypto.encode_sparse_gradient([1], [1.0]))
        forged = crypto.Ciphertext(
            ct.nonce, bytes([ct.body[0] ^ 0xFF]) + ct.body[1:], ct.tag
        )
        with pytest.raises(EnclaveSecurityError):
            enclave.load_gradient(0, forged)


class TestEnclaveNoise:
    def test_gauss_vector_statistics(self):
        enclave = Enclave(seed=0)
        samples = np.asarray(enclave.gauss_vector(2.0, 4000))
        assert abs(samples.mean()) < 0.2
        assert abs(samples.std() - 2.0) < 0.2

    def test_gauss_deterministic_with_seed(self):
        assert Enclave(seed=5).gauss(1.0) == Enclave(seed=5).gauss(1.0)
