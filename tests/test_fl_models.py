"""Tests for the numpy neural network library (repro.fl.models)."""

import numpy as np
import pytest

from repro.fl.models import (
    MODEL_NAMES,
    BatchedSequential,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    accuracy,
    build_model,
    softmax_cross_entropy,
    softmax_cross_entropy_batch,
    supports_batched_training,
)


RNG = np.random.default_rng(0)


def finite_difference_check(model, x, y, epsilon=1e-5, samples=8):
    """Compare backprop gradients to central finite differences."""
    logits = model.forward(x, train=False)
    _, dlogits = softmax_cross_entropy(logits, y)
    model.backward(dlogits)
    analytic = model.get_flat_grads()
    flat = model.get_flat()
    rng = np.random.default_rng(1)
    checked = rng.choice(flat.size, size=min(samples, flat.size), replace=False)
    for i in checked:
        bumped = flat.copy()
        bumped[i] += epsilon
        model.set_flat(bumped)
        loss_plus, _ = softmax_cross_entropy(model.forward(x, train=False), y)
        bumped[i] -= 2 * epsilon
        model.set_flat(bumped)
        loss_minus, _ = softmax_cross_entropy(model.forward(x, train=False), y)
        numeric = (loss_plus - loss_minus) / (2 * epsilon)
        assert analytic[i] == pytest.approx(numeric, abs=1e-4), f"param {i}"
    model.set_flat(flat)


class TestParameterCounts:
    """Table 2 parameter counts; exact where the paper's are exact."""

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("mnist_mlp", 50_890),       # paper: 50890 (exact)
            ("cifar10_mlp", 197_322),    # paper: 197320 (bias counting)
            ("cifar10_cnn", 62_006),     # paper: 62006 (exact, LeNet-5)
            ("purchase100_mlp", 44_964),  # paper: 44964 (exact)
            ("cifar100_cnn", 200_747),   # paper: 201588 (ResNet-18 stand-in)
            ("tiny_mlp", 378),
        ],
    )
    def test_param_count(self, name, expected):
        assert build_model(name).num_params == expected

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            build_model("resnet152")

    def test_all_names_buildable(self):
        for name in MODEL_NAMES:
            assert build_model(name).num_params > 0


class TestFlatParameters:
    def test_get_set_roundtrip(self):
        model = build_model("tiny_mlp", seed=0)
        flat = model.get_flat()
        model.set_flat(np.zeros_like(flat))
        assert np.all(model.get_flat() == 0.0)
        model.set_flat(flat)
        assert np.array_equal(model.get_flat(), flat)

    def test_set_flat_wrong_size_rejected(self):
        model = build_model("tiny_mlp")
        with pytest.raises(ValueError):
            model.set_flat(np.zeros(3))

    def test_different_seeds_different_init(self):
        a = build_model("tiny_mlp", seed=0).get_flat()
        b = build_model("tiny_mlp", seed=1).get_flat()
        assert not np.array_equal(a, b)

    def test_same_seed_reproducible(self):
        a = build_model("tiny_mlp", seed=3).get_flat()
        b = build_model("tiny_mlp", seed=3).get_flat()
        assert np.array_equal(a, b)


class TestGradients:
    def test_mlp_gradient_check(self):
        rng = np.random.default_rng(0)
        model = Sequential([
            Linear(6, 5, rng), ReLU(), Linear(5, 3, rng),
        ])
        x = rng.normal(size=(4, 6))
        y = np.asarray([0, 1, 2, 1])
        finite_difference_check(model, x, y)

    def test_cnn_gradient_check(self):
        rng = np.random.default_rng(0)
        model = Sequential([
            Conv2d(1, 2, 3, rng), ReLU(), MaxPool2d(2),
            Flatten(), Linear(2 * 3 * 3, 3, rng),
        ])
        x = rng.normal(size=(2, 1, 8, 8))
        y = np.asarray([0, 2])
        finite_difference_check(model, x, y)

    def test_padded_conv_gradient_check(self):
        rng = np.random.default_rng(0)
        model = Sequential([
            Conv2d(1, 2, 3, rng, padding=1), Flatten(),
            Linear(2 * 6 * 6, 2, rng),
        ])
        x = rng.normal(size=(2, 1, 6, 6))
        y = np.asarray([0, 1])
        finite_difference_check(model, x, y)

    def test_strided_conv_gradient_check(self):
        rng = np.random.default_rng(0)
        model = Sequential([
            Conv2d(1, 2, 3, rng, stride=2), Flatten(),
            Linear(2 * 3 * 3, 2, rng),
        ])
        x = rng.normal(size=(2, 1, 7, 7))
        y = np.asarray([1, 0])
        finite_difference_check(model, x, y)


class TestLayers:
    def test_relu_masks_negatives(self):
        relu = ReLU()
        out = relu.forward(np.asarray([[-1.0, 2.0]]))
        assert out.tolist() == [[0.0, 2.0]]
        grad = relu.backward(np.asarray([[5.0, 5.0]]))
        assert grad.tolist() == [[0.0, 5.0]]

    def test_dropout_eval_is_identity(self):
        drop = Dropout(0.5, np.random.default_rng(0))
        x = np.ones((4, 10))
        assert np.array_equal(drop.forward(x, train=False), x)

    def test_dropout_train_zeroes_and_scales(self):
        drop = Dropout(0.5, np.random.default_rng(0))
        x = np.ones((100, 100))
        out = drop.forward(x, train=True)
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)  # inverted dropout scaling
        assert 0.35 < (out > 0).mean() < 0.65

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0, np.random.default_rng(0))

    def test_maxpool_values(self):
        pool = MaxPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        assert out.reshape(-1).tolist() == [5.0, 7.0, 13.0, 15.0]

    def test_maxpool_backward_routes_to_argmax(self):
        pool = MaxPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        assert grad.sum() == 4.0
        assert grad[0, 0, 1, 1] == 1.0  # position of 5

    def test_maxpool_indivisible_raises(self):
        with pytest.raises(ValueError):
            MaxPool2d(2).forward(np.zeros((1, 1, 5, 5)))

    def test_flatten_roundtrip(self):
        flat = Flatten()
        x = np.arange(24, dtype=float).reshape(2, 3, 2, 2)
        out = flat.forward(x)
        assert out.shape == (2, 12)
        assert flat.backward(out).shape == x.shape

    def test_conv_output_shape(self):
        conv = Conv2d(3, 6, 5, np.random.default_rng(0))
        out = conv.forward(np.zeros((2, 3, 32, 32)))
        assert out.shape == (2, 6, 28, 28)

    def test_conv_padding_preserves_shape(self):
        conv = Conv2d(3, 4, 3, np.random.default_rng(0), padding=1)
        out = conv.forward(np.zeros((1, 3, 8, 8)))
        assert out.shape == (1, 4, 8, 8)


class TestLossAndTraining:
    def test_cross_entropy_uniform(self):
        logits = np.zeros((2, 4))
        loss, dlogits = softmax_cross_entropy(logits, np.asarray([0, 3]))
        assert loss == pytest.approx(np.log(4.0))
        assert dlogits.shape == (2, 4)

    def test_cross_entropy_confident_correct(self):
        logits = np.asarray([[100.0, 0.0]])
        loss, _ = softmax_cross_entropy(logits, np.asarray([0]))
        assert loss < 1e-6

    def test_gradient_sums_to_zero_per_row(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(5, 7))
        _, dlogits = softmax_cross_entropy(logits, np.asarray([0, 1, 2, 3, 4]))
        assert np.allclose(dlogits.sum(axis=1), 0.0)

    def test_sgd_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        model = Sequential([Linear(10, 16, rng), ReLU(), Linear(16, 3, rng)])
        x = rng.normal(size=(60, 10))
        y = rng.integers(0, 3, size=60)
        # Make labels learnable: shift class means apart.
        for c in range(3):
            x[y == c] += 2.0 * c
        first_loss, _ = softmax_cross_entropy(model.forward(x), y)
        for _ in range(60):
            logits = model.forward(x, train=True)
            _, dlogits = softmax_cross_entropy(logits, y)
            model.backward(dlogits)
            model.sgd_step(0.1)
        final_loss, _ = softmax_cross_entropy(model.forward(x), y)
        assert final_loss < first_loss * 0.5
        assert accuracy(model, x, y) > 0.8

    def test_accuracy_bounds(self):
        model = build_model("tiny_mlp")
        x = np.zeros((5, 24))
        y = np.zeros(5, dtype=np.int64)
        assert 0.0 <= accuracy(model, x, y) <= 1.0


class TestBatchedConv:
    """The conv models' batched counterparts must be bit-identical."""

    @pytest.mark.parametrize("name", ["cifar10_cnn", "cifar100_cnn"])
    def test_conv_models_are_batchable(self, name):
        assert supports_batched_training(build_model(name))

    @pytest.mark.parametrize("name", ["cifar10_cnn", "cifar100_cnn"])
    def test_batched_forward_bit_identical(self, name):
        template = build_model(name, seed=0)
        weights = build_model(name, seed=7).get_flat()
        rng = np.random.default_rng(1)
        xs = rng.normal(size=(3, 4, 3, 32, 32))
        batched = BatchedSequential(template, weights, 3)
        out = batched.forward(xs, train=False)
        for c in range(3):
            serial = build_model(name, seed=0)
            serial.set_flat(weights)
            expected = serial.forward(xs[c], train=False)
            assert np.array_equal(expected, out[c])

    def test_batched_train_step_bit_identical(self):
        template = build_model("cifar10_cnn", seed=0)
        weights = build_model("cifar10_cnn", seed=5).get_flat()
        rng = np.random.default_rng(2)
        xs = rng.normal(size=(3, 4, 3, 32, 32))
        ys = rng.integers(0, 10, size=(3, 4))
        batched = BatchedSequential(template, weights, 3)
        logits = batched.forward(xs, train=True)
        batched.backward(softmax_cross_entropy_batch(logits, ys))
        batched.sgd_step(0.1)
        flat = batched.get_flat()
        for c in range(3):
            serial = build_model("cifar10_cnn", seed=0)
            serial.set_flat(weights)
            _, dlogits = softmax_cross_entropy(
                serial.forward(xs[c], train=True), ys[c]
            )
            serial.backward(dlogits)
            serial.sgd_step(0.1)
            assert np.array_equal(serial.get_flat(), flat[c])
