"""Integration of traced runs with the cost model via region layouts.

The structural streams (repro.core.streams) are the fast path for the
cost model; this file verifies the slow path -- charging a *recorded*
trace through a RegionLayout -- agrees with it, closing the loop
between the two representations of an access pattern.
"""

import numpy as np

from repro.core.aggregation import aggregate_advanced_traced
from repro.core.streams import advanced_stream
from repro.fl.client import LocalUpdate
from repro.sgx.cost import CostModel, CostParameters
from repro.sgx.memory import RegionLayout, Trace

SMALL = CostParameters(
    l2_bytes=4 * 1024, l2_assoc=4,
    l3_bytes=16 * 1024, l3_assoc=4,
    epc_bytes=128 * 1024,
)


def _updates(n, k, d, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for cid in range(n):
        idx = np.sort(rng.choice(d, size=k, replace=False)).astype(np.int64)
        out.append(LocalUpdate(cid, idx, rng.normal(size=k)))
    return out


def trace_to_lines(trace: Trace, layout: RegionLayout):
    """Cacheline stream of a recorded trace under a layout."""
    for access in trace:
        yield layout.byte_address(access.region, access.offset) // 64


class TestTraceChargesLikeStream:
    def test_advanced_trace_equals_structural_stream(self):
        n, k, d = 3, 4, 12
        trace = Trace()
        aggregate_advanced_traced(_updates(n, k, d), d, trace)

        from repro.oblivious.sort import next_power_of_two

        m = next_power_of_two(n * k + d)
        layout = RegionLayout()
        layout.add("g", m, 8)

        recorded = list(trace_to_lines(trace, layout))
        structural = list(advanced_stream(n * k, d))
        assert recorded == structural

    def test_same_cycles_either_way(self):
        n, k, d = 2, 3, 10
        trace = Trace()
        aggregate_advanced_traced(_updates(n, k, d), d, trace)
        from repro.oblivious.sort import next_power_of_two

        layout = RegionLayout()
        layout.add("g", next_power_of_two(n * k + d), 8)
        via_trace = CostModel(SMALL).charge_lines(
            trace_to_lines(trace, layout)
        )
        via_stream = CostModel(SMALL).charge_lines(
            advanced_stream(n * k, d)
        )
        assert via_trace.cycles == via_stream.cycles
        assert via_trace.accesses == via_stream.accesses


class TestEnclaveAllocCostPath:
    def test_alloc_layout_supports_cost_charging(self):
        from repro.sgx.enclave import Enclave

        enclave = Enclave(seed=0)
        a = enclave.alloc(32, itemsize=8, name="bufA")
        b = enclave.alloc(64, itemsize=4, name="bufB")
        for i in range(32):
            a.read(i)
        for i in range(64):
            b.write(i, 1.0)
        report = CostModel(SMALL).charge_lines(
            trace_to_lines(enclave.trace, enclave.layout)
        )
        assert report.accesses == 96
        # Sequential scans are cache-friendly: mostly hits after the
        # first touch of each line.
        assert report.l2_hits > 70

    def test_distinct_regions_occupy_distinct_lines(self):
        from repro.sgx.enclave import Enclave

        enclave = Enclave(seed=0)
        a = enclave.alloc(8, itemsize=8, name="first")
        b = enclave.alloc(8, itemsize=8, name="second")
        a.read(0)
        b.read(0)
        lines = list(trace_to_lines(enclave.trace, enclave.layout))
        assert lines[0] != lines[1]
