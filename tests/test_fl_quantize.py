"""Tests for gradient quantization (repro.fl.quantize)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fl.client import LocalUpdate
from repro.fl.quantize import (
    QuantizedUpdate,
    compression_ratio,
    dense_wire_bytes,
    quantize_deterministic,
    quantize_stochastic,
)


def _update(values, seed=0):
    values = np.asarray(values, dtype=np.float64)
    return LocalUpdate(0, np.arange(len(values), dtype=np.int64), values)


class TestDeterministicQuantization:
    def test_roundtrip_error_bounded(self):
        update = _update([0.5, -1.0, 0.25, 0.75])
        q = quantize_deterministic(update, bits=8)
        restored = q.dequantize()
        # Max error is half a level: scale / 2.
        assert np.max(np.abs(restored.values - update.values)) <= q.scale / 2 + 1e-12

    def test_extremes_are_exact(self):
        update = _update([1.0, -1.0, 0.0])
        q = quantize_deterministic(update, bits=8)
        restored = q.dequantize()
        assert restored.values[0] == pytest.approx(1.0)
        assert restored.values[1] == pytest.approx(-1.0)
        assert restored.values[2] == pytest.approx(0.0)

    def test_one_bit_degenerates_to_sign_times_max(self):
        update = _update([0.9, -0.4])
        q = quantize_deterministic(update, bits=2)  # levels in {-1, 0, 1}
        assert set(np.abs(q.levels).tolist()) <= {0, 1}

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize_deterministic(_update([1.0]), bits=0)
        with pytest.raises(ValueError):
            quantize_deterministic(_update([1.0]), bits=32)

    def test_zero_vector(self):
        q = quantize_deterministic(_update([0.0, 0.0]), bits=8)
        assert np.allclose(q.dequantize().values, 0.0)

    def test_indices_preserved(self):
        update = LocalUpdate(3, np.asarray([5, 9], dtype=np.int64),
                             np.asarray([0.5, -0.5]))
        q = quantize_deterministic(update, bits=8)
        assert q.client_id == 3
        assert q.indices.tolist() == [5, 9]
        assert q.dequantize().indices.tolist() == [5, 9]


class TestStochasticQuantization:
    def test_unbiasedness(self):
        update = _update([0.37, -0.81, 0.05])
        rng = np.random.default_rng(0)
        total = np.zeros(3)
        trials = 3000
        for _ in range(trials):
            total += quantize_stochastic(update, 4, rng).dequantize().values
        mean = total / trials
        assert np.allclose(mean, update.values, atol=0.02)

    def test_levels_within_range(self):
        update = _update(np.linspace(-2, 2, 40))
        rng = np.random.default_rng(0)
        q = quantize_stochastic(update, bits=4, rng=rng)
        n_levels = (1 << 3) - 1
        assert np.all(np.abs(q.levels) <= n_levels)

    @given(st.lists(st.floats(-10, 10, allow_nan=False), min_size=1,
                    max_size=30),
           st.integers(2, 12))
    @settings(max_examples=30, deadline=None)
    def test_error_bounded_by_one_level(self, values, bits):
        update = _update(values)
        rng = np.random.default_rng(0)
        q = quantize_stochastic(update, bits, rng)
        err = np.abs(q.dequantize().values - update.values)
        assert np.all(err <= q.scale + 1e-9)

    def test_empty_update(self):
        empty = LocalUpdate(0, np.empty(0, dtype=np.int64), np.empty(0))
        q = quantize_stochastic(empty, 8, np.random.default_rng(0))
        assert len(q.levels) == 0


class TestWireAccounting:
    def test_wire_bytes_formula(self):
        q = QuantizedUpdate(0, np.arange(10, dtype=np.int64),
                            np.zeros(10, dtype=np.int64), 1.0, bits=8)
        assert q.wire_bytes == 8 + 10 * (4 + 1)

    def test_dense_bytes(self):
        assert dense_wire_bytes(50_890) == 203_560

    def test_compression_ratio_orders_of_magnitude(self):
        # Top-1% sparsification + 8-bit quantization on the MNIST MLP:
        # the "1~3 orders of magnitude" saving the paper cites.
        d = 50_890
        k = d // 100
        q = QuantizedUpdate(0, np.arange(k, dtype=np.int64),
                            np.zeros(k, dtype=np.int64), 1.0, bits=8)
        ratio = compression_ratio(q, d)
        assert 10 < ratio < 1000
