"""Tests for the oblivious serving subsystem (repro.serving).

The load-bearing property: the oblivious engine's recorded trace is a
pure function of the batch *shape* -- any two same-shape request
batches produce byte-identical access traces (pinned below with a
hypothesis property test), while the plain row-read mode demonstrably
leaks the served class to the attack pipeline.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack import (
    AttackConfig,
    macro_ovr_auc,
    run_serving_attack,
    serving_slot_observations,
)
from repro.core import OliveConfig, OliveSystem
from repro.core.checkpoint import save_checkpoint
from repro.fl import (
    SPECS,
    SyntheticClassData,
    TrainingConfig,
    build_model,
    partition_clients,
)
from repro.oblivious import o_access_rows
from repro.serving import (
    InferenceServer,
    ObliviousInferenceEngine,
    ServingConfig,
    infer_model_name,
    load_serving_model,
    model_output_dim,
    open_request,
    open_response,
    replay_serving_cost,
    seal_request,
    seal_response,
)
from repro.serving.engine import SERVE_TABLE_REGION
from repro.sgx import crypto
from repro.sgx.crypto import AuthenticationError
from repro.sgx.enclave import (
    Enclave,
    EnclaveSecurityError,
    provision_enclave_with_clients,
)
from repro.sgx.memory import Trace, TracedArray

SPEC = SPECS["tiny"]


@pytest.fixture(scope="module")
def model():
    return build_model(SPEC.model_name, seed=3)


@pytest.fixture(scope="module")
def data():
    return SyntheticClassData(SPEC, seed=0)


def _engine(model, batch_size=4, oblivious=True, enclave=None):
    return ObliviousInferenceEngine(
        model, batch_size=batch_size, oblivious=oblivious, enclave=enclave)


def _provisioned(model, batch_size=4, oblivious=True, client_ids=(1, 2, 3)):
    enclave = Enclave(seed=0)
    keys = provision_enclave_with_clients(enclave, list(client_ids))
    return _engine(model, batch_size, oblivious, enclave), keys


class TestObliviousTrace:
    """The tentpole property: trace == f(batch shape), not f(inputs)."""

    @settings(max_examples=20, deadline=None)
    @given(seed_a=st.integers(0, 2**31 - 1), seed_b=st.integers(0, 2**31 - 1),
           batch_size=st.sampled_from([1, 3, 4, 8]))
    def test_same_shape_batches_identical_traces(self, seed_a, seed_b,
                                                 batch_size):
        # Property: ANY two request batches of the same shape produce
        # byte-identical access traces through the oblivious path.
        model = build_model(SPEC.model_name, seed=3)
        data = SyntheticClassData(SPEC, seed=0)
        engine = _engine(model, batch_size=batch_size)
        digests = []
        for seed in (seed_a, seed_b):
            rng = np.random.default_rng(seed)
            y = rng.integers(0, SPEC.n_labels, size=batch_size)
            batch = engine.infer_batch(data.sample(y, rng), traced=True)
            digests.append(batch.trace.signature_digest())
        assert digests[0] == digests[1]

    def test_plain_traces_differ_across_classes(self, model, data):
        engine = _engine(model, oblivious=False)
        rng = np.random.default_rng(0)
        digests = set()
        for seed in range(4):
            r = np.random.default_rng(seed)
            y = r.integers(0, SPEC.n_labels, size=4)
            batch = engine.infer_batch(data.sample(y, r), traced=True)
            digests.add(batch.trace.signature_digest())
        assert len(digests) > 1, "plain mode should leak the served rows"

    def test_trace_matches_scalar_o_access_rows(self, model):
        # The engine's block-scan retrieval must touch the table in
        # exactly the order the scalar o_access_rows reference does.
        lab = model_output_dim(model)
        engine = _engine(model, batch_size=1)
        batch = engine.infer_batch(np.zeros((1, *SPEC.input_shape)),
                                   traced=True)
        rids, offs, _ = batch.trace.columns()
        names = batch.trace.region_names
        table_offs = offs[np.asarray(rids) == names.index(SERVE_TABLE_REGION)]
        # Reference: one slot's oblivious row retrieval on a fresh table.
        trace = Trace()
        ref = TracedArray.zeros("ref", lab * lab, trace)
        o_access_rows(ref, 2, lab)
        ref_offs = trace.columns()[1]
        # The engine writes the table once (load is untraced) and then
        # scans; compare the scan segment (reads) against the reference.
        assert table_offs.tolist() == ref_offs.tolist()

    def test_oblivious_selection_is_semantically_correct(self, model, data):
        # The scanned-and-selected row must equal the direct row read.
        engine = _engine(model, batch_size=4)
        rng = np.random.default_rng(5)
        y = rng.integers(0, SPEC.n_labels, size=4)
        batch = engine.infer_batch(data.sample(y, rng), traced=True)
        for slot in range(4):
            expected = batch.logits[slot] + engine.calibration[
                batch.labels[slot]]
            assert np.array_equal(batch.calibrated[slot], expected)

    def test_untraced_path_matches_traced(self, model, data):
        engine = _engine(model, batch_size=4)
        rng = np.random.default_rng(6)
        x = data.sample(rng.integers(0, SPEC.n_labels, size=4), rng)
        traced = engine.infer_batch(x, traced=True)
        untraced = engine.infer_batch(x, traced=False)
        assert np.array_equal(traced.calibrated, untraced.calibrated)
        assert untraced.trace is None

    def test_wrong_batch_size_rejected(self, model):
        engine = _engine(model, batch_size=4)
        with pytest.raises(ValueError, match="fixed batches"):
            engine.infer_batch(np.zeros((3, *SPEC.input_shape)))


class TestCheckpointLoading:
    def _trained_system(self):
        gen = SyntheticClassData(SPEC, seed=0)
        clients = partition_clients(gen, 10, 20, 2, seed=0)
        config = OliveConfig(
            sample_rate=0.5, noise_multiplier=1.12, aggregator="linear",
            training=TrainingConfig(local_epochs=1, local_lr=0.2,
                                    sparse_ratio=0.1),
        )
        system = OliveSystem(build_model(SPEC.model_name, seed=0), clients,
                             config, seed=1)
        system.run(1)
        return system

    def test_roundtrip_infers_architecture(self, tmp_path):
        system = self._trained_system()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(system, path)
        expected = system.global_weights.copy()
        system.close()
        model, meta = load_serving_model(path)
        assert meta["model_name"] == SPEC.model_name
        assert np.array_equal(model.get_flat(), expected)

    def test_model_name_inference(self):
        assert infer_model_name(378) == "tiny_mlp"
        assert infer_model_name(62_006) == "cifar10_cnn"
        with pytest.raises(ValueError, match="no known architecture"):
            infer_model_name(1234567)

    def test_explicit_name_mismatch_rejected(self, tmp_path):
        system = self._trained_system()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(system, path)
        system.close()
        with pytest.raises(ValueError, match="expects"):
            load_serving_model(path, model_name="mnist_mlp")


class TestEnvelopes:
    def test_request_roundtrip(self):
        key = crypto.generate_key(b"k")
        x = np.arange(24, dtype=np.float64).reshape(2, 3, 4)
        out = open_request(key, seal_request(key, x))
        assert np.array_equal(out, x)
        assert out.shape == x.shape

    def test_response_roundtrip_nonce_bound(self):
        key = crypto.generate_key(b"k")
        request = seal_request(key, np.zeros(4))
        sealed = seal_response(key, request.nonce, 3, np.arange(6.0))
        label, logits = open_response(key, sealed)
        assert label == 3
        assert np.array_equal(logits, np.arange(6.0))
        # Same request nonce -> same response nonce (deterministic SIV).
        again = seal_response(key, request.nonce, 3, np.arange(6.0))
        assert again.nonce == sealed.nonce

    def test_tampered_response_rejected(self):
        key = crypto.generate_key(b"k")
        sealed = seal_response(key, b"n" * 16, 1, np.zeros(4))
        tampered = crypto.Ciphertext(
            sealed.nonce, bytes([sealed.body[0] ^ 1]) + sealed.body[1:],
            sealed.tag)
        with pytest.raises(AuthenticationError):
            open_response(key, tampered)

    def test_wrong_key_rejected(self):
        key = crypto.generate_key(b"k")
        other = crypto.generate_key(b"other")
        with pytest.raises(AuthenticationError):
            open_request(other, seal_request(key, np.zeros(4)))


class TestServer:
    def test_concurrent_submits_all_served(self, model, data):
        engine, keys = _provisioned(model, batch_size=4)
        rng = np.random.default_rng(0)
        xs = data.sample(rng.integers(0, SPEC.n_labels, size=24), rng)
        results = {}
        with InferenceServer(engine,
                             ServingConfig(max_wait_s=0.002)) as server:
            def client(cid, offsets):
                for i in offsets:
                    sealed = seal_request(keys[cid], xs[i])
                    results[i] = (cid, server.submit(cid, sealed))
            threads = [
                threading.Thread(target=client,
                                 args=(cid, range(j, 24, 3)))
                for j, cid in enumerate([1, 2, 3])
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            responses = {
                i: open_response(keys[cid], f.result(timeout=10))
                for i, (cid, f) in results.items()
            }
        assert server.requests_served == 24
        assert len(responses) == 24
        # Batching must not change the answer: compare against a
        # direct single-request inference of the same input.
        solo = _engine(model, batch_size=4)
        for i in (0, 7, 23):
            x = np.zeros((4, *SPEC.input_shape))
            x[0] = xs[i]
            expected = solo.infer_batch(x, traced=False)
            label, logits = responses[i]
            assert label == int(expected.labels[0])
            assert np.array_equal(logits, expected.calibrated[0])

    def test_deadline_flushes_partial_batch_padded(self, model, data):
        engine, keys = _provisioned(model, batch_size=8)
        rng = np.random.default_rng(1)
        x = data.sample(rng.integers(0, SPEC.n_labels, size=1), rng)[0]
        with InferenceServer(engine,
                             ServingConfig(max_wait_s=0.01)) as server:
            t0 = time.monotonic()
            future = server.submit(1, seal_request(keys[1], x))
            label, _ = open_response(keys[1], future.result(timeout=10))
            waited = time.monotonic() - t0
        assert server.batches == 1
        assert server.padded_slots == 7
        assert waited >= 0.01  # the deadline, not an eager flush
        assert 0 <= label < SPEC.n_labels

    def test_padding_is_trace_invisible(self, model, data):
        # A deadline-padded batch and a full batch record the same
        # trace: fill level must not leak through the access pattern.
        engine, keys = _provisioned(model, batch_size=4)
        rng = np.random.default_rng(2)
        with InferenceServer(engine, ServingConfig(max_wait_s=0.005,
                                                   traced=True,
                                                   keep_batches=True)) as srv:
            x = data.sample(rng.integers(0, SPEC.n_labels, size=1), rng)[0]
            srv.submit(1, seal_request(keys[1], x)).result(timeout=10)
            xs = data.sample(rng.integers(0, SPEC.n_labels, size=4), rng)
            futures = [srv.submit(1, seal_request(keys[1], xi)) for xi in xs]
            for f in futures:
                f.result(timeout=10)
        fills = sorted(fill for _, fill in srv.served)
        assert fills == [1, 4]
        digests = {b.trace.signature_digest() for b, _ in srv.served}
        assert len(digests) == 1

    def test_unknown_client_rejected(self, model):
        engine, keys = _provisioned(model)
        with InferenceServer(engine) as server:
            with pytest.raises(EnclaveSecurityError):
                server.submit(99, seal_request(keys[1], np.zeros(24)))

    def test_tampered_request_rejected_at_submit(self, model):
        engine, keys = _provisioned(model)
        sealed = seal_request(keys[1], np.zeros(24))
        tampered = crypto.Ciphertext(
            sealed.nonce, bytes([sealed.body[0] ^ 1]) + sealed.body[1:],
            sealed.tag)
        with InferenceServer(engine) as server:
            with pytest.raises(AuthenticationError):
                server.submit(1, tampered)
        assert server.requests_served == 0

    def test_shape_mismatch_rejected(self, model):
        engine, keys = _provisioned(model)
        with InferenceServer(engine) as server:
            server.submit(1, seal_request(keys[1], np.zeros(24)))
            with pytest.raises(ValueError, match="serving shape"):
                server.submit(1, seal_request(keys[1], np.zeros(25)))


class TestServingAttack:
    def _batches(self, engine, data, n, seed):
        out = []
        rng = np.random.default_rng(seed)
        for _ in range(n):
            y = rng.integers(0, SPEC.n_labels, size=engine.batch_size)
            out.append(engine.infer_batch(data.sample(y, rng), traced=True))
        return out

    @pytest.mark.parametrize("method", ["jac", "nn"])
    def test_oblivious_auc_is_chance(self, model, data, method):
        engine = _engine(model, batch_size=8)
        probes = self._batches(engine, data, 4, seed=1)
        victims = self._batches(engine, data, 4, seed=2)
        result = run_serving_attack(
            victims, probes, SPEC.n_labels,
            AttackConfig(method=method, nn_epochs=5))
        assert result.auc == pytest.approx(0.5, abs=0.05)

    @pytest.mark.parametrize("method", ["jac", "nn"])
    def test_plain_auc_shows_leak(self, model, data, method):
        engine = _engine(model, batch_size=8, oblivious=False)
        probes = self._batches(engine, data, 4, seed=1)
        victims = self._batches(engine, data, 4, seed=2)
        result = run_serving_attack(
            victims, probes, SPEC.n_labels,
            AttackConfig(method=method, nn_epochs=10))
        assert result.auc >= 0.9

    def test_slot_observations_plain_name_the_row(self, model, data):
        lab = model_output_dim(model)
        engine = _engine(model, batch_size=4, oblivious=False)
        rng = np.random.default_rng(3)
        batch = engine.infer_batch(
            data.sample(rng.integers(0, SPEC.n_labels, size=4), rng),
            traced=True)
        for slot, observed in enumerate(serving_slot_observations(batch)):
            pred = int(batch.labels[slot])
            assert observed == frozenset(range(pred * lab, (pred + 1) * lab))

    def test_slot_observations_oblivious_full_table(self, model, data):
        lab = model_output_dim(model)
        engine = _engine(model, batch_size=4)
        rng = np.random.default_rng(3)
        batch = engine.infer_batch(
            data.sample(rng.integers(0, SPEC.n_labels, size=4), rng),
            traced=True)
        full = frozenset(range(lab * lab))
        assert all(observed == full
                   for observed in serving_slot_observations(batch))

    def test_macro_ovr_auc_properties(self):
        labels = np.asarray([0, 0, 1, 1])
        constant = np.ones((4, 2))
        assert macro_ovr_auc(constant, labels, 2) == 0.5
        perfect = np.asarray([[1.0, 0.0], [1.0, 0.0],
                              [0.0, 1.0], [0.0, 1.0]])
        assert macro_ovr_auc(perfect, labels, 2) == 1.0
        inverted = 1.0 - perfect
        assert macro_ovr_auc(inverted, labels, 2) == 0.0


class TestCostReplay:
    def test_vector_matches_reference_engine(self, model, data):
        engine = _engine(model, batch_size=4)
        rng = np.random.default_rng(4)
        batch = engine.infer_batch(
            data.sample(rng.integers(0, SPEC.n_labels, size=4), rng),
            traced=True)
        _, vec = replay_serving_cost(batch, engine="vector")
        _, ref = replay_serving_cost(batch, engine="reference")
        assert vec == ref
        assert vec.accesses == len(batch.trace)

    def test_untraced_batch_rejected(self, model):
        engine = _engine(model, batch_size=1)
        batch = engine.infer_batch(np.zeros((1, *SPEC.input_shape)),
                                   traced=False)
        with pytest.raises(ValueError, match="not traced"):
            replay_serving_cost(batch)
