"""Tests for pairwise-masking secure aggregation (repro.fl.secagg)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.fl.client import LocalUpdate
from repro.fl.secagg import (
    FIELD_MOD,
    aggregate_dense_masked,
    aggregate_sparse_masked,
    decode_fixed_point,
    encode_fixed_point,
    setup_pairwise_seeds,
)


class TestFixedPoint:
    @given(st.lists(st.floats(-1000, 1000), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, values):
        v = np.asarray(values)
        out = decode_fixed_point(encode_fixed_point(v), 1)
        assert np.allclose(out, v, atol=1e-6)

    def test_negative_values(self):
        v = np.asarray([-1.5, -0.001])
        assert np.allclose(decode_fixed_point(encode_fixed_point(v), 1), v,
                           atol=1e-6)

    def test_field_range(self):
        enc = encode_fixed_point(np.asarray([-5.0, 5.0]))
        assert np.all(enc >= 0)
        assert np.all(enc < FIELD_MOD)


class TestPairwiseSeeds:
    def test_seeds_are_symmetric(self):
        clients = setup_pairwise_seeds([0, 1, 2], seed=0)
        assert clients[0].pair_seeds[1] == clients[1].pair_seeds[0]
        assert clients[1].pair_seeds[2] == clients[2].pair_seeds[1]

    def test_distinct_pairs_distinct_seeds(self):
        clients = setup_pairwise_seeds([0, 1, 2], seed=0)
        assert clients[0].pair_seeds[1] != clients[0].pair_seeds[2]

    def test_no_self_seed(self):
        clients = setup_pairwise_seeds([0, 1], seed=0)
        assert 0 not in clients[0].pair_seeds


class TestDenseSecAgg:
    def test_masks_cancel_in_sum(self):
        rng = np.random.default_rng(0)
        values = {cid: rng.normal(size=20) for cid in range(4)}
        clients = setup_pairwise_seeds(list(values), seed=1)
        masked = [clients[cid].mask_dense(values[cid]) for cid in values]
        out = aggregate_dense_masked(masked, len(values))
        expected = sum(values.values())
        assert np.allclose(out, expected, atol=1e-5)

    def test_individual_upload_is_masked(self):
        rng = np.random.default_rng(0)
        v = rng.normal(size=10)
        clients = setup_pairwise_seeds([0, 1], seed=2)
        masked = clients[0].mask_dense(v)
        # The server cannot read the values off one upload.
        assert not np.allclose(decode_fixed_point(masked, 1), v, atol=1e-3)

    def test_two_clients_minimum(self):
        clients = setup_pairwise_seeds([0, 1], seed=3)
        a = clients[0].mask_dense(np.asarray([1.0, 2.0]))
        b = clients[1].mask_dense(np.asarray([3.0, 4.0]))
        out = aggregate_dense_masked([a, b], 2)
        assert np.allclose(out, [4.0, 6.0], atol=1e-6)

    @given(st.integers(2, 6), st.integers(1, 30))
    @settings(max_examples=15, deadline=None)
    def test_cancellation_property(self, n_clients, dim):
        rng = np.random.default_rng(0)
        values = {cid: rng.normal(size=dim) for cid in range(n_clients)}
        clients = setup_pairwise_seeds(list(values), seed=4)
        masked = [clients[cid].mask_dense(values[cid]) for cid in values]
        out = aggregate_dense_masked(masked, n_clients)
        assert np.allclose(out, sum(values.values()), atol=1e-5)


class TestSparseSecAgg:
    def _updates_same_support(self, n=3, d=30, k=4, seed=0):
        rng = np.random.default_rng(seed)
        idx = np.sort(rng.choice(d, size=k, replace=False)).astype(np.int64)
        return [
            LocalUpdate(cid, idx.copy(), rng.normal(size=k))
            for cid in range(n)
        ]

    def test_shared_support_decodes_exactly(self):
        d = 30
        updates = self._updates_same_support(d=d)
        clients = setup_pairwise_seeds([u.client_id for u in updates], seed=5)
        uploads = [
            clients[u.client_id].mask_sparse(u, d) for u in updates
        ]
        aggregate, _ = aggregate_sparse_masked(uploads, d)
        expected = np.zeros(d)
        for u in updates:
            np.add.at(expected, u.indices, u.values)
        assert np.allclose(aggregate, expected, atol=1e-5)

    def test_index_sets_leak_in_plaintext(self):
        # The paper's generality point: no TEE, still the same leak.
        d = 30
        rng = np.random.default_rng(1)
        updates = [
            LocalUpdate(cid, np.sort(rng.choice(
                d, size=4, replace=False)).astype(np.int64),
                rng.normal(size=4))
            for cid in range(3)
        ]
        clients = setup_pairwise_seeds([0, 1, 2], seed=6)
        uploads = [clients[u.client_id].mask_sparse(u, d) for u in updates]
        _, leaked = aggregate_sparse_masked(uploads, d)
        for u in updates:
            assert leaked[u.client_id] == frozenset(u.indices.tolist())

    def test_values_are_hidden_per_upload(self):
        d = 30
        updates = self._updates_same_support(d=d, seed=2)
        clients = setup_pairwise_seeds([u.client_id for u in updates], seed=7)
        upload = clients[0].mask_sparse(updates[0], d)
        assert not np.allclose(
            decode_fixed_point(upload.masked_values, 1),
            updates[0].values, atol=1e-3,
        )

    def test_disjoint_support_leaves_residual_masks(self):
        # The alignment problem: pairs that disagree on a coordinate
        # leave residual masks there -- documented behaviour.
        d = 10
        u0 = LocalUpdate(0, np.asarray([1]), np.asarray([1.0]))
        u1 = LocalUpdate(1, np.asarray([7]), np.asarray([2.0]))
        clients = setup_pairwise_seeds([0, 1], seed=8)
        uploads = [clients[0].mask_sparse(u0, d), clients[1].mask_sparse(u1, d)]
        aggregate, _ = aggregate_sparse_masked(uploads, d)
        expected = np.zeros(d)
        expected[1], expected[7] = 1.0, 2.0
        assert not np.allclose(aggregate, expected, atol=1e-3)
