"""Tests for authenticated encryption and the gradient wire format."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sgx import crypto


KEY = crypto.generate_key(b"test-seed")
OTHER_KEY = crypto.generate_key(b"other-seed")


class TestKeys:
    def test_generate_key_length(self):
        assert len(crypto.generate_key()) == crypto.KEY_BYTES

    def test_deterministic_from_seed(self):
        assert crypto.generate_key(b"x") == crypto.generate_key(b"x")
        assert crypto.generate_key(b"x") != crypto.generate_key(b"y")

    def test_derive_key_labels_independent(self):
        assert crypto.derive_key(KEY, "enc") != crypto.derive_key(KEY, "mac")

    def test_derive_key_depends_on_master(self):
        assert crypto.derive_key(KEY, "enc") != crypto.derive_key(OTHER_KEY, "enc")


class TestSeal:
    def test_roundtrip(self):
        ct = crypto.seal(KEY, b"hello gradients")
        assert crypto.open_sealed(KEY, ct) == b"hello gradients"

    def test_empty_plaintext(self):
        ct = crypto.seal(KEY, b"")
        assert crypto.open_sealed(KEY, ct) == b""

    def test_wrong_key_rejected(self):
        ct = crypto.seal(KEY, b"secret")
        with pytest.raises(crypto.AuthenticationError):
            crypto.open_sealed(OTHER_KEY, ct)

    def test_tampered_body_rejected(self):
        ct = crypto.seal(KEY, b"secret payload")
        flipped = bytes([ct.body[0] ^ 1]) + ct.body[1:]
        forged = crypto.Ciphertext(nonce=ct.nonce, body=flipped, tag=ct.tag)
        with pytest.raises(crypto.AuthenticationError):
            crypto.open_sealed(KEY, forged)

    def test_tampered_nonce_rejected(self):
        ct = crypto.seal(KEY, b"secret payload")
        flipped = bytes([ct.nonce[0] ^ 1]) + ct.nonce[1:]
        forged = crypto.Ciphertext(nonce=flipped, body=ct.body, tag=ct.tag)
        with pytest.raises(crypto.AuthenticationError):
            crypto.open_sealed(KEY, forged)

    def test_tampered_tag_rejected(self):
        ct = crypto.seal(KEY, b"secret payload")
        flipped = bytes([ct.tag[0] ^ 1]) + ct.tag[1:]
        forged = crypto.Ciphertext(nonce=ct.nonce, body=ct.body, tag=flipped)
        with pytest.raises(crypto.AuthenticationError):
            crypto.open_sealed(KEY, forged)

    def test_ciphertext_differs_from_plaintext(self):
        ct = crypto.seal(KEY, b"secret payload")
        assert ct.body != b"secret payload"

    def test_fresh_nonce_randomizes_ciphertext(self):
        a = crypto.seal(KEY, b"same message")
        b = crypto.seal(KEY, b"same message")
        assert a.body != b.body or a.nonce != b.nonce

    def test_fixed_nonce_is_deterministic(self):
        nonce = b"\x01" * crypto.NONCE_BYTES
        a = crypto.seal(KEY, b"msg", nonce=nonce)
        b = crypto.seal(KEY, b"msg", nonce=nonce)
        assert a == b

    def test_invalid_key_length_raises(self):
        with pytest.raises(ValueError):
            crypto.seal(b"short", b"msg")
        with pytest.raises(ValueError):
            crypto.open_sealed(b"short", crypto.seal(KEY, b"m"))

    def test_invalid_nonce_length_raises(self):
        with pytest.raises(ValueError):
            crypto.seal(KEY, b"msg", nonce=b"short")

    def test_serialization_roundtrip(self):
        ct = crypto.seal(KEY, b"payload bytes")
        again = crypto.Ciphertext.from_bytes(ct.to_bytes())
        assert again == ct
        assert crypto.open_sealed(KEY, again) == b"payload bytes"

    def test_from_bytes_too_short_raises(self):
        with pytest.raises(ValueError):
            crypto.Ciphertext.from_bytes(b"tiny")

    @given(st.binary(max_size=500))
    def test_roundtrip_property(self, message):
        assert crypto.open_sealed(KEY, crypto.seal(KEY, message)) == message


class TestGradientCodec:
    def test_roundtrip(self):
        idx = [3, 17, 200]
        val = [0.5, -1.25, 3.0]
        raw = crypto.encode_sparse_gradient(idx, val)
        out_idx, out_val = crypto.decode_sparse_gradient(raw)
        assert out_idx == idx
        assert out_val == val

    def test_empty_gradient(self):
        raw = crypto.encode_sparse_gradient([], [])
        assert crypto.decode_sparse_gradient(raw) == ([], [])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            crypto.encode_sparse_gradient([1, 2], [0.5])

    def test_truncated_payload_raises(self):
        raw = crypto.encode_sparse_gradient([1], [2.0])
        with pytest.raises(ValueError):
            crypto.decode_sparse_gradient(raw[:-1])
        with pytest.raises(ValueError):
            crypto.decode_sparse_gradient(b"\x00")

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**32 - 1),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
            ),
            max_size=50,
        )
    )
    def test_roundtrip_property(self, records):
        idx = [r[0] for r in records]
        val = [float(np.float64(r[1])) for r in records]
        out_idx, out_val = crypto.decode_sparse_gradient(
            crypto.encode_sparse_gradient(idx, val)
        )
        assert out_idx == idx
        assert out_val == val

    def test_sealed_gradient_end_to_end(self):
        raw = crypto.encode_sparse_gradient([5, 9], [1.0, -2.0])
        ct = crypto.seal(KEY, raw)
        idx, val = crypto.decode_sparse_gradient(crypto.open_sealed(KEY, ct))
        assert idx == [5, 9]
        assert val == [1.0, -2.0]
