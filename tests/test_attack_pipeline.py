"""End-to-end attack tests (repro.attack.pipeline).

The attack must succeed against the non-oblivious Linear aggregation
and collapse to chance against the fully oblivious Advanced algorithm
-- the paper's central security claim.
"""

import numpy as np
import pytest

from repro.attack.leakage import (
    coarsen_indices,
    feature_dim,
    observe_round,
    observe_rounds,
)
from repro.attack.pipeline import (
    AttackConfig,
    all_accuracy,
    chance_top1,
    run_attack,
    top1_accuracy,
)
from repro.core.olive import OliveConfig, OliveSystem
from repro.fl.client import TrainingConfig
from repro.fl.datasets import (
    SPECS,
    SyntheticClassData,
    partition_clients,
    server_test_data_by_label,
)
from repro.fl.models import build_model

TRAIN = TrainingConfig(local_epochs=1, local_lr=0.2, batch_size=16,
                       sparse_ratio=0.1, clip=1.0)


@pytest.fixture(scope="module")
def traced_linear_run():
    gen = SyntheticClassData(SPECS["tiny"], seed=0)
    clients = partition_clients(gen, 20, 40, 2, seed=0)
    model = build_model("tiny_mlp", seed=0)
    system = OliveSystem(
        model, clients,
        OliveConfig(sample_rate=0.6, noise_multiplier=1.12,
                    aggregator="linear", training=TRAIN),
        seed=0,
    )
    logs = system.run(3, traced=True)
    test_data = server_test_data_by_label(gen, 30, seed=9)
    true_labels = {c.client_id: c.label_set for c in clients}
    return system, model, logs, test_data, true_labels


class TestLeakageExtraction:
    def test_observe_round_matches_ground_truth(self, traced_linear_run):
        system, _, logs, _, _ = traced_linear_run
        obs = observe_round(logs[0])
        for cid, observed in obs.observed.items():
            truth = frozenset(logs[0].updates[cid].indices.tolist())
            assert observed == truth

    def test_cacheline_observation_coarsens(self, traced_linear_run):
        system, _, logs, _, _ = traced_linear_run
        word = observe_round(logs[0], granularity="word")
        line = observe_round(logs[0], granularity="cacheline")
        for cid in word.observed:
            expected = coarsen_indices(word.observed[cid], "cacheline")
            assert line.observed[cid] == expected
            assert max(line.observed[cid]) <= max(word.observed[cid]) // 16 + 1

    def test_untraced_round_rejected(self):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 4, 10, 1, seed=0)
        system = OliveSystem(
            build_model("tiny_mlp", seed=0), clients,
            OliveConfig(sample_rate=1.0, aggregator="linear", training=TRAIN),
        )
        log = system.run_round(traced=False)
        with pytest.raises(ValueError):
            observe_round(log)

    def test_observe_rounds_covers_all(self, traced_linear_run):
        _, _, logs, _, _ = traced_linear_run
        obs = observe_rounds(logs)
        assert [o.round_index for o in obs] == [0, 1, 2]

    def test_feature_dim(self):
        assert feature_dim(160, "word") == 160
        assert feature_dim(160, "cacheline") == 10
        assert feature_dim(161, "cacheline") == 11


class TestMetrics:
    def test_all_accuracy_exact_match_only(self):
        inferred = {0: np.asarray([1, 2]), 1: np.asarray([3])}
        truth = {0: frozenset({1, 2}), 1: frozenset({3, 4})}
        assert all_accuracy(inferred, truth) == 0.5

    def test_top1_accuracy(self):
        scores = {0: np.asarray([0.1, 0.9]), 1: np.asarray([0.9, 0.1])}
        truth = {0: frozenset({1}), 1: frozenset({1})}
        assert top1_accuracy(scores, truth) == 0.5

    def test_empty_metrics(self):
        assert all_accuracy({}, {}) == 0.0
        assert top1_accuracy({}, {}) == 0.0

    def test_chance_top1(self):
        truth = {0: frozenset({1}), 1: frozenset({1, 2, 3, 4})}
        assert chance_top1(truth, 10) == pytest.approx(0.25)
        assert chance_top1({}, 10) == 0.0


class TestAttackOnLinear:
    """The attack must work against the vulnerable configuration."""

    def test_jac_beats_chance_decisively(self, traced_linear_run):
        system, model, logs, test_data, true_labels = traced_linear_run
        res = run_attack(
            logs, model, test_data, TRAIN, true_labels, system.d,
            AttackConfig(method="jac", known_label_count=2),
        )
        chance = chance_top1(true_labels, 6)
        assert res.top1_accuracy > min(0.9, chance * 2)
        assert res.all_accuracy > 0.5

    def test_nn_beats_chance(self, traced_linear_run):
        system, model, logs, test_data, true_labels = traced_linear_run
        res = run_attack(
            logs, model, test_data, TRAIN, true_labels, system.d,
            AttackConfig(method="nn", known_label_count=2, nn_epochs=25,
                         nn_hidden=64),
        )
        assert res.top1_accuracy > 0.7

    def test_nn_single_beats_chance(self, traced_linear_run):
        system, model, logs, test_data, true_labels = traced_linear_run
        res = run_attack(
            logs, model, test_data, TRAIN, true_labels, system.d,
            AttackConfig(method="nn_single", known_label_count=2,
                         nn_epochs=25, nn_hidden=64),
        )
        assert res.top1_accuracy > 0.6

    def test_unknown_label_count_kmeans_decision(self, traced_linear_run):
        system, model, logs, test_data, true_labels = traced_linear_run
        res = run_attack(
            logs, model, test_data, TRAIN, true_labels, system.d,
            AttackConfig(method="jac", known_label_count=None),
        )
        assert res.top1_accuracy > 0.7

    def test_cacheline_attack_still_works(self, traced_linear_run):
        # Figure 8: 64-byte observation barely degrades the attack on
        # this small model (16 weights/line out of 378 parameters).
        system, model, logs, test_data, true_labels = traced_linear_run
        res = run_attack(
            logs, model, test_data, TRAIN, true_labels, system.d,
            AttackConfig(method="jac", granularity="cacheline",
                         known_label_count=2),
        )
        assert res.top1_accuracy > 0.5

    def test_result_structure(self, traced_linear_run):
        system, model, logs, test_data, true_labels = traced_linear_run
        res = run_attack(
            logs, model, test_data, TRAIN, true_labels, system.d,
            AttackConfig(method="jac", known_label_count=2),
        )
        for cid, inferred in res.inferred.items():
            assert len(inferred) == len(true_labels[cid])
            assert res.scores[cid].shape == (6,)

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            AttackConfig(method="quantum")


class TestAttackOnObliviousDefense:
    """Sections 5.1-5.2: the defense reduces the attack to chance."""

    @pytest.fixture(scope="class")
    def traced_advanced_run(self):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 20, 40, 2, seed=0)
        model = build_model("tiny_mlp", seed=0)
        system = OliveSystem(
            model, clients,
            OliveConfig(sample_rate=0.6, noise_multiplier=1.12,
                        aggregator="advanced", training=TRAIN),
            seed=0,
        )
        logs = system.run(2, traced=True)
        test_data = server_test_data_by_label(gen, 30, seed=9)
        true_labels = {c.client_id: c.label_set for c in clients}
        return system, model, logs, test_data, true_labels

    def test_observations_carry_no_signal(self, traced_advanced_run):
        _, _, logs, _, _ = traced_advanced_run
        obs = observe_round(logs[0])
        sets = list(obs.observed.values())
        # Every client's observation is identical (no g_star region
        # accesses exist in Advanced, so all sets are empty).
        assert all(s == sets[0] for s in sets)

    def test_jac_attack_collapses_to_chance(self, traced_advanced_run):
        system, model, logs, test_data, true_labels = traced_advanced_run
        res = run_attack(
            logs, model, test_data, TRAIN, true_labels, system.d,
            AttackConfig(method="jac", known_label_count=2),
        )
        chance = chance_top1(true_labels, 6)
        assert res.top1_accuracy <= chance + 0.25
        assert res.all_accuracy <= 0.2
