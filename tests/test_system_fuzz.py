"""Property-based fuzzing of the whole OLIVE system.

Random (valid) configurations must preserve the system invariants:
finite weights, monotone privacy ledger, aggregator-independent
results, and sparsity contracts.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.olive import OliveConfig, OliveSystem
from repro.fl.client import TrainingConfig
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model


@st.composite
def olive_config(draw):
    training = TrainingConfig(
        local_epochs=draw(st.integers(1, 2)),
        local_lr=draw(st.floats(0.01, 0.5)),
        batch_size=draw(st.sampled_from([8, 16])),
        sparse_ratio=draw(st.floats(0.05, 0.5)),
        clip=draw(st.floats(0.1, 5.0)),
        sparsifier=draw(st.sampled_from(["top_k", "random_k"])),
        algorithm=draw(st.sampled_from(["fedavg", "fedsgd"])),
    )
    return OliveConfig(
        sample_rate=draw(st.floats(0.3, 1.0)),
        noise_multiplier=draw(st.floats(0.0, 2.0)),
        server_lr=draw(st.floats(0.1, 1.5)),
        aggregator=draw(st.sampled_from(["linear", "advanced"])),
        quantize_bits=draw(st.sampled_from([None, 8, 12])),
        adaptive_clipping=draw(st.booleans()),
        training=training,
    )


@pytest.fixture(scope="module")
def fleet():
    gen = SyntheticClassData(SPECS["tiny"], seed=0)
    return partition_clients(gen, 8, 16, 2, seed=0)


class TestSystemInvariants:
    @given(config=olive_config(), seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_round_invariants(self, config, seed):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 8, 16, 2, seed=0)
        system = OliveSystem(build_model("tiny_mlp", seed=0), clients,
                             config, seed=seed)
        log = system.run_round()
        # Weights stay finite.
        assert np.all(np.isfinite(log.weights_after))
        # Participants were securely sampled and produced updates.
        assert set(log.updates) == set(log.participants)
        # Sparsity contract: every update's indices lie in range.
        for u in log.updates.values():
            assert u.k >= 1
            assert 0 <= u.indices.min() <= u.indices.max() < system.d
        # Privacy ledger advanced (epsilon positive, or inf when the
        # sigma provides no guarantee).
        assert log.epsilon > 0

    @given(seed=st.integers(0, 50))
    @settings(max_examples=8, deadline=None)
    def test_aggregator_equivalence_under_fuzz(self, seed):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 8, 16, 2, seed=0)
        results = []
        for aggregator in ("linear", "advanced"):
            config = OliveConfig(
                sample_rate=0.7, noise_multiplier=0.8, aggregator=aggregator,
                training=TrainingConfig(sparse_ratio=0.2),
            )
            system = OliveSystem(build_model("tiny_mlp", seed=0), clients,
                                 config, seed=seed)
            results.append(system.run_round().weights_after)
        assert np.allclose(results[0], results[1])

    @given(config=olive_config())
    @settings(max_examples=8, deadline=None)
    def test_epsilon_monotone_over_rounds(self, config):
        if config.noise_multiplier ** 2 == 0.0:
            return  # no guarantee to track (epsilon is inf throughout)
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 8, 16, 2, seed=0)
        system = OliveSystem(build_model("tiny_mlp", seed=0), clients,
                             config, seed=0)
        logs = system.run(3)
        eps = [log.epsilon for log in logs]
        assert eps[0] <= eps[1] <= eps[2]
