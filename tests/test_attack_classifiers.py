"""Tests for the attack scoring methods (repro.attack.classifiers)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.attack.classifiers import (
    JacAttack,
    NnAttack,
    NnSingleAttack,
    decide_labels,
    jaccard,
    kmeans_1d_top_cluster,
    multi_hot,
)


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard(frozenset({1, 2}), frozenset({1, 2})) == 1.0

    def test_disjoint_sets(self):
        assert jaccard(frozenset({1}), frozenset({2})) == 0.0

    def test_partial_overlap(self):
        assert jaccard(frozenset({1, 2}), frozenset({2, 3})) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert jaccard(frozenset(), frozenset()) == 0.0

    def test_one_empty(self):
        assert jaccard(frozenset({1}), frozenset()) == 0.0

    @given(st.frozensets(st.integers(0, 20)), st.frozensets(st.integers(0, 20)))
    def test_symmetric_and_bounded(self, a, b):
        assert jaccard(a, b) == jaccard(b, a)
        assert 0.0 <= jaccard(a, b) <= 1.0


class TestMultiHot:
    def test_sets_positions(self):
        x = multi_hot(frozenset({0, 3}), 5)
        assert x.tolist() == [1.0, 0.0, 0.0, 1.0, 0.0]

    def test_empty_set(self):
        assert multi_hot(frozenset(), 4).tolist() == [0.0] * 4

    def test_out_of_range_ignored(self):
        x = multi_hot(frozenset({2, 99}), 4)
        assert x.tolist() == [0.0, 0.0, 1.0, 0.0]


class TestKMeans:
    def test_clear_separation(self):
        scores = np.asarray([0.1, 0.9, 0.12, 0.95, 0.11])
        top = kmeans_1d_top_cluster(scores)
        assert set(top.tolist()) == {1, 3}

    def test_constant_scores_return_single_argmax(self):
        top = kmeans_1d_top_cluster(np.asarray([0.5, 0.5, 0.5]))
        assert len(top) == 1

    def test_empty_scores(self):
        assert len(kmeans_1d_top_cluster(np.empty(0))) == 0

    def test_single_score(self):
        assert kmeans_1d_top_cluster(np.asarray([0.7])).tolist() == [0]

    @given(st.lists(st.floats(0, 1), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_always_returns_valid_indices(self, scores):
        top = kmeans_1d_top_cluster(np.asarray(scores))
        assert len(top) >= 1
        assert all(0 <= i < len(scores) for i in top)

    def test_argmax_always_in_top_cluster(self):
        scores = np.asarray([0.2, 0.8, 0.3, 0.81, 0.4])
        top = kmeans_1d_top_cluster(scores)
        assert int(np.argmax(scores)) in top.tolist()


class TestDecideLabels:
    def test_known_count_takes_top_scores(self):
        scores = np.asarray([0.1, 0.9, 0.3, 0.8])
        assert decide_labels(scores, known_count=2).tolist() == [1, 3]

    def test_known_count_out_of_range(self):
        with pytest.raises(ValueError):
            decide_labels(np.asarray([0.5]), known_count=2)
        with pytest.raises(ValueError):
            decide_labels(np.asarray([0.5]), known_count=0)

    def test_unknown_count_uses_kmeans(self):
        scores = np.asarray([0.05, 0.9, 0.04, 0.95])
        assert decide_labels(scores).tolist() == [1, 3]

    def test_result_sorted(self):
        scores = np.asarray([0.9, 0.1, 0.8])
        out = decide_labels(scores, known_count=2)
        assert out.tolist() == sorted(out.tolist())


def _synthetic_teacher(n_labels=4, dim=40, rounds=(0, 1), samples=3):
    """Each label 'owns' a block of indices, with mild noise."""
    rng = np.random.default_rng(0)
    teacher = {}
    for rnd in rounds:
        per_label = {}
        for label in range(n_labels):
            base = set(range(label * 10, label * 10 + 6))
            samples_list = []
            for _ in range(samples):
                jitter = set(rng.choice(dim, size=2).tolist())
                samples_list.append(frozenset(base | jitter))
            per_label[label] = samples_list
        teacher[rnd] = per_label
    return teacher


class TestJacAttackScoring:
    def test_correct_label_scores_highest(self):
        teacher = _synthetic_teacher()
        observed = {0: frozenset(range(10, 16)), 1: frozenset(range(10, 16))}
        scores = JacAttack().score(observed, teacher, 4)
        assert int(np.argmax(scores)) == 1

    def test_empty_observation_gives_flat_low_scores(self):
        teacher = _synthetic_teacher()
        scores = JacAttack().score({0: frozenset()}, teacher, 4)
        assert scores.max() == 0.0


class TestNnAttackScoring:
    def test_learns_block_structure(self):
        teacher = _synthetic_teacher(samples=6)
        attack = NnAttack(hidden=32, epochs=60, lr=0.5, seed=0)
        models = attack.fit_round_models(teacher, feature_dim=40, n_labels=4)
        observed = {0: frozenset(range(20, 26)), 1: frozenset(range(20, 26))}
        scores = attack.score(observed, models, 40, 4)
        assert int(np.argmax(scores)) == 2

    def test_no_participated_rounds_gives_zero_scores(self):
        teacher = _synthetic_teacher()
        attack = NnAttack(hidden=8, epochs=1, seed=0)
        models = attack.fit_round_models(teacher, 40, 4)
        scores = attack.score({99: frozenset({1})}, {0: models[0]}, 40, 4)
        assert np.allclose(scores, 0.0)


class TestNnSingleAttackScoring:
    def test_learns_block_structure(self):
        teacher = _synthetic_teacher(samples=6)
        attack = NnSingleAttack(hidden=32, epochs=60, lr=0.5, seed=0)
        model, rounds = attack.fit(teacher, feature_dim=40, n_labels=4)
        assert rounds == [0, 1]
        observed = {0: frozenset(range(6)), 1: frozenset(range(6))}
        scores = attack.score(observed, model, rounds, 40)
        assert int(np.argmax(scores)) == 0

    def test_missing_round_zeroized(self):
        teacher = _synthetic_teacher(samples=4)
        attack = NnSingleAttack(hidden=16, epochs=30, lr=0.5, seed=0)
        model, rounds = attack.fit(teacher, 40, 4)
        # Client only participated in round 0.
        scores = attack.score({0: frozenset(range(30, 36))}, model, rounds, 40)
        assert scores.shape == (4,)
        assert int(np.argmax(scores)) == 3
