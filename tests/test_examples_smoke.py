"""Smoke tests keeping the runnable examples runnable.

Research-repo examples rot silently when the library's API moves;
these tests import each example as a module and run the fast ones end
to end (the two slow demos are exercised import-only plus a scaled
inline variant of their core flow).
"""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesImportable:
    @pytest.mark.parametrize(
        "name",
        ["quickstart", "attack_demo", "medical_fl",
         "aggregator_comparison", "secagg_generality", "serve_roundtrip"],
    )
    def test_imports_cleanly(self, name):
        module = _load(name)
        assert callable(module.main)


class TestFastExamplesRun:
    def test_aggregator_comparison_runs(self, capsys):
        _load("aggregator_comparison").main()
        out = capsys.readouterr().out
        assert "Aggregator comparison" in out
        assert "True" in out  # correctness columns

    def test_secagg_generality_runs(self, capsys):
        _load("secagg_generality").main()
        out = capsys.readouterr().out
        assert "index sets observed in plaintext" in out
        assert "bits" in out

    def test_quickstart_runs(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "privacy budget" in out
        assert "data-independent" in out

    def test_serve_roundtrip_runs(self, capsys):
        _load("serve_roundtrip").main()
        out = capsys.readouterr().out
        assert "checkpoint loaded: inferred architecture 'tiny_mlp'" in out
        assert "identical across inputs: True" in out
        assert "data-independent" in out

    def test_module_entry_point_runs(self, capsys):
        from repro.__main__ import main

        main()
        out = capsys.readouterr().out
        assert "oblivious aggregation verified: True" in out
