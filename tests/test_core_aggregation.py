"""Tests for the aggregation algorithms (repro.core.aggregation).

Correctness: every aggregator must compute exactly the Linear
scatter-add result, on arbitrary sparse inputs including duplicate
indices across clients.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregation import (
    AGGREGATORS,
    M0,
    aggregate_advanced,
    aggregate_advanced_traced,
    aggregate_baseline,
    aggregate_baseline_traced,
    aggregate_linear,
    aggregate_linear_traced,
    aggregate_path_oram,
)
from repro.fl.client import LocalUpdate
from repro.sgx.memory import Trace


def make_updates(seed, n_clients=4, d=25, k=5):
    rng = np.random.default_rng(seed)
    updates = []
    for cid in range(n_clients):
        idx = np.sort(rng.choice(d, size=k, replace=False)).astype(np.int64)
        val = rng.normal(size=k)
        updates.append(LocalUpdate(cid, idx, val))
    return updates


@st.composite
def updates_strategy(draw):
    d = draw(st.integers(2, 40))
    n_clients = draw(st.integers(1, 5))
    updates = []
    for cid in range(n_clients):
        k = draw(st.integers(1, d))
        idx = draw(
            st.lists(st.integers(0, d - 1), min_size=k, max_size=k)
        )
        val = draw(
            st.lists(st.floats(-50, 50), min_size=k, max_size=k)
        )
        updates.append(
            LocalUpdate(cid, np.asarray(idx, dtype=np.int64), np.asarray(val))
        )
    return d, updates


class TestAgreement:
    def test_all_fast_aggregators_match_linear(self):
        d = 25
        updates = make_updates(0, d=d)
        ref = aggregate_linear(updates, d)
        assert np.allclose(aggregate_baseline(updates, d), ref)
        assert np.allclose(aggregate_advanced(updates, d), ref)
        assert np.allclose(aggregate_path_oram(updates, d, seed=0), ref)

    def test_all_traced_aggregators_match_linear(self):
        d = 25
        updates = make_updates(1, d=d)
        ref = aggregate_linear(updates, d)
        assert np.allclose(aggregate_linear_traced(updates, d, Trace()), ref)
        assert np.allclose(aggregate_baseline_traced(updates, d, Trace()), ref)
        assert np.allclose(aggregate_advanced_traced(updates, d, Trace()), ref)

    @given(updates_strategy())
    @settings(max_examples=30, deadline=None)
    def test_advanced_matches_linear_property(self, case):
        d, updates = case
        ref = aggregate_linear(updates, d)
        assert np.allclose(aggregate_advanced(updates, d), ref)

    @given(updates_strategy())
    @settings(max_examples=15, deadline=None)
    def test_baseline_matches_linear_property(self, case):
        d, updates = case
        ref = aggregate_linear(updates, d)
        assert np.allclose(aggregate_baseline(updates, d), ref)

    @given(updates_strategy())
    @settings(max_examples=10, deadline=None)
    def test_traced_advanced_matches_fast(self, case):
        d, updates = case
        fast = aggregate_advanced(updates, d)
        traced = aggregate_advanced_traced(updates, d, Trace())
        assert np.allclose(fast, traced)


class TestEdgeCases:
    def test_no_updates_yields_zeros(self):
        for name, spec in AGGREGATORS.items():
            if name == "path_oram":
                continue  # covered below with seed control
            out = spec.run([], 7)
            assert np.allclose(out, 0.0), name
        assert np.allclose(aggregate_path_oram([], 7, seed=0), 0.0)

    def test_single_client_single_weight(self):
        updates = [LocalUpdate(0, np.asarray([3]), np.asarray([2.5]))]
        for name, spec in AGGREGATORS.items():
            assert np.allclose(
                spec.run(updates, 5), [0, 0, 0, 2.5, 0]
            ), name

    def test_duplicate_indices_within_one_client(self):
        updates = [
            LocalUpdate(0, np.asarray([1, 1, 2]), np.asarray([1.0, 2.0, 4.0]))
        ]
        expected = [0.0, 3.0, 4.0]
        assert np.allclose(aggregate_linear(updates, 3), expected)
        assert np.allclose(aggregate_advanced(updates, 3), expected)
        assert np.allclose(
            aggregate_advanced_traced(updates, 3, Trace()), expected
        )

    def test_all_clients_same_index(self):
        updates = [
            LocalUpdate(c, np.asarray([4]), np.asarray([1.0])) for c in range(5)
        ]
        for name, spec in AGGREGATORS.items():
            out = spec.run(updates, 6)
            assert out[4] == pytest.approx(5.0), name

    def test_d_one(self):
        updates = [LocalUpdate(0, np.asarray([0]), np.asarray([1.5]))]
        assert np.allclose(aggregate_advanced(updates, 1), [1.5])
        assert np.allclose(aggregate_advanced_traced(updates, 1, Trace()), [1.5])

    def test_index_out_of_range_rejected(self):
        updates = [LocalUpdate(0, np.asarray([9]), np.asarray([1.0]))]
        for name, spec in AGGREGATORS.items():
            with pytest.raises(ValueError):
                spec.run(updates, 5)

    def test_negative_index_rejected(self):
        updates = [LocalUpdate(0, np.asarray([-1]), np.asarray([1.0]))]
        with pytest.raises(ValueError):
            aggregate_advanced(updates, 5)

    def test_m0_larger_than_any_model(self):
        # The dummy index must sort after every real index.
        assert M0 > 10**9


class TestAggregatorRegistry:
    def test_registry_complete(self):
        assert set(AGGREGATORS) == {"linear", "baseline", "advanced", "path_oram"}

    def test_obliviousness_labels(self):
        assert AGGREGATORS["linear"].oblivious_sparse == "none"
        assert AGGREGATORS["baseline"].oblivious_sparse == "cacheline"
        assert AGGREGATORS["advanced"].oblivious_sparse == "full"
        assert AGGREGATORS["path_oram"].oblivious_sparse == "full"

    def test_run_traced_smoke(self):
        updates = make_updates(2, d=16, k=3)
        for name, spec in AGGREGATORS.items():
            trace = Trace()
            out = spec.run_traced(updates, 16, trace)
            assert np.allclose(out, aggregate_linear(updates, 16)), name
            assert len(trace) > 0, name
