"""Tests for the CI benchmark-regression gate (benchmarks/check_regression.py)."""

import json

from benchmarks.check_regression import compare, main


def write_baseline(tmp_path, benches, tolerance=1.5, grace=0.0):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(
        {"tolerance": tolerance, "grace_seconds": grace, "benches": benches}
    ))
    return path


def write_result(tmp_path, name, payload):
    (tmp_path / f"{name}.json").write_text(json.dumps(payload))


class TestCompare:
    def test_pass_speedup_and_small_regression(self, tmp_path):
        baseline = {"benches": {
            "fast": {"wall_seconds": 2.0}, "slow": {"wall_seconds": 2.0},
        }}
        write_result(tmp_path, "fast", {"wall_seconds": 0.5})
        write_result(tmp_path, "slow", {"wall_seconds": 2.9})
        rows, ok = compare(baseline, tmp_path, tolerance=1.5, grace=0.0)
        assert ok
        assert {r["bench"]: r["status"] for r in rows} == {
            "fast": "ok", "slow": "ok",
        }

    def test_slowdown_past_band_fails(self, tmp_path):
        baseline = {"benches": {"b": {"wall_seconds": 2.0}}}
        write_result(tmp_path, "b", {"wall_seconds": 3.1})
        rows, ok = compare(baseline, tmp_path, tolerance=1.5, grace=0.0)
        assert not ok
        assert rows[0]["status"] == "fail"
        assert "tolerance" in rows[0]["detail"]

    def test_grace_absorbs_tiny_bench_jitter(self, tmp_path):
        # 3x slowdown on a 0.1 s bench is scheduler noise, not a
        # regression; the absolute grace keeps the gate quiet.
        baseline = {"benches": {"tiny": {"wall_seconds": 0.1}}}
        write_result(tmp_path, "tiny", {"wall_seconds": 0.3})
        _, ok = compare(baseline, tmp_path, tolerance=1.5, grace=1.0)
        assert ok
        _, ok = compare(baseline, tmp_path, tolerance=1.5, grace=0.0)
        assert not ok

    def test_missing_result_fails(self, tmp_path):
        baseline = {"benches": {"gone": {"wall_seconds": 1.0}}}
        rows, ok = compare(baseline, tmp_path, tolerance=1.5)
        assert not ok
        assert rows[0]["status"] == "missing"

    def test_missing_wall_seconds_fails(self, tmp_path):
        baseline = {"benches": {"b": {"wall_seconds": 1.0}}}
        write_result(tmp_path, "b", {"cycles": 123})
        rows, ok = compare(baseline, tmp_path, tolerance=1.5)
        assert not ok

    def test_metric_floor_enforced(self, tmp_path):
        baseline = {"benches": {
            "fig": {"wall_seconds": 10.0, "min_replay_speedup": 10.0},
        }}
        write_result(
            tmp_path, "fig", {"wall_seconds": 9.0, "replay_speedup": 12.4}
        )
        rows, ok = compare(baseline, tmp_path, tolerance=1.5)
        assert ok and rows[0]["replay_speedup"] == 12.4
        write_result(
            tmp_path, "fig", {"wall_seconds": 9.0, "replay_speedup": 6.0}
        )
        rows, ok = compare(baseline, tmp_path, tolerance=1.5)
        assert not ok
        assert "below floor" in rows[0]["detail"]

    def test_metric_floor_missing_metric_fails(self, tmp_path):
        baseline = {"benches": {
            "fig": {"wall_seconds": 10.0, "min_replay_speedup": 10.0},
        }}
        write_result(tmp_path, "fig", {"wall_seconds": 9.0})
        _, ok = compare(baseline, tmp_path, tolerance=1.5)
        assert not ok

    def test_metric_ceiling_enforced(self, tmp_path):
        baseline = {"benches": {
            "audit": {"wall_seconds": 5.0, "max_audit_overhead_frac": 0.2},
        }}
        write_result(tmp_path, "audit",
                     {"wall_seconds": 4.0, "audit_overhead_frac": 0.05})
        rows, ok = compare(baseline, tmp_path, tolerance=1.5)
        assert ok and rows[0]["audit_overhead_frac"] == 0.05
        write_result(tmp_path, "audit",
                     {"wall_seconds": 4.0, "audit_overhead_frac": 0.5})
        rows, ok = compare(baseline, tmp_path, tolerance=1.5)
        assert not ok
        assert "above ceiling" in rows[0]["detail"]

    def test_metric_ceiling_missing_metric_fails(self, tmp_path):
        baseline = {"benches": {
            "audit": {"wall_seconds": 5.0, "max_audit_overhead_frac": 0.2},
        }}
        write_result(tmp_path, "audit", {"wall_seconds": 4.0})
        rows, ok = compare(baseline, tmp_path, tolerance=1.5)
        assert not ok
        assert "missing from payload" in rows[0]["detail"]


class TestMain:
    def _run(self, tmp_path, baseline, results):
        baseline_path = write_baseline(tmp_path, baseline)
        for name, payload in results.items():
            write_result(tmp_path, name, payload)
        report = tmp_path / "report.json"
        code = main([
            "--baseline", str(baseline_path),
            "--results", str(tmp_path),
            "--report", str(report),
        ])
        return code, json.loads(report.read_text())

    def test_exit_zero_and_report_on_pass(self, tmp_path):
        code, report = self._run(
            tmp_path,
            {"b": {"wall_seconds": 1.0}},
            {"b": {"wall_seconds": 1.1}},
        )
        assert code == 0
        assert report["ok"] is True
        assert report["benches"][0]["ratio"] == 1.1

    def test_exit_one_and_report_on_regression(self, tmp_path):
        code, report = self._run(
            tmp_path,
            {"b": {"wall_seconds": 1.0}},
            {"b": {"wall_seconds": 9.0}},
        )
        assert code == 1
        assert report["ok"] is False

    def test_tolerance_from_baseline_file(self, tmp_path):
        baseline_path = write_baseline(
            tmp_path, {"b": {"wall_seconds": 1.0}}, tolerance=10.0
        )
        write_result(tmp_path, "b", {"wall_seconds": 9.0})
        report = tmp_path / "report.json"
        code = main([
            "--baseline", str(baseline_path),
            "--results", str(tmp_path),
            "--report", str(report),
        ])
        assert code == 0
        assert json.loads(report.read_text())["tolerance"] == 10.0

    def test_repo_baseline_names_real_benches(self, tmp_path):
        # The committed baseline must reference benches that exist and
        # carry the fig11 speedup floor the acceptance criteria gate.
        from benchmarks.check_regression import RESULTS_DIR

        baseline = json.loads((RESULTS_DIR / "baseline.json").read_text())
        assert "fig11" in baseline["benches"]
        assert baseline["benches"]["fig11"]["min_replay_speedup"] >= 4.0
        assert baseline["tolerance"] == 1.5


class TestObsCeilings:
    """Histogram-ceiling enforcement against archived telemetry."""

    def _hist(self, name, p95):
        return {"type": "hist", "name": name, "count": 10, "sum": 1.0,
                "min": 0.001, "max": p95 * 2, "p50": p95 / 2,
                "p95": p95, "p99": p95 * 1.5, "buckets": {}}

    def _write_telemetry(self, tmp_path, name, hists):
        path = tmp_path / f"{name}_telemetry.json"
        path.write_text(
            "".join(json.dumps(h) + "\n" for h in hists))

    def _baseline(self, ceilings):
        return {"benches": {"b": {"wall_seconds": 1.0, "obs": ceilings}}}

    def test_ceiling_pass(self, tmp_path):
        write_result(tmp_path, "b", {"wall_seconds": 1.0})
        self._write_telemetry(tmp_path, "b",
                              [self._hist("ecall.wall_s", 0.001)])
        rows, ok = compare(self._baseline(
            {"ecall.wall_s": {"max_p95": 0.01}}),
            tmp_path, tolerance=1.5, grace=0.0)
        assert ok and rows[0]["status"] == "ok"

    def test_ceiling_exceeded_fails(self, tmp_path):
        write_result(tmp_path, "b", {"wall_seconds": 1.0})
        self._write_telemetry(tmp_path, "b",
                              [self._hist("ecall.wall_s", 0.5)])
        rows, ok = compare(self._baseline(
            {"ecall.wall_s": {"max_p95": 0.01}}),
            tmp_path, tolerance=1.5, grace=0.0)
        assert not ok
        assert "ecall.wall_s p95" in rows[0]["detail"]
        assert "ceiling" in rows[0]["detail"]

    def test_last_snapshot_wins(self, tmp_path):
        # The final flush's snapshot supersedes mid-run worker ones.
        write_result(tmp_path, "b", {"wall_seconds": 1.0})
        self._write_telemetry(tmp_path, "b",
                              [self._hist("ecall.wall_s", 0.5),
                               self._hist("ecall.wall_s", 0.001)])
        _, ok = compare(self._baseline(
            {"ecall.wall_s": {"max_p95": 0.01}}),
            tmp_path, tolerance=1.5, grace=0.0)
        assert ok

    def test_missing_telemetry_file_fails(self, tmp_path):
        write_result(tmp_path, "b", {"wall_seconds": 1.0})
        rows, ok = compare(self._baseline(
            {"ecall.wall_s": {"max_p95": 0.01}}),
            tmp_path, tolerance=1.5, grace=0.0)
        assert not ok
        assert "BENCH_TELEMETRY" in rows[0]["detail"]

    def test_missing_histogram_fails(self, tmp_path):
        write_result(tmp_path, "b", {"wall_seconds": 1.0})
        self._write_telemetry(tmp_path, "b",
                              [self._hist("other.hist", 0.001)])
        rows, ok = compare(self._baseline(
            {"ecall.wall_s": {"max_p95": 0.01}}),
            tmp_path, tolerance=1.5, grace=0.0)
        assert not ok
        assert "missing" in rows[0]["detail"]

    def test_torn_final_line_tolerated(self, tmp_path):
        write_result(tmp_path, "b", {"wall_seconds": 1.0})
        path = tmp_path / "b_telemetry.json"
        path.write_text(
            json.dumps(self._hist("ecall.wall_s", 0.001)) + "\n"
            + '{"type": "hist", "tru')
        _, ok = compare(self._baseline(
            {"ecall.wall_s": {"max_p95": 0.01}}),
            tmp_path, tolerance=1.5, grace=0.0)
        assert ok
