"""Trace-equivalence regression tests for the columnar trace engine.

The batched oblivious kernels (stage-batched bitonic sort, block-form
aggregator scans, batch trace appends) must record **byte-for-byte**
the access sequence of the original element-at-a-time formulation --
batching may change how the trace is stored, never what the adversary
sees.  This module keeps slow reference recorders (transcribed from the
seed implementations, one scalar ``Trace.record`` per access) and pins
``Trace.signature()`` of every batched kernel against them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.aggregation import (
    G_REGION,
    G_STAR_REGION,
    M0,
    WEIGHTS_PER_CACHELINE,
    aggregate_advanced_traced,
    aggregate_baseline_traced,
    aggregate_linear_traced,
    next_power_of_two,
)
from repro.fl.client import LocalUpdate
from repro.oblivious.primitives import o_access, o_mov, o_write
from repro.oblivious.shuffle import oblivious_shuffle_traced
from repro.oblivious.sort import (
    apply_network_traced,
    bitonic_network,
    bitonic_sort_traced,
    bitonic_sort_traced_columns,
)
from repro.sgx.memory import Trace, TracedArray


# ----------------------------------------------------------------------
# Reference recorders (seed element-at-a-time implementations)
# ----------------------------------------------------------------------


def _concat(updates):
    idx = np.concatenate([u.indices for u in updates]).astype(np.int64)
    val = np.concatenate([u.values for u in updates]).astype(np.float64)
    return idx, val


def ref_linear_traced(updates, d, trace):
    idx, val = _concat(updates)
    g = TracedArray(G_REGION, list(zip(idx.tolist(), val.tolist())),
                    trace=trace, itemsize=8)
    g_star = TracedArray.zeros(G_STAR_REGION, d, trace=trace, itemsize=4)
    for pos in range(len(g)):
        index, value = g.read(pos)
        current = g_star.read(index)
        g_star.write(index, current + value)
    return np.asarray(g_star.snapshot(), dtype=np.float64)


def ref_baseline_traced(updates, d, trace, cacheline_weights=WEIGHTS_PER_CACHELINE):
    idx, val = _concat(updates)
    g = TracedArray(G_REGION, list(zip(idx.tolist(), val.tolist())),
                    trace=trace, itemsize=8)
    g_star = TracedArray.zeros(G_STAR_REGION, d, trace=trace, itemsize=4)
    n_lines = (d + cacheline_weights - 1) // cacheline_weights
    for pos in range(len(g)):
        index, value = g.read(pos)
        offset = index % cacheline_weights
        for line in range(n_lines):
            target = min(line * cacheline_weights + offset, d - 1)
            current = g_star.read(target)
            flag = target == index
            g_star.write(target, o_mov(flag, current + value, current))
    return np.asarray(g_star.snapshot(), dtype=np.float64)


def ref_bitonic_sort_traced(array, key=lambda w: w):
    """Comparator-at-a-time bitonic sort with scalar trace records."""
    apply_network_traced(array, bitonic_network(len(array)), key=key)


def ref_advanced_traced(updates, d, trace):
    idx, val = _concat(updates)
    base = len(idx) + d
    m = next_power_of_two(base)
    g = TracedArray.zeros(G_REGION, m, trace=trace, itemsize=8)
    for pos in range(len(idx)):
        g.write(pos, (int(idx[pos]), float(val[pos])))
    for j in range(d):
        g.write(len(idx) + j, (j, 0.0))
    for pos in range(base, m):
        g.write(pos, (M0, 0.0))
    ref_bitonic_sort_traced(g, key=lambda w: w[0])
    carry_idx, carry_val = g.read(0)
    for pos in range(1, m):
        nxt_idx, nxt_val = g.read(pos)
        flag = nxt_idx == carry_idx
        prior = o_mov(flag, (M0, 0.0), (carry_idx, carry_val))
        g.write(pos - 1, prior)
        carry_val = o_mov(flag, carry_val + nxt_val, nxt_val)
        carry_idx = nxt_idx
    g.write(m - 1, (carry_idx, carry_val))
    ref_bitonic_sort_traced(g, key=lambda w: w[0])
    out = np.empty(d)
    for j in range(d):
        index, value = g.read(j)
        assert index == j
        out[j] = value
    return out


def make_updates(n, k, d, seed=0):
    rng = np.random.default_rng(seed)
    updates = []
    for c in range(n):
        idx = np.sort(rng.choice(d, size=k, replace=False)).astype(np.int64)
        updates.append(LocalUpdate(client_id=c, indices=idx,
                                   values=rng.standard_normal(k)))
    return updates


# ----------------------------------------------------------------------
# Aggregator equivalence
# ----------------------------------------------------------------------

CASES = [(1, 1, 3), (2, 3, 10), (4, 5, 33), (5, 8, 64)]


@pytest.mark.parametrize("n,k,d", CASES)
def test_linear_trace_matches_reference(n, k, d):
    updates = make_updates(n, k, d)
    new_trace, ref_trace = Trace(), Trace()
    out_new = aggregate_linear_traced(updates, d, new_trace)
    out_ref = ref_linear_traced(updates, d, ref_trace)
    assert new_trace.signature() == ref_trace.signature()
    assert np.allclose(out_new, out_ref)


@pytest.mark.parametrize("n,k,d", CASES)
def test_baseline_trace_matches_reference(n, k, d):
    updates = make_updates(n, k, d)
    new_trace, ref_trace = Trace(), Trace()
    out_new = aggregate_baseline_traced(updates, d, new_trace)
    out_ref = ref_baseline_traced(updates, d, ref_trace)
    assert new_trace.signature() == ref_trace.signature()
    assert np.allclose(out_new, out_ref)


def test_baseline_trace_clamped_final_line():
    # d not a multiple of c: the clamped final line can revisit d-1,
    # including for index d-1 itself (the multi-hit edge case).
    d = 19
    updates = [LocalUpdate(client_id=0,
                           indices=np.array([0, 3, d - 1], dtype=np.int64),
                           values=np.array([1.0, 2.0, 3.0]))]
    new_trace, ref_trace = Trace(), Trace()
    out_new = aggregate_baseline_traced(updates, d, new_trace)
    out_ref = ref_baseline_traced(updates, d, ref_trace)
    assert new_trace.signature() == ref_trace.signature()
    assert np.allclose(out_new, out_ref)


@pytest.mark.parametrize("n,k,d", CASES)
def test_advanced_trace_matches_reference(n, k, d):
    updates = make_updates(n, k, d)
    new_trace, ref_trace = Trace(), Trace()
    out_new = aggregate_advanced_traced(updates, d, new_trace)
    out_ref = ref_advanced_traced(updates, d, ref_trace)
    assert new_trace.signature() == ref_trace.signature()
    assert np.allclose(out_new, out_ref)


# ----------------------------------------------------------------------
# Oblivious-primitive / kernel equivalence
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
def test_bitonic_sort_traced_matches_comparator_loop(n):
    rng = np.random.default_rng(n)
    values = rng.integers(0, 50, size=n).tolist()
    t_new, t_ref = Trace(), Trace()
    a_new = TracedArray("s", list(values), trace=t_new)
    a_ref = TracedArray("s", list(values), trace=t_ref)
    bitonic_sort_traced(a_new)
    ref_bitonic_sort_traced(a_ref)
    assert t_new.signature() == t_ref.signature()
    assert a_new.snapshot() == a_ref.snapshot()


@pytest.mark.parametrize("n", [2, 8, 32])
def test_bitonic_sort_columns_matches_comparator_loop(n):
    rng = np.random.default_rng(n)
    keys = rng.integers(0, 50, size=n).astype(np.int64)
    payload = rng.standard_normal(n)
    t_new, t_ref = Trace(), Trace()
    a_ref = TracedArray(
        "s", list(zip(keys.tolist(), payload.tolist())), trace=t_ref
    )
    k2, p2 = keys.copy(), payload.copy()
    bitonic_sort_traced_columns(t_new, "s", k2, p2)
    ref_bitonic_sort_traced(a_ref, key=lambda w: w[0])
    assert t_new.signature() == t_ref.signature()
    ref_keys = [w[0] for w in a_ref.snapshot()]
    assert k2.tolist() == ref_keys


def test_o_access_trace_is_one_pass():
    n = 7
    trace = Trace()
    arr = TracedArray("a", list(range(100, 100 + n)), trace=trace)
    for secret in range(n):
        assert o_access(arr, secret) == 100 + secret
    sig = trace.signature()
    assert len(sig) == n * n  # exactly one read per element per access
    one_pass = tuple(("a", i, "read") for i in range(n))
    for s in range(n):
        assert sig[s * n : (s + 1) * n] == one_pass


def test_o_write_trace_is_one_pass():
    n = 5
    trace = Trace()
    arr = TracedArray("a", [0] * n, trace=trace)
    o_write(arr, 3, 42)
    expected = []
    for i in range(n):
        expected.extend([("a", i, "read"), ("a", i, "write")])
    assert trace.signature() == tuple(expected)
    assert arr.snapshot() == [0, 0, 0, 42, 0]


def test_shuffle_trace_matches_stagewise_recording():
    # The shuffle composes tag-assignment with the (now stage-batched)
    # bitonic sort; its trace must still equal a comparator-at-a-time
    # recording of the same network plus the tag read/write prologue.
    import random

    values = list(range(8))
    t1 = Trace()
    a1 = TracedArray("h", list(values), trace=t1)
    oblivious_shuffle_traced(a1, random.Random(123))
    t2 = Trace()
    a2 = TracedArray("h", list(values), trace=t2)
    oblivious_shuffle_traced(a2, random.Random(456))
    # Obliviousness: same length input -> identical trace regardless of
    # the random tags (Definition 2.2), and the batched sort preserves it.
    assert t1.signature() == t2.signature()


# ----------------------------------------------------------------------
# Batch-append APIs vs scalar record
# ----------------------------------------------------------------------


def test_record_block_equals_scalar_loop():
    t_block, t_loop = Trace(), Trace()
    t_block.record_block("r", 3, 9, "write")
    for o in range(3, 9):
        t_loop.record("r", o, "write")
    assert t_block.signature() == t_loop.signature()


def test_record_batch_equals_scalar_loop():
    offs = [5, 1, 4, 1, 3]
    ops = ["read", "write", "read", "read", "write"]
    t_batch, t_loop = Trace(), Trace()
    t_batch.record_batch("r", np.asarray(offs), np.asarray([0, 1, 0, 0, 1],
                                                           dtype=np.uint8))
    for o, op in zip(offs, ops):
        t_loop.record("r", o, op)
    assert t_batch.signature() == t_loop.signature()


def test_record_columns_equals_scalar_loop():
    t_cols, t_loop = Trace(), Trace()
    a = t_cols.region_id("a")
    b = t_cols.region_id("b")
    t_cols.record_columns(
        np.array([a, b, a, b], dtype=np.uint16),
        np.array([0, 7, 2, 7], dtype=np.int64),
        np.array([0, 0, 1, 1], dtype=np.uint8),
    )
    for region, off, op in [("a", 0, "read"), ("b", 7, "read"),
                            ("a", 2, "write"), ("b", 7, "write")]:
        t_loop.record(region, off, op)
    assert t_cols.signature() == t_loop.signature()


def test_traced_array_block_apis_equal_scalar_loops():
    t_block, t_loop = Trace(), Trace()
    a_block = TracedArray("x", list(range(10)), trace=t_block)
    a_loop = TracedArray("x", list(range(10)), trace=t_loop)

    assert a_block.read_block(2, 6) == [a_loop.read(o) for o in range(2, 6)]
    a_block.write_block(1, 4, [9, 9, 9])
    for o in range(1, 4):
        a_loop.write(o, 9)
    assert a_block.read_batch([5, 0, 5]) == [a_loop.read(o) for o in (5, 0, 5)]
    a_block.write_batch([7, 2], [1, 2])
    for o, v in [(7, 1), (2, 2)]:
        a_loop.write(o, v)

    assert t_block.signature() == t_loop.signature()
    assert a_block.snapshot() == a_loop.snapshot()


def test_signature_digest_tracks_signature():
    t1, t2, t3 = Trace(), Trace(), Trace()
    for t in (t1, t2):
        t.record("a", 1, "read")
        t.record("b", 2, "write")
    # Same sequence, different interning order: t3 interns b first but
    # records the same accesses.
    t3.region_id("b")
    t3.record("a", 1, "read")
    t3.record("b", 2, "write")
    assert t1.signature_digest() == t2.signature_digest()
    assert t1.signature_digest() == t3.signature_digest()
    t2.record("a", 3, "read")
    assert t1.signature_digest() != t2.signature_digest()
