"""Tests for Path ORAM (repro.oram.path_oram)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.oram.path_oram import PathORAM, StashOverflow
from repro.sgx.memory import Trace


class TestBasicOperations:
    def test_unwritten_blocks_read_zero(self):
        oram = PathORAM(8, seed=0)
        assert oram.read(3) == 0.0

    def test_write_then_read(self):
        oram = PathORAM(8, seed=0)
        oram.write(2, 42.0)
        assert oram.read(2) == 42.0

    def test_overwrite(self):
        oram = PathORAM(8, seed=0)
        oram.write(2, 1.0)
        oram.write(2, 2.0)
        assert oram.read(2) == 2.0

    def test_independent_blocks(self):
        oram = PathORAM(8, seed=0)
        oram.write(0, 1.0)
        oram.write(7, 7.0)
        assert oram.read(0) == 1.0
        assert oram.read(7) == 7.0

    def test_out_of_range_rejected(self):
        oram = PathORAM(4, seed=0)
        with pytest.raises(IndexError):
            oram.read(4)
        with pytest.raises(IndexError):
            oram.write(-1, 0.0)

    def test_invalid_op_rejected(self):
        oram = PathORAM(4, seed=0)
        with pytest.raises(ValueError):
            oram.access("delete", 0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            PathORAM(0)

    def test_capacity_one(self):
        oram = PathORAM(1, seed=0)
        oram.write(0, 5.0)
        assert oram.read(0) == 5.0


class TestStatefulConsistency:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["read", "write"]),
                st.integers(0, 15),
                st.floats(-100, 100),
            ),
            max_size=120,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_reference_dict(self, ops):
        oram = PathORAM(16, seed=1)
        reference: dict[int, float] = {}
        for op, block, value in ops:
            if op == "write":
                oram.write(block, value)
                reference[block] = value
            else:
                assert oram.read(block) == reference.get(block, 0.0)

    def test_heavy_sequential_workload(self):
        oram = PathORAM(64, stash_limit=40, seed=2)
        for i in range(64):
            oram.write(i, float(i))
        for i in range(64):
            assert oram.read(i) == float(i)

    def test_repeated_hammering_one_block(self):
        oram = PathORAM(32, seed=3)
        for i in range(200):
            oram.write(5, float(i))
            assert oram.read(5) == float(i)

    def test_accumulation_pattern(self):
        # The aggregation access pattern: read-modify-write.
        oram = PathORAM(16, seed=4)
        rng = np.random.default_rng(0)
        expected = np.zeros(16)
        for _ in range(100):
            block = int(rng.integers(16))
            delta = float(rng.normal())
            current = oram.read(block)
            oram.write(block, current + delta)
            expected[block] += delta
        for i in range(16):
            assert oram.read(i) == pytest.approx(expected[i])


class TestStash:
    def test_stash_stays_bounded_under_load(self):
        oram = PathORAM(128, stash_limit=20, seed=5)
        rng = np.random.default_rng(1)
        for _ in range(600):
            oram.write(int(rng.integers(128)), 1.0)
        assert oram.stash_size <= 20

    def test_tiny_stash_overflows(self):
        oram = PathORAM(64, bucket_size=1, stash_limit=0, seed=6)
        with pytest.raises(StashOverflow):
            for i in range(64):
                oram.write(i, 1.0)


class TestObliviousStructure:
    def test_access_touches_exactly_one_path_twice(self):
        trace = Trace()
        oram = PathORAM(16, trace=trace, seed=7)
        oram.read(3)
        offsets = trace.offsets("oram_tree")
        # Fetch: each path bucket read + cleared; write-back: written again.
        assert len(offsets) == 3 * (oram.height + 1)
        # Path property: consecutive read buckets are parent/child.
        reads = trace.offsets("oram_tree", op="read")
        for parent, child in zip(reads, reads[1:]):
            assert (child - 1) // 2 == parent

    def test_bucket_count_independent_of_block(self):
        lengths = set()
        for block in (0, 7, 15):
            trace = Trace()
            oram = PathORAM(16, trace=trace, seed=8)
            oram.read(block)
            lengths.add(len(trace.offsets("oram_tree")))
        assert len(lengths) == 1

    def test_positions_refresh_on_access(self):
        oram = PathORAM(16, seed=9)
        seen = set()
        for _ in range(30):
            oram.read(3)
            seen.add(oram._position[3])
        assert len(seen) > 1

    def test_access_counter(self):
        oram = PathORAM(8, seed=10)
        oram.read(0)
        oram.write(1, 2.0)
        assert oram.accesses == 2
