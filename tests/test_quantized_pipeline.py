"""Tests for the quantized upload pipeline (wire codec -> enclave -> Olive)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.olive import OliveConfig, OliveSystem
from repro.fl.client import (
    LocalUpdate,
    TrainingConfig,
    encrypt_quantized_update,
)
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model
from repro.sgx import crypto
from repro.sgx.enclave import Enclave, provision_enclave_with_clients


class TestQuantizedCodec:
    def test_roundtrip(self):
        raw = crypto.encode_quantized_gradient([1, 5, 9], [-3, 0, 127], 0.25)
        idx, levels, scale = crypto.decode_quantized_gradient(raw)
        assert idx == [1, 5, 9]
        assert levels == [-3, 0, 127]
        assert scale == 0.25

    def test_empty(self):
        raw = crypto.encode_quantized_gradient([], [], 1.0)
        assert crypto.decode_quantized_gradient(raw) == ([], [], 1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            crypto.encode_quantized_gradient([1], [], 1.0)

    def test_level_range_enforced(self):
        with pytest.raises(ValueError):
            crypto.encode_quantized_gradient([1], [70_000], 1.0)

    def test_truncated_rejected(self):
        raw = crypto.encode_quantized_gradient([1], [2], 1.0)
        with pytest.raises(ValueError):
            crypto.decode_quantized_gradient(raw[:-1])
        with pytest.raises(ValueError):
            crypto.decode_quantized_gradient(b"\x00" * 4)

    @given(st.lists(st.tuples(st.integers(0, 2**32 - 1),
                              st.integers(-32768, 32767)), max_size=40),
           st.floats(1e-6, 1e6))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, records, scale):
        idx = [r[0] for r in records]
        lev = [r[1] for r in records]
        out = crypto.decode_quantized_gradient(
            crypto.encode_quantized_gradient(idx, lev, scale)
        )
        assert out[0] == idx and out[1] == lev
        assert out[2] == pytest.approx(scale, rel=1e-12)

    def test_smaller_than_float_wire(self):
        idx = list(range(100))
        float_wire = crypto.encode_sparse_gradient(idx, [0.5] * 100)
        quant_wire = crypto.encode_quantized_gradient(idx, [1] * 100, 0.5)
        assert len(quant_wire) < len(float_wire)


class TestEnclaveQuantizedLoad:
    def _provisioned(self):
        enclave = Enclave(seed=0)
        keys = provision_enclave_with_clients(enclave, [0, 1])
        enclave.sample_clients([0, 1], 1.0)
        return enclave, keys

    def test_roundtrip_through_enclave(self):
        enclave, keys = self._provisioned()
        update = LocalUpdate(0, np.asarray([2, 7], dtype=np.int64),
                             np.asarray([0.5, -0.25]))
        ct = encrypt_quantized_update(update, keys[0], bits=10,
                                      rng=np.random.default_rng(0))
        idx, val = enclave.load_quantized_gradient(0, ct)
        assert idx == [2, 7]
        # Dequantization error bounded by one level (scale).
        assert abs(val[0] - 0.5) < 0.51 / 511 + 1e-9
        assert abs(val[1] + 0.25) < 0.51 / 511 + 1e-9

    def test_unsampled_rejected(self):
        enclave, keys = self._provisioned()
        enclave._sampled = {1}
        update = LocalUpdate(0, np.asarray([1], dtype=np.int64),
                             np.asarray([1.0]))
        ct = encrypt_quantized_update(update, keys[0], 8,
                                      np.random.default_rng(0))
        from repro.sgx.enclave import EnclaveSecurityError

        with pytest.raises(EnclaveSecurityError):
            enclave.load_quantized_gradient(0, ct)

    def test_forged_rejected(self):
        enclave, keys = self._provisioned()
        update = LocalUpdate(0, np.asarray([1], dtype=np.int64),
                             np.asarray([1.0]))
        ct = encrypt_quantized_update(update, crypto.generate_key(b"evil"),
                                      8, np.random.default_rng(0))
        from repro.sgx.enclave import EnclaveSecurityError

        with pytest.raises(EnclaveSecurityError):
            enclave.load_quantized_gradient(0, ct)


class TestQuantizedOlive:
    def _system(self, bits, seed=0):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 10, 30, 2, seed=0)
        return OliveSystem(
            build_model("tiny_mlp", seed=0), clients,
            OliveConfig(
                sample_rate=0.8, noise_multiplier=0.5,
                aggregator="advanced", quantize_bits=bits,
                training=TrainingConfig(local_epochs=2, local_lr=0.3,
                                        sparse_ratio=0.2, clip=2.0),
            ),
            seed=seed,
        )

    def test_round_runs_with_quantization(self):
        system = self._system(bits=10)
        log = system.run_round()
        assert not np.array_equal(log.weights_before, log.weights_after)

    def test_quantized_close_to_exact(self):
        # 12-bit quantization barely perturbs the aggregate relative to
        # the exact float path with identical randomness.
        exact = self._system(bits=None, seed=4)
        quant = self._system(bits=12, seed=4)
        w_exact = exact.run_round().weights_after
        # The quantized system consumes extra rng draws; compare the
        # *aggregate direction*, not the noise realization.
        w_quant = quant.run_round().weights_after
        cos = np.dot(w_exact, w_quant) / (
            np.linalg.norm(w_exact) * np.linalg.norm(w_quant)
        )
        assert cos > 0.95

    def test_quantized_system_learns(self):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        system = self._system(bits=8)
        x, y = gen.balanced(20, np.random.default_rng(5))
        before = system.evaluate(x, y)
        system.run(6)
        assert system.evaluate(x, y) > max(before, 1.0 / 6)
