"""Tests for the cycle cost model (repro.sgx.cost)."""

import pytest

from repro.sgx.cost import (
    CostModel,
    CostParameters,
    CostReport,
    EpcPager,
    SetAssociativeCache,
)


SMALL = CostParameters(
    l2_bytes=4 * 1024, l2_assoc=4,
    l3_bytes=16 * 1024, l3_assoc=4,
    epc_bytes=64 * 1024,
)


class TestSetAssociativeCache:
    def test_repeat_access_hits(self):
        cache = SetAssociativeCache(1024, 4, 64)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.hits == 1 and cache.misses == 1

    def test_capacity_eviction_lru(self):
        # Direct-mapped-ish: 1 set, 2 ways.
        cache = SetAssociativeCache(128, 2, 64)
        cache.access(0)
        cache.access(1)
        cache.access(2)       # evicts 0 (LRU)
        assert not cache.access(0)
        assert cache.access(2)

    def test_lru_refresh_on_hit(self):
        cache = SetAssociativeCache(128, 2, 64)
        cache.access(0)
        cache.access(1)
        cache.access(0)       # 1 becomes LRU
        cache.access(2)       # evicts 1
        assert cache.access(0)
        assert not cache.access(1)

    def test_distinct_sets_do_not_conflict(self):
        cache = SetAssociativeCache(2048, 4, 64)  # 8 sets
        for line in range(8):
            cache.access(line)
        assert all(cache.access(line) for line in range(8))

    def test_bad_geometry_raises(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(100, 3, 64)

    def test_reset(self):
        cache = SetAssociativeCache(1024, 4, 64)
        cache.access(0)
        cache.reset()
        assert cache.hits == 0 and cache.misses == 0
        assert not cache.access(0)


class TestEpcPager:
    def test_resident_hit(self):
        pager = EpcPager(8192, 4096)  # 2 pages
        assert pager.access(0) == "cold"
        assert pager.access(0) == "hit"

    def test_cold_fill_not_charged_as_fault(self):
        pager = EpcPager(4 * 4096, 4096)
        outcomes = [pager.access(p) for p in range(4)]
        assert outcomes == ["cold"] * 4
        assert pager.faults == 0

    def test_eviction_fault(self):
        pager = EpcPager(2 * 4096, 4096)
        pager.access(0)
        pager.access(1)
        assert pager.access(2) == "evict"
        assert pager.faults == 1
        # 0 was evicted (LRU), 1 still resident.
        assert pager.access(1) == "hit"
        assert pager.access(0) == "evict"

    def test_reset(self):
        pager = EpcPager(4096, 4096)
        pager.access(0)
        pager.reset()
        assert pager.access(0) == "cold"


class TestCostModel:
    def test_sequential_hits_are_cheap(self):
        model = CostModel(SMALL)
        first = model.charge_lines([0])
        again = model.charge_lines([0])
        assert again.cycles < first.cycles

    def test_working_set_beyond_caches_costs_dram(self):
        model = CostModel(SMALL)
        # 16 KB L3 = 256 lines; stream over 512 lines twice.
        stream = list(range(512)) * 2
        report = model.charge_lines(stream)
        assert report.dram_accesses > 500

    def test_small_working_set_stays_in_cache(self):
        model = CostModel(SMALL)
        stream = list(range(8)) * 100
        report = model.charge_lines(stream)
        assert report.l2_hits > 700

    def test_epc_thrash_dominates_cycles(self):
        model = CostModel(SMALL)
        # 64 KB EPC = 16 pages; cycle over 32 pages repeatedly.
        lines_per_page = 4096 // 64
        stream = [p * lines_per_page for p in range(32)] * 5
        report = model.charge_lines(stream)
        assert report.page_faults > 0
        assert report.cycles > report.accesses * SMALL.cycles_dram

    def test_report_counts_accesses(self):
        model = CostModel(SMALL)
        assert model.charge_lines(range(10)).accesses == 10

    def test_charge_addresses_coarsens(self):
        model = CostModel(SMALL)
        report = model.charge_addresses([0, 8, 63])  # one cacheline
        assert report.accesses == 3
        assert report.l2_hits == 2

    def test_report_merge(self):
        a = CostReport(accesses=1, cycles=10, page_faults=1)
        b = CostReport(accesses=2, cycles=20, l2_hits=2)
        m = a.merge(b)
        assert m.accesses == 3 and m.cycles == 30
        assert m.page_faults == 1 and m.l2_hits == 2

    def test_seconds_conversion(self):
        assert CostReport(cycles=3_800_000_000).seconds == pytest.approx(1.0)

    def test_locality_beats_random_order(self):
        sequential = CostModel(SMALL).charge_lines(list(range(64)) * 8)
        import random

        rng = random.Random(0)
        shuffled_stream = list(range(64)) * 8
        rng.shuffle(shuffled_stream)
        shuffled = CostModel(SMALL).charge_lines(shuffled_stream)
        # Same multiset of lines; sequential reuse must not be worse.
        assert sequential.cycles <= shuffled.cycles * 1.05
