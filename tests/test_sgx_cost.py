"""Tests for the cycle cost model (repro.sgx.cost)."""

import numpy as np
import pytest

from repro.core.streams import (
    advanced_stream,
    advanced_stream_chunks,
    baseline_stream,
    baseline_stream_chunks,
)
from repro.sgx.cost import (
    CostModel,
    CostParameters,
    CostReport,
    EpcPager,
    SetAssociativeCache,
)


SMALL = CostParameters(
    l2_bytes=4 * 1024, l2_assoc=4,
    l3_bytes=16 * 1024, l3_assoc=4,
    epc_bytes=64 * 1024,
)


class TestSetAssociativeCache:
    def test_repeat_access_hits(self):
        cache = SetAssociativeCache(1024, 4, 64)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.hits == 1 and cache.misses == 1

    def test_capacity_eviction_lru(self):
        # Direct-mapped-ish: 1 set, 2 ways.
        cache = SetAssociativeCache(128, 2, 64)
        cache.access(0)
        cache.access(1)
        cache.access(2)       # evicts 0 (LRU)
        assert not cache.access(0)
        assert cache.access(2)

    def test_lru_refresh_on_hit(self):
        cache = SetAssociativeCache(128, 2, 64)
        cache.access(0)
        cache.access(1)
        cache.access(0)       # 1 becomes LRU
        cache.access(2)       # evicts 1
        assert cache.access(0)
        assert not cache.access(1)

    def test_distinct_sets_do_not_conflict(self):
        cache = SetAssociativeCache(2048, 4, 64)  # 8 sets
        for line in range(8):
            cache.access(line)
        assert all(cache.access(line) for line in range(8))

    def test_bad_geometry_raises(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(100, 3, 64)

    def test_reset(self):
        cache = SetAssociativeCache(1024, 4, 64)
        cache.access(0)
        cache.reset()
        assert cache.hits == 0 and cache.misses == 0
        assert not cache.access(0)


class TestEpcPager:
    def test_resident_hit(self):
        pager = EpcPager(8192, 4096)  # 2 pages
        assert pager.access(0) == "cold"
        assert pager.access(0) == "hit"

    def test_cold_fill_not_charged_as_fault(self):
        pager = EpcPager(4 * 4096, 4096)
        outcomes = [pager.access(p) for p in range(4)]
        assert outcomes == ["cold"] * 4
        assert pager.faults == 0

    def test_eviction_fault(self):
        pager = EpcPager(2 * 4096, 4096)
        pager.access(0)
        pager.access(1)
        assert pager.access(2) == "evict"
        assert pager.faults == 1
        # 0 was evicted (LRU), 1 still resident.
        assert pager.access(1) == "hit"
        assert pager.access(0) == "evict"

    def test_reset(self):
        pager = EpcPager(4096, 4096)
        pager.access(0)
        pager.reset()
        assert pager.access(0) == "cold"


class TestCostModel:
    def test_sequential_hits_are_cheap(self):
        model = CostModel(SMALL)
        first = model.charge_lines([0])
        again = model.charge_lines([0])
        assert again.cycles < first.cycles

    def test_working_set_beyond_caches_costs_dram(self):
        model = CostModel(SMALL)
        # 16 KB L3 = 256 lines; stream over 512 lines twice.
        stream = list(range(512)) * 2
        report = model.charge_lines(stream)
        assert report.dram_accesses > 500

    def test_small_working_set_stays_in_cache(self):
        model = CostModel(SMALL)
        stream = list(range(8)) * 100
        report = model.charge_lines(stream)
        assert report.l2_hits > 700

    def test_epc_thrash_dominates_cycles(self):
        model = CostModel(SMALL)
        # 64 KB EPC = 16 pages; cycle over 32 pages repeatedly.
        lines_per_page = 4096 // 64
        stream = [p * lines_per_page for p in range(32)] * 5
        report = model.charge_lines(stream)
        assert report.page_faults > 0
        assert report.cycles > report.accesses * SMALL.cycles_dram

    def test_report_counts_accesses(self):
        model = CostModel(SMALL)
        assert model.charge_lines(range(10)).accesses == 10

    def test_charge_addresses_coarsens(self):
        model = CostModel(SMALL)
        report = model.charge_addresses([0, 8, 63])  # one cacheline
        assert report.accesses == 3
        assert report.l2_hits == 2

    def test_report_merge(self):
        a = CostReport(accesses=1, cycles=10, page_faults=1)
        b = CostReport(accesses=2, cycles=20, l2_hits=2)
        m = a.merge(b)
        assert m.accesses == 3 and m.cycles == 30
        assert m.page_faults == 1 and m.l2_hits == 2

    def test_seconds_conversion(self):
        assert CostReport(cycles=3_800_000_000).seconds == pytest.approx(1.0)

    def test_locality_beats_random_order(self):
        sequential = CostModel(SMALL).charge_lines(list(range(64)) * 8)
        import random

        rng = random.Random(0)
        shuffled_stream = list(range(64)) * 8
        rng.shuffle(shuffled_stream)
        shuffled = CostModel(SMALL).charge_lines(shuffled_stream)
        # Same multiset of lines; sequential reuse must not be worse.
        assert sequential.cycles <= shuffled.cycles * 1.05

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            CostModel(SMALL, engine="turbo")


def assert_engines_agree(lines, params=SMALL):
    """Replay ``lines`` through both engines; everything must match."""
    lines = np.asarray(lines, dtype=np.int64)
    vec = CostModel(params, engine="vector")
    vec_report = vec.charge_lines(lines)
    ref = CostModel(params, engine="reference")
    ref_report = ref.charge_lines(int(x) for x in lines)
    assert vec.stats == ref.stats
    assert vec_report == ref_report
    return vec_report


class TestVectorReferenceEquivalence:
    """The vectorized replayer must reproduce the sequential reference
    byte-for-byte on adversarial patterns: every ``ReplayStats`` field
    (L2/L3 hits+misses, EPC hit/cold/evict, cycles) is compared."""

    def test_set_conflict_storm(self):
        # Every access maps to L2 set 0 with > assoc distinct lines:
        # worst case for the residency classification rules.
        n_sets = 4 * 1024 // (4 * 64)     # SMALL L2: 16 sets
        rng = np.random.default_rng(0)
        lines = rng.integers(0, 8, size=5000) * n_sets
        assert_engines_agree(lines)

    def test_epc_thrash_just_above_capacity(self):
        # 64 KB EPC = 16 pages; cycle over 17 so every revisit evicts.
        lines_per_page = 4096 // 64
        loop = [p * lines_per_page for p in range(17)]
        report = assert_engines_agree(loop * 400)
        assert report.page_faults > 0

    def test_single_line_hot_loop(self):
        # Degenerate run-length input: one line repeated; the entire
        # chunk collapses to a single head + analytic repeat charge.
        report = assert_engines_agree([7] * 100_000)
        assert report.l2_hits == 99_999

    def test_alternating_pair_even_run(self):
        assert_engines_agree([3, 9] * 5000)

    def test_alternating_pair_odd_run_and_junction(self):
        # Odd-length alternating runs end out of phase, and the lines
        # right after a collapsed run see a perturbed reuse window --
        # the edge cases of the period-2 head collapse.
        pattern = [3, 9] * 101 + [3] + list(range(64)) + [9, 3] * 77
        assert_engines_agree(pattern * 11)

    def test_periodic_steady_state(self):
        # Long periodic loop over multiple pages: triggers the modal
        # period detection + analytic span replication.
        lines_per_page = 4096 // 64
        period = [p * lines_per_page + o for p in range(6)
                  for o in (0, 3, 5)]
        assert_engines_agree(period * 3000)

    def test_direct_mapped_assoc_one(self):
        params = CostParameters(
            l2_bytes=1024, l2_assoc=1,
            l3_bytes=4 * 1024, l3_assoc=1,
            epc_bytes=32 * 1024,
        )
        rng = np.random.default_rng(3)
        assert_engines_agree(rng.integers(0, 200, size=4000), params)

    def test_random_fuzz_across_seeds(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(1, 3000))
            lines = rng.integers(0, int(rng.integers(2, 4000)), size=n)
            assert_engines_agree(lines)

    def test_mixed_structural_and_random(self):
        rng = np.random.default_rng(7)
        mix = np.concatenate([
            np.asarray(list(baseline_stream(40, 128)), dtype=np.int64),
            rng.integers(0, 1024, size=2000),
            np.asarray(list(advanced_stream(40, 128)), dtype=np.int64),
            np.arange(3000) % 17,
        ])
        assert_engines_agree(mix)

    def test_chunk_boundary_invariance(self):
        # The same stream split at awkward chunk boundaries must give
        # identical stats: carry-in state is part of the contract.
        rng = np.random.default_rng(11)
        lines = rng.integers(0, 900, size=6001)
        whole = CostModel(SMALL)
        whole_report = whole.charge_lines(lines)
        split = CostModel(SMALL)
        merged = None
        for lo in range(0, lines.size, 997):
            part = split.charge_lines(lines[lo:lo + 997])
            merged = part if merged is None else merged.merge(part)
        assert split.stats == whole.stats
        assert merged == whole_report

    def test_charge_chunks_matches_charge_lines(self):
        nk, d = 64, 256
        vec = CostModel(SMALL)
        vec_report = vec.charge_chunks(advanced_stream_chunks(nk, d))
        ref = CostModel(SMALL, engine="reference")
        ref_report = ref.charge_lines(advanced_stream(nk, d))
        assert vec.stats == ref.stats
        assert vec_report == ref_report

    def test_reference_engine_accepts_chunks(self):
        ref = CostModel(SMALL, engine="reference")
        via_chunks = ref.charge_chunks(baseline_stream_chunks(16, 64))
        vec = CostModel(SMALL)
        via_vec = vec.charge_chunks(baseline_stream_chunks(16, 64))
        assert ref.stats == vec.stats
        assert via_chunks == via_vec

    def test_telemetry_gauges_preserved(self):
        model = CostModel(SMALL)
        model.charge_lines(np.arange(2048) % 321)
        gauges = model.stats.as_gauges()
        assert gauges
        assert all(key.startswith("cost.") for key in gauges)
