"""Tests for the oblivious shuffle and padding helpers."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.oblivious.compaction import (
    pad_to_length,
    pad_with_dummies,
    truncated_geometric_noise,
)
from repro.oblivious.shuffle import oblivious_shuffle_numpy, oblivious_shuffle_traced
from repro.sgx.memory import Trace, TracedArray


class TestTracedShuffle:
    def test_is_a_permutation(self):
        arr = TracedArray("s", [float(i) for i in range(8)])
        oblivious_shuffle_traced(arr, rng=random.Random(0))
        assert sorted(arr.snapshot()) == [float(i) for i in range(8)]

    def test_rejects_non_power_of_two(self):
        arr = TracedArray("s", [1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            oblivious_shuffle_traced(arr)

    def test_trace_independent_of_data(self):
        signatures = []
        for data in ([1.0, 5.0, 2.0, 9.0], [0.0, 0.0, 0.0, 0.0]):
            trace = Trace()
            arr = TracedArray("s", data, trace=trace)
            oblivious_shuffle_traced(arr, rng=random.Random(7))
            signatures.append(trace.signature())
        assert signatures[0] == signatures[1]

    def test_actually_permutes_sometimes(self):
        moved = 0
        for seed in range(10):
            arr = TracedArray("s", [float(i) for i in range(16)])
            oblivious_shuffle_traced(arr, rng=random.Random(seed))
            if arr.snapshot() != [float(i) for i in range(16)]:
                moved += 1
        assert moved >= 9

    def test_roughly_uniform_first_position(self):
        counts = {}
        for seed in range(200):
            arr = TracedArray("s", [float(i) for i in range(4)])
            oblivious_shuffle_traced(arr, rng=random.Random(seed))
            first = arr.snapshot()[0]
            counts[first] = counts.get(first, 0) + 1
        # Each value should land first roughly 50 times; allow wide slack.
        assert all(20 <= c <= 90 for c in counts.values())


class TestNumpyShuffle:
    def test_payloads_move_together(self):
        a = np.arange(8, dtype=np.int64)
        b = np.arange(8, dtype=np.float64) * 10
        oblivious_shuffle_numpy(a, b, rng=np.random.default_rng(0))
        assert np.array_equal(b, a.astype(np.float64) * 10)

    def test_is_permutation(self):
        a = np.arange(16, dtype=np.int64)
        oblivious_shuffle_numpy(a, rng=np.random.default_rng(1))
        assert sorted(a.tolist()) == list(range(16))

    def test_empty_call_is_noop(self):
        oblivious_shuffle_numpy(rng=np.random.default_rng(0))


class TestPadding:
    def test_pad_with_dummies_preserves_sum(self):
        idx = np.asarray([0, 2], dtype=np.int64)
        val = np.asarray([1.0, 2.0])
        counts = np.asarray([1, 0, 3])
        p_idx, p_val = pad_with_dummies(idx, val, counts, dummy_index=99)
        assert len(p_idx) == 2 + 4
        dense = np.zeros(3)
        np.add.at(dense, p_idx, p_val)
        assert dense.tolist() == [1.0, 0.0, 2.0]

    def test_pad_with_dummies_histogram(self):
        idx = np.asarray([1], dtype=np.int64)
        val = np.asarray([5.0])
        counts = np.asarray([2, 1, 0])
        p_idx, _ = pad_with_dummies(idx, val, counts, dummy_index=99)
        hist = np.bincount(p_idx, minlength=3)
        assert hist.tolist() == [2, 2, 0]

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            pad_with_dummies(
                np.asarray([0]), np.asarray([1.0]),
                np.asarray([-1]), dummy_index=9,
            )

    def test_pad_to_length(self):
        idx = np.asarray([3], dtype=np.int64)
        val = np.asarray([1.5])
        p_idx, p_val = pad_to_length(idx, val, 4, dummy_index=7)
        assert p_idx.tolist() == [3, 7, 7, 7]
        assert p_val.tolist() == [1.5, 0.0, 0.0, 0.0]

    def test_pad_to_length_below_current_rejected(self):
        with pytest.raises(ValueError):
            pad_to_length(np.asarray([1, 2]), np.asarray([0.0, 0.0]), 1, 9)

    @given(st.floats(min_value=0.1, max_value=5.0), st.integers(1, 30))
    @settings(max_examples=20, deadline=None)
    def test_geometric_noise_bounds(self, epsilon, cap):
        rng = np.random.default_rng(0)
        noise = truncated_geometric_noise(rng, epsilon, size=100, cap=cap)
        assert noise.min() >= 0
        assert noise.max() <= 2 * cap

    def test_geometric_noise_centers_on_cap(self):
        rng = np.random.default_rng(0)
        noise = truncated_geometric_noise(rng, epsilon=1.0, size=5000, cap=10)
        assert abs(noise.mean() - 10) < 0.5

    def test_geometric_noise_invalid_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            truncated_geometric_noise(rng, epsilon=0.0, size=1, cap=1)
        with pytest.raises(ValueError):
            truncated_geometric_noise(rng, epsilon=1.0, size=1, cap=-1)
