"""Tests for DP mechanisms, the RDP accountant, and LDP baselines."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dp.accountant import (
    DEFAULT_ORDERS,
    PrivacyAccountant,
    compute_rdp,
    epsilon_for,
    noise_multiplier_for,
    rdp_to_dp,
)
from repro.dp.ldp import (
    gaussian_ldp_sigma,
    local_epsilon_for_central,
    perturb_local,
    shuffle_amplified_epsilon,
)
from repro.dp.mechanisms import gaussian_perturb, sensitivity_of_mean


class TestGaussianPerturb:
    def test_zero_noise_is_plain_average(self):
        agg = np.asarray([2.0, 4.0])
        out = gaussian_perturb(agg, clip=1.0, noise_multiplier=0.0,
                               denominator=2.0, rng=np.random.default_rng(0))
        assert np.allclose(out, [1.0, 2.0])

    def test_noise_scale(self):
        agg = np.zeros(20_000)
        out = gaussian_perturb(agg, clip=2.0, noise_multiplier=1.5,
                               denominator=1.0, rng=np.random.default_rng(0))
        assert abs(out.std() - 3.0) < 0.1  # sigma * C = 1.5 * 2

    def test_denominator_scales_noise_too(self):
        agg = np.zeros(20_000)
        out = gaussian_perturb(agg, clip=1.0, noise_multiplier=1.0,
                               denominator=10.0, rng=np.random.default_rng(0))
        assert abs(out.std() - 0.1) < 0.01

    def test_invalid_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            gaussian_perturb(np.zeros(1), 0.0, 1.0, 1.0, rng)
        with pytest.raises(ValueError):
            gaussian_perturb(np.zeros(1), 1.0, -1.0, 1.0, rng)
        with pytest.raises(ValueError):
            gaussian_perturb(np.zeros(1), 1.0, 1.0, 0.0, rng)

    def test_sensitivity(self):
        assert sensitivity_of_mean(2.0, 100.0) == pytest.approx(0.02)


class TestRdpAccountant:
    def test_unsubsampled_gaussian_closed_form(self):
        rdp = compute_rdp(1.0, 2.0, 1, orders=[2, 4, 8])
        assert rdp == pytest.approx([2 / 8, 4 / 8, 8 / 8])

    def test_rdp_linear_in_steps(self):
        one = compute_rdp(0.1, 1.12, 1)
        ten = compute_rdp(0.1, 1.12, 10)
        assert np.allclose(np.asarray(ten), 10 * np.asarray(one))

    def test_epsilon_increases_with_steps(self):
        e1 = epsilon_for(0.1, 1.12, 1, 1e-5)
        e2 = epsilon_for(0.1, 1.12, 50, 1e-5)
        assert e2 > e1 > 0

    def test_epsilon_decreases_with_sigma(self):
        weak = epsilon_for(0.1, 0.7, 10, 1e-5)
        strong = epsilon_for(0.1, 2.0, 10, 1e-5)
        assert strong < weak

    def test_epsilon_increases_with_sampling_rate(self):
        rare = epsilon_for(0.01, 1.12, 10, 1e-5)
        common = epsilon_for(0.5, 1.12, 10, 1e-5)
        assert common > rare

    def test_subsampling_amplifies(self):
        # q < 1 must be strictly better than q = 1 at equal sigma.
        sub = epsilon_for(0.1, 1.12, 10, 1e-5)
        full = epsilon_for(1.0, 1.12, 10, 1e-5)
        assert sub < full

    def test_paper_default_budget_is_reasonable(self):
        # (q, sigma, T) = (0.1, 1.12, 3): a usable single-digit epsilon.
        eps = epsilon_for(0.1, 1.12, 3, 1e-5)
        assert 0.05 < eps < 5.0

    def test_rdp_to_dp_picks_best_order(self):
        rdp = compute_rdp(0.1, 1.12, 5)
        eps, order = rdp_to_dp(rdp, DEFAULT_ORDERS, 1e-5)
        # Any single order is an upper bound.
        for r, a in zip(rdp, DEFAULT_ORDERS):
            assert eps <= r + math.log(1e5) / (a - 1) + 1e-12
        assert order in DEFAULT_ORDERS

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            compute_rdp(0.0, 1.0, 1)
        with pytest.raises(ValueError):
            compute_rdp(0.1, 0.0, 1)
        with pytest.raises(ValueError):
            compute_rdp(0.1, 1.0, -1)
        with pytest.raises(ValueError):
            compute_rdp(0.1, 1.0, 1, orders=[1])
        with pytest.raises(ValueError):
            rdp_to_dp([1.0], [2], 0.0)

    def test_noise_multiplier_for_inverts(self):
        target = 2.0
        sigma = noise_multiplier_for(0.1, 10, target, 1e-5)
        achieved = epsilon_for(0.1, sigma, 10, 1e-5)
        assert achieved <= target
        # Not grossly over-noised either.
        assert epsilon_for(0.1, sigma * 0.9, 10, 1e-5) > target * 0.8

    @given(st.floats(0.02, 0.5), st.floats(0.8, 4.0), st.integers(1, 30))
    @settings(max_examples=20, deadline=None)
    def test_rdp_positive(self, q, sigma, steps):
        assert all(r >= 0 for r in compute_rdp(q, sigma, steps))

    def test_accountant_accumulates(self):
        acc = PrivacyAccountant(0.1, 1.12, 1e-5)
        assert acc.epsilon == 0.0
        acc.step()
        e1 = acc.epsilon
        acc.step(4)
        assert acc.epsilon > e1 > 0
        assert acc.steps == 5


class TestLdpBaselines:
    def test_ldp_sigma_decreases_with_epsilon(self):
        assert gaussian_ldp_sigma(2.0, 1e-5) < gaussian_ldp_sigma(0.5, 1e-5)

    def test_ldp_sigma_invalid(self):
        with pytest.raises(ValueError):
            gaussian_ldp_sigma(0.0, 1e-5)
        with pytest.raises(ValueError):
            gaussian_ldp_sigma(1.0, 2.0)

    def test_perturb_local_noise_scale(self):
        out = perturb_local(np.zeros(20_000), clip=1.0, epsilon=1.0,
                            delta=1e-5, rng=np.random.default_rng(0))
        assert abs(out.std() - gaussian_ldp_sigma(1.0, 1e-5)) < 0.1

    def test_amplification_shrinks_epsilon(self):
        local = 2.0
        amplified = shuffle_amplified_epsilon(local, n=10_000, delta=1e-5)
        assert amplified < local

    def test_amplification_improves_with_n(self):
        small = shuffle_amplified_epsilon(1.0, n=100, delta=1e-5)
        large = shuffle_amplified_epsilon(1.0, n=100_000, delta=1e-5)
        assert large < small

    def test_amplification_never_exceeds_local(self):
        for n in (1, 10, 1000):
            assert shuffle_amplified_epsilon(0.5, n, 1e-5) <= 0.5

    def test_amplification_invalid(self):
        with pytest.raises(ValueError):
            shuffle_amplified_epsilon(0.0, 10, 1e-5)
        with pytest.raises(ValueError):
            shuffle_amplified_epsilon(1.0, 0, 1e-5)

    def test_local_epsilon_inversion(self):
        target = 1.0
        n = 5000
        local = local_epsilon_for_central(target, n, 1e-5)
        achieved = shuffle_amplified_epsilon(local, n, 1e-5)
        assert achieved == pytest.approx(target, rel=0.05)
        assert local > target  # amplification gained something

    def test_shuffle_beats_plain_ldp_noise(self):
        # At the same central budget, shuffling permits a larger local
        # epsilon and therefore less local noise -- Table 1's ordering.
        target, n, delta = 1.0, 5000, 1e-5
        ldp_sigma = gaussian_ldp_sigma(target, delta)
        shuffle_sigma = gaussian_ldp_sigma(
            local_epsilon_for_central(target, n, delta), delta
        )
        assert shuffle_sigma < ldp_sigma
