"""Focused tests for the leakage-extraction layer (repro.attack.leakage)."""

import numpy as np

from repro.attack.leakage import (
    RoundObservation,
    coarsen_indices,
    feature_dim,
    observe_round,
)
from repro.core.olive import OliveConfig, OliveSystem
from repro.fl.client import TrainingConfig
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model


def _traced_round(aggregator="linear", n_clients=6, seed=0):
    gen = SyntheticClassData(SPECS["tiny"], seed=seed)
    clients = partition_clients(gen, n_clients, 20, 2, seed=seed)
    system = OliveSystem(
        build_model("tiny_mlp", seed=0), clients,
        OliveConfig(sample_rate=1.0, aggregator=aggregator,
                    training=TrainingConfig(sparse_ratio=0.1)),
        seed=seed,
    )
    return system, system.run_round(traced=True)


class TestObserveRound:
    def test_all_participants_observed(self):
        system, log = _traced_round()
        obs = observe_round(log)
        assert set(obs.observed) == set(log.participants)

    def test_round_index_propagated(self):
        _, log = _traced_round()
        assert observe_round(log).round_index == 0

    def test_each_client_attributed_its_own_indices(self):
        # The boundary attribution must not bleed one client's indices
        # into the next, even when their index sets overlap.
        system, log = _traced_round()
        obs = observe_round(log)
        for cid in log.participants:
            assert obs.observed[cid] == frozenset(
                log.updates[cid].indices.tolist()
            )

    def test_advanced_observation_is_empty(self):
        # Advanced never touches a g_star region -- nothing to observe.
        _, log = _traced_round(aggregator="advanced", n_clients=3)
        obs = observe_round(log)
        assert all(s == frozenset() for s in obs.observed.values())

    def test_structure_type(self):
        _, log = _traced_round()
        assert isinstance(observe_round(log), RoundObservation)


class TestCoarsening:
    def test_word_identity(self):
        assert coarsen_indices([1, 20, 300]) == frozenset({1, 20, 300})

    def test_cacheline_groups_of_16(self):
        assert coarsen_indices([0, 15, 16, 47], "cacheline") == frozenset(
            {0, 1, 2}
        )

    def test_numpy_input(self):
        out = coarsen_indices(np.asarray([31, 32]), "cacheline")
        assert out == frozenset({1, 2})

    def test_feature_dim_rounding(self):
        assert feature_dim(16, "cacheline") == 1
        assert feature_dim(17, "cacheline") == 2
        assert feature_dim(1, "word") == 1
