"""Determinism suite for the cohort runtime (repro.runtime).

Pins the subsystem's central contract: every executor (serial, thread,
process), at every worker count, with or without injected faults,
produces **bit-identical** per-client updates, round outcomes, and
global trajectories -- because all randomness derives from
``(round, client)`` identity, never from execution order.
"""

import numpy as np
import pytest

from repro.core.olive import OliveConfig, OliveSystem
from repro.fl.client import TrainingConfig
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model
from repro.fl.server import FederatedSimulation, ServerConfig
from repro.runtime import (
    STREAM_FAULT,
    STREAM_TRAIN,
    FaultConfig,
    RuntimeConfig,
    derive_nonce,
    derive_rng,
    make_executor,
)

TRAIN = TrainingConfig(local_epochs=1, local_lr=0.1, batch_size=8,
                       sparse_ratio=0.1, clip=1.0)

FAULTS = FaultConfig(dropout_rate=0.2, straggler_rate=0.2,
                     straggler_delay_s=0.001, corrupt_rate=0.15,
                     replay_rate=0.15, transient_failure_rate=0.2)


def olive_system(executor="serial", workers=2, faults=None, seed=1):
    gen = SyntheticClassData(SPECS["tiny"], seed=0)
    clients = partition_clients(gen, 8, 20, 2, seed=0)
    runtime = RuntimeConfig(executor=executor, workers=workers,
                            faults=faults or FaultConfig())
    return OliveSystem(
        build_model("tiny_mlp", seed=0), clients,
        OliveConfig(sample_rate=0.8, noise_multiplier=0.8,
                    aggregator="advanced", training=TRAIN),
        seed=seed, runtime=runtime,
    )


def run_olive(executor, workers=2, faults=None, rounds=2, seed=1):
    with olive_system(executor, workers, faults, seed) as system:
        return system.run(rounds)


def assert_logs_identical(a_logs, b_logs):
    for a, b in zip(a_logs, b_logs):
        assert a.participants == b.participants
        assert set(a.updates) == set(b.updates)
        for cid in a.updates:
            assert np.array_equal(a.updates[cid].indices,
                                  b.updates[cid].indices)
            assert np.array_equal(a.updates[cid].values,
                                  b.updates[cid].values)
        assert np.array_equal(a.weights_after, b.weights_after)
        assert a.epsilon == b.epsilon


class TestSeeding:
    def test_identity_derivation_is_stable(self):
        a = derive_rng(7, STREAM_TRAIN, 3, 5).random(8)
        b = derive_rng(7, STREAM_TRAIN, 3, 5).random(8)
        assert np.array_equal(a, b)

    def test_streams_partition_the_namespace(self):
        a = derive_rng(7, STREAM_TRAIN, 3, 5).random(8)
        b = derive_rng(7, STREAM_FAULT, 3, 5).random(8)
        assert not np.array_equal(a, b)

    def test_negative_key_rejected(self):
        with pytest.raises(ValueError):
            derive_rng(0, STREAM_TRAIN, -1)

    def test_nonce_shape_and_uniqueness(self):
        nonces = {derive_nonce(0, r, c) for r in range(5) for c in range(5)}
        assert len(nonces) == 25
        assert all(len(n) == 16 for n in nonces)
        assert derive_nonce(0, 1, 2) == derive_nonce(0, 1, 2)


class TestExecutorEquivalence:
    """serial == thread == process, bit for bit."""

    @pytest.mark.parametrize("executor,workers", [
        ("thread", 1), ("thread", 3), ("thread", 8),
    ])
    def test_thread_matches_serial(self, executor, workers):
        assert_logs_identical(run_olive("serial"),
                              run_olive(executor, workers))

    def test_process_matches_serial(self):
        assert_logs_identical(run_olive("serial"), run_olive("process", 2))

    @pytest.mark.parametrize("executor,workers", [
        ("serial", 1), ("thread", 5),
    ])
    def test_faulty_rounds_executor_invariant(self, executor, workers):
        base = run_olive("thread", 2, faults=FAULTS)
        other = run_olive(executor, workers, faults=FAULTS)
        assert_logs_identical(base, other)

    def test_faulty_rounds_process_invariant(self):
        assert_logs_identical(run_olive("serial", faults=FAULTS),
                              run_olive("process", 2, faults=FAULTS))

    def test_rerun_is_bit_identical(self):
        assert_logs_identical(run_olive("serial"), run_olive("serial"))


class TestSimulationEquivalence:
    def _sim(self, executor, workers=2):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 8, 20, 2, seed=0)
        return FederatedSimulation(
            model=build_model("tiny_mlp", seed=0), clients=clients,
            training=TRAIN, server=ServerConfig(sample_rate=0.8),
            seed=2,
            runtime_config=RuntimeConfig(executor=executor, workers=workers),
        )

    @pytest.mark.parametrize("executor,workers", [
        ("thread", 2), ("thread", 7), ("process", 2),
    ])
    def test_parallel_matches_serial(self, executor, workers):
        with self._sim("serial") as serial, \
                self._sim(executor, workers) as parallel:
            a_logs = serial.run(2)
            b_logs = parallel.run(2)
        for a, b in zip(a_logs, b_logs):
            assert a.participants == b.participants
            assert np.array_equal(a.weights_after, b.weights_after)
            for cid in a.updates:
                assert np.array_equal(a.updates[cid].values,
                                      b.updates[cid].values)

    def test_plain_mode_rejects_transport_faults(self):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 4, 10, 2, seed=0)
        with pytest.raises(ValueError, match="encrypted"):
            FederatedSimulation(
                model=build_model("tiny_mlp", seed=0), clients=clients,
                runtime_config=RuntimeConfig(
                    faults=FaultConfig(corrupt_rate=0.5)
                ),
            )


class TestTeacherEquivalence:
    def test_teacher_identical_across_executors(self):
        from repro.attack.pipeline import AttackConfig, build_teacher
        from repro.fl.datasets import server_test_data_by_label

        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        with olive_system() as system:
            logs = system.run(2)
        by_label = server_test_data_by_label(gen, 12, seed=9)
        model = build_model("tiny_mlp", seed=0)
        cfg = AttackConfig(teacher_samples_per_label=3)
        serial = build_teacher(logs, model, by_label, TRAIN, cfg)
        threaded = build_teacher(
            logs, model, by_label, TRAIN, cfg,
            runtime=RuntimeConfig(executor="thread", workers=4),
        )
        assert serial == threaded


class TestRuntimeConfigValidation:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            RuntimeConfig(executor="gpu")

    def test_bad_quorum_rejected(self):
        with pytest.raises(ValueError):
            RuntimeConfig(min_quorum=1.5)

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError):
            RuntimeConfig(workers=0)

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError):
            RuntimeConfig(client_timeout_s=0.0)

    def test_realized_accounting_tristate(self):
        assert not RuntimeConfig().use_realized_accounting()
        assert RuntimeConfig(
            faults=FaultConfig(dropout_rate=0.1)
        ).use_realized_accounting()
        assert RuntimeConfig(
            realized_accounting=True
        ).use_realized_accounting()
        assert not RuntimeConfig(
            faults=FaultConfig(dropout_rate=0.1),
            realized_accounting=False,
        ).use_realized_accounting()

    def test_make_executor_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_executor("gpu", 2)
