"""Fault-path tests for the cohort runtime.

Covers the fault model end to end: injected faults only ever *exclude*
clients (never change surviving bits), the quorum completion policy,
retry exhaustion, analytic straggler drops, enclave replay/duplicate
rejection, realized-cohort privacy accounting, checkpoint round-trips,
and the runtime telemetry counters.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.olive import OliveConfig, OliveSystem
from repro.dp.accountant import PrivacyAccountant, epsilon_for
from repro.fl.client import TrainingConfig
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model
from repro.fl.sparsify import densify
from repro.runtime import (
    STATUS_DROPPED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_STRAGGLER,
    FaultConfig,
    FaultInjector,
    QuorumNotMetError,
    RuntimeConfig,
)
from repro.sgx import crypto
from repro.sgx.enclave import (
    Enclave,
    EnclaveSecurityError,
    provision_enclave_with_clients,
)

TRAIN = TrainingConfig(local_epochs=1, local_lr=0.1, batch_size=8,
                       sparse_ratio=0.1, clip=1.0)


def make_system(runtime=None, seed=1, n_clients=8, **cfg_kwargs):
    gen = SyntheticClassData(SPECS["tiny"], seed=0)
    clients = partition_clients(gen, n_clients, 20, 2, seed=0)
    config = OliveConfig(sample_rate=1.0, noise_multiplier=0.8,
                         aggregator="advanced", training=TRAIN,
                         **cfg_kwargs)
    return OliveSystem(build_model("tiny_mlp", seed=0), clients, config,
                       seed=seed, runtime=runtime)


class TestFaultInjector:
    def test_plans_are_deterministic(self):
        cfg = FaultConfig(dropout_rate=0.3, straggler_rate=0.3,
                          corrupt_rate=0.3, replay_rate=0.3,
                          transient_failure_rate=0.3)
        a = FaultInjector(cfg, entropy=5)
        b = FaultInjector(cfg, entropy=5)
        for r in range(4):
            for c in range(16):
                assert a.plan(r, c) == b.plan(r, c)

    def test_inactive_config_yields_clean_plans(self):
        injector = FaultInjector(FaultConfig(), entropy=0)
        assert injector.plan(0, 0).clean

    def test_rates_are_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(dropout_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(straggler_delay_s=-1.0)

    def test_fixed_delay_without_jitter(self):
        cfg = FaultConfig(straggler_rate=1.0, straggler_delay_s=0.5,
                          straggler_jitter=False)
        plan = FaultInjector(cfg, entropy=0).plan(0, 0)
        assert plan.delay_s == 0.5


class TestFaultIsolation:
    """Faults exclude clients; they never perturb surviving bits."""

    def test_aggregate_differs_exactly_by_excluded_clients(self):
        faults = FaultConfig(dropout_rate=0.3, straggler_rate=0.2,
                             straggler_delay_s=0.001, corrupt_rate=0.15,
                             replay_rate=0.15, transient_failure_rate=0.2)
        with make_system() as clean, \
                make_system(RuntimeConfig(faults=faults)) as faulty:
            clean_log = clean.run_round()
            faulty_log = faulty.run_round()

        assert set(faulty_log.updates) < set(clean_log.updates)
        for cid in faulty_log.updates:
            assert np.array_equal(clean_log.updates[cid].values,
                                  faulty_log.updates[cid].values)
        d = clean.d
        excluded = np.zeros(d)
        for cid in set(clean_log.updates) - set(faulty_log.updates):
            u = clean_log.updates[cid]
            excluded += densify(u.indices, u.values, d)
        # Same enclave noise both runs, same denominator (expected qN):
        # the released updates differ exactly by the excluded clients.
        delta = clean_log.weights_after - faulty_log.weights_after
        denominator = max(1.0, 1.0 * len(clean.clients))
        assert np.allclose(delta, excluded / denominator)

    def test_replayed_duplicate_does_not_double_count(self):
        faults = FaultConfig(replay_rate=1.0)
        with make_system() as clean, \
                make_system(RuntimeConfig(faults=faults)) as replayed:
            clean_log = clean.run_round()
            replay_log = replayed.run_round()
        # Every upload was delivered twice; the enclave accepted one
        # copy of each, so the round matches the clean one except for
        # the accountant (realized accounting activates with faults).
        assert set(replay_log.updates) == set(clean_log.updates)
        assert np.array_equal(clean_log.weights_after,
                              replay_log.weights_after)


class TestQuorum:
    def test_quorum_met_round_completes(self):
        runtime = RuntimeConfig(min_quorum=0.5)
        with make_system(runtime) as system:
            log = system.run_round()
        assert len(log.updates) >= 4

    def test_quorum_not_met_aborts_round(self):
        runtime = RuntimeConfig(min_quorum=0.9)
        with make_system(runtime) as system:
            weights_before = system.global_weights.copy()
            with pytest.raises(QuorumNotMetError):
                system.run_round(dropouts={0, 1, 2})
            # Round aborted: weights unchanged, no history entry, no
            # privacy budget consumed.
            assert np.array_equal(system.global_weights, weights_before)
            assert system.history == []
            assert system.accountant.total_steps == 0

    def test_failed_round_weights_unchanged_by_retry(self):
        # Quorum failure then a clean round: the clean round proceeds.
        runtime = RuntimeConfig(min_quorum=0.9)
        with make_system(runtime) as system:
            with pytest.raises(QuorumNotMetError):
                system.run_round(dropouts={0, 1, 2})
            log = system.run_round()
        assert log.round_index == 0
        assert len(log.updates) == 8


class TestRetriesAndStragglers:
    def test_transient_failures_are_retried_to_success(self):
        faults = FaultConfig(transient_failure_rate=1.0,
                             transient_failures=2)
        runtime = RuntimeConfig(max_retries=2, backoff_base_s=0.0,
                                faults=faults,
                                realized_accounting=False)
        with make_system(runtime) as faulty, make_system() as clean:
            sink = obs.MemorySink()
            with obs.session(sinks=[sink]):
                faulty_log = faulty.run_round()
            clean_log = clean.run_round()
        # Every client failed twice then succeeded; the results are
        # bit-identical to a never-failed run.
        assert set(faulty_log.updates) == set(clean_log.updates)
        assert np.array_equal(faulty_log.weights_after,
                              clean_log.weights_after)
        counters = sink.last_values("counter")
        assert counters["runtime.transient_failures"] == 16
        assert counters["runtime.retries"] == 16
        outcomes = faulty_log.cohort.outcomes
        assert all(o.status == STATUS_OK and o.attempts == 3
                   for o in outcomes.values())

    def test_retry_exhaustion_drops_the_client(self):
        faults = FaultConfig(transient_failure_rate=1.0,
                             transient_failures=5)
        runtime = RuntimeConfig(max_retries=1, backoff_base_s=0.0,
                                faults=faults)
        with make_system(runtime) as system:
            sink = obs.MemorySink()
            with obs.session(sinks=[sink]):
                log = system.run_round()
        assert log.updates == {}
        assert all(o.status == STATUS_FAILED
                   for o in log.cohort.outcomes.values())
        assert sink.last_values("counter")["runtime.failures"] == 8

    def test_straggler_beyond_timeout_dropped_analytically(self):
        faults = FaultConfig(straggler_rate=1.0, straggler_delay_s=30.0,
                             straggler_jitter=False)
        runtime = RuntimeConfig(client_timeout_s=0.5, faults=faults)
        import time
        with make_system(runtime) as system:
            t0 = time.perf_counter()
            log = system.run_round()
            elapsed = time.perf_counter() - t0
        # No 30 s sleeps: the injected delay is part of the plan, so the
        # coordinator drops the stragglers without waiting.
        assert elapsed < 5.0
        assert log.updates == {}
        assert all(o.status == STATUS_STRAGGLER
                   for o in log.cohort.outcomes.values())

    def test_short_straggler_delay_is_slept_and_completes(self):
        faults = FaultConfig(straggler_rate=1.0, straggler_delay_s=0.005,
                             straggler_jitter=False)
        runtime = RuntimeConfig(client_timeout_s=5.0, faults=faults,
                                executor="thread", workers=8)
        with make_system(runtime) as system:
            log = system.run_round()
        assert len(log.updates) == 8


class TestEnclaveReplayDefence:
    def _provisioned(self):
        enclave = Enclave(seed=0)
        keys = provision_enclave_with_clients(enclave, [0, 1])
        enclave.sample_clients([0, 1], 1.0)
        return enclave, keys

    def test_same_ciphertext_twice_rejected(self):
        enclave, keys = self._provisioned()
        ct = crypto.seal(keys[0], crypto.encode_sparse_gradient([1], [1.0]))
        enclave.load_gradient(0, ct)
        with pytest.raises(EnclaveSecurityError, match="already contributed"):
            enclave.load_gradient(0, ct)

    def test_second_upload_same_client_rejected(self):
        enclave, keys = self._provisioned()
        ct1 = crypto.seal(keys[0], crypto.encode_sparse_gradient([1], [1.0]))
        ct2 = crypto.seal(keys[0], crypto.encode_sparse_gradient([2], [2.0]))
        enclave.load_gradient(0, ct1)
        with pytest.raises(EnclaveSecurityError, match="already contributed"):
            enclave.load_gradient(0, ct2)

    def test_failed_decrypt_does_not_burn_the_slot(self):
        enclave, keys = self._provisioned()
        good = crypto.seal(keys[0], crypto.encode_sparse_gradient([1], [1.0]))
        bad = crypto.Ciphertext(
            good.nonce, bytes([good.body[0] ^ 0xFF]) + good.body[1:],
            good.tag,
        )
        with pytest.raises(EnclaveSecurityError, match="authentication"):
            enclave.load_gradient(0, bad)
        # The tampered upload must not lock client 0 out of the round.
        assert enclave.load_gradient(0, good) == ([1], [1.0])

    def test_replay_state_resets_on_new_round(self):
        enclave, keys = self._provisioned()
        ct = crypto.seal(keys[0], crypto.encode_sparse_gradient([1], [1.0]))
        enclave.load_gradient(0, ct)
        enclave.sample_clients([0, 1], 1.0)
        assert enclave.load_gradient(0, ct) == ([1], [1.0])

    def test_rejections_counted(self):
        enclave, keys = self._provisioned()
        ct = crypto.seal(keys[0], crypto.encode_sparse_gradient([1], [1.0]))
        sink = obs.MemorySink()
        with obs.session(sinks=[sink]):
            enclave.load_gradient(0, ct)
            with pytest.raises(EnclaveSecurityError):
                enclave.load_gradient(0, ct)
        assert sink.last_values("counter")["runtime.rejected"] == 1


class TestRealizedAccounting:
    def test_step_realized_matches_fixed_rate_epsilon(self):
        fixed = PrivacyAccountant(sampling_rate=0.5, noise_multiplier=1.1,
                                  delta=1e-5)
        realized = PrivacyAccountant(sampling_rate=0.5,
                                     noise_multiplier=1.1, delta=1e-5)
        fixed.step(3)
        for _ in range(3):
            realized.step_realized(0.5)
        assert realized.epsilon == pytest.approx(fixed.epsilon, rel=1e-9)

    def test_smaller_realized_cohort_costs_less(self):
        small = PrivacyAccountant(sampling_rate=0.5, noise_multiplier=1.1,
                                  delta=1e-5)
        large = PrivacyAccountant(sampling_rate=0.5, noise_multiplier=1.1,
                                  delta=1e-5)
        small.step_realized(0.2)
        large.step_realized(0.8)
        assert 0 < small.epsilon < large.epsilon

    def test_empty_round_costs_nothing(self):
        acc = PrivacyAccountant(sampling_rate=0.5, noise_multiplier=1.1,
                                delta=1e-5)
        acc.step_realized(0.0)
        assert acc.epsilon == 0.0
        assert acc.total_steps == 1

    def test_mixed_steps_compose_additively(self):
        acc = PrivacyAccountant(sampling_rate=0.5, noise_multiplier=1.1,
                                delta=1e-5)
        acc.step()
        acc.step_realized(0.25)
        solo = epsilon_for(0.5, 1.1, 1, 1e-5)
        assert acc.epsilon > solo  # extra round costs extra budget

    def test_invalid_realized_rate_rejected(self):
        acc = PrivacyAccountant(sampling_rate=0.5, noise_multiplier=1.1,
                                delta=1e-5)
        with pytest.raises(ValueError):
            acc.step_realized(1.5)

    def test_system_uses_realized_rate_under_faults(self):
        faults = FaultConfig(dropout_rate=0.4)
        with make_system(RuntimeConfig(faults=faults)) as system:
            log = system.run_round()
        survivors = len(log.updates)
        assert system.accountant.steps == 0
        assert system.accountant.realized_rates == [
            survivors / len(system.clients)
        ]
        assert log.epsilon == pytest.approx(
            epsilon_for(survivors / len(system.clients), 0.8, 1, 1e-5)
        )

    def test_fault_free_system_keeps_fixed_rate_accounting(self):
        with make_system() as system:
            system.run_round()
        assert system.accountant.steps == 1
        assert system.accountant.realized_rates == []


class TestCheckpointRealizedRates:
    def test_roundtrip_preserves_realized_ledger(self, tmp_path):
        faults = FaultConfig(dropout_rate=0.4)
        with make_system(RuntimeConfig(faults=faults)) as system:
            system.run(2)
            path = tmp_path / "ckpt.npz"
            save_checkpoint(system, path)
            eps_before = system.accountant.epsilon
            rates = list(system.accountant.realized_rates)

        with make_system(RuntimeConfig(faults=faults)) as fresh:
            meta = load_checkpoint(fresh, path)
        assert meta["version"] == 3
        assert fresh.accountant.realized_rates == rates
        assert fresh.accountant.epsilon == pytest.approx(eps_before)

    def test_version1_checkpoint_still_loads(self, tmp_path):
        with make_system() as system:
            system.run_round()
            path = tmp_path / "v1.npz"
            save_checkpoint(system, path)
        # Rewrite the archive with version-1 metadata (no realized key).
        with np.load(path, allow_pickle=False) as archive:
            weights = archive["global_weights"]
            meta = json.loads(str(archive["meta"]))
        meta.pop("realized_rates")
        meta["version"] = 1
        np.savez(path, global_weights=weights, meta=json.dumps(meta))

        with make_system() as fresh:
            loaded = load_checkpoint(fresh, path)
        assert loaded["version"] == 1
        assert fresh.accountant.steps == 1
        assert fresh.accountant.realized_rates == []


class TestRuntimeTelemetry:
    def test_faulty_round_emits_runtime_counters_and_spans(self):
        faults = FaultConfig(dropout_rate=0.3, straggler_rate=0.2,
                             straggler_delay_s=0.001, corrupt_rate=0.2,
                             replay_rate=0.2, transient_failure_rate=0.2)
        runtime = RuntimeConfig(executor="thread", workers=4,
                                backoff_base_s=0.0, faults=faults)
        sink = obs.MemorySink()
        with make_system(runtime) as system:
            with obs.session(sinks=[sink]):
                log = system.run_round()

        counters = sink.last_values("counter")
        assert counters["runtime.dropouts"] >= 1
        assert counters["runtime.corrupted"] >= 1
        assert counters["runtime.replays_injected"] >= 1
        assert counters["runtime.rejected"] >= 1
        assert counters["runtime.quorum_met"] == 1
        gauges = sink.last_values("gauge")
        # The gauge snapshots job completion (pre-enclave): at least
        # every accepted client completed, and rejections only shrink
        # the accepted set afterwards.
        assert (len(log.updates) <= gauges["runtime.completed_cohort"]
                <= len(log.cohort.sampled))
        # Per-client train spans still nest directly under the round.
        spans = [e for e in sink.events if e.get("type") == "span"]
        train = [e for e in spans if e["name"] == "train"]
        assert train and all(e["path"] == "round/train" for e in train)
        assert all(e["attrs"]["executor"] == "thread" for e in train)

    def test_dropped_clients_recorded_in_outcomes(self):
        faults = FaultConfig(dropout_rate=0.5)
        with make_system(RuntimeConfig(faults=faults), seed=2) as system:
            log = system.run_round()
        statuses = {o.status for o in log.cohort.outcomes.values()}
        assert STATUS_DROPPED in statuses
        dropped = [c for c, o in log.cohort.outcomes.items()
                   if o.status == STATUS_DROPPED]
        assert all(c not in log.updates for c in dropped)


class TestCliFlags:
    def test_demo_accepts_runtime_flags(self, capsys):
        from repro.__main__ import main

        main(["--workers", "2", "--dropout-rate", "0.2", "--seed", "1"])
        out = capsys.readouterr().out
        assert "thread executor, 2 worker(s)" in out
        assert "dropout rate 0.20" in out
