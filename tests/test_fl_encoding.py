"""Tests for delta+varint index compression (repro.fl.encoding)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fl.encoding import (
    decode_index_set,
    encode_index_set,
    index_wire_bytes,
    raw_index_bytes,
    varint_decode,
    varint_encode,
)
from repro.fl.sparsify import top_ratio


class TestVarint:
    def test_small_values_one_byte(self):
        assert varint_encode([0]) == b"\x00"
        assert varint_encode([127]) == b"\x7f"

    def test_multi_byte_boundary(self):
        assert varint_encode([128]) == b"\x80\x01"

    def test_roundtrip_examples(self):
        values = [0, 1, 127, 128, 300, 2**31, 2**40]
        assert varint_decode(varint_encode(values)) == values

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            varint_encode([-1])

    def test_truncated_rejected(self):
        raw = varint_encode([300])
        with pytest.raises(ValueError):
            varint_decode(raw[:-1])

    @given(st.lists(st.integers(0, 2**50), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values):
        assert varint_decode(varint_encode(values)) == values


class TestIndexSetEncoding:
    def test_roundtrip(self):
        idx = np.asarray([3, 17, 200, 50_889], dtype=np.int64)
        assert np.array_equal(decode_index_set(encode_index_set(idx)), idx)

    def test_empty(self):
        assert encode_index_set(np.empty(0, dtype=np.int64)) == b""
        assert len(decode_index_set(b"")) == 0

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            encode_index_set(np.asarray([5, 3]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_index_set(np.asarray([-1, 3]))

    def test_duplicates_allowed(self):
        idx = np.asarray([4, 4, 9], dtype=np.int64)
        assert np.array_equal(decode_index_set(encode_index_set(idx)), idx)

    @given(st.lists(st.integers(0, 10**6), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, values):
        idx = np.asarray(sorted(values), dtype=np.int64)
        assert np.array_equal(decode_index_set(encode_index_set(idx)), idx)

    def test_compresses_real_topk_indices(self):
        # A top-10% index set over a 50,890-dim model: mean gap ~10,
        # so deltas fit one varint byte each -> ~4x smaller than u32.
        rng = np.random.default_rng(0)
        delta = rng.normal(size=50_890)
        idx, _ = top_ratio(delta, 0.1)
        compressed = index_wire_bytes(idx)
        raw = raw_index_bytes(len(idx))
        assert compressed < raw / 2

    def test_sparse_sets_compress_less(self):
        # Very sparse sets have large gaps -> more varint bytes/entry,
        # but still at most the raw width for d < 2^28.
        rng = np.random.default_rng(1)
        idx = np.sort(rng.choice(10**8, size=50, replace=False))
        assert index_wire_bytes(idx) <= raw_index_bytes(50) + 50
