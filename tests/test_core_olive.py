"""Tests for the end-to-end OLIVE system (repro.core.olive)."""

import numpy as np
import pytest

from repro.core.olive import OliveConfig, OliveSystem
from repro.core.obliviousness import traces_equal
from repro.fl.client import TrainingConfig
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model
from repro.sgx.enclave import EnclaveSecurityError


TRAIN = TrainingConfig(local_epochs=1, local_lr=0.1, batch_size=8,
                       sparse_ratio=0.1, clip=1.0)


def make_system(aggregator="advanced", n_clients=8, seed=0, **cfg_kwargs):
    gen = SyntheticClassData(SPECS["tiny"], seed=0)
    clients = partition_clients(gen, n_clients, 20, 2, seed=0)
    model = build_model("tiny_mlp", seed=0)
    config = OliveConfig(
        sample_rate=0.5, noise_multiplier=1.12, aggregator=aggregator,
        training=TRAIN, **cfg_kwargs,
    )
    return gen, OliveSystem(model, clients, config, seed=seed)


class TestConfig:
    def test_unknown_aggregator_rejected(self):
        with pytest.raises(ValueError):
            OliveConfig(aggregator="magic")

    def test_grouping_requires_advanced(self):
        with pytest.raises(ValueError):
            OliveConfig(aggregator="baseline", group_size=4)

    def test_grouped_advanced_allowed(self):
        assert OliveConfig(aggregator="advanced", group_size=4).group_size == 4


class TestProvisioning:
    def test_all_clients_attested(self):
        _, system = make_system()
        assert len(system.client_keys) == 8
        for cid in range(8):
            assert system.enclave.keystore.get(cid) == system.client_keys[cid]


class TestRounds:
    def test_round_updates_weights(self):
        _, system = make_system()
        log = system.run_round()
        assert not np.array_equal(log.weights_before, log.weights_after)
        assert np.array_equal(log.weights_after, system.global_weights)

    def test_participants_come_from_enclave_sampling(self):
        _, system = make_system()
        log = system.run_round()
        assert set(log.participants) == system.enclave.sampled_clients

    def test_history_grows(self):
        _, system = make_system()
        system.run(3)
        assert [log.round_index for log in system.history] == [0, 1, 2]

    def test_untraced_round_has_no_trace(self):
        _, system = make_system()
        log = system.run_round(traced=False)
        assert log.trace is None

    def test_traced_round_records_aggregation(self):
        _, system = make_system(aggregator="linear")
        log = system.run_round(traced=True)
        assert log.trace is not None
        assert len(log.trace) > 0

    def test_epsilon_reported_and_growing(self):
        _, system = make_system()
        logs = system.run(3)
        assert 0 < logs[0].epsilon < logs[1].epsilon < logs[2].epsilon

    def test_updates_are_sparse(self):
        _, system = make_system()
        log = system.run_round()
        d = system.d
        expected_k = int(np.ceil(0.1 * d))
        for update in log.updates.values():
            assert update.k == expected_k

    def test_evaluate(self):
        gen, system = make_system()
        x, y = gen.balanced(10, np.random.default_rng(1))
        assert 0.0 <= system.evaluate(x, y) <= 1.0


class TestAggregatorEquivalence:
    """The oblivious defense must not change the learning semantics."""

    @pytest.mark.parametrize("aggregator", ["baseline", "advanced", "path_oram"])
    def test_same_trajectory_as_linear(self, aggregator):
        _, linear_system = make_system(aggregator="linear", seed=3)
        _, oblivious_system = make_system(aggregator=aggregator, seed=3)
        linear_logs = linear_system.run(2)
        oblivious_logs = oblivious_system.run(2)
        for ll, ol in zip(linear_logs, oblivious_logs):
            assert ll.participants == ol.participants
            assert np.allclose(ll.weights_after, ol.weights_after)

    def test_grouped_same_trajectory(self):
        _, mono = make_system(aggregator="advanced", seed=4)
        _, grouped = make_system(aggregator="advanced", seed=4, group_size=2)
        assert np.allclose(
            mono.run(2)[-1].weights_after, grouped.run(2)[-1].weights_after
        )


class TestTelemetryIntegration:
    """A traced run must emit the full per-phase span stream."""

    PHASES = {"sample", "train", "upload", "decrypt", "aggregate",
              "noise", "accountant"}

    def test_traced_run_emits_phase_spans(self, tmp_path):
        from repro import obs

        path = tmp_path / "round_telemetry.jsonl"
        _, system = make_system()
        with obs.session(sinks=[obs.JsonlSink(path)]):
            system.run(2, traced=True)
        events = obs.read_jsonl(path)

        spans = [e for e in events if e["type"] == "span"]
        rounds = [e for e in spans if e["name"] == "round"]
        assert [e["attrs"]["index"] for e in rounds] == [0, 1]

        # >= 6 distinct phase spans nested under every round.
        phase_names = {e["name"] for e in spans
                       if e["path"].startswith("round/")
                       and e["depth"] == 1}
        assert self.PHASES <= phase_names
        for phase in self.PHASES:
            count = sum(1 for e in spans if e["name"] == phase)
            assert count >= 2, f"phase {phase} missing from a round"

        # Kernel spans nest under the aggregate phase.
        assert any(e["path"] == "round/aggregate/kernel.advanced_traced"
                   for e in spans)
        # ECALL spans nest under the decrypt phase.
        assert any(e["path"] == "round/decrypt/ecall.load_gradient"
                   for e in spans)

        counters = {e["name"]: e["value"] for e in events
                    if e["type"] == "counter"}
        assert counters["enclave.gradients_loaded"] >= 2
        assert counters["trace.accesses_recorded"] > 0
        gauges = {e["name"]: e["value"] for e in events
                  if e["type"] == "gauge"}
        assert gauges["dp.epsilon"] > 0
        assert gauges["trace.accesses"] > 0

    def test_untraced_run_with_telemetry_disabled_records_nothing(self):
        from repro import obs

        obs.reset()  # drop state left behind by earlier sessions
        _, system = make_system()
        system.run_round()
        assert obs.get_telemetry().span_stats == {}


class TestSecurityProperties:
    def test_advanced_round_traces_identical_across_data(self):
        # Same sampled participants + same k => identical traces even
        # though the two systems train on different data.
        gen_a = SyntheticClassData(SPECS["tiny"], seed=10)
        gen_b = SyntheticClassData(SPECS["tiny"], seed=20)
        logs = []
        for gen in (gen_a, gen_b):
            clients = partition_clients(gen, 6, 20, 2, seed=1)
            model = build_model("tiny_mlp", seed=0)
            system = OliveSystem(
                model, clients,
                OliveConfig(sample_rate=0.5, aggregator="advanced",
                            training=TRAIN),
                seed=5,
            )
            logs.append(system.run_round(traced=True))
        assert logs[0].participants == logs[1].participants
        assert traces_equal(logs[0].trace, logs[1].trace)

    def test_linear_round_traces_differ_across_data(self):
        gen_a = SyntheticClassData(SPECS["tiny"], seed=10)
        gen_b = SyntheticClassData(SPECS["tiny"], seed=20)
        logs = []
        for gen in (gen_a, gen_b):
            clients = partition_clients(gen, 6, 20, 2, seed=1)
            model = build_model("tiny_mlp", seed=0)
            system = OliveSystem(
                model, clients,
                OliveConfig(sample_rate=0.5, aggregator="linear",
                            training=TRAIN),
                seed=5,
            )
            logs.append(system.run_round(traced=True))
        assert not traces_equal(logs[0].trace, logs[1].trace)

    def test_forged_gradient_rejected_by_enclave(self):
        from repro.sgx import crypto

        _, system = make_system()
        system.enclave.sample_clients(list(range(8)), 1.0)
        attacker_key = crypto.generate_key(b"mallory")
        forged = crypto.seal(
            attacker_key, crypto.encode_sparse_gradient([0], [9999.0])
        )
        with pytest.raises(EnclaveSecurityError):
            system.enclave.load_gradient(0, forged)

    def test_unsampled_injection_rejected(self):
        from repro.sgx import crypto

        _, system = make_system()
        system.enclave.sample_clients([0, 1], 1.0)
        ct = crypto.seal(
            system.client_keys[5], crypto.encode_sparse_gradient([0], [1.0])
        )
        with pytest.raises(EnclaveSecurityError):
            system.enclave.load_gradient(5, ct)

    def test_noise_actually_applied(self):
        # sigma = 0 vs sigma > 0 must give different trajectories.
        _, clean = make_system(seed=6)
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 8, 20, 2, seed=0)
        noiseless = OliveSystem(
            build_model("tiny_mlp", seed=0), clients,
            OliveConfig(sample_rate=0.5, noise_multiplier=0.0,
                        aggregator="advanced", training=TRAIN),
            seed=6,
        )
        w_noisy = clean.run_round().weights_after
        w_clean = noiseless.run_round().weights_after
        assert not np.allclose(w_noisy, w_clean)
