"""Deep property-based tests across module boundaries."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.aggregation import (
    aggregate_advanced,
    aggregate_linear,
    aggregate_path_oram,
)
from repro.core.do_aggregation import DoParameters, aggregate_do
from repro.core.grouping import aggregate_grouped
from repro.fl.client import LocalUpdate
from repro.fl.sparsify import densify, l2_clip, top_k
from repro.oblivious.sort import bitonic_sort_numpy, next_power_of_two
from repro.sgx import crypto


@st.composite
def sparse_round(draw, max_d=32, max_clients=4):
    d = draw(st.integers(2, max_d))
    n = draw(st.integers(1, max_clients))
    updates = []
    for cid in range(n):
        k = draw(st.integers(1, d))
        idx = draw(st.lists(st.integers(0, d - 1), min_size=k, max_size=k))
        val = draw(st.lists(
            st.floats(-20, 20, allow_nan=False), min_size=k, max_size=k
        ))
        updates.append(LocalUpdate(
            cid, np.asarray(idx, dtype=np.int64), np.asarray(val)
        ))
    return d, updates


class TestAggregatorUniversalAgreement:
    @given(sparse_round())
    @settings(max_examples=15, deadline=None)
    def test_path_oram_matches_linear(self, case):
        d, updates = case
        ref = aggregate_linear(updates, d)
        out = aggregate_path_oram(updates, d, seed=0, stash_limit=60)
        assert np.allclose(out, ref)

    @given(sparse_round(), st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_grouped_matches_linear(self, case, h):
        d, updates = case
        ref = aggregate_linear(updates, d)
        assert np.allclose(aggregate_grouped(updates, d, h), ref)

    @given(sparse_round(), st.floats(0.5, 8.0))
    @settings(max_examples=10, deadline=None)
    def test_do_matches_linear(self, case, epsilon):
        d, updates = case
        k_max = max(u.k for u in updates)
        ref = aggregate_linear(updates, d)
        out, hist = aggregate_do(
            updates, d, DoParameters(epsilon=epsilon, sensitivity=k_max),
            np.random.default_rng(0),
        )
        assert np.allclose(out, ref)
        true_hist = np.zeros(d, dtype=int)
        for u in updates:
            np.add.at(true_hist, u.indices, 1)
        assert np.all(hist >= true_hist)

    @given(sparse_round())
    @settings(max_examples=20, deadline=None)
    def test_aggregation_is_linear_in_values(self, case):
        # agg(2 * updates) == 2 * agg(updates): aggregation is a linear
        # operator on the value vectors.
        d, updates = case
        doubled = [
            LocalUpdate(u.client_id, u.indices, 2 * u.values) for u in updates
        ]
        assert np.allclose(
            aggregate_advanced(doubled, d), 2 * aggregate_advanced(updates, d)
        )

    @given(sparse_round())
    @settings(max_examples=20, deadline=None)
    def test_aggregation_permutation_invariant(self, case):
        # Client order must not matter.
        d, updates = case
        assert np.allclose(
            aggregate_advanced(updates, d),
            aggregate_advanced(list(reversed(updates)), d),
        )


class TestSparsifyProperties:
    @given(st.lists(st.floats(-100, 100, allow_nan=False),
                    min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_topk_densify_error_is_optimal(self, values):
        # Among all k-sparse approximations, top-k (by |.|) minimizes
        # the L2 reconstruction error.
        delta = np.asarray(values)
        k = max(1, delta.size // 3)
        idx, val = top_k(delta, k)
        approx = densify(idx, val, delta.size)
        topk_err = np.linalg.norm(delta - approx)
        rng = np.random.default_rng(0)
        for _ in range(5):
            rand_idx = rng.choice(delta.size, size=k, replace=False)
            rand_approx = densify(
                rand_idx.astype(np.int64), delta[rand_idx], delta.size
            )
            assert topk_err <= np.linalg.norm(delta - rand_approx) + 1e-9

    @given(st.lists(st.floats(-100, 100, allow_nan=False),
                    min_size=1, max_size=30),
           st.floats(0.01, 50))
    @settings(max_examples=40, deadline=None)
    def test_clip_is_idempotent(self, values, clip):
        v = np.asarray(values)
        once = l2_clip(v, clip)
        twice = l2_clip(once, clip)
        assert np.allclose(once, twice)


class TestSortProperties:
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=128))
    @settings(max_examples=30, deadline=None)
    def test_sort_is_idempotent(self, values):
        n = next_power_of_two(len(values))
        keys = np.asarray(values + [2**40] * (n - len(values)), dtype=np.int64)
        bitonic_sort_numpy(keys)
        snapshot = keys.copy()
        bitonic_sort_numpy(keys)
        assert np.array_equal(keys, snapshot)

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=128))
    @settings(max_examples=30, deadline=None)
    def test_sort_preserves_multiset(self, values):
        n = next_power_of_two(len(values))
        keys = np.asarray(values + [2**40] * (n - len(values)), dtype=np.int64)
        before = sorted(keys.tolist())
        bitonic_sort_numpy(keys)
        assert sorted(keys.tolist()) == before


class TestCryptoProperties:
    KEY = crypto.generate_key(b"prop")

    @given(st.binary(max_size=300), st.integers(0, 255), st.integers(0, 63))
    @settings(max_examples=40, deadline=None)
    def test_any_single_byte_flip_rejected(self, message, xor, pos):
        assume(xor != 0)
        ct = crypto.seal(self.KEY, message)
        raw = bytearray(ct.to_bytes())
        pos = pos % len(raw)
        raw[pos] ^= xor
        forged = crypto.Ciphertext.from_bytes(bytes(raw))
        with pytest.raises(crypto.AuthenticationError):
            crypto.open_sealed(self.KEY, forged)

    # min_size=8: a k-byte message XORed with a random keystream equals
    # itself with probability 2^-8k, so 1-byte drafts flake ~0.4% of
    # the time; 8 bytes puts the false-failure odds at 2^-64.
    @given(st.binary(min_size=8, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_ciphertext_hides_plaintext_prefix(self, message):
        ct = crypto.seal(self.KEY, message)
        assert ct.body != message
