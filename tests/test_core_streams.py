"""Tests for the structural address streams (repro.core.streams).

The streams must agree with the traced implementations' access counts:
they are the same access pattern, generated without running the
algorithm.
"""

import numpy as np
import pytest

from repro.core.aggregation import (
    aggregate_advanced_traced,
    aggregate_baseline_traced,
    aggregate_linear_traced,
)
from repro.core.streams import (
    STREAM_CHUNKS,
    advanced_stream,
    advanced_stream_chunks,
    baseline_stream,
    baseline_stream_chunks,
    grouped_stream,
    grouped_stream_chunks,
    linear_stream,
    linear_stream_chunks,
    path_oram_stream,
)
from repro.fl.client import LocalUpdate
from repro.sgx.cost import CostModel, CostParameters
from repro.sgx.memory import Trace


def make_updates(seed, n_clients, d, k):
    rng = np.random.default_rng(seed)
    out = []
    for cid in range(n_clients):
        idx = np.sort(rng.choice(d, size=k, replace=False)).astype(np.int64)
        out.append(LocalUpdate(cid, idx, rng.normal(size=k)))
    return out


class TestStreamLengthsMatchTraces:
    def test_linear_stream_count(self):
        n, k, d = 3, 4, 20
        updates = make_updates(0, n, d, k)
        trace = Trace()
        aggregate_linear_traced(updates, d, trace)
        indices = np.concatenate([u.indices for u in updates])
        stream = list(linear_stream(n * k, d, indices))
        assert len(stream) == len(trace)

    def test_baseline_stream_count(self):
        n, k, d = 2, 3, 37
        updates = make_updates(1, n, d, k)
        trace = Trace()
        aggregate_baseline_traced(updates, d, trace)
        stream = list(baseline_stream(n * k, d))
        assert len(stream) == len(trace)

    def test_advanced_stream_count(self):
        n, k, d = 2, 3, 10
        updates = make_updates(2, n, d, k)
        trace = Trace()
        aggregate_advanced_traced(updates, d, trace)
        stream = list(advanced_stream(n * k, d))
        assert len(stream) == len(trace)

    def test_advanced_stream_matches_trace_cachelines(self):
        # Not just the count: the cacheline sequence itself must match.
        n, k, d = 2, 2, 6
        updates = make_updates(3, n, d, k)
        trace = Trace()
        aggregate_advanced_traced(updates, d, trace)
        traced_lines = [a.offset * 8 // 64 for a in trace]
        stream = list(advanced_stream(n * k, d))
        assert stream == traced_lines


class TestStreamValidation:
    def test_linear_stream_requires_matching_indices(self):
        with pytest.raises(ValueError):
            list(linear_stream(5, 10, np.asarray([1, 2])))

    def test_grouped_stream_invalid_group(self):
        with pytest.raises(ValueError):
            list(grouped_stream(4, 2, 8, 0))

    def test_grouped_equals_advanced_for_full_group(self):
        n, k, d = 4, 2, 8
        grouped = list(grouped_stream(n, k, d, group_size=n))
        mono = list(advanced_stream(n * k, d))
        # One group: advanced stream plus one accumulate + read-out pass.
        assert grouped[: len(mono)] == mono
        assert len(grouped) > len(mono)

    def test_grouped_stream_handles_remainder(self):
        stream = list(grouped_stream(5, 2, 8, group_size=2))
        assert len(stream) > 0

    def test_path_oram_stream_nonempty(self):
        stream = list(path_oram_stream(4, 16, seed=0))
        assert len(stream) > 4 * 2


class TestChunkedEmitters:
    """The numpy chunk emitters must reproduce the Python generators'
    access order exactly, element for element, at any chunk size --
    they are the same stream, packaged as arrays."""

    @staticmethod
    def _concat(chunks):
        parts = [np.asarray(c) for c in chunks]
        assert all(p.ndim == 1 for p in parts)
        return np.concatenate(parts) if parts else np.empty(0, np.int64)

    def _pin(self, gen, chunked, chunk_size):
        expected = np.fromiter(gen, dtype=np.int64)
        got = self._concat(chunked)
        assert got.dtype == np.int64
        np.testing.assert_array_equal(got, expected)
        return chunk_size

    @pytest.mark.parametrize("chunk_size", [1, 7, 97, 10_000])
    def test_linear_chunks_pin_generator_order(self, chunk_size):
        rng = np.random.default_rng(5)
        nk, d = 60, 128
        indices = rng.integers(0, d, size=nk)
        self._pin(
            linear_stream(nk, d, indices),
            linear_stream_chunks(nk, d, indices, chunk_size=chunk_size),
            chunk_size,
        )

    @pytest.mark.parametrize("chunk_size", [1, 311, 10_000])
    def test_baseline_chunks_pin_generator_order(self, chunk_size):
        nk, d = 48, 96
        self._pin(
            baseline_stream(nk, d),
            baseline_stream_chunks(nk, d, chunk_size=chunk_size),
            chunk_size,
        )

    @pytest.mark.parametrize("chunk_size", [97, 1024, 100_000])
    def test_advanced_chunks_pin_generator_order(self, chunk_size):
        nk, d = 96, 160
        self._pin(
            advanced_stream(nk, d),
            advanced_stream_chunks(nk, d, chunk_size=chunk_size),
            chunk_size,
        )

    @pytest.mark.parametrize("group_size", [1, 3, 5])
    def test_grouped_chunks_pin_generator_order(self, group_size):
        n, k, d = 5, 4, 32
        self._pin(
            grouped_stream(n, k, d, group_size),
            grouped_stream_chunks(n, k, d, group_size, chunk_size=777),
            777,
        )

    def test_chunk_sizes_respected(self):
        chunks = list(baseline_stream_chunks(16, 64, chunk_size=100))
        assert all(c.size == 100 for c in chunks[:-1])
        assert 0 < chunks[-1].size <= 100

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            list(baseline_stream_chunks(4, 16, chunk_size=0))

    def test_linear_chunks_require_matching_indices(self):
        with pytest.raises(ValueError):
            list(linear_stream_chunks(5, 10, np.asarray([1, 2])))

    def test_grouped_chunks_invalid_group(self):
        with pytest.raises(ValueError):
            list(grouped_stream_chunks(4, 2, 8, 0))

    def test_stream_chunks_registry(self):
        assert set(STREAM_CHUNKS) >= {"baseline", "advanced"}
        for name, factory in STREAM_CHUNKS.items():
            total = sum(c.size for c in factory(8, 32))
            assert total > 0


class TestStreamsThroughCostModel:
    SMALL = CostParameters(
        l2_bytes=4 * 1024, l2_assoc=4,
        l3_bytes=16 * 1024, l3_assoc=4,
        epc_bytes=128 * 1024,
    )

    def _cycles(self, stream, params=None):
        return CostModel(params or self.SMALL).charge_lines(stream).cycles

    def test_advanced_gains_on_baseline_as_d_grows(self):
        # Figure 10's shape: Baseline's O(nkd) vs Advanced's
        # O((nk+d) log^2) -- the cost ratio must fall with d (here at
        # nk = d, the paper's alpha*n = 1 regime); the paper's absolute
        # crossover at d ~ 1e5 is exercised by the Figure 10 benchmark.
        ratios = []
        for d in (256, 2048):
            adv = self._cycles(advanced_stream(d, d))
            base = self._cycles(baseline_stream(d, d))
            ratios.append(adv / base)
        assert ratios[1] < ratios[0] / 2

    def test_baseline_wins_at_tiny_d(self):
        # Figure 10 left edge: trivial models favour Baseline.
        nk, d = 512, 16
        adv = self._cycles(advanced_stream(nk, d))
        base = self._cycles(baseline_stream(nk, d))
        assert base < adv

    def test_grouping_has_interior_optimum_under_small_cache(self):
        # Figure 12's U-shape: an intermediate h beats both extremes
        # once the monolithic working set outgrows the cache/EPC and
        # tiny groups repeat the d-dependent sort too many times.
        params = CostParameters(
            l2_bytes=2 * 1024, l2_assoc=4,
            l3_bytes=8 * 1024, l3_assoc=4,
            epc_bytes=32 * 1024,
        )
        n, k, d = 64, 64, 512
        costs = {
            h: self._cycles(grouped_stream(n, k, d, h), params)
            for h in (1, 8, 64)
        }
        assert costs[8] < costs[1]
        assert costs[8] < costs[64]

    def test_chunked_and_generator_charge_identically(self):
        nk, d = 128, 256
        chunked = CostModel(self.SMALL).charge_chunks(
            advanced_stream_chunks(nk, d)
        )
        generated = CostModel(self.SMALL).charge_lines(
            advanced_stream(nk, d)
        )
        assert chunked == generated

    def test_path_oram_most_expensive_at_scale(self):
        # Figure 10: Path ORAM's per-access position-map scan makes it
        # an order of magnitude slower than Advanced at realistic d.
        nk = d = 2048
        oram = self._cycles(path_oram_stream(nk, d))
        adv = self._cycles(advanced_stream(nk, d))
        assert oram > 10 * adv
