"""Tests for the telemetry subsystem (repro.obs)."""

import json
import threading
import time

import pytest

from repro import obs
from repro.obs import (
    JsonlSink,
    MemorySink,
    NOOP_SPAN,
    NullSink,
    Telemetry,
    read_jsonl,
    render_summary,
    summary_tree,
)


@pytest.fixture(autouse=True)
def _clean_global():
    """Every test starts and ends with disabled, empty global telemetry."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestSpans:
    def test_span_records_wall_and_cpu(self):
        tel = Telemetry(enabled=True)
        with tel.span("work"):
            time.sleep(0.01)
        stats = tel.span_stats["work"]
        assert stats.count == 1
        assert stats.wall_s >= 0.01
        assert stats.cpu_s >= 0.0

    def test_nesting_builds_paths(self):
        tel = Telemetry(enabled=True)
        with tel.span("round"):
            with tel.span("aggregate"):
                with tel.span("sort"):
                    pass
            with tel.span("aggregate"):
                pass
        assert set(tel.span_stats) == {
            "round", "round/aggregate", "round/aggregate/sort",
        }
        assert tel.span_stats["round/aggregate"].count == 2

    def test_sibling_spans_share_parent_path(self):
        tel = Telemetry(enabled=True)
        with tel.span("round"):
            with tel.span("a"):
                pass
            with tel.span("b"):
                pass
        assert "round/a" in tel.span_stats
        assert "round/b" in tel.span_stats

    def test_span_event_contains_schema_fields(self):
        sink = MemorySink()
        tel = Telemetry(enabled=True, sinks=[sink])
        with tel.span("phase", foo=1).set(bar=2):
            pass
        (event,) = sink.spans()
        assert event["type"] == "span"
        assert event["name"] == "phase"
        assert event["path"] == "phase"
        assert event["depth"] == 0
        assert event["wall_s"] >= 0.0
        assert event["cpu_s"] >= 0.0
        assert event["attrs"] == {"foo": 1, "bar": 2}

    def test_exception_marks_error_and_propagates(self):
        sink = MemorySink()
        tel = Telemetry(enabled=True, sinks=[sink])
        with pytest.raises(RuntimeError):
            with tel.span("boom"):
                raise RuntimeError("x")
        (event,) = sink.spans()
        assert event["error"] is True
        assert tel.span_stats["boom"].errors == 1

    def test_events_ordered_children_first(self):
        sink = MemorySink()
        tel = Telemetry(enabled=True, sinks=[sink])
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        paths = [e["path"] for e in sink.spans()]
        assert paths == ["outer/inner", "outer"]
        seqs = [e["seq"] for e in sink.spans()]
        assert seqs == sorted(seqs)

    def test_thread_local_stacks(self):
        tel = Telemetry(enabled=True)
        errors = []

        def worker(name):
            try:
                for _ in range(50):
                    with tel.span(name):
                        with tel.span("child"):
                            pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for i in range(4):
            assert tel.span_stats[f"t{i}/child"].count == 50


class TestCountersAndGauges:
    def test_counters_accumulate(self):
        tel = Telemetry(enabled=True)
        tel.add("bytes", 10)
        tel.add("bytes", 5)
        tel.add("events")
        assert tel.counters == {"bytes": 15.0, "events": 1.0}

    def test_gauge_last_value_wins(self):
        tel = Telemetry(enabled=True)
        tel.gauge("epsilon", 1.0)
        tel.gauge("epsilon", 2.5)
        assert tel.gauges == {"epsilon": 2.5}

    def test_flush_emits_snapshot(self):
        sink = MemorySink()
        tel = Telemetry(enabled=True, sinks=[sink])
        tel.add("c", 3)
        tel.gauge("g", 7)
        tel.flush()
        assert sink.last_values("counter") == {"c": 3.0}
        assert sink.last_values("gauge") == {"g": 7.0}

    def test_reset_clears_state(self):
        tel = Telemetry(enabled=True)
        tel.add("c")
        with tel.span("s"):
            pass
        tel.reset()
        assert not tel.counters and not tel.span_stats


class TestDisabledPath:
    def test_disabled_span_is_shared_noop(self):
        assert obs.span("anything", x=1) is NOOP_SPAN
        with obs.span("anything") as sp:
            sp.set(y=2)  # no-op, must not raise
        assert obs.get_telemetry().span_stats == {}

    def test_disabled_counters_record_nothing(self):
        obs.add("c", 5)
        obs.gauge("g", 1)
        tel = obs.get_telemetry()
        assert tel.counters == {} and tel.gauges == {}

    def test_enabled_flag(self):
        assert not obs.enabled()
        obs.configure(enabled=True, sinks=[])
        assert obs.enabled()

    def test_session_restores_previous_state(self):
        assert not obs.enabled()
        with obs.session(sinks=[MemorySink()]):
            assert obs.enabled()
            obs.add("inside")
        assert not obs.enabled()

    def test_disabled_span_overhead_is_tiny(self):
        reps = 20_000
        t0 = time.perf_counter()
        for _ in range(reps):
            with obs.span("noop"):
                pass
        per_span = (time.perf_counter() - t0) / reps
        assert per_span < 50e-6  # loose sanity bound; bench guards 2%


class TestSinks:
    def test_null_sink_swallows(self):
        tel = Telemetry(enabled=True, sinks=[NullSink()])
        with tel.span("x"):
            pass
        tel.close()  # nothing raised, nothing stored

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        tel = Telemetry(enabled=True, sinks=[sink])
        with tel.span("round", index=0):
            with tel.span("aggregate"):
                pass
        tel.add("accesses", 42)
        tel.close()  # flushes one final counter/gauge snapshot
        events = read_jsonl(path)
        spans = [e for e in events if e["type"] == "span"]
        counters = [e for e in events if e["type"] == "counter"]
        assert [e["path"] for e in spans] == ["round/aggregate", "round"]
        assert counters == [
            {"type": "counter", "name": "accesses", "value": 42.0}
        ]
        # Every line is standalone JSON.
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_jsonl_truncates_by_default(self, tmp_path):
        path = tmp_path / "e.jsonl"
        for _ in range(2):
            tel = Telemetry(enabled=True, sinks=[JsonlSink(path)])
            with tel.span("only"):
                pass
            tel.close()
        assert len(read_jsonl(path)) == 1

    def test_dump_jsonl_archives_registry(self, tmp_path):
        path = tmp_path / "dump.jsonl"
        with obs.session(sinks=[MemorySink()]):
            with obs.span("phase"):
                pass
            obs.add("n", 2)
            out = obs.dump_jsonl(path)
        assert out == str(path)
        types = {e["type"] for e in read_jsonl(path)}
        assert {"span", "span_summary", "counter"} <= types

    def test_dump_jsonl_disabled_returns_none(self, tmp_path):
        assert obs.dump_jsonl(tmp_path / "never.jsonl") is None
        assert not (tmp_path / "never.jsonl").exists()


class TestSummary:
    def test_summary_tree_nests(self):
        tel = Telemetry(enabled=True)
        with tel.span("round"):
            with tel.span("aggregate"):
                pass
        tree = summary_tree(tel)
        assert "round" in tree["children"]
        assert "aggregate" in tree["children"]["round"]["children"]
        assert tree["children"]["round"]["stats"]["count"] == 1

    def test_render_summary_mentions_everything(self):
        tel = Telemetry(enabled=True)
        with tel.span("round"):
            with tel.span("noise"):
                pass
        tel.add("clients", 8)
        tel.gauge("epsilon", 1.25)
        text = render_summary(tel)
        assert "round" in text
        assert "noise" in text
        assert "clients" in text
        assert "epsilon" in text
        assert "1.25" in text

    def test_render_summary_empty(self):
        assert "no telemetry recorded" in render_summary(Telemetry())


class TestMemoryTracking:
    def test_span_records_memory_peak(self):
        tel = Telemetry(enabled=True, sinks=[MemorySink()],
                        track_memory=True)
        with tel.span("alloc"):
            blob = bytearray(4 * 1024 * 1024)
            del blob
        assert tel.span_stats["alloc"].mem_peak >= 4 * 1024 * 1024
