"""Tests for the telemetry subsystem (repro.obs)."""

import json
import threading
import time

import pytest

from repro import obs
from repro.obs import (
    JsonlSink,
    MemorySink,
    NOOP_SPAN,
    NullSink,
    Telemetry,
    read_jsonl,
    render_summary,
    summary_tree,
)


@pytest.fixture(autouse=True)
def _clean_global():
    """Every test starts and ends with disabled, empty global telemetry."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestSpans:
    def test_span_records_wall_and_cpu(self):
        tel = Telemetry(enabled=True)
        with tel.span("work"):
            time.sleep(0.01)
        stats = tel.span_stats["work"]
        assert stats.count == 1
        assert stats.wall_s >= 0.01
        assert stats.cpu_s >= 0.0

    def test_nesting_builds_paths(self):
        tel = Telemetry(enabled=True)
        with tel.span("round"):
            with tel.span("aggregate"):
                with tel.span("sort"):
                    pass
            with tel.span("aggregate"):
                pass
        assert set(tel.span_stats) == {
            "round", "round/aggregate", "round/aggregate/sort",
        }
        assert tel.span_stats["round/aggregate"].count == 2

    def test_sibling_spans_share_parent_path(self):
        tel = Telemetry(enabled=True)
        with tel.span("round"):
            with tel.span("a"):
                pass
            with tel.span("b"):
                pass
        assert "round/a" in tel.span_stats
        assert "round/b" in tel.span_stats

    def test_span_event_contains_schema_fields(self):
        sink = MemorySink()
        tel = Telemetry(enabled=True, sinks=[sink])
        with tel.span("phase", foo=1).set(bar=2):
            pass
        (event,) = sink.spans()
        assert event["type"] == "span"
        assert event["name"] == "phase"
        assert event["path"] == "phase"
        assert event["depth"] == 0
        assert event["wall_s"] >= 0.0
        assert event["cpu_s"] >= 0.0
        assert event["attrs"] == {"foo": 1, "bar": 2}

    def test_exception_marks_error_and_propagates(self):
        sink = MemorySink()
        tel = Telemetry(enabled=True, sinks=[sink])
        with pytest.raises(RuntimeError):
            with tel.span("boom"):
                raise RuntimeError("x")
        (event,) = sink.spans()
        assert event["error"] is True
        assert tel.span_stats["boom"].errors == 1

    def test_events_ordered_children_first(self):
        sink = MemorySink()
        tel = Telemetry(enabled=True, sinks=[sink])
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        paths = [e["path"] for e in sink.spans()]
        assert paths == ["outer/inner", "outer"]
        seqs = [e["seq"] for e in sink.spans()]
        assert seqs == sorted(seqs)

    def test_thread_local_stacks(self):
        tel = Telemetry(enabled=True)
        errors = []

        def worker(name):
            try:
                for _ in range(50):
                    with tel.span(name):
                        with tel.span("child"):
                            pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for i in range(4):
            assert tel.span_stats[f"t{i}/child"].count == 50


class TestCountersAndGauges:
    def test_counters_accumulate(self):
        tel = Telemetry(enabled=True)
        tel.add("bytes", 10)
        tel.add("bytes", 5)
        tel.add("events")
        assert tel.counters == {"bytes": 15.0, "events": 1.0}

    def test_gauge_last_value_wins(self):
        tel = Telemetry(enabled=True)
        tel.gauge("epsilon", 1.0)
        tel.gauge("epsilon", 2.5)
        assert tel.gauges == {"epsilon": 2.5}

    def test_flush_emits_snapshot(self):
        sink = MemorySink()
        tel = Telemetry(enabled=True, sinks=[sink])
        tel.add("c", 3)
        tel.gauge("g", 7)
        tel.flush()
        assert sink.last_values("counter") == {"c": 3.0}
        assert sink.last_values("gauge") == {"g": 7.0}

    def test_reset_clears_state(self):
        tel = Telemetry(enabled=True)
        tel.add("c")
        with tel.span("s"):
            pass
        tel.reset()
        assert not tel.counters and not tel.span_stats


class TestDisabledPath:
    def test_disabled_span_is_shared_noop(self):
        assert obs.span("anything", x=1) is NOOP_SPAN
        with obs.span("anything") as sp:
            sp.set(y=2)  # no-op, must not raise
        assert obs.get_telemetry().span_stats == {}

    def test_disabled_counters_record_nothing(self):
        obs.add("c", 5)
        obs.gauge("g", 1)
        tel = obs.get_telemetry()
        assert tel.counters == {} and tel.gauges == {}

    def test_enabled_flag(self):
        assert not obs.enabled()
        obs.configure(enabled=True, sinks=[])
        assert obs.enabled()

    def test_session_restores_previous_state(self):
        assert not obs.enabled()
        with obs.session(sinks=[MemorySink()]):
            assert obs.enabled()
            obs.add("inside")
        assert not obs.enabled()

    def test_disabled_span_overhead_is_tiny(self):
        reps = 20_000
        t0 = time.perf_counter()
        for _ in range(reps):
            with obs.span("noop"):
                pass
        per_span = (time.perf_counter() - t0) / reps
        assert per_span < 50e-6  # loose sanity bound; bench guards 2%


class TestSinks:
    def test_null_sink_swallows(self):
        tel = Telemetry(enabled=True, sinks=[NullSink()])
        with tel.span("x"):
            pass
        tel.close()  # nothing raised, nothing stored

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        tel = Telemetry(enabled=True, sinks=[sink])
        with tel.span("round", index=0):
            with tel.span("aggregate"):
                pass
        tel.add("accesses", 42)
        tel.close()  # flushes one final counter/gauge snapshot
        events = read_jsonl(path)
        spans = [e for e in events if e["type"] == "span"]
        counters = [e for e in events if e["type"] == "counter"]
        assert [e["path"] for e in spans] == ["round/aggregate", "round"]
        assert counters == [
            {"type": "counter", "name": "accesses", "value": 42.0}
        ]
        # Every line is standalone JSON.
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_jsonl_truncates_by_default(self, tmp_path):
        path = tmp_path / "e.jsonl"
        for _ in range(2):
            tel = Telemetry(enabled=True, sinks=[JsonlSink(path)])
            with tel.span("only"):
                pass
            tel.close()
        assert len(read_jsonl(path)) == 1

    def test_dump_jsonl_archives_registry(self, tmp_path):
        path = tmp_path / "dump.jsonl"
        with obs.session(sinks=[MemorySink()]):
            with obs.span("phase"):
                pass
            obs.add("n", 2)
            out = obs.dump_jsonl(path)
        assert out == str(path)
        types = {e["type"] for e in read_jsonl(path)}
        assert {"span", "span_summary", "counter"} <= types

    def test_dump_jsonl_disabled_returns_none(self, tmp_path):
        assert obs.dump_jsonl(tmp_path / "never.jsonl") is None
        assert not (tmp_path / "never.jsonl").exists()


class TestSummary:
    def test_summary_tree_nests(self):
        tel = Telemetry(enabled=True)
        with tel.span("round"):
            with tel.span("aggregate"):
                pass
        tree = summary_tree(tel)
        assert "round" in tree["children"]
        assert "aggregate" in tree["children"]["round"]["children"]
        assert tree["children"]["round"]["stats"]["count"] == 1

    def test_render_summary_mentions_everything(self):
        tel = Telemetry(enabled=True)
        with tel.span("round"):
            with tel.span("noise"):
                pass
        tel.add("clients", 8)
        tel.gauge("epsilon", 1.25)
        text = render_summary(tel)
        assert "round" in text
        assert "noise" in text
        assert "clients" in text
        assert "epsilon" in text
        assert "1.25" in text

    def test_render_summary_empty(self):
        assert "no telemetry recorded" in render_summary(Telemetry())


class TestMemoryTracking:
    def test_span_records_memory_peak(self):
        tel = Telemetry(enabled=True, sinks=[MemorySink()],
                        track_memory=True)
        with tel.span("alloc"):
            blob = bytearray(4 * 1024 * 1024)
            del blob
        assert tel.span_stats["alloc"].mem_peak >= 4 * 1024 * 1024


class TestTraceContext:
    def test_spans_carry_ids(self):
        sink = MemorySink()
        tel = Telemetry(enabled=True, sinks=[sink])
        with tel.span("round") as r:
            with tel.span("child") as c:
                assert c.trace_id == r.trace_id
                assert c.parent_id == r.span_id
                assert c.span_id != r.span_id
        events = sink.spans()
        assert all("trace_id" in e and "span_id" in e for e in events)
        root = [e for e in events if e["name"] == "round"][0]
        assert root["parent_id"] is None

    def test_root_spans_mint_distinct_traces(self):
        tel = Telemetry(enabled=True)
        with tel.span("a") as a:
            pass
        with tel.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_explicit_parent_wins_over_stack(self):
        tel = Telemetry(enabled=True)
        remote = obs.TraceContext(trace_id="T", span_id="S", path="round")
        with tel.span("unrelated"):
            with tel.span("client", parent=remote) as sp:
                assert sp.trace_id == "T"
                assert sp.parent_id == "S"
                assert sp.path == "round/client"
                assert sp.depth == 1

    def test_current_context_reflects_open_span(self):
        tel = Telemetry(enabled=True)
        assert tel.current_context() is None
        with tel.span("round") as r:
            ctx = tel.current_context()
            assert ctx.trace_id == r.trace_id
            assert ctx.span_id == r.span_id
            assert ctx.path == "round"
        assert tel.current_context() is None

    def test_current_context_none_when_disabled(self):
        assert obs.current_context() is None

    def test_trace_context_pickles(self):
        import pickle

        ctx = obs.TraceContext(trace_id="t1", span_id="s1", path="round")
        assert pickle.loads(pickle.dumps(ctx)) == ctx


class TestHistogram:
    def test_percentiles_land_in_right_buckets(self):
        h = obs.Histogram()
        for v in [0.001] * 50 + [0.01] * 45 + [0.1] * 5:
            h.observe(v)
        assert h.count == 100
        assert h.vmin == 0.001 and h.vmax == 0.1
        assert 0.0005 < h.percentile(0.50) < 0.002
        assert 0.005 < h.percentile(0.95) < 0.02
        assert 0.03 < h.percentile(0.99) <= 0.1

    def test_percentiles_clamped_to_observed_range(self):
        h = obs.Histogram()
        h.observe(0.5)
        assert h.percentile(0.5) == 0.5
        assert h.percentile(0.99) == 0.5

    def test_zero_and_negative_underflow(self):
        h = obs.Histogram()
        h.observe(0.0)
        h.observe(-1.0)
        assert h.count == 2
        assert h.counts[0] == 2

    def test_empty_percentile_is_zero(self):
        assert obs.Histogram().percentile(0.5) == 0.0

    def test_merge_equals_combined_observation(self):
        import numpy as np

        rng = np.random.default_rng(7)
        a = rng.uniform(1e-5, 1.0, 200)
        b = rng.uniform(1e-4, 10.0, 300)
        h1, h2, ref = obs.Histogram(), obs.Histogram(), obs.Histogram()
        for v in a:
            h1.observe(v)
            ref.observe(v)
        for v in b:
            h2.observe(v)
            ref.observe(v)
        h1.merge(h2)
        assert h1.counts == ref.counts
        assert h1.count == ref.count
        assert h1.vmin == ref.vmin and h1.vmax == ref.vmax
        for q in (0.5, 0.95, 0.99):
            assert h1.percentile(q) == ref.percentile(q)

    def test_snapshot_round_trip(self):
        h = obs.Histogram()
        for v in (0.001, 0.02, 0.3):
            h.observe(v)
        snap = h.snapshot("x")
        assert snap["type"] == "hist" and snap["name"] == "x"
        back = obs.Histogram.from_snapshot(snap)
        assert back.counts == h.counts
        assert back.count == h.count
        assert back.vmin == h.vmin and back.vmax == h.vmax

    def test_observe_module_api(self):
        obs.configure(enabled=True, sinks=[])
        obs.observe("lat", 0.25)
        obs.observe("lat", 0.5)
        h = obs.get_telemetry().histograms["lat"]
        assert h.count == 2 and h.vmax == 0.5

    def test_observe_disabled_noop(self):
        obs.observe("lat", 0.25)
        assert "lat" not in obs.get_telemetry().histograms

    def test_span_hist_option_records_wall(self):
        tel = Telemetry(enabled=True)
        with tel.span("ecall", hist="ecall.wall_s"):
            time.sleep(0.005)
        h = tel.histograms["ecall.wall_s"]
        assert h.count == 1 and h.vmax >= 0.005

    def test_render_summary_includes_histograms(self):
        tel = Telemetry(enabled=True)
        tel.observe("lat", 0.1)
        text = render_summary(tel)
        assert "histograms:" in text and "lat" in text and "p95" in text

    def test_flush_emits_hist_snapshot(self):
        sink = MemorySink()
        tel = Telemetry(enabled=True, sinks=[sink])
        tel.observe("lat", 0.1)
        tel.flush()
        hists = [e for e in sink.events if e["type"] == "hist"]
        assert hists and hists[0]["name"] == "lat"


class TestEventsAndGauges:
    def test_event_linked_to_open_span(self):
        sink = MemorySink()
        tel = Telemetry(enabled=True, sinks=[sink])
        with tel.span("round") as r:
            tel.event("shard.crash", shard=1, fatal=True)
        ev = [e for e in sink.events if e["type"] == "event"][0]
        assert ev["name"] == "shard.crash"
        assert ev["parent_id"] == r.span_id
        assert ev["trace_id"] == r.trace_id
        assert ev["attrs"] == {"shard": 1, "fatal": True}
        assert "t" in ev

    def test_event_without_open_span(self):
        sink = MemorySink()
        tel = Telemetry(enabled=True, sinks=[sink])
        tel.event("lonely")
        ev = [e for e in sink.events if e["type"] == "event"][0]
        assert ev["trace_id"] is None and ev["parent_id"] is None

    def test_event_disabled_noop(self):
        obs.event("nothing")  # must not raise nor record

    def test_gauge_emits_timestamped_event(self):
        sink = MemorySink()
        tel = Telemetry(enabled=True, sinks=[sink])
        tel.gauge("dp.epsilon", 1.5)
        tel.gauge("dp.epsilon", 2.5)
        series = [e for e in sink.events if e["type"] == "gauge"]
        assert [e["value"] for e in series] == [1.5, 2.5]
        assert all("t" in e for e in series)
        assert series[0]["t"] <= series[1]["t"]


class TestAbsorb:
    def test_absorb_merges_every_kind(self):
        sink = MemorySink()
        tel = Telemetry(enabled=True, sinks=[sink])
        tel.add("runtime.retries", 1)
        shard = [
            {"type": "span", "name": "client", "path": "round/client",
             "depth": 1, "trace_id": "t1", "span_id": "w1",
             "parent_id": "R1", "t_start": 0.0, "wall_s": 0.25,
             "cpu_s": 0.2, "attrs": {}},
            {"type": "counter_add", "name": "runtime.retries", "value": 2},
            {"type": "observe", "name": "runtime.train_s", "value": 0.1},
            {"type": "gauge", "name": "worker.gauge", "value": 7.0},
            {"type": "event", "name": "shard.crash", "t": 1.0,
             "trace_id": "t1", "parent_id": "R1", "attrs": {}},
        ]
        n = tel.absorb_events(shard)
        assert n == len(shard)
        assert tel.span_stats["round/client"].count == 1
        assert tel.span_stats["round/client"].wall_s == 0.25
        assert tel.counters["runtime.retries"] == 3
        assert tel.histograms["runtime.train_s"].count == 1
        assert tel.gauges["worker.gauge"] == 7.0
        # every absorbed event is re-emitted to the coordinator sinks
        assert [e["type"] for e in sink.events[-5:]] == [
            "span", "counter_add", "observe", "gauge", "event"]

    def test_absorb_hist_snapshot_merges(self):
        tel = Telemetry(enabled=True, sinks=[])
        h = obs.Histogram()
        h.observe(0.5)
        tel.observe("lat", 0.1)
        tel.absorb_events([h.snapshot("lat")])
        assert tel.histograms["lat"].count == 2
        assert tel.histograms["lat"].vmax == 0.5

    def test_absorb_disabled_noop(self):
        tel = Telemetry(enabled=False)
        assert tel.absorb_events([{"type": "counter", "name": "c",
                                   "value": 1}]) == 0
        assert tel.counters == {}


class TestCrashSafety:
    def test_flush_on_span_tree_completion(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tel = Telemetry(enabled=True, sinks=[JsonlSink(path)])
        with tel.span("round"):
            with tel.span("inner"):
                pass
        # No close() yet: the completed tree must already be on disk.
        names = [e["name"] for e in read_jsonl(path)
                 if e["type"] == "span"]
        assert names == ["inner", "round"]

    def test_read_jsonl_tolerates_truncated_final_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n{"torn": tru')
        assert read_jsonl(path) == [{"a": 1}, {"b": 2}]
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path, strict=True)

    def test_read_jsonl_mid_stream_corruption_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"a": 1}\nBAD LINE\n{"b": 2}\n')
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path)

    def test_reopen_after_close_appends(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.emit({"n": 1})
        sink.close()
        sink.emit({"n": 2})
        sink.close()
        assert read_jsonl(path) == [{"n": 1}, {"n": 2}]

    def test_disinherit_discards_buffered_unwritten(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.emit({"n": 1})
        sink.flush()
        sink.emit({"n": 2})  # buffered, not yet flushed
        sink.disinherit()
        assert read_jsonl(path) == [{"n": 1}]
        # the sink object is inert afterwards
        sink.emit({"n": 3})
        sink.flush()


class TestForkSafety:
    @pytest.mark.skipif(not hasattr(__import__("os"), "register_at_fork"),
                        reason="no fork on this platform")
    def test_forked_child_degrades_to_noop(self, tmp_path):
        import multiprocessing as mp

        path = tmp_path / "parent.jsonl"
        sink = JsonlSink(path)
        ctx = mp.get_context("fork")
        queue = ctx.SimpleQueue()

        def child(q):
            q.put({
                "enabled": obs.enabled(),
                "n_sinks": len(obs.get_telemetry().sinks),
            })
            # All of these must be true no-ops in the child.
            obs.add("child.counter")
            obs.gauge("child.gauge", 1.0)
            obs.observe("child.hist", 1.0)
            with obs.span("child.span"):
                pass

        with obs.session(sinks=[sink]):
            obs.add("parent.counter")
            with obs.span("parent.before"):
                pass  # opens the JSONL handle pre-fork
            proc = ctx.Process(target=child, args=(queue,))
            proc.start()
            proc.join()
            seen = queue.get()
            with obs.span("parent.after"):
                pass
            tel = obs.get_telemetry()
            assert seen["enabled"] is False
            assert seen["n_sinks"] == 0
            assert "child.counter" not in tel.counters
            assert "child.hist" not in tel.histograms
            assert "child.span" not in tel.span_stats
        events = read_jsonl(path)
        names = {e.get("name") for e in events}
        assert "parent.before" in names and "parent.after" in names
        assert not any(str(n).startswith("child.") for n in names)
        # parent stream stayed coherent: exactly one copy of each line
        lines = [ln for ln in path.read_text().splitlines() if ln]
        assert len(lines) == len(set(
            (e.get("type"), e.get("seq"), e.get("name"), str(e)) 
            for e in events))

    @pytest.mark.skipif(not hasattr(__import__("os"), "register_at_fork"),
                        reason="no fork on this platform")
    def test_adopt_worker_session_records_shard(self, tmp_path):
        import multiprocessing as mp

        ctx = mp.get_context("fork")

        def worker(shard_dir, epoch):
            obs.adopt_worker_session(shard_dir, epoch)
            with obs.span("client", parent=obs.TraceContext(
                    trace_id="T", span_id="R", path="round"),
                    client=3):
                obs.observe("runtime.train_s", 0.01)
                obs.add("runtime.retries")

        with obs.session(sinks=[]):
            epoch = obs.get_telemetry()._epoch
            proc = ctx.Process(target=worker, args=(str(tmp_path), epoch))
            proc.start()
            proc.join()
            shards = list(tmp_path.glob("worker-*.jsonl"))
            assert len(shards) == 1
            events = read_jsonl(shards[0])
            span = [e for e in events if e.get("type") == "span"][0]
            assert span["trace_id"] == "T"
            assert span["parent_id"] == "R"
            assert span["path"] == "round/client"
            kinds = {e["type"] for e in events}
            assert "observe" in kinds and "counter_add" in kinds
            tel = obs.get_telemetry()
            tel.absorb_events(events)
            assert tel.span_stats["round/client"].count == 1
            assert tel.histograms["runtime.train_s"].count == 1
            assert tel.counters["runtime.retries"] == 1
