"""Edge-case coverage across modules."""

import math

import numpy as np

from repro.attack.pipeline import AttackConfig, build_teacher
from repro.core.do_aggregation import DoParameters, expected_padding_per_bin
from repro.core.olive import OliveConfig, OliveSystem
from repro.dp.accountant import PrivacyAccountant
from repro.fl.client import TrainingConfig
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import Flatten, Sequential, build_model
from repro.fl.quantize import quantize_deterministic
from repro.fl.client import LocalUpdate
from repro.sgx.memory import Trace


class TestAccountantEdgeCases:
    def test_zero_noise_reports_infinite_epsilon(self):
        acc = PrivacyAccountant(0.1, 0.0, 1e-5)
        acc.step()
        assert math.isinf(acc.epsilon)

    def test_zero_steps_zero_epsilon_even_with_zero_noise(self):
        acc = PrivacyAccountant(0.1, 0.0, 1e-5)
        assert acc.epsilon == 0.0


class TestModelEdgeCases:
    def test_parameterless_model_flat_roundtrip(self):
        model = Sequential([Flatten()])
        assert model.num_params == 0
        flat = model.get_flat()
        assert flat.size == 0
        model.set_flat(flat)  # must not raise

    def test_sixteen_bit_quantization_boundary(self):
        update = LocalUpdate(0, np.asarray([0], dtype=np.int64),
                             np.asarray([1.0]))
        q = quantize_deterministic(update, bits=16)
        assert abs(q.levels[0]) <= (1 << 15) - 1


class TestDoPaddingCap:
    def test_explicit_cap_respected(self):
        params = DoParameters(epsilon=1.0, sensitivity=1)
        assert expected_padding_per_bin(params, cap=7) == 7.0

    def test_default_cap_scales_with_epsilon(self):
        tight = expected_padding_per_bin(DoParameters(0.1, 1))
        loose = expected_padding_per_bin(DoParameters(10.0, 1))
        assert tight > loose


class TestTraceOpFilters:
    def test_cachelines_with_op_filter(self):
        trace = Trace()
        trace.record("g", 0, "read")
        trace.record("g", 20, "write")
        assert trace.cachelines("g", itemsize=8, op="write") == [2]
        assert trace.cachelines("g", itemsize=8, op="read") == [0]


class TestBuildTeacher:
    def test_teacher_structure(self):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 4, 20, 2, seed=0)
        model = build_model("tiny_mlp", seed=0)
        training = TrainingConfig(sparse_ratio=0.1)
        system = OliveSystem(
            model, clients,
            OliveConfig(sample_rate=1.0, aggregator="linear",
                        training=training),
            seed=0,
        )
        logs = system.run(2, traced=True)
        test_data = {
            label: gen.sample(np.full(9, label), np.random.default_rng(label))
            for label in range(6)
        }
        teacher = build_teacher(
            logs, model, test_data, training,
            AttackConfig(teacher_samples_per_label=3),
        )
        assert set(teacher) == {0, 1}
        for rnd in teacher.values():
            assert set(rnd) == set(range(6))
            for samples in rnd.values():
                assert len(samples) == 3
                for s in samples:
                    assert isinstance(s, frozenset)
                    assert all(0 <= i < model.num_params for i in s)

    def test_teacher_respects_granularity(self):
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 3, 20, 2, seed=0)
        model = build_model("tiny_mlp", seed=0)
        training = TrainingConfig(sparse_ratio=0.1)
        system = OliveSystem(
            model, clients,
            OliveConfig(sample_rate=1.0, aggregator="linear",
                        training=training),
            seed=0,
        )
        logs = system.run(1, traced=True)
        test_data = {
            label: gen.sample(np.full(6, label), np.random.default_rng(label))
            for label in range(6)
        }
        teacher = build_teacher(
            logs, model, test_data, training,
            AttackConfig(granularity="cacheline", teacher_samples_per_label=2),
        )
        max_line = (model.num_params * 4) // 64
        for samples in teacher[0].values():
            for s in samples:
                assert all(0 <= i <= max_line for i in s)


class TestObserverRoundTripWithWrites:
    def test_write_set_subset_of_full_set(self):
        from repro.core.aggregation import aggregate_linear_traced
        from repro.sgx.observer import SideChannelObserver

        trace = Trace()
        updates = [LocalUpdate(0, np.asarray([1, 5]), np.asarray([1.0, 2.0]))]
        aggregate_linear_traced(updates, 8, trace)
        obs = SideChannelObserver("g_star")
        assert obs.observed_write_set(trace) <= obs.observed_set(trace)
        assert obs.observed_write_set(trace) == frozenset({1, 5})
