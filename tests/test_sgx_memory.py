"""Tests for the traced memory substrate (repro.sgx.memory)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sgx.memory import (
    CACHELINE_BYTES,
    MemoryAccess,
    RegionLayout,
    Trace,
    TracedArray,
)


class TestMemoryAccess:
    def test_cacheline_of_first_element(self):
        assert MemoryAccess("g", 0, "read").cacheline(8) == 0

    def test_cacheline_boundary_8_byte_items(self):
        # 8 elements of 8 bytes fill one 64-byte line.
        assert MemoryAccess("g", 7, "read").cacheline(8) == 0
        assert MemoryAccess("g", 8, "read").cacheline(8) == 1

    def test_cacheline_boundary_4_byte_items(self):
        assert MemoryAccess("g", 15, "read").cacheline(4) == 0
        assert MemoryAccess("g", 16, "read").cacheline(4) == 1

    @given(st.integers(min_value=0, max_value=10_000),
           st.sampled_from([1, 2, 4, 8, 16]))
    def test_cacheline_matches_byte_arithmetic(self, offset, itemsize):
        access = MemoryAccess("r", offset, "write")
        assert access.cacheline(itemsize) == (offset * itemsize) // CACHELINE_BYTES


class TestTrace:
    def test_records_in_order(self):
        trace = Trace()
        trace.record("a", 1, "read")
        trace.record("b", 2, "write")
        assert [a.region for a in trace] == ["a", "b"]
        assert len(trace) == 2

    def test_equality_is_sequence_equality(self):
        t1, t2 = Trace(), Trace()
        for t in (t1, t2):
            t.record("g", 0, "read")
            t.record("g", 1, "write")
        assert t1 == t2
        t2.record("g", 2, "read")
        assert t1 != t2

    def test_order_matters_for_equality(self):
        t1, t2 = Trace(), Trace()
        t1.record("g", 0, "read")
        t1.record("g", 1, "read")
        t2.record("g", 1, "read")
        t2.record("g", 0, "read")
        assert t1 != t2

    def test_project_filters_by_region(self):
        trace = Trace()
        trace.record("g", 0, "read")
        trace.record("h", 5, "write")
        trace.record("g", 3, "write")
        assert [a.offset for a in trace.project("g")] == [0, 3]

    def test_offsets_filters_by_op(self):
        trace = Trace()
        trace.record("g", 0, "read")
        trace.record("g", 1, "write")
        trace.record("g", 2, "read")
        assert trace.offsets("g") == [0, 1, 2]
        assert trace.offsets("g", op="write") == [1]

    def test_cachelines_projection(self):
        trace = Trace()
        for offset in (0, 7, 8, 17):
            trace.record("g", offset, "read")
        assert trace.cachelines("g", itemsize=8) == [0, 0, 1, 2]

    def test_signature_is_hashable(self):
        trace = Trace()
        trace.record("g", 0, "read")
        assert hash(trace.signature()) == hash((("g", 0, "read"),))


class TestTracedArray:
    def test_read_write_roundtrip(self):
        arr = TracedArray("g", [1.0, 2.0, 3.0])
        arr.write(1, 9.0)
        assert arr.read(1) == 9.0
        assert arr.read(0) == 1.0

    def test_accesses_recorded(self):
        trace = Trace()
        arr = TracedArray("g", [0.0] * 4, trace=trace)
        arr.read(2)
        arr.write(3, 1.0)
        assert trace.signature() == (("g", 2, "read"), ("g", 3, "write"))

    def test_untraced_mode_records_nothing(self):
        arr = TracedArray("g", [0.0] * 4, trace=None)
        arr.read(0)
        arr.write(1, 5.0)  # no trace to inspect; just must not raise
        assert arr.read(1) == 5.0

    def test_out_of_bounds_read_raises(self):
        arr = TracedArray("g", [0.0])
        with pytest.raises(IndexError):
            arr.read(1)
        with pytest.raises(IndexError):
            arr.read(-1)

    def test_out_of_bounds_write_raises(self):
        arr = TracedArray("g", [0.0])
        with pytest.raises(IndexError):
            arr.write(5, 1.0)

    def test_zeros_constructor(self):
        arr = TracedArray.zeros("g", 5)
        assert len(arr) == 5
        assert arr.snapshot() == [0.0] * 5

    def test_snapshot_does_not_trace(self):
        trace = Trace()
        arr = TracedArray("g", [1.0, 2.0], trace=trace)
        assert arr.snapshot() == [1.0, 2.0]
        assert len(trace) == 0

    def test_load_replaces_contents_untraced(self):
        trace = Trace()
        arr = TracedArray.zeros("g", 3, trace=trace)
        arr.load([1.0, 2.0, 3.0])
        assert arr.snapshot() == [1.0, 2.0, 3.0]
        assert len(trace) == 0

    def test_load_length_mismatch_raises(self):
        arr = TracedArray.zeros("g", 3)
        with pytest.raises(ValueError):
            arr.load([1.0])

    def test_holds_tuples(self):
        arr = TracedArray("g", [(1, 0.5), (2, 0.25)])
        assert arr.read(0) == (1, 0.5)


class TestRegionLayout:
    def test_regions_do_not_overlap(self):
        layout = RegionLayout()
        layout.add("a", 10, 8)   # 80 bytes -> 128 aligned
        base_b = layout.add("b", 4, 4)
        assert base_b == 128
        assert layout.byte_address("b", 0) == 128

    def test_duplicate_region_raises(self):
        layout = RegionLayout()
        layout.add("a", 1, 8)
        with pytest.raises(ValueError):
            layout.add("a", 1, 8)

    def test_byte_address_arithmetic(self):
        layout = RegionLayout()
        layout.add("a", 10, 8)
        assert layout.byte_address("a", 3) == 24

    def test_byte_address_out_of_region_raises(self):
        layout = RegionLayout()
        layout.add("a", 2, 8)
        with pytest.raises(IndexError):
            layout.byte_address("a", 2)

    def test_total_bytes_accounts_alignment(self):
        layout = RegionLayout()
        layout.add("a", 1, 4)  # 4 bytes -> 64 aligned
        assert layout.total_bytes() == 64


class TestTraceMemmap:
    """Opt-in disk-backed columns must be invisible to every Trace API."""

    def _fill(self, trace, n=3000):
        for i in range(n):
            trace.record("g" if i % 3 else "h", i * 7, "read" if i % 2
                         else "write")
        trace.record_block("g", 10, 40, "write")

    def test_roundtrip_matches_ram_trace(self, tmp_path):
        ram, disk = Trace(), Trace(memmap_dir=str(tmp_path))
        for t in (ram, disk):
            self._fill(t)
        assert ram == disk
        assert list(ram) == list(disk)
        assert ram.signature() == disk.signature()

    def test_growth_and_widening_stay_memmapped(self, tmp_path):
        trace = Trace(memmap_dir=str(tmp_path))
        # Offset past int32 forces the int64 widening path; enough
        # records force capacity doubling.
        trace.record("g", 2**40, "read")
        for i in range(5000):
            trace.record("g", i, "read")
        ref = Trace()
        ref.record("g", 2**40, "read")
        for i in range(5000):
            ref.record("g", i, "read")
        assert trace == ref
        assert isinstance(trace._offs, np.memmap)
        assert trace._offs.dtype == np.int64

    def test_region_id_widening_memmapped(self, tmp_path):
        trace = Trace(memmap_dir=str(tmp_path))
        ref = Trace()
        for t in (trace, ref):
            for r in range(300):  # past uint8's 255 regions
                t.record(f"r{r}", r, "read")
        assert trace == ref
        assert isinstance(trace._rids, np.memmap)

    def test_enclave_opt_in(self, tmp_path):
        from repro.sgx.enclave import Enclave

        enclave = Enclave(trace_memmap_dir=str(tmp_path))
        assert enclave.trace._memmap_dir == str(tmp_path)
        enclave.reset_trace()
        assert enclave.trace._memmap_dir == str(tmp_path)
