"""Tests for client-dropout handling in OLIVE rounds."""

import numpy as np

from repro.core.olive import OliveConfig, OliveSystem
from repro.fl.client import TrainingConfig
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model


def _system(seed=0):
    gen = SyntheticClassData(SPECS["tiny"], seed=0)
    clients = partition_clients(gen, 10, 20, 2, seed=0)
    return OliveSystem(
        build_model("tiny_mlp", seed=0), clients,
        OliveConfig(sample_rate=1.0, noise_multiplier=0.5,
                    aggregator="advanced",
                    training=TrainingConfig(sparse_ratio=0.2)),
        seed=seed,
    )


class TestDropouts:
    def test_dropouts_excluded_from_round(self):
        system = _system()
        log = system.run_round(dropouts={2, 5})
        assert 2 not in log.participants
        assert 5 not in log.participants
        assert 2 not in log.updates and 5 not in log.updates

    def test_round_proceeds_with_remainder(self):
        system = _system()
        log = system.run_round(dropouts={0, 1, 2, 3, 4})
        assert len(log.participants) >= 1
        assert not np.array_equal(log.weights_before, log.weights_after)

    def test_no_dropouts_default(self):
        system = _system()
        log = system.run_round()
        assert set(log.participants) == system.enclave.sampled_clients

    def test_denominator_unchanged_by_dropouts(self):
        # DP semantics: the divisor stays the expected count qN, so a
        # round with dropouts produces a smaller-magnitude update (not
        # a re-normalized one that would break sensitivity analysis).
        full = _system(seed=3)
        log_full = full.run_round()
        dropped = _system(seed=3)
        log_drop = dropped.run_round(dropouts=set(range(5)))
        step_full = np.linalg.norm(
            log_full.weights_after - log_full.weights_before
        )
        step_drop = np.linalg.norm(
            log_drop.weights_after - log_drop.weights_before
        )
        assert step_drop < step_full * 1.1

    def test_dropout_of_unsampled_client_is_harmless(self):
        system = _system()
        log = system.run_round(dropouts={999})
        assert len(log.participants) >= 1

    def test_privacy_accounting_still_advances(self):
        system = _system()
        log = system.run_round(dropouts={0})
        assert log.epsilon > 0
