"""Flight-recorder report tests: re-parenting, rendering, diffing.

Covers the round-health report (:mod:`repro.obs.report`), the run
comparator (:mod:`repro.obs.diffing`), and the property that merged
worker telemetry shards re-parent into exactly one causally-linked
tree per (round, trace) regardless of interleaving order.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs import MemorySink, Telemetry
from repro.obs import diffing, report


@pytest.fixture(autouse=True)
def _clean_global():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _round_span(r: int) -> dict:
    return {
        "type": "span", "name": "round", "path": "round", "depth": 0,
        "trace_id": f"t{r}", "span_id": f"R{r}", "parent_id": None,
        "t_start": float(r), "wall_s": 1.0, "cpu_s": 0.5,
        "attrs": {"index": r},
    }


def _client_span(r: int, worker: int, i: int, wall: float) -> dict:
    return {
        "type": "span", "name": "client", "path": "round/client",
        "depth": 1, "trace_id": f"t{r}", "span_id": f"w{worker}c{r}.{i}",
        "parent_id": f"R{r}", "t_start": float(r) + 0.01 * i,
        "wall_s": wall, "cpu_s": wall, "attrs": {"client": i},
    }


class TestShardMergeProperty:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data(),
           n_rounds=st.integers(min_value=1, max_value=3),
           n_workers=st.integers(min_value=1, max_value=4),
           per_worker=st.integers(min_value=1, max_value=4))
    def test_any_interleaving_reparents_one_tree_per_round(
            self, data, n_rounds, n_workers, per_worker):
        # Build per-worker telemetry shards: each worker contributes
        # client spans for every round, parented on the round span ids.
        shards = []
        for w in range(n_workers):
            shard = [_client_span(r, w, i, wall=0.1 * (w + 1))
                     for r in range(n_rounds) for i in range(per_worker)]
            shards.append(shard)
        expected_wall = sum(e["wall_s"] for s in shards for e in s)

        # Random interleaving that preserves each shard's own order --
        # the shape a per-round drain of worker JSONL files produces.
        labels = [w for w, s in enumerate(shards) for _ in s]
        order = data.draw(st.permutations(labels))
        queues = [list(s) for s in shards]
        interleaved = [queues[w].pop(0) for w in order]

        sink = MemorySink()
        tel = Telemetry(enabled=True, sinks=[sink])
        tel.absorb_events([_round_span(r) for r in range(n_rounds)])
        tel.absorb_events(interleaved)

        rec = report.build_recording(
            report.FlightRecording(events=sink.events))
        # Exactly one tree per (round, trace): every trace has a single
        # root, every client span found its round, nothing orphaned.
        assert not rec.orphans
        assert len(rec.roots) == n_rounds
        for trace_id, nodes in rec.roots.items():
            assert len(nodes) == 1
            root = nodes[0]
            assert root.event["name"] == "round"
            assert len(root.children) == n_workers * per_worker
            assert all(c.event["trace_id"] == trace_id
                       for c in root.children)

        # Summary totals equal the sum over merged shards.
        stats = tel.span_stats["round/client"]
        assert stats.count == n_rounds * n_workers * per_worker
        assert stats.wall_s == pytest.approx(expected_wall)
        text = obs.render_summary(tel)
        assert "round" in text and "client" in text
        assert f"x{stats.count}" in text


class TestBuildRecording:
    def test_orphan_detection(self):
        events = [_round_span(0),
                  _client_span(0, 0, 0, 0.1),
                  {**_client_span(0, 0, 1, 0.1),
                   "parent_id": "missing-span"}]
        rec = report.build_recording(
            report.FlightRecording(events=events))
        assert len(rec.orphans) == 1
        assert rec.orphans[0]["parent_id"] == "missing-span"

    def test_snapshots_last_per_name_and_series(self):
        events = [
            {"type": "counter", "name": "retries", "value": 1},
            {"type": "counter", "name": "retries", "value": 4},
            {"type": "gauge", "name": "dp.epsilon", "value": 1.0, "t": 1.0},
            {"type": "gauge", "name": "dp.epsilon", "value": 2.0, "t": 2.0},
        ]
        rec = report.build_recording(
            report.FlightRecording(events=events))
        assert rec.counters["retries"] == 4
        assert rec.gauges["dp.epsilon"] == 2.0
        assert rec.gauge_series["dp.epsilon"] == [(1.0, 1.0), (2.0, 2.0)]

    def test_waterfall_aggregates_same_named_children(self):
        events = [_round_span(0)] + [
            _client_span(0, 0, i, 0.1) for i in range(6)]
        rec = report.build_recording(
            report.FlightRecording(events=events))
        text = report.render_report(rec)
        assert "client x6" in text


class TestReportMain:
    def _write(self, path, events):
        path.write_text(
            "".join(json.dumps(e) + "\n" for e in events))

    def test_strict_clean_stream_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        self._write(path, [_round_span(0), _client_span(0, 0, 0, 0.1)])
        assert report.main([str(path), "--strict"]) == 0
        out = capsys.readouterr().out
        assert "orphans: 0" in out

    def test_strict_orphan_exits_one(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        self._write(path, [{**_client_span(0, 0, 0, 0.1),
                            "parent_id": "nope"}])
        assert report.main([str(path), "--strict"]) == 1
        assert report.main([str(path)]) == 0  # non-strict still renders

    def test_strict_unparseable_line_exits_one(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(_round_span(0)) + "\nNOT JSON\n")
        assert report.main([str(path), "--strict"]) == 1
        assert "1 parse error" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path):
        assert report.main([str(tmp_path / "absent.jsonl")]) == 2


class TestChaosEndToEnd:
    def test_chaos_shard_round_renders_single_causal_trees(
            self, tmp_path, capsys):
        from repro.__main__ import main as demo_main

        out = tmp_path / "chaos.jsonl"
        demo_main(["--shards", "4", "--leaf-crash-rate", "0.4",
                   "--telemetry-out", str(out)])
        capsys.readouterr()

        rec = report.load_recording(out)
        assert rec.parse_errors == 0
        assert not rec.orphans
        # One causally-linked tree per round trace.
        round_roots = [nodes for nodes in rec.roots.values()
                       if any(n.event["name"].endswith("round")
                              for n in nodes)]
        assert round_roots
        assert all(len(nodes) == 1 for nodes in round_roots)
        # The injected crashes left a failover/crash event trail.
        names = {e["name"] for e in rec.point_events}
        assert "shard.crash" in names
        assert names & {"shard.failover", "shard.restart",
                        "shard.leaf_lost"}
        # Latency distributions made it into the stream.
        assert "ecall.wall_s" in rec.hists
        assert "shard.latency_s" in rec.hists

        assert report.main([str(out), "--strict"]) == 0
        text = capsys.readouterr().out
        assert "latency histograms" in text
        assert "p50" in text and "p95" in text and "p99" in text
        assert "shard event log" in text

    def test_process_executor_worker_spans_merge(self, tmp_path):

        from repro.core import OliveConfig, OliveSystem
        from repro.fl import (SPECS, SyntheticClassData, TrainingConfig,
                              build_model, partition_clients)
        from repro.runtime import RuntimeConfig

        out = tmp_path / "proc.jsonl"
        gen = SyntheticClassData(SPECS["tiny"], seed=0)
        clients = partition_clients(gen, 8, 16, 2, seed=0)
        config = OliveConfig(
            sample_rate=0.5, noise_multiplier=1.12,
            training=TrainingConfig(local_epochs=1, local_lr=0.3,
                                    sparse_ratio=0.2))
        system = OliveSystem(
            build_model("tiny_mlp", seed=0), clients, config, seed=0,
            runtime=RuntimeConfig(executor="process", workers=2))
        with obs.session(sinks=[obs.JsonlSink(out)]):
            system.run(1)
            system.close()  # drains the worker telemetry shards
        rec = report.load_recording(out)
        assert not rec.orphans
        client_spans = [e for e in rec.spans
                        if e["path"] == "round/client"]
        assert client_spans, "worker spans were not merged"
        round_ids = {e["span_id"] for e in rec.spans
                     if e["name"] == "round"}
        assert {e["parent_id"] for e in client_spans} <= round_ids
        assert "runtime.train_s" in rec.hists


class TestDiffing:
    def _archive(self, path, scale=1.0):
        events = [_round_span(0)] + [
            _client_span(0, 0, i, 0.1 * scale) for i in range(4)]
        h = obs.Histogram()
        for i in range(20):
            h.observe(0.01 * scale * (1 + i % 3))
        events.append(h.snapshot("runtime.train_s"))
        path.write_text("".join(json.dumps(e) + "\n" for e in events))

    def test_identical_runs_do_not_regress(self, tmp_path):
        base, cur = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._archive(base)
        self._archive(cur)
        paths, hists = diffing.diff_runs(base, cur)
        assert not diffing.regressed_paths(paths)
        assert not diffing.regressed_hists(hists)

    def test_slower_run_flags_the_regressed_phase(self, tmp_path):
        base, cur = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._archive(base, scale=1.0)
        self._archive(cur, scale=40.0)
        paths, hists = diffing.diff_runs(base, cur)
        bad_paths = diffing.regressed_paths(paths)
        assert [d.path for d in bad_paths] == ["round/client"]
        assert bad_paths[0].wall_ratio == pytest.approx(40.0)
        bad_hists = diffing.regressed_hists(hists)
        assert {d.name for d in bad_hists} == {"runtime.train_s"}
        text = diffing.render_diff(paths, hists)
        assert "round/client" in text and "!" in text

    def test_check_regression_diff_mode(self, tmp_path, capsys):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(
            Path(__file__).resolve().parent.parent / "benchmarks"))
        try:
            import check_regression
        finally:
            sys.path.pop(0)
        base, cur = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._archive(base)
        self._archive(cur, scale=40.0)
        rc = check_regression.main(["--diff", str(base), str(cur)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out and "round/client" in out
        rc = check_regression.main(["--diff", str(base), str(base)])
        assert rc == 0
