"""Tests for the verifiable-rounds audit subsystem.

Covers the Merkle layer (RFC 6962 shape, inclusion proofs), the
hash-chained log (tamper taxonomy: each adversary class fails with a
DISTINCT error), the recorder wiring through ``OliveSystem``, and the
deterministic replay verifier -- including the fault paths: sharded
rounds with leaf crashes, failover, and degraded completion must audit
clean.
"""

import copy
import hashlib
import json

import numpy as np
import pytest

from repro.audit import (
    EMPTY_ROOT,
    GENESIS,
    AuditChainError,
    AuditCommitmentError,
    AuditProofError,
    AuditRecorder,
    AuditReplayError,
    AuditTruncationError,
    aggregate_digest,
    chain_records,
    inclusion_proof,
    leaf_hash,
    make_manifest,
    merkle_root,
    node_hash,
    read_records,
    record_hash,
    upload_leaf,
    upload_merkle_root,
    verify_chain,
    verify_inclusion,
    verify_log,
)
from repro.audit.verify import generate_proof, verify_proof_payload
from repro.core.olive import OliveConfig, OliveSystem
from repro.fl.client import TrainingConfig
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model
from repro.runtime import (
    EnclaveFaultConfig,
    FaultConfig,
    RuntimeConfig,
    ShardConfig,
)

DATA = {"spec": "tiny", "seed": 0, "n_clients": 12,
        "samples_per_client": 20, "labels_per_client": 2,
        "partition_seed": 0}
MODEL = {"name": "tiny_mlp", "seed": 0}


def _config(**overrides):
    defaults = dict(
        sample_rate=0.5, noise_multiplier=1.12, aggregator="advanced",
        training=TrainingConfig(local_epochs=1, sparse_ratio=0.2),
    )
    defaults.update(overrides)
    return OliveConfig(**defaults)


def _build(config, runtime=None, shards=None, seed=0):
    gen = SyntheticClassData(SPECS[DATA["spec"]], seed=DATA["seed"])
    clients = partition_clients(
        gen, DATA["n_clients"], DATA["samples_per_client"],
        DATA["labels_per_client"], seed=DATA["partition_seed"])
    return OliveSystem(build_model(MODEL["name"], seed=MODEL["seed"]),
                       clients, config, seed=seed, runtime=runtime,
                       shards=shards)


def _recorded_run(tmp_path, rounds=3, runtime=None, shards=None, seed=0,
                  config=None):
    """Run an audited system; return the log path."""
    config = config or _config()
    path = tmp_path / "audit.jsonl"
    manifest = make_manifest(data=DATA, model=MODEL, config=config,
                             runtime=runtime, shards=shards, seed=seed)
    with AuditRecorder(path, manifest) as recorder:
        system = _build(config, runtime=runtime, shards=shards, seed=seed)
        system.audit = recorder
        system.run(rounds)
        system.close()
    return path


def _rewrite(path, records):
    with open(path, "w") as f:
        for record in records:
            f.write(json.dumps(record, sort_keys=True,
                               separators=(",", ":")) + "\n")


# ----------------------------------------------------------------------
# Merkle layer
# ----------------------------------------------------------------------
class TestMerkle:
    def test_empty_and_single_leaf(self):
        assert merkle_root([]) == EMPTY_ROOT
        leaf = leaf_hash(b"payload")
        assert merkle_root([leaf]) == leaf

    def test_two_leaves_is_domain_separated_node(self):
        a, b = leaf_hash(b"a"), leaf_hash(b"b")
        assert merkle_root([a, b]) == node_hash(a, b)
        # Leaf and node hashing are domain separated: hashing the
        # concatenation as a leaf gives a different digest.
        assert node_hash(a, b) != leaf_hash(a + b)

    def test_rfc6962_split_for_odd_counts(self):
        # n=5 splits 4|1, not 3|2.
        leaves = [leaf_hash(bytes([i])) for i in range(5)]
        left = merkle_root(leaves[:4])
        right = leaves[4]
        assert merkle_root(leaves) == node_hash(left, right)

    def test_leaf_payload_binds_client_id(self):
        assert upload_leaf(1, b"ct") != upload_leaf(2, b"ct")

    def test_root_sensitive_to_any_leaf_bit(self):
        payloads = [bytes([i]) * 8 for i in range(7)]
        leaves = [leaf_hash(p) for p in payloads]
        base = merkle_root(leaves)
        for i in range(7):
            mutated = list(payloads)
            mutated[i] = bytes([payloads[i][0] ^ 1]) + payloads[i][1:]
            assert merkle_root([leaf_hash(p) for p in mutated]) != base

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13])
    def test_inclusion_proofs_verify_for_every_leaf(self, n):
        leaves = [leaf_hash(bytes([i, n])) for i in range(n)]
        root = merkle_root(leaves)
        for i in range(n):
            proof = inclusion_proof(leaves, i)
            assert proof.root() == root
            assert verify_inclusion(proof, root)

    def test_tampered_proof_rejected(self):
        import dataclasses

        leaves = [leaf_hash(bytes([i])) for i in range(6)]
        root = merkle_root(leaves)
        proof = inclusion_proof(leaves, 2)
        forged = dataclasses.replace(proof, leaf=leaf_hash(b"forged"))
        assert not verify_inclusion(forged, root)

    def test_proof_index_bounds(self):
        leaves = [leaf_hash(b"x")]
        with pytest.raises(IndexError):
            inclusion_proof(leaves, 1)


# ----------------------------------------------------------------------
# Chained log
# ----------------------------------------------------------------------
class TestChainedLog:
    def _sample_log(self, tmp_path):
        path = tmp_path / "log.jsonl"
        manifest = make_manifest(data=DATA, model=MODEL, config=_config())
        recorder = AuditRecorder(path, manifest)
        rng = np.random.default_rng(0)
        for r in range(3):
            cts = {cid: bytes(rng.integers(0, 256, 40, dtype=np.uint8))
                   for cid in range(4)}
            recorder.record_round(
                r, accepted=sorted(cts), ciphertexts=cts,
                weights_after=rng.standard_normal(8), epsilon=0.5 * (r + 1),
                clip=1.0)
        recorder.close()
        return path

    def test_chain_verifies_and_links(self, tmp_path):
        path = self._sample_log(tmp_path)
        records = read_records(path)
        verify_chain(records)
        assert records[0]["prev"] == GENESIS
        for prev, cur in zip(records, records[1:]):
            assert cur["prev"] == prev["hash"]
            assert record_hash(cur) == cur["hash"]
        assert records[-1]["type"] == "seal"
        assert records[-1]["rounds"] == 3

    def test_edit_in_place_breaks_record_hash(self, tmp_path):
        path = self._sample_log(tmp_path)
        records = read_records(path)
        records[2]["epsilon"] = 99.0
        with pytest.raises(AuditChainError, match="stored hash"):
            verify_chain(records)

    def test_reorder_breaks_prev_link(self, tmp_path):
        path = self._sample_log(tmp_path)
        records = read_records(path)
        records[1], records[2] = records[2], records[1]
        with pytest.raises(AuditChainError, match="prev-hash link"):
            verify_chain(records)

    def test_tail_truncation_detected_by_missing_seal(self, tmp_path):
        path = self._sample_log(tmp_path)
        records = read_records(path)[:-1]
        with pytest.raises(AuditTruncationError, match="seal"):
            verify_chain(records)
        # Non-strict mode tolerates an unsealed (in-progress) log.
        verify_chain(records, require_seal=False)

    def test_interior_round_removal_detected_even_after_remint(
            self, tmp_path):
        # An attacker who deletes round 1 AND re-mints the whole chain
        # still leaves a round-index gap.
        path = self._sample_log(tmp_path)
        records = read_records(path)
        del records[2]  # round 1
        records[-1]["rounds"] = 2
        reminted = chain_records(records)
        with pytest.raises(AuditTruncationError, match="interior rounds"):
            verify_chain(reminted)

    def test_seal_round_count_mismatch_detected(self, tmp_path):
        path = self._sample_log(tmp_path)
        records = read_records(path)
        records[-1]["rounds"] = 2
        reminted = chain_records(records)
        with pytest.raises(AuditTruncationError, match="seal"):
            verify_chain(reminted)

    def test_garbage_line_is_chain_error(self, tmp_path):
        path = self._sample_log(tmp_path)
        with open(path, "a") as f:
            f.write("{not json\n")
        with pytest.raises(AuditChainError):
            read_records(path)


# ----------------------------------------------------------------------
# Recorder wiring through OliveSystem
# ----------------------------------------------------------------------
class TestRecorderWiring:
    def test_every_round_recorded_with_commitments(self, tmp_path):
        path = _recorded_run(tmp_path, rounds=3)
        records = read_records(path)
        verify_chain(records)
        rounds = [r for r in records if r["type"] == "round"]
        assert [r["round"] for r in rounds] == [0, 1, 2]
        for r in rounds:
            cts = {int(c): bytes.fromhex(b)
                   for c, b in r["ciphertexts"].items()}
            assert sorted(cts) == r["accepted"]
            assert upload_merkle_root(cts) == r["merkle_root"]
            assert len(r["aggregate_sha256"]) == 64

    def test_recorded_epsilon_tracks_accountant(self, tmp_path):
        path = _recorded_run(tmp_path, rounds=2)
        rounds = [r for r in read_records(path) if r["type"] == "round"]
        assert rounds[1]["epsilon"] > rounds[0]["epsilon"] > 0

    def test_sharded_rounds_commit_partials(self, tmp_path):
        shards = ShardConfig(shards=3)
        path = _recorded_run(tmp_path, rounds=2, shards=shards)
        rounds = [r for r in read_records(path) if r["type"] == "round"]
        for r in rounds:
            assert r["n_shards"] == 3
            assert len(r["partials"]) == 3
            for p in r["partials"]:
                assert set(p) == {"shard", "leaf", "sha256"}

    def test_accepted_without_ciphertext_rejected(self, tmp_path):
        manifest = make_manifest(data=DATA, model=MODEL, config=_config())
        recorder = AuditRecorder(tmp_path / "log.jsonl", manifest)
        with pytest.raises(ValueError, match="no\\s+logged ciphertext"):
            recorder.record_round(
                0, accepted=[1, 2], ciphertexts={1: b"x"},
                weights_after=np.zeros(4), epsilon=0.1, clip=1.0)

    def test_close_is_idempotent(self, tmp_path):
        path = _recorded_run(tmp_path, rounds=1)
        records = read_records(path)
        assert sum(1 for r in records if r["type"] == "seal") == 1


# ----------------------------------------------------------------------
# Replay verification, incl. fault paths
# ----------------------------------------------------------------------
class TestReplay:
    def test_clean_run_replays_bit_identically(self, tmp_path):
        path = _recorded_run(tmp_path, rounds=3)
        report = verify_log(path, strict=True)
        assert report.replayed and report.sealed
        assert [v.round_index for v in report.rounds] == [0, 1, 2]
        assert all(v.merkle_ok and v.replay_ok for v in report.rounds)

    def test_faulty_cohort_run_audits_clean(self, tmp_path):
        runtime = RuntimeConfig(faults=FaultConfig(
            dropout_rate=0.2, straggler_rate=0.3))
        path = _recorded_run(tmp_path, rounds=3, runtime=runtime, seed=5)
        report = verify_log(path, strict=True)
        assert all(v.replay_ok for v in report.rounds)

    def test_sharded_crash_failover_run_audits_clean(self, tmp_path):
        # The acceptance scenario: 4 shards, 40% leaf crash rate.
        # Failover and degraded rounds must replay bit-identically,
        # partial digests included.
        shards = ShardConfig(
            shards=4, faults=EnclaveFaultConfig(leaf_crash_rate=0.4))
        path = _recorded_run(tmp_path, rounds=4, shards=shards, seed=7)
        rounds = [r for r in read_records(path) if r["type"] == "round"]
        report = verify_log(path, strict=True)
        assert all(v.replay_ok for v in report.rounds)
        assert all(v.sharded for v in report.rounds)
        # The verdicts must mirror the logged degraded flags.
        assert [v.degraded for v in report.rounds] == \
            [bool(r.get("degraded")) for r in rounds]

    def test_forged_aggregate_fails_replay_distinctly(self, tmp_path):
        path = _recorded_run(tmp_path, rounds=2)
        records = read_records(path)
        target = copy.deepcopy(records)
        for r in target:
            if r.get("type") == "round" and r["round"] == 1:
                r["aggregate_sha256"] = hashlib.sha256(b"forged").hexdigest()
        _rewrite(path, chain_records(target))
        with pytest.raises(AuditReplayError, match="forged aggregate") as e:
            verify_log(path, strict=True)
        assert e.value.round_index == 1
        assert e.value.exit_code == 5

    def test_mutated_ciphertext_fails_commitment_distinctly(self, tmp_path):
        path = _recorded_run(tmp_path, rounds=2)
        records = copy.deepcopy(read_records(path))
        for r in records:
            if r.get("type") == "round" and r["round"] == 0:
                cid = next(iter(r["ciphertexts"]))
                blob = bytearray.fromhex(r["ciphertexts"][cid])
                blob[3] ^= 0xFF
                r["ciphertexts"][cid] = bytes(blob).hex()
        _rewrite(path, chain_records(records))
        with pytest.raises(AuditCommitmentError, match="Merkle root") as e:
            verify_log(path, strict=True)
        assert e.value.round_index == 0
        assert e.value.exit_code == 4

    def test_forged_partial_digest_fails_replay(self, tmp_path):
        shards = ShardConfig(shards=2)
        path = _recorded_run(tmp_path, rounds=2, shards=shards)
        records = copy.deepcopy(read_records(path))
        for r in records:
            if r.get("type") == "round" and r["round"] == 1:
                r["partials"][0]["sha256"] = "00" * 32
        _rewrite(path, chain_records(records))
        with pytest.raises(AuditReplayError, match="partial") as e:
            verify_log(path, strict=True)
        assert e.value.round_index == 1

    def test_no_replay_mode_stops_at_commitments(self, tmp_path):
        path = _recorded_run(tmp_path, rounds=2)
        report = verify_log(path, replay=False, strict=True)
        assert not report.replayed
        assert all(v.merkle_ok for v in report.rounds)
        assert all(v.replay_ok is None for v in report.rounds)

    def test_aggregate_digest_is_bit_sensitive(self):
        w = np.arange(16, dtype=np.float64)
        d0 = aggregate_digest(w)
        w2 = w.copy()
        w2[7] = np.nextafter(w2[7], np.inf)
        assert aggregate_digest(w2) != d0


# ----------------------------------------------------------------------
# Inclusion proofs against a recorded log
# ----------------------------------------------------------------------
class TestProofs:
    def test_proof_roundtrip_for_each_accepted_client(self, tmp_path):
        path = _recorded_run(tmp_path, rounds=2)
        rounds = [r for r in read_records(path) if r["type"] == "round"]
        record = rounds[1]
        for cid in record["accepted"]:
            proof = generate_proof(path, 1, cid)
            assert proof["merkle_root"] == record["merkle_root"]
            verify_proof_payload(path, proof)

    def test_proof_for_absent_client_fails(self, tmp_path):
        path = _recorded_run(tmp_path, rounds=1)
        with pytest.raises(AuditProofError, match="not accepted"):
            generate_proof(path, 0, 999)

    def test_proof_for_absent_round_fails(self, tmp_path):
        path = _recorded_run(tmp_path, rounds=1)
        with pytest.raises(AuditProofError, match="not in the log"):
            generate_proof(path, 7, 0)

    def test_doctored_proof_rejected(self, tmp_path):
        path = _recorded_run(tmp_path, rounds=1)
        record = [r for r in read_records(path)
                  if r["type"] == "round"][0]
        cid = record["accepted"][0]
        proof = generate_proof(path, 0, cid)
        proof["leaf_sha256"] = hashlib.sha256(b"swapped").hexdigest()
        if not proof["path"]:
            pytest.skip("single-leaf round: leaf IS the root")
        with pytest.raises(AuditProofError, match="inclusion proof") as e:
            verify_proof_payload(path, proof)
        assert e.value.exit_code == 6


# ----------------------------------------------------------------------
# Checkpoint <-> audit continuity
# ----------------------------------------------------------------------
class TestCheckpointAuditContinuity:
    def test_checkpoint_pins_audit_head(self, tmp_path):
        from repro.core.checkpoint import save_checkpoint

        config = _config()
        manifest = make_manifest(data=DATA, model=MODEL, config=config)
        recorder = AuditRecorder(tmp_path / "log.jsonl", manifest)
        system = _build(config)
        system.audit = recorder
        system.run(2)
        save_checkpoint(system, tmp_path / "ckpt.npz")
        with np.load(tmp_path / "ckpt.npz") as archive:
            meta = json.loads(str(archive["meta"]))
        assert meta["version"] == 3
        assert meta["audit_head"] == recorder.head
        assert meta["audit_rounds"] == 2
        system.close()
        recorder.close()

    def test_restore_onto_diverged_chain_refused(self, tmp_path):
        from repro.core.checkpoint import load_checkpoint, save_checkpoint

        config = _config()
        manifest = make_manifest(data=DATA, model=MODEL, config=config)
        recorder = AuditRecorder(tmp_path / "a.jsonl", manifest)
        system = _build(config)
        system.audit = recorder
        system.run(1)
        save_checkpoint(system, tmp_path / "ckpt.npz")
        system.close()
        recorder.close()

        other = AuditRecorder(tmp_path / "b.jsonl", manifest)
        other.record_round(0, accepted=[0], ciphertexts={0: b"zz"},
                           weights_after=np.zeros(4), epsilon=0.1, clip=1.0)
        fresh = _build(config, seed=9)
        fresh.audit = other
        with pytest.raises(ValueError, match="diverged audit chain"):
            load_checkpoint(fresh, tmp_path / "ckpt.npz")
        fresh.close()
        other.close()

    def test_unaudited_restore_still_works(self, tmp_path):
        from repro.core.checkpoint import load_checkpoint, save_checkpoint

        system = _build(_config())
        system.run(1)
        save_checkpoint(system, tmp_path / "ckpt.npz")
        fresh = _build(_config(), seed=9)
        meta = load_checkpoint(fresh, tmp_path / "ckpt.npz")
        assert meta["audit_head"] is None
        assert np.array_equal(fresh.global_weights, system.global_weights)
        system.close()
        fresh.close()
