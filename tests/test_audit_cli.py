"""Exit-code contract of ``python -m repro audit``.

Every adversary class maps to a distinct, stable exit code -- the CI
gates match on them, so this is a compatibility surface, not an
implementation detail.
"""

import copy
import json

import pytest

from repro.audit import chain_records, read_records
from repro.audit.cli import main as audit_main
from repro.core.olive import OliveConfig
from repro.fl.client import TrainingConfig

from .test_audit import _recorded_run


def _rewrite(path, records):
    with open(path, "w") as f:
        for record in records:
            f.write(json.dumps(record, sort_keys=True,
                               separators=(",", ":")) + "\n")


@pytest.fixture(scope="module")
def recorded_log(tmp_path_factory):
    config = OliveConfig(
        sample_rate=0.5, noise_multiplier=1.12, aggregator="advanced",
        training=TrainingConfig(local_epochs=1, sparse_ratio=0.2),
    )
    return _recorded_run(tmp_path_factory.mktemp("cli"), rounds=2,
                         config=config)


def _tampered_copy(recorded_log, tmp_path, mutate):
    records = copy.deepcopy(read_records(recorded_log))
    mutate(records)
    path = tmp_path / "tampered.jsonl"
    _rewrite(path, records)
    return path


class TestExitCodes:
    def test_clean_log_exits_zero(self, recorded_log, capsys):
        assert audit_main([str(recorded_log), "--strict"]) == 0
        out = capsys.readouterr().out
        assert "audit: OK" in out
        assert "replay bit-identical" in out
        assert "merkle ok, replay ok" in out

    def test_missing_log_exits_one(self, tmp_path):
        assert audit_main([str(tmp_path / "nope.jsonl")]) == 1

    def test_edited_record_exits_two(self, recorded_log, tmp_path, capsys):
        def mutate(records):
            records[1]["epsilon"] = 123.0
        path = _tampered_copy(recorded_log, tmp_path, mutate)
        assert audit_main([str(path), "--strict"]) == 2
        assert "AuditChainError" in capsys.readouterr().out

    def test_truncated_log_exits_three(self, recorded_log, tmp_path,
                                       capsys):
        def mutate(records):
            records.pop()  # drop the seal
        path = _tampered_copy(recorded_log, tmp_path, mutate)
        assert audit_main([str(path), "--strict"]) == 3
        assert "AuditTruncationError" in capsys.readouterr().out
        # Non-strict tolerates the unsealed tail (crash-in-progress).
        assert audit_main([str(path)]) == 0

    def test_flipped_ciphertext_byte_exits_four_naming_round(
            self, recorded_log, tmp_path, capsys):
        # The CI tamper smoke: flip one logged ciphertext byte and
        # re-mint the chain (the strongest file-rewriting adversary
        # short of breaking SHA-256).
        def mutate(records):
            record = records[2]  # round 1
            cid = next(iter(record["ciphertexts"]))
            blob = bytearray.fromhex(record["ciphertexts"][cid])
            blob[0] ^= 0x01
            record["ciphertexts"][cid] = bytes(blob).hex()
            records[:] = chain_records(records)
        path = _tampered_copy(recorded_log, tmp_path, mutate)
        assert audit_main([str(path), "--strict"]) == 4
        out = capsys.readouterr().out
        assert "FAIL (round 1)" in out
        assert "AuditCommitmentError" in out

    def test_forged_aggregate_exits_five_naming_round(
            self, recorded_log, tmp_path, capsys):
        def mutate(records):
            records[1]["aggregate_sha256"] = "ef" * 32
            records[:] = chain_records(records)
        path = _tampered_copy(recorded_log, tmp_path, mutate)
        assert audit_main([str(path), "--strict"]) == 5
        out = capsys.readouterr().out
        assert "FAIL (round 0)" in out
        assert "forged aggregate" in out

    def test_proof_roundtrip_and_failure_exits_six(
            self, recorded_log, tmp_path, capsys):
        record = [r for r in read_records(recorded_log)
                  if r["type"] == "round"][0]
        cid = record["accepted"][0]
        proof_path = tmp_path / "proof.json"
        assert audit_main([str(recorded_log), "--round", "0",
                           "--prove-client", str(cid),
                           "--out", str(proof_path)]) == 0
        assert audit_main([str(recorded_log),
                           "--verify-proof", str(proof_path)]) == 0
        assert audit_main([str(recorded_log), "--round", "0",
                           "--prove-client", "424242"]) == 6
        assert "AuditProofError" in capsys.readouterr().out

    def test_prove_client_requires_round(self, recorded_log):
        assert audit_main([str(recorded_log),
                           "--prove-client", "1"]) == 1

    def test_single_round_mode(self, recorded_log, capsys):
        assert audit_main([str(recorded_log), "--strict",
                           "--round", "1"]) == 0
        assert audit_main([str(recorded_log), "--strict",
                           "--round", "17"]) == 6

    def test_no_replay_mode(self, recorded_log, capsys):
        assert audit_main([str(recorded_log), "--strict",
                           "--no-replay"]) == 0
        assert "replay skipped" in capsys.readouterr().out


class TestMainDispatch:
    def test_module_dispatches_audit_subcommand(self, recorded_log):
        from repro.__main__ import main as repro_main

        with pytest.raises(SystemExit) as e:
            repro_main(["audit", str(recorded_log), "--strict"])
        assert e.value.code == 0
