"""Fault-tolerant sharded multi-enclave aggregation tests.

Pins the tentpole contracts of :mod:`repro.runtime.shards`:

1. **Recovery is invisible** -- every recovery path (leaf restart from
   checkpoint, failover to a sibling, resume-from-zero, root restart)
   produces an aggregate bit-identical to the fault-free sharded run
   and to a deterministic replay of the same seed + fault plan.
2. **No double counting, no lost uploads** -- the accepted-digest set
   travels inside sealed checkpoints; replays and cross-shard
   duplicates are refused by enclaves, not by coordinator bookkeeping.
3. **Degraded completion** -- a shard that exhausts its retry/failover
   budget fails the shard, not the round, unless the global quorum
   breaks -- then the round aborts with QuorumNotMetError *before*
   any privacy budget is spent.

Plus the satellite regressions: explicit ``Enclave.begin_round``,
sealed-checkpoint integrity, per-client failure reasons, and the
vectorized-executor fault edges.
"""

import types

import numpy as np
import pytest

from repro.core.olive import OliveConfig, OliveSystem
from repro.fl.client import TrainingConfig
from repro.fl.datasets import SPECS, SyntheticClassData, partition_clients
from repro.fl.models import build_model
from repro.runtime import (
    REASON_DROPOUT,
    REASON_STRAGGLER,
    REASON_TRANSIENT,
    STATUS_FAILED,
    STATUS_REJECTED,
    CohortRuntime,
    EnclaveFaultConfig,
    EnclaveFaultInjector,
    FaultConfig,
    LeafFaultPlan,
    QuorumNotMetError,
    RootFaultPlan,
    RuntimeConfig,
    ShardConfig,
    ShardedAggregator,
    plan_shards,
)
from repro.runtime.cohort import Delivery
from repro.sgx import crypto
from repro.sgx.attestation import AttestationService
from repro.sgx.enclave import (
    Enclave,
    EnclaveSecurityError,
    provision_enclave_with_clients,
)

D = 40
K = 4
TRAIN = TrainingConfig(local_epochs=1, local_lr=0.1, batch_size=8,
                       sparse_ratio=0.1, clip=1.0)


def build_root(n=60, seed=7):
    """A provisioned root enclave plus n sealed synthetic uploads."""
    svc = AttestationService(signing_key=b"k" * 32, platform_secret=b"p" * 32)
    root = Enclave(attestation_service=svc, seed=seed)
    keys = provision_enclave_with_clients(root, range(n))
    rng = np.random.default_rng(seed)
    deliveries = []
    for cid in range(n):
        idx = np.sort(rng.choice(D, size=K, replace=False))
        payload = crypto.encode_sparse_gradient(idx, rng.normal(size=K))
        ct = crypto.seal(keys[cid], payload,
                         nonce=bytes(12) + cid.to_bytes(4, "big"))
        deliveries.append(Delivery(client_id=cid, ciphertext=ct, result=None))
    root.begin_round(sampled=range(n))
    return root, deliveries


def run_shards(faults=None, n=60, entropy=123, min_accepted=0,
               injector=None, **cfg_kwargs):
    root, deliveries = build_root(n=n)
    cfg_kwargs.setdefault("shards", 4)
    cfg_kwargs.setdefault("oblivious_batch", 8)
    cfg_kwargs.setdefault("max_shard_retries", 6)
    cfg = ShardConfig(faults=faults or EnclaveFaultConfig(), **cfg_kwargs)
    service = ShardedAggregator(root, cfg, entropy=entropy)
    if injector is not None:
        service.injector = injector
    report = service.aggregate_round(0, deliveries, D,
                                     sampled=set(range(n)),
                                     min_accepted=min_accepted)
    return report, service, deliveries


def stub_injector(leaf_plans=None, root_plan=None):
    """An injector stub: scripted plans per (shard, attempt), else clean.

    ``leaf_plans`` maps (shard_index, attempt) -> LeafFaultPlan.
    """
    plans = leaf_plans or {}
    stub = types.SimpleNamespace()
    stub.leaf_plan = lambda r, s, a: plans.get((s, a), LeafFaultPlan())
    stub.root_plan = lambda r: root_plan or RootFaultPlan()
    return stub


def dense_sum(deliveries, keys_root, accepted):
    """Dense reference sum of the accepted clients' plaintext updates."""
    total = np.zeros(D)
    for dv in deliveries:
        if dv.client_id not in accepted or dv.duplicate:
            continue
        payload = crypto.open_sealed(keys_root.keystore.get(dv.client_id),
                                     dv.ciphertext)
        idx, vals = crypto.decode_sparse_gradient(payload)
        np.add.at(total, np.asarray(idx), np.asarray(vals))
    return total


class TestPlanning:
    def test_explicit_count_wins(self):
        assert plan_shards(10**6, D, 500, ShardConfig(shards=3)) == 3

    def test_epc_aware_sizing_grows_with_uploads(self):
        cfg = ShardConfig(epc_bytes=16 * 1024 * 1024, max_shards=64)
        small = plan_shards(1_000, D, 500, cfg)
        large = plan_shards(200_000, D, 500, cfg)
        assert small == 1
        assert large > small

    def test_max_shards_caps_the_plan(self):
        cfg = ShardConfig(epc_bytes=9 * 1024 * 1024, max_shards=4)
        assert plan_shards(10**7, D, 2000, cfg) == 4

    def test_zero_uploads_one_shard(self):
        assert plan_shards(0, D, 0, ShardConfig()) == 1

    @pytest.mark.parametrize("kwargs", [
        {"shards": 0},
        {"epc_utilization": 0.0},
        {"epc_utilization": 1.5},
        {"oblivious_batch": 0},
        {"checkpoint_every_batches": 0},
        {"shard_deadline_s": 0.0},
        {"max_shard_retries": -1},
        {"min_shard_quorum": 1.5},
        {"aggregator": "nope"},
    ])
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            ShardConfig(**kwargs)


class TestEnclaveFaultInjector:
    def test_plans_deterministic_and_keyed_by_shard(self):
        cfg = EnclaveFaultConfig(leaf_crash_rate=0.4,
                                 leaf_straggler_rate=0.4,
                                 root_restart_rate=0.5)
        a = EnclaveFaultInjector(cfg, entropy=5)
        b = EnclaveFaultInjector(cfg, entropy=5)
        for r in range(3):
            for s in range(4):
                for t in range(3):
                    assert a.leaf_plan(r, s, t) == b.leaf_plan(r, s, t)
            assert a.root_plan(r) == b.root_plan(r)

    def test_inactive_config_is_clean(self):
        inj = EnclaveFaultInjector(EnclaveFaultConfig(), entropy=1)
        assert inj.leaf_plan(0, 0, 0).clean
        assert inj.root_plan(0).restart_fraction is None

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            EnclaveFaultConfig(leaf_crash_rate=1.5)
        with pytest.raises(ValueError):
            EnclaveFaultConfig(leaf_straggler_delay_s=-1)


class TestFaultFreeSharding:
    def test_accepts_everything_and_matches_dense_sum(self):
        report, service, deliveries = run_shards()
        assert report.completion_rate == 1.0
        assert not report.degraded
        assert report.accepted_clients == list(range(60))
        ref = dense_sum(deliveries, service.root, set(range(60)))
        np.testing.assert_allclose(report.aggregate, ref, atol=1e-12)

    def test_deterministic_across_instances(self):
        a, _, _ = run_shards()
        b, _, _ = run_shards()
        assert a.aggregate.tobytes() == b.aggregate.tobytes()
        assert a.accepted_clients == b.accepted_clients

    def test_replayed_duplicate_deduped_once(self):
        root, deliveries = build_root()
        dup = deliveries[5]
        deliveries.append(Delivery(client_id=dup.client_id,
                                   ciphertext=dup.ciphertext,
                                   result=None, duplicate=True))
        service = ShardedAggregator(root, ShardConfig(shards=4), entropy=1)
        report = service.aggregate_round(0, deliveries, D,
                                         sampled=set(range(60)))
        assert sum(o.deduped for o in report.outcomes) == 1
        assert report.accepted_clients == list(range(60))
        assert dup.client_id not in report.rejected

    def test_corrupt_upload_rejected_with_reason(self):
        root, deliveries = build_root()
        bad = deliveries[3].ciphertext
        tampered = crypto.Ciphertext(nonce=bad.nonce,
                                     body=bad.body[:-1] + b"\x00",
                                     tag=bad.tag)
        deliveries[3] = Delivery(client_id=3, ciphertext=tampered,
                                 result=None, corrupt=True)
        service = ShardedAggregator(root, ShardConfig(shards=4), entropy=1)
        report = service.aggregate_round(0, deliveries, D,
                                         sampled=set(range(60)))
        assert report.rejected == {3: "corrupt"}
        assert 3 not in report.accepted_clients
        assert len(report.accepted_clients) == 59

    def test_unsampled_upload_rejected(self):
        root, deliveries = build_root()
        service = ShardedAggregator(root, ShardConfig(shards=2), entropy=1)
        report = service.aggregate_round(0, deliveries, D,
                                         sampled=set(range(30)))
        assert len(report.accepted_clients) == 30
        assert all(reason == "unsampled"
                   for reason in report.rejected.values())


class TestRecovery:
    def _clean(self):
        report, _, _ = run_shards()
        return report

    def test_restart_resumes_from_checkpoint(self):
        clean = self._clean()
        # Shard 1 crashes (non-fatal) mid-attempt 0, then runs clean.
        inj = stub_injector({(1, 0): LeafFaultPlan(crash_fraction=0.7)})
        report, _, _ = run_shards(injector=inj)
        out = report.outcomes[1]
        assert out.crashes == 1 and out.restarts == 1 and out.failovers == 0
        assert out.checkpoints >= 1
        assert report.aggregate.tobytes() == clean.aggregate.tobytes()
        assert report.accepted_clients == clean.accepted_clients

    def test_fatal_crash_fails_over_to_sibling(self):
        clean = self._clean()
        inj = stub_injector({(2, 0): LeafFaultPlan(crash_fraction=0.5,
                                                   fatal=True)})
        report, service, _ = run_shards(injector=inj)
        out = report.outcomes[2]
        assert out.failovers == 1 and out.restarts == 0
        assert not service._leaves[out.shard_index % 4].alive or \
            out.leaf_index != out.shard_index
        assert report.aggregate.tobytes() == clean.aggregate.tobytes()

    def test_crash_before_any_checkpoint_resumes_from_zero(self):
        clean = self._clean()
        # Checkpoint cadence longer than the shard: ckpt stays None.
        inj = stub_injector({(0, 0): LeafFaultPlan(crash_fraction=0.9)})
        report, _, _ = run_shards(injector=inj, checkpoint_every_batches=100)
        out = report.outcomes[0]
        assert out.crashes == 1 and out.checkpoints == 0
        # Re-ingesting from zero must not double-count anything.
        assert report.aggregate.tobytes() == clean.aggregate.tobytes()

    def test_double_crash_same_shard(self):
        clean = self._clean()
        inj = stub_injector({
            (3, 0): LeafFaultPlan(crash_fraction=0.4),
            (3, 1): LeafFaultPlan(crash_fraction=0.8, fatal=True),
        })
        report, _, _ = run_shards(injector=inj)
        out = report.outcomes[3]
        assert out.crashes == 2
        assert out.restarts == 1 and out.failovers == 1
        assert report.aggregate.tobytes() == clean.aggregate.tobytes()

    def test_root_restart_recovers_from_checkpoint(self):
        clean = self._clean()
        inj = stub_injector(root_plan=RootFaultPlan(restart_fraction=0.6))
        report, _, _ = run_shards(injector=inj)
        assert report.root_restarts == 1
        assert report.aggregate.tobytes() == clean.aggregate.tobytes()
        assert report.accepted_clients == clean.accepted_clients

    def test_root_restart_before_first_checkpoint(self):
        clean = self._clean()
        inj = stub_injector(root_plan=RootFaultPlan(restart_fraction=0.0))
        report, _, _ = run_shards(injector=inj)
        assert report.root_restarts == 1
        assert report.aggregate.tobytes() == clean.aggregate.tobytes()

    def test_seeded_faults_replay_bit_identically(self):
        faults = EnclaveFaultConfig(leaf_crash_rate=0.4,
                                    crash_fatal_rate=0.5,
                                    leaf_straggler_rate=0.3,
                                    root_restart_rate=1.0)
        a, _, _ = run_shards(faults=faults, entropy=8)
        b, _, _ = run_shards(faults=faults, entropy=8)
        assert a.aggregate.tobytes() == b.aggregate.tobytes()
        assert a.accepted_clients == b.accepted_clients
        assert [(o.crashes, o.failovers, o.restarts, o.attempts)
                for o in a.outcomes] == \
               [(o.crashes, o.failovers, o.restarts, o.attempts)
                for o in b.outcomes]

    def test_deadline_miss_reassigns_and_completes(self):
        clean = self._clean()
        inj = stub_injector({(1, 0): LeafFaultPlan(delay_s=10.0),
                             (1, 1): LeafFaultPlan(delay_s=10.0)})
        report, _, _ = run_shards(injector=inj, shard_deadline_s=1.0)
        out = report.outcomes[1]
        assert out.deadline_misses == 2 and out.failovers == 2
        assert out.completed
        assert out.latency_s >= 2.0  # two full deadlines burned
        assert report.aggregate.tobytes() == clean.aggregate.tobytes()

    def test_permanently_slow_shard_degrades_the_round(self):
        faults = EnclaveFaultConfig(leaf_straggler_rate=1.0,
                                    leaf_straggler_delay_s=10.0,
                                    leaf_straggler_jitter=False)
        report, _, _ = run_shards(faults=faults, shard_deadline_s=1.0,
                                  max_shard_retries=2)
        assert report.degraded
        assert report.completion_rate == 0.0
        assert report.accepted_clients == []
        assert all(o.deadline_misses == 3 for o in report.outcomes)

    def test_degraded_round_sums_surviving_shards_only(self):
        # Shard 0 always crashes; everyone else completes.
        inj = stub_injector({(0, a): LeafFaultPlan(crash_fraction=0.5)
                             for a in range(10)})
        report, service, deliveries = run_shards(injector=inj,
                                                 max_shard_retries=2)
        assert report.degraded
        assert report.completion_rate == 0.75
        assert report.failed_shards == [0]
        accepted = set(report.accepted_clients)
        assert 0 < len(accepted) < 60
        ref = dense_sum(deliveries, service.root, accepted)
        np.testing.assert_allclose(report.aggregate, ref, atol=1e-12)

    def test_epc_oversubscription_flagged_and_charged(self):
        # Below the fixed per-leaf working set, so the single shard
        # must page: flagged, penalized in latency, yet still correct.
        report, _, _ = run_shards(shards=1, epc_bytes=4 * 1024 * 1024)
        out = report.outcomes[0]
        assert out.epc_oversubscribed
        assert out.latency_s > out.wall_s  # paging penalty added
        assert report.completion_rate == 1.0

    def test_quorum_abort_raises(self):
        inj = stub_injector({(0, a): LeafFaultPlan(crash_fraction=0.5)
                             for a in range(10)})
        with pytest.raises(QuorumNotMetError):
            run_shards(injector=inj, max_shard_retries=2, min_accepted=60)

    def test_tampered_partial_rejected(self):
        from repro.runtime.shards import _open_partial
        root, deliveries = build_root(n=8)
        service = ShardedAggregator(root, ShardConfig(shards=1), entropy=1)
        service.aggregate_round(0, deliveries, D, sampled=set(range(8)))
        leaf = service._leaves[0]
        sealed = crypto.seal(leaf.channel_key, b"OLVPART1" + b"\x00" * 20)
        blob = bytearray(sealed.to_bytes())
        blob[-1] ^= 0x01
        with pytest.raises(EnclaveSecurityError) as err:
            _open_partial(leaf.channel_key, bytes(blob))
        assert err.value.reason == "corrupt"


class TestEnclaveCheckpoint:
    """Sealed round-state checkpoints + begin_round regressions."""

    def _enclave_pair(self):
        svc = AttestationService(signing_key=b"k" * 32,
                                 platform_secret=b"p" * 32)
        a = Enclave(attestation_service=svc, seed=1)
        b = Enclave(attestation_service=svc, seed=2)
        return a, b

    def test_checkpoint_roundtrip_across_siblings(self):
        a, b = self._enclave_pair()
        a.begin_round(sampled={1, 2, 3})
        a._record_upload(2, b"d" * 32)
        partial = np.arange(5, dtype=np.float64)
        ckpt = a.export_round_state(round_index=4, partial=partial)
        rnd, restored = b.restore_round_state(ckpt)
        assert rnd == 4
        assert b.sampled_clients == {1, 2, 3}
        assert 2 in b._loaded_clients and b.has_digest(b"d" * 32)
        np.testing.assert_array_equal(restored, partial)

    def test_checkpoint_bytes_deterministic(self):
        a, _ = self._enclave_pair()
        a.begin_round(sampled={1, 2})
        c1 = a.export_round_state(round_index=0, partial=np.ones(3))
        c2 = a.export_round_state(round_index=0, partial=np.ones(3))
        assert c1.to_bytes() == c2.to_bytes()

    def test_wrong_measurement_cannot_restore(self):
        svc = AttestationService(signing_key=b"k" * 32,
                                 platform_secret=b"p" * 32)
        a = Enclave(attestation_service=svc, seed=1)
        other = Enclave(code_identity=b"evil-binary",
                        attestation_service=svc, seed=2)
        ckpt = a.export_round_state()
        with pytest.raises(EnclaveSecurityError) as err:
            other.restore_round_state(ckpt)
        assert err.value.reason == "checkpoint"

    def test_tampered_checkpoint_rejected(self):
        a, b = self._enclave_pair()
        ckpt = a.export_round_state()
        bad = crypto.Ciphertext(nonce=ckpt.nonce,
                                body=ckpt.body[:-1] + b"\x00", tag=ckpt.tag)
        with pytest.raises(EnclaveSecurityError) as err:
            b.restore_round_state(bad)
        assert err.value.reason == "checkpoint"

    def test_begin_round_clears_replay_defence(self):
        svc = AttestationService(signing_key=b"k" * 32,
                                 platform_secret=b"p" * 32)
        enclave = Enclave(attestation_service=svc, seed=1)
        keys = provision_enclave_with_clients(enclave, [7])
        enclave.begin_round(sampled={7})
        payload = crypto.encode_sparse_gradient([0, 1], [0.5, -0.5])
        ct = crypto.seal(keys[7], payload)
        enclave.load_gradient(7, ct)
        # Same bytes again inside the round: replay, refused.
        with pytest.raises(EnclaveSecurityError) as err:
            enclave.load_gradient(7, ct)
        assert err.value.reason == "duplicate"
        # New round without resampling: the regression begin_round fixes.
        enclave.begin_round()
        assert enclave.load_gradient(7, ct) == ([0, 1], [0.5, -0.5])

    def test_record_partial_refuses_replay_and_overlap(self):
        a, _ = self._enclave_pair()
        a.begin_round(sampled={1, 2, 3, 4})
        a.record_partial(b"x" * 32, [1, 2])
        with pytest.raises(EnclaveSecurityError) as err:
            a.record_partial(b"x" * 32, [3])
        assert err.value.reason == "replay"
        with pytest.raises(EnclaveSecurityError) as err:
            a.record_partial(b"y" * 32, [2, 3])
        assert err.value.reason == "duplicate"
        a.record_partial(b"z" * 32, [3, 4])
        assert a._loaded_clients == {1, 2, 3, 4}

    def test_peer_attestation_rejects_different_binary(self):
        svc = AttestationService(signing_key=b"k" * 32,
                                 platform_secret=b"p" * 32)
        a = Enclave(attestation_service=svc, seed=1)
        evil = Enclave(code_identity=b"evil-binary",
                       attestation_service=svc, seed=2)
        with pytest.raises(EnclaveSecurityError) as err:
            a.attest_peer(evil.quote())
        assert err.value.reason == "attestation"
        b = Enclave(attestation_service=svc, seed=3)
        assert a.attest_peer(b.quote()) == b.attest_peer(a.quote())


def make_system(runtime=None, shards=None, seed=1, n_clients=12,
                **cfg_kwargs):
    gen = SyntheticClassData(SPECS["tiny"], seed=0)
    clients = partition_clients(gen, n_clients, 20, 2, seed=0)
    config = OliveConfig(sample_rate=1.0, noise_multiplier=0.8,
                         aggregator="advanced", training=TRAIN,
                         **cfg_kwargs)
    return OliveSystem(build_model("tiny_mlp", seed=0), clients, config,
                       seed=seed, runtime=runtime, shards=shards)


class TestFailureReasons:
    def test_dropout_and_straggler_reasons(self):
        runtime = RuntimeConfig(
            executor="serial", client_timeout_s=0.01,
            faults=FaultConfig(dropout_rate=0.4, straggler_rate=0.4,
                               straggler_delay_s=10.0,
                               straggler_jitter=False))
        with make_system(runtime=runtime) as system:
            log = system.run_round()
        reasons = log.cohort.failure_reasons
        assert reasons.get(REASON_DROPOUT, 0) > 0
        assert reasons.get(REASON_STRAGGLER, 0) > 0
        for outcome in log.cohort.outcomes.values():
            assert (outcome.reason is None) == (outcome.status == "ok")

    def test_forced_dropout_reason(self):
        with make_system() as system:
            log = system.run_round(dropouts={0, 1})
        assert log.cohort.outcomes[0].reason == "forced"
        assert log.cohort.failure_reasons["forced"] == 2

    def test_corrupt_rejects_carry_enclave_reason(self):
        runtime = RuntimeConfig(faults=FaultConfig(corrupt_rate=1.0))
        with make_system(runtime=runtime) as system:
            log = system.run_round()
        rejected = [o for o in log.cohort.outcomes.values()
                    if o.status == STATUS_REJECTED]
        assert rejected and all(o.reason == "corrupt" for o in rejected)

    def test_transient_exhaustion_reason(self):
        runtime = RuntimeConfig(
            max_retries=1,
            faults=FaultConfig(transient_failure_rate=1.0,
                               transient_failures=5))
        with make_system(runtime=runtime) as system:
            log = system.run_round()
        failed = [o for o in log.cohort.outcomes.values()
                  if o.status == STATUS_FAILED]
        assert failed and all(o.reason == REASON_TRANSIENT for o in failed)


class TestVectorizedEdges:
    """Satellite coverage: fault/quorum paths under the vectorized
    executor, including retried jobs flushing as their own batch."""

    def test_quorum_abort_spends_no_budget(self):
        runtime = RuntimeConfig(executor="vectorized", min_quorum=1.0,
                                faults=FaultConfig(dropout_rate=0.5))
        with make_system(runtime=runtime) as system:
            eps_before = system.accountant.epsilon
            weights_before = system.global_weights.copy()
            with pytest.raises(QuorumNotMetError):
                system.run_round()
            assert system.accountant.epsilon == eps_before
            assert np.array_equal(system.global_weights, weights_before)

    def test_sharded_quorum_abort_spends_no_budget(self):
        inj = stub_injector({(s, a): LeafFaultPlan(crash_fraction=0.5)
                             for s in range(2) for a in range(10)})
        runtime = RuntimeConfig(executor="vectorized", min_quorum=0.9)
        with make_system(runtime=runtime,
                         shards=ShardConfig(shards=2,
                                            max_shard_retries=1)) as system:
            system.shard_service.injector = inj
            eps_before = system.accountant.epsilon
            with pytest.raises(QuorumNotMetError):
                system.run_round()
            assert system.accountant.epsilon == eps_before

    def test_retries_flush_as_own_batch_match_serial(self):
        faults = FaultConfig(transient_failure_rate=0.4,
                             transient_failures=1)
        deliveries = {}
        for executor in ("serial", "vectorized"):
            gen = SyntheticClassData(SPECS["tiny"], seed=0)
            clients = partition_clients(gen, 12, 20, 2, seed=0)
            model = build_model("tiny_mlp", seed=0)
            keys = {c.client_id: crypto.generate_key(b"k%d" % c.client_id)
                    for c in clients}
            runtime = CohortRuntime(
                RuntimeConfig(executor=executor, backoff_base_s=0.0,
                              faults=faults),
                model, clients, entropy=3, keys=keys)
            with runtime:
                result = runtime.run_cohort(
                    0, [c.client_id for c in clients], model.get_flat(),
                    TRAIN)
            retried = [o for o in result.outcomes.values() if o.retries]
            assert retried, "fault plan injected no transient failures"
            deliveries[executor] = {
                d.client_id: d.ciphertext.to_bytes()
                for d in result.deliveries
            }
        assert deliveries["serial"] == deliveries["vectorized"]


def _chaos_seed(shards, crash_rate):
    """First seed whose round-0 fault plans include a real crash."""
    cfg = EnclaveFaultConfig(leaf_crash_rate=crash_rate,
                             crash_fatal_rate=0.5,
                             leaf_straggler_rate=0.3)
    for seed in range(64):
        inj = EnclaveFaultInjector(cfg, seed)
        if any(inj.leaf_plan(0, s, 0).crash_fraction is not None
               for s in range(shards)):
            return seed
    raise AssertionError("no chaos seed found")


class TestChaosEndToEnd:
    """The acceptance bar: an e2e round with leaf crashes and
    stragglers completes via failover/recovery, and the final model is
    bit-identical to the fault-free sharded run and to replay."""

    def test_chaos_round_bit_identical_to_fault_free(self):
        crash = 0.2
        seed = _chaos_seed(4, crash)
        faults = EnclaveFaultConfig(leaf_crash_rate=crash,
                                    crash_fatal_rate=0.5,
                                    leaf_straggler_rate=0.3)
        runtime = RuntimeConfig(executor="vectorized")

        def run(fault_cfg):
            shards = ShardConfig(shards=4, oblivious_batch=4,
                                 max_shard_retries=8, faults=fault_cfg)
            with make_system(runtime=runtime, shards=shards, seed=seed,
                             n_clients=24) as system:
                return system.run_round()

        clean = run(EnclaveFaultConfig())
        chaos = run(faults)
        replay = run(faults)

        report = chaos.shard_report
        assert sum(o.crashes for o in report.outcomes) >= 1
        assert report.completion_rate == 1.0
        assert not report.degraded
        assert (chaos.weights_after.tobytes()
                == clean.weights_after.tobytes())
        assert (chaos.weights_after.tobytes()
                == replay.weights_after.tobytes())
        assert chaos.participants == clean.participants

    def test_chaos_with_deadline_completes_under_failover(self):
        seed = _chaos_seed(4, 0.3)
        faults = EnclaveFaultConfig(leaf_crash_rate=0.3,
                                    crash_fatal_rate=0.5,
                                    leaf_straggler_rate=0.3,
                                    leaf_straggler_delay_s=0.02)
        shards = ShardConfig(shards=4, oblivious_batch=4,
                             max_shard_retries=8, shard_deadline_s=5.0,
                             faults=faults)
        runtime = RuntimeConfig(executor="vectorized")
        with make_system(runtime=runtime, shards=shards, seed=seed,
                         n_clients=24) as system:
            log = system.run_round()
        report = log.shard_report
        assert report.completion_rate == 1.0
        assert report.latency_s < 5.0 * shards.shards  # bounded by deadlines


class TestOliveShardIntegration:
    def test_sharded_round_matches_unsharded_numerically(self):
        runtime = RuntimeConfig(executor="vectorized")
        with make_system(runtime=runtime) as plain:
            log_plain = plain.run_round()
        with make_system(runtime=runtime,
                         shards=ShardConfig(shards=3)) as sharded:
            log_sharded = sharded.run_round()
        assert log_sharded.participants == log_plain.participants
        np.testing.assert_allclose(log_sharded.weights_after,
                                   log_plain.weights_after, atol=1e-10)
        assert log_sharded.shard_report is not None
        assert log_sharded.shard_report.n_shards == 3

    def test_traced_sharded_round_rejected(self):
        with make_system(shards=ShardConfig(shards=2)) as system:
            with pytest.raises(ValueError, match="traced"):
                system.run_round(traced=True)

    def test_adaptive_clipping_incompatible(self):
        with pytest.raises(ValueError, match="adaptive"):
            make_system(shards=ShardConfig(shards=2),
                        adaptive_clipping=True)

    def test_group_size_incompatible(self):
        with pytest.raises(ValueError, match="leaf kernel"):
            make_system(shards=ShardConfig(shards=2), group_size=4)

    def test_sharded_rejects_surface_in_outcomes(self):
        runtime = RuntimeConfig(faults=FaultConfig(corrupt_rate=1.0))
        with make_system(runtime=runtime,
                         shards=ShardConfig(shards=2)) as system:
            log = system.run_round()
        rejected = [o for o in log.cohort.outcomes.values()
                    if o.status == STATUS_REJECTED]
        assert rejected and all(o.reason == "corrupt" for o in rejected)
        assert log.participants == []
