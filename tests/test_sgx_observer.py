"""Tests for the side-channel adversary view (repro.sgx.observer)."""

import pytest

from repro.sgx.memory import Trace, TracedArray
from repro.sgx.observer import CACHELINE, WORD, ObserverConfig, SideChannelObserver


def _trace_with_accesses(offsets, region="g_star"):
    trace = Trace()
    arr = TracedArray.zeros(region, max(offsets) + 1, trace=trace, itemsize=4)
    for off in offsets:
        arr.read(off)
    return trace


class TestObserverConfig:
    def test_rejects_unknown_granularity(self):
        with pytest.raises(ValueError):
            ObserverConfig(granularity="page")

    def test_defaults_to_word(self):
        assert ObserverConfig().granularity == WORD


class TestWordObserver:
    def test_sequence_preserves_order(self):
        obs = SideChannelObserver("g_star")
        trace = _trace_with_accesses([5, 2, 5])
        assert obs.observed_sequence(trace) == [5, 2, 5]

    def test_set_deduplicates(self):
        obs = SideChannelObserver("g_star")
        trace = _trace_with_accesses([5, 2, 5])
        assert obs.observed_set(trace) == frozenset({2, 5})

    def test_other_regions_invisible(self):
        trace = Trace()
        TracedArray.zeros("other", 4, trace=trace).read(1)
        obs = SideChannelObserver("g_star")
        assert obs.observed_set(trace) == frozenset()

    def test_write_set_filters_ops(self):
        trace = Trace()
        arr = TracedArray.zeros("g_star", 8, trace=trace, itemsize=4)
        arr.read(1)
        arr.write(3, 1.0)
        obs = SideChannelObserver("g_star")
        assert obs.observed_write_set(trace) == frozenset({3})
        assert obs.observed_set(trace) == frozenset({1, 3})


class TestCachelineObserver:
    def _observer(self):
        return SideChannelObserver(
            "g_star", ObserverConfig(granularity=CACHELINE), itemsize=4
        )

    def test_coarsens_16_weights_per_line(self):
        obs = self._observer()
        trace = _trace_with_accesses([0, 15, 16, 31, 32])
        assert obs.observed_sequence(trace) == [0, 0, 1, 1, 2]

    def test_indices_within_line_collapse(self):
        obs = self._observer()
        trace = _trace_with_accesses([1, 7, 14])
        assert obs.observed_set(trace) == frozenset({0})

    def test_indices_to_observation_matches_trace_view(self):
        obs = self._observer()
        trace = _trace_with_accesses([3, 17, 40])
        assert obs.indices_to_observation([3, 17, 40]) == obs.observed_set(trace)


class TestGroundTruthCoarsening:
    def test_word_granularity_is_identity(self):
        obs = SideChannelObserver("g_star")
        assert obs.indices_to_observation([1, 2, 3]) == frozenset({1, 2, 3})

    def test_accepts_numpy_ints(self):
        import numpy as np

        obs = SideChannelObserver("g_star")
        assert obs.indices_to_observation(np.asarray([4, 5])) == frozenset({4, 5})
