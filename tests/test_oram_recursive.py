"""Tests for the recursive-position-map Path ORAM."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.oram.path_oram import PathORAM
from repro.oram.recursive import RecursiveMap, RecursivePathORAM
from repro.sgx.memory import Trace


class TestRecursiveMap:
    def test_small_map_is_register_resident(self):
        m = RecursiveMap(32, n_leaves=16, base_map_limit=64)
        assert m.depth == 0

    def test_large_map_uses_oram(self):
        m = RecursiveMap(256, n_leaves=128, base_map_limit=64)
        assert m.depth == 1

    def test_get_and_refresh_returns_installed_leaf(self):
        import random

        m = RecursiveMap(32, n_leaves=16, base_map_limit=64,
                         rng=random.Random(0))
        old1, new1 = m.get_and_refresh(5)
        old2, _ = m.get_and_refresh(5)
        assert old2 == new1

    def test_oram_backed_refresh_consistent(self):
        import random

        m = RecursiveMap(256, n_leaves=128, base_map_limit=64,
                         entries_per_block=8, rng=random.Random(1))
        old1, new1 = m.get_and_refresh(200)
        old2, _ = m.get_and_refresh(200)
        assert old2 == new1

    def test_leaves_in_range(self):
        import random

        m = RecursiveMap(256, n_leaves=64, base_map_limit=16,
                         rng=random.Random(2))
        for index in (0, 100, 255):
            old, new = m.get_and_refresh(index)
            assert 0 <= old < 64
            assert 0 <= new < 64

    def test_out_of_range_rejected(self):
        m = RecursiveMap(32, n_leaves=16)
        with pytest.raises(IndexError):
            m.get_and_refresh(32)


class TestRecursivePathORAM:
    def test_write_then_read(self):
        oram = RecursivePathORAM(128, seed=0, stash_limit=60)
        oram.write(100, 7.5)
        assert oram.read(100) == 7.5

    def test_unwritten_reads_zero(self):
        oram = RecursivePathORAM(128, seed=0, stash_limit=60)
        assert oram.read(3) == 0.0

    def test_out_of_range(self):
        oram = RecursivePathORAM(16, seed=0)
        with pytest.raises(IndexError):
            oram.read(16)

    @given(
        st.lists(
            st.tuples(st.sampled_from(["read", "write"]),
                      st.integers(0, 127), st.floats(-10, 10)),
            max_size=80,
        )
    )
    @settings(max_examples=10, deadline=None)
    def test_matches_reference(self, ops):
        oram = RecursivePathORAM(128, seed=1, stash_limit=80)
        ref: dict[int, float] = {}
        for op, block, value in ops:
            if op == "write":
                oram.write(block, value)
                ref[block] = value
            else:
                assert oram.read(block) == ref.get(block, 0.0)

    def test_small_capacity_uses_base_map(self):
        oram = RecursivePathORAM(32, seed=0, base_map_limit=64)
        assert oram._map.depth == 0
        oram.write(5, 1.0)
        assert oram.read(5) == 1.0

    def test_map_accesses_visible_in_trace(self):
        # The recursive construction's point: position-map accesses hit
        # a traced ORAM tree too, unlike the flat ORAM's private map.
        trace = Trace()
        flat_trace = Trace()
        recursive = RecursivePathORAM(256, seed=0, stash_limit=80,
                                      base_map_limit=16, trace=trace)
        flat = PathORAM(256, seed=0, stash_limit=80, trace=flat_trace)
        recursive.read(7)
        flat.read(7)
        # Recursive access touches strictly more tree buckets (two
        # trees: map + data).
        assert len(trace.offsets("oram_tree")) > len(
            flat_trace.offsets("oram_tree")
        )

    def test_accumulation_workload(self):
        oram = RecursivePathORAM(64, seed=2, stash_limit=80)
        rng = np.random.default_rng(0)
        expected = np.zeros(64)
        for _ in range(150):
            block = int(rng.integers(64))
            delta = float(rng.normal())
            oram.write(block, oram.read(block) + delta)
            expected[block] += delta
        for i in range(64):
            assert oram.read(i) == pytest.approx(expected[i])

    def test_access_counter(self):
        oram = RecursivePathORAM(64, seed=0, stash_limit=80)
        oram.read(0)
        oram.write(1, 1.0)
        assert oram.accesses == 2
