from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "OLIVE: oblivious and differentially private federated learning "
        "on a simulated TEE"
    ),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
