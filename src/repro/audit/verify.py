"""Audit verification: chain -> commitments -> deterministic replay.

Three verification layers, each catching a strictly stronger
adversary:

1. **Chain** (:func:`repro.audit.log.verify_chain`) -- an attacker who
   edits, reorders, or truncates the log file breaks a record hash, a
   prev-link, or the terminal seal.
2. **Commitments** -- an attacker who re-mints the whole chain after
   editing a logged ciphertext still cannot make the logged bytes
   hash to the committed Merkle root without breaking SHA-256
   (:class:`~repro.audit.log.AuditCommitmentError` names the round).
3. **Replay** -- an attacker who re-mints chain *and* commitments
   around a forged aggregate is caught by re-running the round from
   the manifest's seeds through the deterministic runtime: the
   recomputed released weights must hash bit-identically to the
   committed aggregate (:class:`~repro.audit.log.AuditReplayError`).
   Sharded rounds additionally re-derive every completed shard's
   sealed partial and compare digests, so failover / degraded rounds
   replay under the same scrutiny.

Replay rebuilds the system from the logged manifest (synthetic data
spec + model + config dataclasses + seed) and steps it round by round;
client RA keys are ephemeral so ciphertext *bytes* differ across
replays, but every quantity the commitments bind -- plaintexts,
sampling, fault plans, noise, partials, released weights -- is a pure
function of the recorded seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .. import obs
from .log import (
    AuditCommitmentError,
    AuditProofError,
    AuditReplayError,
    read_records,
    verify_chain,
)
from .merkle import (
    InclusionProof,
    inclusion_proof,
    leaf_hash,
    upload_leaf,
    verify_inclusion,
)
from .recorder import aggregate_digest, partial_digest, upload_merkle_root

#: Consecutive quorum-aborted replay rounds tolerated before giving up.
_MAX_ABORTED_ROUNDS = 100


@dataclass
class RoundVerdict:
    """What verification concluded about one logged round."""

    round_index: int
    uploads: int
    merkle_ok: bool = False
    replay_ok: bool | None = None     # None: replay not attempted
    sharded: bool = False
    degraded: bool = False


@dataclass
class AuditReport:
    """Per-round verdicts of one full log verification."""

    path: str
    rounds: list[RoundVerdict] = field(default_factory=list)
    sealed: bool = False
    replayed: bool = False

    @property
    def n_uploads(self) -> int:
        return sum(v.uploads for v in self.rounds)


def load_round_records(records: list[dict]) -> list[dict]:
    """The round records of a structurally verified log."""
    return [r for r in records if r.get("type") == "round"]


def _round_ciphertexts(record: dict) -> dict[int, bytes]:
    return {int(cid): bytes.fromhex(blob)
            for cid, blob in record["ciphertexts"].items()}


def verify_round_commitment(record: dict) -> None:
    """Recompute the Merkle root from the logged bytes; compare."""
    ciphertexts = _round_ciphertexts(record)
    accepted = [int(c) for c in record["accepted"]]
    missing = set(accepted) - set(ciphertexts)
    if missing:
        raise AuditCommitmentError(
            f"round {record['round']}: accepted clients "
            f"{sorted(missing)[:4]} have no logged ciphertext",
            round_index=record["round"],
        )
    recomputed = upload_merkle_root(
        {cid: ciphertexts[cid] for cid in accepted})
    if recomputed != record["merkle_root"]:
        raise AuditCommitmentError(
            f"round {record['round']}: logged ciphertexts do not hash to "
            f"the committed Merkle root (leaf bytes tampered)",
            round_index=record["round"],
        )


def build_system_from_manifest(manifest: dict):
    """Reconstruct the recorded run's OliveSystem, ready to replay."""
    # Imported here: repro.core imports repro.runtime at package load
    # and the audit package must stay importable from either side.
    from ..core.olive import OliveConfig, OliveSystem
    from ..fl.client import TrainingConfig
    from ..fl.datasets import SPECS, SyntheticClassData, partition_clients
    from ..fl.models import build_model
    from ..runtime import (
        EnclaveFaultConfig,
        FaultConfig,
        RuntimeConfig,
        ShardConfig,
    )

    if manifest.get("kind") != "synthetic":
        raise AuditReplayError(
            f"cannot replay manifest kind {manifest.get('kind')!r}; only "
            "'synthetic' runs are rebuildable from the log"
        )
    data = manifest["data"]
    gen = SyntheticClassData(
        SPECS[data["spec"]], seed=data["seed"],
        signal=data.get("signal", 1.0), noise=data.get("noise", 0.5),
    )
    clients = partition_clients(
        gen, data["n_clients"], data["samples_per_client"],
        data["labels_per_client"], fixed=data.get("fixed", True),
        seed=data.get("partition_seed", data["seed"]),
    )
    olive = dict(manifest["olive"])
    olive["training"] = TrainingConfig(**olive["training"])
    config = OliveConfig(**olive)
    runtime = None
    if manifest.get("runtime") is not None:
        rt = dict(manifest["runtime"])
        rt["faults"] = FaultConfig(**rt["faults"])
        runtime = RuntimeConfig(**rt)
    shards = None
    if manifest.get("shards") is not None:
        sh = dict(manifest["shards"])
        sh["faults"] = EnclaveFaultConfig(**sh["faults"])
        shards = ShardConfig(**sh)
    model = build_model(manifest["model"]["name"],
                        seed=manifest["model"]["seed"])
    return OliveSystem(model, clients, config, seed=manifest["seed"],
                       runtime=runtime, shards=shards)


def _replay_one(system, record: dict):
    """Advance the replayed system to the next *recorded* round.

    Rounds the original run aborted on quorum never reached the log;
    the replay skips them the same way (the abort consumes the same
    enclave randomness, so determinism is preserved).
    """
    from ..runtime import QuorumNotMetError

    for _ in range(_MAX_ABORTED_ROUNDS):
        try:
            return system.run_round(
                traced=bool(record.get("traced")),
                dropouts=set(record.get("forced_dropouts", [])),
            )
        except QuorumNotMetError:
            continue
    raise AuditReplayError(
        f"round {record['round']}: replay aborted on quorum "
        f"{_MAX_ABORTED_ROUNDS} times in a row; the log cannot have "
        "been produced by this manifest",
        round_index=record["round"],
    )


def verify_round_replay(record: dict, log) -> None:
    """Compare one replayed round against its committed record."""
    r = record["round"]
    replayed_accepted = sorted(log.participants)
    if replayed_accepted != [int(c) for c in record["accepted"]]:
        raise AuditReplayError(
            f"round {r}: replay accepted clients {replayed_accepted[:6]}... "
            f"but the log committed {record['accepted'][:6]}...",
            round_index=r,
        )
    recomputed = aggregate_digest(log.weights_after)
    if recomputed != record["aggregate_sha256"]:
        raise AuditReplayError(
            f"round {r}: replayed released aggregate hashes to "
            f"{recomputed[:16]}... but the log committed "
            f"{record['aggregate_sha256'][:16]}... (forged aggregate)",
            round_index=r,
        )
    if float(record["epsilon"]) != float(log.epsilon):
        raise AuditReplayError(
            f"round {r}: replayed epsilon {log.epsilon!r} differs from "
            f"committed {record['epsilon']!r}",
            round_index=r,
        )
    if "partials" in record:
        report = log.shard_report
        if report is None:
            raise AuditReplayError(
                f"round {r}: log committed shard partials but the replay "
                "ran unsharded", round_index=r,
            )
        replayed = [
            {"shard": shard, "leaf": leaf, "sha256": partial_digest(blob)}
            for shard, leaf, blob in report.sealed_partials
        ]
        if replayed != record["partials"]:
            raise AuditReplayError(
                f"round {r}: replayed shard partials disagree with the "
                "committed digests (leaf partial forged or reassigned)",
                round_index=r,
            )
        if bool(record.get("degraded")) != bool(report.degraded):
            raise AuditReplayError(
                f"round {r}: degraded flag mismatch (log "
                f"{record.get('degraded')}, replay {report.degraded})",
                round_index=r,
            )


def verify_log(
    path: str | Path,
    *,
    replay: bool = True,
    strict: bool = True,
    round_index: int | None = None,
) -> AuditReport:
    """Verify a whole audit log; raises the first failure found.

    ``strict`` requires the terminal seal (a crashed or truncated run
    fails); ``replay=False`` stops after chain + commitment checks;
    ``round_index`` restricts commitment/replay reporting to one round
    (the chain is always verified whole, and replay still has to step
    through the earlier rounds to reach the requested one).
    """
    with obs.span("audit.verify", log=str(path)):
        records = read_records(path)
        verify_chain(records, require_seal=strict)
        rounds = load_round_records(records)
        report = AuditReport(
            path=str(path),
            sealed=bool(records) and records[-1].get("type") == "seal",
        )
        for record in rounds:
            verdict = RoundVerdict(
                round_index=record["round"],
                uploads=len(record["accepted"]),
                sharded="partials" in record,
                degraded=bool(record.get("degraded")),
            )
            if round_index is None or record["round"] == round_index:
                verify_round_commitment(record)
                verdict.merkle_ok = True
            report.rounds.append(verdict)
        if round_index is not None and not any(
                v.round_index == round_index for v in report.rounds):
            raise AuditProofError(
                f"round {round_index} is not in the log "
                f"({len(report.rounds)} round(s) recorded)",
                round_index=round_index,
            )
        if not replay or not rounds:
            return report

        with obs.span("audit.replay", rounds=len(rounds)):
            manifest = records[0]["manifest"]
            system = build_system_from_manifest(manifest)
            try:
                for record, verdict in zip(rounds, report.rounds):
                    log = _replay_one(system, record)
                    if round_index is None or record["round"] == round_index:
                        verify_round_replay(record, log)
                        verdict.replay_ok = True
                        obs.add("audit.rounds_verified")
            finally:
                system.close()
        report.replayed = True
        return report


# ----------------------------------------------------------------------
# Inclusion proofs for individual uploads
# ----------------------------------------------------------------------
def generate_proof(path: str | Path, round_index: int,
                   client_id: int) -> dict:
    """Inclusion proof that one client's upload is committed.

    The proof is self-contained JSON: leaf hash, audit path, leaf
    count, and the committed root, verifiable offline against the
    round's ``merkle_root`` with :func:`verify_proof_payload`.
    """
    records = read_records(path)
    verify_chain(records, require_seal=False)
    for record in load_round_records(records):
        if record["round"] != round_index:
            continue
        accepted = [int(c) for c in record["accepted"]]
        if client_id not in accepted:
            raise AuditProofError(
                f"client {client_id} was not accepted in round "
                f"{round_index}", round_index=round_index,
            )
        ciphertexts = _round_ciphertexts(record)
        leaves = [leaf_hash(upload_leaf(cid, ciphertexts[cid]))
                  for cid in accepted]
        proof = inclusion_proof(leaves, accepted.index(client_id))
        obs.add("audit.proofs_generated")
        return {
            "round": round_index,
            "client_id": client_id,
            "leaf_index": proof.leaf_index,
            "n_leaves": proof.n_leaves,
            "leaf_sha256": proof.leaf.hex(),
            "path": [{"side": side, "hash": digest.hex()}
                     for side, digest in proof.path],
            "merkle_root": record["merkle_root"],
        }
    raise AuditProofError(
        f"round {round_index} is not in the log", round_index=round_index)


def verify_proof_payload(path: str | Path, proof: dict) -> None:
    """Check a generated proof against the log's committed root."""
    records = read_records(path)
    verify_chain(records, require_seal=False)
    committed = None
    for record in load_round_records(records):
        if record["round"] == proof["round"]:
            committed = record["merkle_root"]
            break
    if committed is None:
        raise AuditProofError(
            f"round {proof['round']} is not in the log",
            round_index=proof["round"],
        )
    if proof["merkle_root"] != committed:
        raise AuditProofError(
            f"round {proof['round']}: proof targets root "
            f"{proof['merkle_root'][:16]}... but the log committed "
            f"{committed[:16]}...", round_index=proof["round"],
        )
    reconstructed = InclusionProof(
        leaf_index=int(proof["leaf_index"]),
        n_leaves=int(proof["n_leaves"]),
        leaf=bytes.fromhex(proof["leaf_sha256"]),
        path=[(step["side"], bytes.fromhex(step["hash"]))
              for step in proof["path"]],
    )
    if not verify_inclusion(reconstructed, bytes.fromhex(committed)):
        obs.add("audit.proof_failures")
        raise AuditProofError(
            f"round {proof['round']}: inclusion proof for client "
            f"{proof['client_id']} does not lead to the committed root",
            round_index=proof["round"],
        )
    obs.add("audit.proofs_verified")
