"""``python -m repro audit`` -- verify, replay, and prove logged rounds.

Usage::

    python -m repro audit LOG [--strict] [--no-replay] [--round N]
    python -m repro audit LOG --prove-client CID --round N [--out P]
    python -m repro audit LOG --verify-proof PROOF.json

Exit codes (stable; CI gates match on them):

====  =============================================================
code  meaning
====  =============================================================
0     every requested check passed
1     usage error / unreadable log
2     chain broken: a record was edited, reordered, or unlinked
3     log truncated: missing/wrong terminal seal or a round gap
4     commitment mismatch: logged ciphertexts vs the Merkle root
5     replay mismatch: recomputed round disagrees with a commitment
6     inclusion-proof failure (or the requested round/client absent)
====  =============================================================
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import Sequence

from .log import AuditError
from .verify import generate_proof, verify_log, verify_proof_payload

logger = logging.getLogger("repro.audit")

EXIT_OK = 0
EXIT_USAGE = 1


def _parse_args(argv: Sequence[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro audit",
        description="Verify a chained audit log: hash chain, Merkle "
                    "commitments, and bit-identical deterministic replay.",
    )
    parser.add_argument("log", metavar="LOG", help="audit log (JSONL)")
    parser.add_argument(
        "--strict", action="store_true",
        help="require the terminal seal record (fail unsealed logs) -- "
             "the CI-gate mode",
    )
    parser.add_argument(
        "--no-replay", action="store_true",
        help="stop after chain + commitment verification (no replay)",
    )
    parser.add_argument(
        "--round", type=int, default=None, metavar="N",
        help="verify only round N (the chain is still checked whole)",
    )
    parser.add_argument(
        "--prove-client", type=int, default=None, metavar="CID",
        help="emit an inclusion proof for client CID's upload in "
             "--round N instead of verifying the log",
    )
    parser.add_argument(
        "--verify-proof", metavar="PROOF", default=None,
        help="verify a proof JSON produced by --prove-client against "
             "the log's committed root",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the generated proof here instead of stdout",
    )
    return parser.parse_args(list(argv))


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    logging.basicConfig(level=logging.INFO, format="%(message)s",
                        stream=sys.stdout, force=True)
    args = _parse_args(argv if argv is not None else sys.argv[1:])
    if not Path(args.log).exists():
        logger.error("audit: log %s does not exist", args.log)
        return EXIT_USAGE
    try:
        if args.prove_client is not None:
            if args.round is None:
                logger.error("audit: --prove-client requires --round")
                return EXIT_USAGE
            proof = generate_proof(args.log, args.round, args.prove_client)
            payload = json.dumps(proof, indent=2)
            if args.out:
                Path(args.out).write_text(payload + "\n")
                logger.info(
                    "audit: inclusion proof for client %d in round %d "
                    "written to %s (%d sibling hashes)", args.prove_client,
                    args.round, args.out, len(proof["path"]))
            else:
                print(payload)
            return EXIT_OK

        if args.verify_proof is not None:
            proof = json.loads(Path(args.verify_proof).read_text())
            verify_proof_payload(args.log, proof)
            logger.info(
                "audit: OK -- client %s's upload is committed under round "
                "%s's Merkle root", proof.get("client_id"),
                proof.get("round"))
            return EXIT_OK

        report = verify_log(
            args.log, replay=not args.no_replay, strict=args.strict,
            round_index=args.round,
        )
        for verdict in report.rounds:
            mode = "sharded" if verdict.sharded else "unsharded"
            if verdict.degraded:
                mode += ", degraded"
            checks = []
            if verdict.merkle_ok:
                checks.append("merkle ok")
            if verdict.replay_ok:
                checks.append("replay ok")
            logger.info("  round %d: %s (%d uploads, %s)",
                        verdict.round_index,
                        ", ".join(checks) or "chain only",
                        verdict.uploads, mode)
        logger.info(
            "audit: OK -- %d round(s), %d committed upload(s), chain "
            "intact%s%s", len(report.rounds), report.n_uploads,
            ", sealed" if report.sealed else " (unsealed)",
            ", replay bit-identical" if report.replayed else
            " (replay skipped)")
        return EXIT_OK
    except AuditError as exc:
        where = (f" (round {exc.round_index})"
                 if exc.round_index is not None else "")
        logger.error("audit: FAIL%s -- %s [%s, exit %d]", where, exc,
                     type(exc).__name__, exc.exit_code)
        return exc.exit_code
    except (OSError, json.JSONDecodeError, KeyError, ValueError) as exc:
        logger.error("audit: cannot process %s: %s", args.log, exc)
        return EXIT_USAGE


if __name__ == "__main__":
    sys.exit(main())
