"""Per-round audit recording: commitments into the chained log.

:class:`AuditRecorder` sits beside an :class:`~repro.core.olive.OliveSystem`
(``OliveSystem(..., audit=recorder)``) and, after every completed
round, appends one chained record committing to

* the **accepted upload set**: a Merkle root over the accepted
  clients' sealed ciphertext bytes (leaves in client-id order, leaf
  payloads binding client id to bytes -- :mod:`repro.audit.merkle`);
* the **released aggregate**: SHA-256 over the post-round global
  weights (the only model state that leaves the enclave);
* the **sharded evidence**, when the round ran through the
  multi-enclave service: the digest of every completed shard's sealed
  ``OLVPART1`` partial, plus the degraded flag -- so failover and
  degraded completion stay auditable round by round;
* enough replay context (forced dropouts, traced flag, epsilon, clip)
  for ``python -m repro audit`` to re-run the round bit-identically
  from the manifest's seeds and detect a forged aggregate.

The logged ciphertext *bytes* ride along with their commitment: client
session keys are ephemeral per deployment (fresh RA on every run), so
a replay regenerates identical plaintexts and aggregates but not
identical ciphertext bytes -- upload commitments therefore verify
against the logged bytes (tamper evidence + inclusion proofs), while
the aggregate commitment verifies against deterministic replay.
"""

from __future__ import annotations

import dataclasses
import hashlib
from pathlib import Path

import numpy as np

from .. import obs
from .log import AuditLogWriter, LOG_VERSION
from .merkle import leaf_hash, merkle_root, upload_leaf

#: Domain prefix for the released-aggregate commitment.
_AGGREGATE_DOMAIN = b"olive-aggregate:"

#: Domain prefix for sealed shard-partial digests.
_PARTIAL_DOMAIN = b"olive-partial:"


def aggregate_digest(weights: np.ndarray) -> str:
    """Commitment to a released weight vector (float64, contiguous)."""
    arr = np.ascontiguousarray(weights, dtype=np.float64)
    return hashlib.sha256(_AGGREGATE_DOMAIN + arr.tobytes()).hexdigest()


def partial_digest(blob: bytes) -> str:
    """Commitment to one sealed shard partial."""
    return hashlib.sha256(_PARTIAL_DOMAIN + blob).hexdigest()


def upload_merkle_root(ciphertexts: dict[int, bytes]) -> str:
    """Merkle root over accepted uploads, leaves in client-id order."""
    leaves = [leaf_hash(upload_leaf(cid, ciphertexts[cid]))
              for cid in sorted(ciphertexts)]
    return merkle_root(leaves).hex()


def make_manifest(
    *,
    data: dict,
    model: dict,
    config,
    runtime=None,
    shards=None,
    seed: int = 0,
) -> dict:
    """Serializable description of a run, sufficient to rebuild it.

    ``data`` describes the synthetic partition (``spec``, ``seed``,
    ``n_clients``, ``samples_per_client``, ``labels_per_client``,
    optional ``fixed``/``partition_seed``/``signal``/``noise``);
    ``model`` is ``{"name", "seed"}``; the config objects are the
    dataclasses the system was built with (serialized field-for-field,
    nested fault configs included).
    """
    manifest = {
        "kind": "synthetic",
        "data": dict(data),
        "model": dict(model),
        "olive": dataclasses.asdict(config),
        "runtime": dataclasses.asdict(runtime) if runtime is not None else None,
        "shards": dataclasses.asdict(shards) if shards is not None else None,
        "seed": int(seed),
    }
    return manifest


class AuditRecorder:
    """Writes one chained audit record per completed round."""

    def __init__(self, path: str | Path, manifest: dict) -> None:
        self.path = Path(path)
        self.manifest = manifest
        self.rounds = 0
        self._writer = AuditLogWriter(self.path)
        self._writer.append({
            "type": "manifest",
            "version": LOG_VERSION,
            "manifest": manifest,
        })

    @property
    def head(self) -> str:
        """Hash of the most recently appended record."""
        return self._writer.head

    def record_round(
        self,
        round_index: int,
        *,
        accepted: list[int],
        ciphertexts: dict[int, bytes],
        weights_after: np.ndarray,
        epsilon: float,
        clip: float,
        traced: bool = False,
        forced_dropouts: list[int] | None = None,
        partials: list[tuple[int, int, bytes]] | None = None,
        degraded: bool = False,
        n_shards: int | None = None,
    ) -> str:
        """Commit one completed round; returns the record hash."""
        with obs.span("audit.record", hist="audit.record_s",
                      round=round_index, uploads=len(ciphertexts)):
            missing = set(accepted) - set(ciphertexts)
            if missing:
                raise ValueError(
                    f"accepted clients {sorted(missing)[:4]} have no "
                    "logged ciphertext"
                )
            record = {
                "type": "round",
                "round": int(round_index),
                "accepted": [int(c) for c in sorted(accepted)],
                "ciphertexts": {
                    str(cid): ciphertexts[cid].hex()
                    for cid in sorted(ciphertexts)
                },
                "merkle_root": upload_merkle_root(
                    {cid: ciphertexts[cid] for cid in sorted(accepted)}),
                "aggregate_sha256": aggregate_digest(weights_after),
                "epsilon": float(epsilon),
                "clip": float(clip),
                "traced": bool(traced),
                "forced_dropouts": sorted(int(c) for c in
                                          (forced_dropouts or [])),
            }
            if partials is not None:
                record["partials"] = [
                    {"shard": int(shard), "leaf": int(leaf),
                     "sha256": partial_digest(blob)}
                    for shard, leaf, blob in partials
                ]
                record["degraded"] = bool(degraded)
                record["n_shards"] = int(n_shards or len(partials))
            digest = self._writer.append(record)
            self.rounds += 1
            obs.add("audit.rounds_recorded")
            obs.add("audit.uploads_committed", len(ciphertexts))
        return digest

    def close(self) -> None:
        """Seal the log (idempotent): append the terminal record."""
        if self._writer._file is None:
            return
        self._writer.append({"type": "seal", "rounds": self.rounds})
        self._writer.close()
        obs.add("audit.logs_sealed")

    def __enter__(self) -> "AuditRecorder":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
