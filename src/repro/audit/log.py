"""Append-only, hash-chained audit log (JSONL on disk).

Each record commits to its predecessor: ``record["prev"]`` is the
predecessor's record hash and ``record["hash"]`` is the SHA-256 of the
record's own canonical JSON (sorted keys, minimal separators, domain
prefix) *excluding* the hash field itself.  The chain starts from an
all-zero genesis value, so

* editing any record breaks its own hash,
* reordering or dropping an interior record breaks the successor's
  ``prev`` link, and
* truncating the tail is caught by the terminal **seal** record, which
  commits to the head hash and the total round count -- a log without
  its seal (or whose seal disagrees) is treated as truncated.

Record types, in mandatory order: one ``manifest`` (how to rebuild the
recorded run), ``round`` records with consecutive indices from 0, one
``seal``.  The writer appends and flushes one line per record so a
crashed run leaves a prefix that still chain-verifies (minus the seal,
i.e. detectably incomplete).

Verification failures raise the distinct exception taxonomy the CLI
maps to exit codes: :class:`AuditChainError` (edited / reordered
records), :class:`AuditTruncationError` (missing or lying seal, round
gaps), and -- from :mod:`repro.audit.verify` -- commitment, replay and
proof errors.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

#: Chain value the first record commits to.
GENESIS = "0" * 64

#: Domain prefix mixed into every record hash.
_RECORD_DOMAIN = b"olive-audit-record:"

#: Audit log format version (bumped on incompatible record changes).
LOG_VERSION = 1


class AuditError(Exception):
    """Base class of every audit-verification failure.

    ``round_index`` names the offending round when one is known --
    the CLI surfaces it so a failing CI gate points at the exact
    round, not just the log.
    """

    exit_code = 1

    def __init__(self, message: str, *, round_index: int | None = None) -> None:
        super().__init__(message)
        self.round_index = round_index


class AuditChainError(AuditError):
    """A record was edited, reordered, or its prev-link is broken."""

    exit_code = 2


class AuditTruncationError(AuditError):
    """The log is incomplete: missing/wrong seal or a round gap."""

    exit_code = 3


class AuditCommitmentError(AuditError):
    """Logged ciphertexts no longer match the round's Merkle root."""

    exit_code = 4


class AuditReplayError(AuditError):
    """Deterministic replay disagrees with a committed aggregate."""

    exit_code = 5


class AuditProofError(AuditError):
    """An inclusion proof failed verification."""

    exit_code = 6


def record_hash(record: dict) -> str:
    """Hash of one record's canonical JSON, excluding its own hash."""
    body = {k: v for k, v in record.items() if k != "hash"}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(_RECORD_DOMAIN + blob.encode()).hexdigest()


def chain_records(records: list[dict]) -> list[dict]:
    """Fill ``prev``/``hash`` links over bare records (test helper).

    Re-mints the chain from genesis -- exactly what a forger able to
    rewrite the whole file can do, which is why replay verification
    exists on top of chain verification.
    """
    prev = GENESIS
    out = []
    for record in records:
        rec = dict(record)
        rec["prev"] = prev
        rec["hash"] = record_hash(rec)
        prev = rec["hash"]
        out.append(rec)
    return out


class AuditLogWriter:
    """Appends chained records to a JSONL file, one flush per record."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.head = GENESIS
        self.records_written = 0
        self._file = open(self.path, "w")

    def append(self, record: dict) -> str:
        """Chain, hash, and persist one record; returns its hash."""
        if self._file is None:
            raise AuditError("audit log already sealed/closed")
        rec = dict(record)
        rec["prev"] = self.head
        rec["hash"] = record_hash(rec)
        self._file.write(json.dumps(rec, sort_keys=True) + "\n")
        self._file.flush()
        self.head = rec["hash"]
        self.records_written += 1
        return rec["hash"]

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def read_records(path: str | Path) -> list[dict]:
    """Parse a JSONL audit log; malformed lines are a chain failure."""
    records = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise AuditChainError(
                f"{path}: line {lineno} is not valid JSON ({exc})"
            ) from None
        if not isinstance(record, dict):
            raise AuditChainError(f"{path}: line {lineno} is not a record")
        records.append(record)
    return records


def verify_chain(records: list[dict], require_seal: bool = True) -> None:
    """Structural verification: hashes, links, ordering, and the seal.

    Raises :class:`AuditChainError` or :class:`AuditTruncationError`;
    returns ``None`` when the chain is intact and complete.
    ``require_seal=False`` tolerates a log that is still being written
    (no terminal seal yet) while checking everything else.
    """
    if not records:
        raise AuditTruncationError("audit log is empty")
    prev = GENESIS
    for i, record in enumerate(records):
        if record.get("prev") != prev:
            raise AuditChainError(
                f"record {i} ({record.get('type', '?')}): prev-hash link "
                "broken (record removed, reordered, or edited upstream)",
                round_index=record.get("round"),
            )
        expected = record_hash(record)
        if record.get("hash") != expected:
            raise AuditChainError(
                f"record {i} ({record.get('type', '?')}): stored hash does "
                "not match its contents (record edited in place)",
                round_index=record.get("round"),
            )
        prev = record["hash"]

    if records[0].get("type") != "manifest":
        raise AuditChainError("first record must be the run manifest")
    rounds = [r for r in records[1:] if r.get("type") == "round"]
    for expected_index, record in enumerate(rounds):
        if record.get("round") != expected_index:
            raise AuditTruncationError(
                f"round records skip from {expected_index - 1} to "
                f"{record.get('round')} (interior rounds missing)",
                round_index=record.get("round"),
            )
    last = records[-1]
    if last.get("type") != "seal":
        if require_seal:
            raise AuditTruncationError(
                "log has no terminal seal record (run still in progress, "
                "crashed, or the tail was truncated)"
            )
        middle = records[1:]
    else:
        if last.get("rounds") != len(rounds):
            raise AuditTruncationError(
                f"seal commits to {last.get('rounds')} round(s) but the "
                f"log holds {len(rounds)} (tail truncated and re-sealed?)"
            )
        middle = records[1:-1]
    if any(r.get("type") != "round" for r in middle):
        raise AuditChainError("unexpected record type inside the chain")
