"""Verifiable rounds: Merkle commitments, chained log, audit replay.

The paper's threat model trusts the server-side enclave to aggregate
honestly but never builds machinery to *prove* it.  This package turns
the runtime's end-to-end determinism into verifiability:

* per-round **Merkle commitments** over the accepted client
  ciphertexts and the released aggregate -- :mod:`repro.audit.merkle`;
* an append-only **audit log** whose records are hash-chained across
  rounds (edits, reorders, and truncation are detectable) --
  :mod:`repro.audit.log`;
* an :class:`AuditRecorder` the round drivers feed
  (``OliveSystem(..., audit=recorder)``) -- :mod:`repro.audit.recorder`;
* ``python -m repro audit``: chain + commitment verification,
  **bit-identical deterministic replay** of every logged round, and
  per-upload inclusion proofs -- :mod:`repro.audit.verify` /
  :mod:`repro.audit.cli`.

Typical use::

    from repro.audit import AuditRecorder, make_manifest, verify_log

    manifest = make_manifest(data=..., model=..., config=cfg,
                             runtime=rt, shards=sh, seed=0)
    with AuditRecorder("run_audit.jsonl", manifest) as recorder:
        system = OliveSystem(model, clients, cfg, seed=0,
                             runtime=rt, shards=sh, audit=recorder)
        system.run(rounds)
    verify_log("run_audit.jsonl", strict=True)   # raises on any tamper
"""

from .log import (
    GENESIS,
    AuditChainError,
    AuditCommitmentError,
    AuditError,
    AuditLogWriter,
    AuditProofError,
    AuditReplayError,
    AuditTruncationError,
    chain_records,
    read_records,
    record_hash,
    verify_chain,
)
from .merkle import (
    EMPTY_ROOT,
    InclusionProof,
    inclusion_proof,
    leaf_hash,
    merkle_root,
    node_hash,
    root_over_payloads,
    upload_leaf,
    verify_inclusion,
)
from .recorder import (
    AuditRecorder,
    aggregate_digest,
    make_manifest,
    partial_digest,
    upload_merkle_root,
)
from .verify import (
    AuditReport,
    RoundVerdict,
    build_system_from_manifest,
    generate_proof,
    verify_log,
    verify_proof_payload,
)

__all__ = [
    "GENESIS",
    "EMPTY_ROOT",
    "AuditChainError",
    "AuditCommitmentError",
    "AuditError",
    "AuditLogWriter",
    "AuditProofError",
    "AuditRecorder",
    "AuditReplayError",
    "AuditReport",
    "AuditTruncationError",
    "InclusionProof",
    "RoundVerdict",
    "aggregate_digest",
    "build_system_from_manifest",
    "chain_records",
    "generate_proof",
    "inclusion_proof",
    "leaf_hash",
    "make_manifest",
    "merkle_root",
    "node_hash",
    "partial_digest",
    "read_records",
    "record_hash",
    "root_over_payloads",
    "upload_leaf",
    "upload_merkle_root",
    "verify_chain",
    "verify_inclusion",
    "verify_log",
    "verify_proof_payload",
]
