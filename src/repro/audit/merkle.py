"""Domain-separated SHA-256 Merkle trees over per-round upload sets.

The commitment primitive of the verifiable-rounds subsystem: each
round's accepted client ciphertexts become the leaves of a Merkle tree
whose root is logged in the round's audit record.  Any single upload
can later be proven *included* in (or shown absent from) a committed
round with a logarithmic inclusion proof, and flipping one byte of any
logged ciphertext changes the recomputed root -- the tamper-evidence
the CI audit gate relies on.

The construction follows RFC 6962 (Certificate Transparency):

* ``leaf = SHA-256(0x00 || "olive-leaf:" || payload)``
* ``node = SHA-256(0x01 || "olive-node:" || left || right)``
* trees over ``n > 1`` leaves split at the largest power of two
  strictly less than ``n``, so no leaf is ever duplicated (the
  second-preimage weakness of pad-to-even schemes does not apply);
* the empty tree has the fixed domain-separated root
  ``SHA-256(0x02 || "olive-empty")``.

Leaf payloads bind the client identity to its ciphertext bytes
(:func:`upload_leaf`), so a proof shows *whose* upload was committed,
not merely that some bytes were.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field

_LEAF_PREFIX = b"\x00olive-leaf:"
_NODE_PREFIX = b"\x01olive-node:"

#: Root of the zero-leaf tree (a round that accepted no uploads).
EMPTY_ROOT = hashlib.sha256(b"\x02olive-empty").digest()


def leaf_hash(payload: bytes) -> bytes:
    """Domain-separated hash of one leaf payload."""
    return hashlib.sha256(_LEAF_PREFIX + payload).digest()


def node_hash(left: bytes, right: bytes) -> bytes:
    """Domain-separated hash of an interior node."""
    return hashlib.sha256(_NODE_PREFIX + left + right).digest()


def upload_leaf(client_id: int, ciphertext: bytes) -> bytes:
    """The leaf payload committing one client's sealed upload.

    The 8-byte big-endian client id is bound into the payload so two
    clients uploading identical bytes still commit to distinct leaves.
    """
    return struct.pack(">Q", int(client_id)) + ciphertext


def _split(n: int) -> int:
    """RFC 6962 split point: largest power of two strictly below n."""
    k = 1
    while k * 2 < n:
        k *= 2
    return k


def merkle_root(leaves: list[bytes]) -> bytes:
    """Root over pre-hashed leaves (outputs of :func:`leaf_hash`)."""
    if not leaves:
        return EMPTY_ROOT
    if len(leaves) == 1:
        return leaves[0]
    k = _split(len(leaves))
    return node_hash(merkle_root(leaves[:k]), merkle_root(leaves[k:]))


def root_over_payloads(payloads: list[bytes]) -> bytes:
    """Convenience: hash raw leaf payloads, then take the root."""
    return merkle_root([leaf_hash(p) for p in payloads])


@dataclass(frozen=True)
class InclusionProof:
    """An audit path proving one leaf is under a committed root.

    ``path`` lists sibling hashes bottom-up; each step records which
    side the sibling joins from (``"left"`` siblings are prepended,
    ``"right"`` siblings appended, when recomputing the running hash).
    """

    leaf_index: int
    n_leaves: int
    leaf: bytes
    path: list[tuple[str, bytes]] = field(default_factory=list)

    def root(self) -> bytes:
        """Recompute the root this proof leads to."""
        running = self.leaf
        for side, sibling in self.path:
            if side == "left":
                running = node_hash(sibling, running)
            else:
                running = node_hash(running, sibling)
        return running


def inclusion_proof(leaves: list[bytes], index: int) -> InclusionProof:
    """Audit path for ``leaves[index]`` (pre-hashed leaves)."""
    if not 0 <= index < len(leaves):
        raise IndexError(f"leaf index {index} outside [0, {len(leaves)})")
    path: list[tuple[str, bytes]] = []

    def walk(lo: int, hi: int, target: int) -> None:
        if hi - lo == 1:
            return
        k = _split(hi - lo)
        if target < lo + k:
            walk(lo, lo + k, target)
            path.append(("right", merkle_root(leaves[lo + k:hi])))
        else:
            walk(lo + k, hi, target)
            path.append(("left", merkle_root(leaves[lo:lo + k])))

    walk(0, len(leaves), index)
    return InclusionProof(leaf_index=index, n_leaves=len(leaves),
                          leaf=leaves[index], path=path)


def verify_inclusion(proof: InclusionProof, root: bytes) -> bool:
    """True when ``proof`` authenticates its leaf under ``root``."""
    if not 0 <= proof.leaf_index < proof.n_leaves:
        return False
    return proof.root() == root
