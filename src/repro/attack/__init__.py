"""Section 4's sensitive-label inference attack: leakage extraction
from enclave traces, the JAC / NN / NN-single classifiers, and the
Algorithm 2 end-to-end pipeline with the all / top-1 metrics."""

from .classifiers import (
    JacAttack,
    NnAttack,
    NnSingleAttack,
    decide_labels,
    jaccard,
    kmeans_1d_top_cluster,
    multi_hot,
)
from .leakage import (
    RoundObservation,
    coarsen_indices,
    feature_dim,
    observe_round,
    observe_rounds,
    serving_feature_dim,
    serving_slot_observations,
)
from .pipeline import (
    METHODS,
    AttackConfig,
    AttackResult,
    ServingAttackResult,
    all_accuracy,
    build_teacher,
    chance_top1,
    macro_ovr_auc,
    run_attack,
    run_serving_attack,
    top1_accuracy,
)

__all__ = [
    "AttackConfig",
    "AttackResult",
    "JacAttack",
    "METHODS",
    "NnAttack",
    "NnSingleAttack",
    "RoundObservation",
    "ServingAttackResult",
    "all_accuracy",
    "build_teacher",
    "chance_top1",
    "coarsen_indices",
    "decide_labels",
    "feature_dim",
    "jaccard",
    "kmeans_1d_top_cluster",
    "macro_ovr_auc",
    "multi_hot",
    "observe_round",
    "observe_rounds",
    "run_attack",
    "run_serving_attack",
    "serving_feature_dim",
    "serving_slot_observations",
    "top1_accuracy",
]
