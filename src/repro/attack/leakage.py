"""Extracting per-client leaked index sets from enclave traces.

The adversary of Section 3.1 watches the aggregation run.  Under the
Linear algorithm the trace interleaves a fixed-order scan of the
concatenated gradient buffer ``g`` with data-dependent touches of the
aggregation buffer ``g_star``; since the adversary delivers the
ciphertexts itself, it knows which segment of ``g`` belongs to which
client and can attribute every ``g_star`` access to a client.  The
result -- one observed index set per client per round -- is the raw
input of the attack classifiers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.aggregation import G_STAR_REGION
from ..core.obliviousness import leaked_index_sets
from ..core.olive import OliveRoundLog
from ..serving.engine import SERVE_TABLE_REGION, ServedBatch
from ..sgx.observer import ObserverConfig, SideChannelObserver


@dataclass(frozen=True)
class RoundObservation:
    """What the adversary extracted from one round."""

    round_index: int
    observed: dict[int, frozenset[int]]  # client id -> observed offsets/lines


def observe_round(
    log: OliveRoundLog,
    granularity: str = "word",
    gstar_itemsize: int = 4,
) -> RoundObservation:
    """Project one round's trace into per-client observed index sets.

    Requires the round to have been run with ``traced=True``.  For a
    fully oblivious aggregator the extracted sets are identical across
    clients and rounds (or empty), carrying no information.
    """
    if log.trace is None:
        raise ValueError("round was not traced; run with traced=True")
    participants = list(log.updates.keys())
    boundaries = [0]
    for cid in participants:
        boundaries.append(boundaries[-1] + log.updates[cid].k)
    raw_sets = leaked_index_sets(log.trace, G_STAR_REGION, boundaries)
    observer = SideChannelObserver(
        G_STAR_REGION,
        ObserverConfig(granularity=granularity),
        itemsize=gstar_itemsize,
    )
    observed = {
        cid: observer.indices_to_observation(raw)
        for cid, raw in zip(participants, raw_sets)
    }
    return RoundObservation(round_index=log.round_index, observed=observed)


def observe_rounds(
    logs: list[OliveRoundLog], granularity: str = "word"
) -> list[RoundObservation]:
    """Observation for every traced round."""
    return [observe_round(log, granularity) for log in logs]


def coarsen_indices(
    indices, granularity: str = "word", itemsize: int = 4, line_bytes: int = 64
) -> frozenset[int]:
    """Coarsen ground-truth/teacher indices to the observation space."""
    observer = SideChannelObserver(
        G_STAR_REGION,
        ObserverConfig(granularity=granularity, line_bytes=line_bytes),
        itemsize=itemsize,
    )
    return observer.indices_to_observation(indices)


def feature_dim(d: int, granularity: str = "word",
                itemsize: int = 4, line_bytes: int = 64) -> int:
    """Dimensionality of the observation space for a d-parameter model."""
    if granularity == "word":
        return d
    return (d * itemsize + line_bytes - 1) // line_bytes


# -- serving-side observations ------------------------------------------
# The same adversary watches the inference path: during one served
# batch the trace touches the per-class calibration table once per slot
# in slot order, and each slot contributes a count of table accesses
# that is fixed by the serving mode (the whole table obliviously, one
# row in plain mode).  Both counts are public -- they follow from the
# model and batch shape -- so the adversary can attribute every table
# access to a batch slot, exactly as gradient-buffer segments are
# attributed to clients during training.


def serving_slot_observations(
    batch: ServedBatch,
    granularity: str = "word",
    line_bytes: int = 64,
) -> list[frozenset[int]]:
    """Per-slot observed sets over the serving class table.

    Splits the batch trace's ``serve_table`` accesses (record order)
    into equal per-slot segments and coarsens each into the observation
    space.  For the oblivious engine every slot's set is the full table
    -- identical across slots, inputs, and batches.
    """
    if batch.trace is None or batch.layout is None:
        raise ValueError("batch was not traced; run infer_batch(traced=True)")
    n_slots = len(batch.labels)
    rids, offs, _ = batch.trace.columns()
    names = batch.trace.region_names
    if SERVE_TABLE_REGION not in names:
        raise ValueError("trace has no serve_table region")
    table_rid = names.index(SERVE_TABLE_REGION)
    table_offs = offs[np.asarray(rids) == table_rid]
    if len(table_offs) % n_slots:
        raise ValueError(
            f"{len(table_offs)} table accesses do not split into "
            f"{n_slots} slots"
        )
    per_slot = len(table_offs) // n_slots
    observer = SideChannelObserver(
        SERVE_TABLE_REGION,
        ObserverConfig(granularity=granularity, line_bytes=line_bytes),
        itemsize=batch.layout.itemsize(SERVE_TABLE_REGION),
    )
    return [
        observer.indices_to_observation(
            table_offs[slot * per_slot : (slot + 1) * per_slot]
        )
        for slot in range(n_slots)
    ]


def serving_feature_dim(
    n_labels: int,
    granularity: str = "word",
    itemsize: int = 8,
    line_bytes: int = 64,
) -> int:
    """Observation-space dimensionality of the (L, L) serving table."""
    return feature_dim(
        n_labels * n_labels, granularity, itemsize=itemsize,
        line_bytes=line_bytes,
    )
