"""Extracting per-client leaked index sets from enclave traces.

The adversary of Section 3.1 watches the aggregation run.  Under the
Linear algorithm the trace interleaves a fixed-order scan of the
concatenated gradient buffer ``g`` with data-dependent touches of the
aggregation buffer ``g_star``; since the adversary delivers the
ciphertexts itself, it knows which segment of ``g`` belongs to which
client and can attribute every ``g_star`` access to a client.  The
result -- one observed index set per client per round -- is the raw
input of the attack classifiers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.aggregation import G_STAR_REGION
from ..core.obliviousness import leaked_index_sets
from ..core.olive import OliveRoundLog
from ..sgx.observer import ObserverConfig, SideChannelObserver


@dataclass(frozen=True)
class RoundObservation:
    """What the adversary extracted from one round."""

    round_index: int
    observed: dict[int, frozenset[int]]  # client id -> observed offsets/lines


def observe_round(
    log: OliveRoundLog,
    granularity: str = "word",
    gstar_itemsize: int = 4,
) -> RoundObservation:
    """Project one round's trace into per-client observed index sets.

    Requires the round to have been run with ``traced=True``.  For a
    fully oblivious aggregator the extracted sets are identical across
    clients and rounds (or empty), carrying no information.
    """
    if log.trace is None:
        raise ValueError("round was not traced; run with traced=True")
    participants = list(log.updates.keys())
    boundaries = [0]
    for cid in participants:
        boundaries.append(boundaries[-1] + log.updates[cid].k)
    raw_sets = leaked_index_sets(log.trace, G_STAR_REGION, boundaries)
    observer = SideChannelObserver(
        G_STAR_REGION,
        ObserverConfig(granularity=granularity),
        itemsize=gstar_itemsize,
    )
    observed = {
        cid: observer.indices_to_observation(raw)
        for cid, raw in zip(participants, raw_sets)
    }
    return RoundObservation(round_index=log.round_index, observed=observed)


def observe_rounds(
    logs: list[OliveRoundLog], granularity: str = "word"
) -> list[RoundObservation]:
    """Observation for every traced round."""
    return [observe_round(log, granularity) for log in logs]


def coarsen_indices(
    indices, granularity: str = "word", itemsize: int = 4, line_bytes: int = 64
) -> frozenset[int]:
    """Coarsen ground-truth/teacher indices to the observation space."""
    observer = SideChannelObserver(
        G_STAR_REGION,
        ObserverConfig(granularity=granularity, line_bytes=line_bytes),
        itemsize=itemsize,
    )
    return observer.indices_to_observation(indices)


def feature_dim(d: int, granularity: str = "word",
                itemsize: int = 4, line_bytes: int = 64) -> int:
    """Dimensionality of the observation space for a d-parameter model."""
    if granularity == "word":
        return d
    return (d * itemsize + line_bytes - 1) // line_bytes
