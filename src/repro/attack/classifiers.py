"""Attack classifiers: JAC, NN, NN-single, and 1-D k-means (Sec. 4.1).

All three methods score each candidate label against a client's
observed index information; the decision stage either takes the known
number of labels (fixed setting) or clusters the scores with 1-D
2-means and returns the high cluster (random setting).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fl.models import Dropout, Linear, ReLU, Sequential, softmax_cross_entropy


def jaccard(a: frozenset[int], b: frozenset[int]) -> float:
    """Jaccard similarity; 0 for two empty sets (no signal)."""
    if not a and not b:
        return 0.0
    union = len(a | b)
    return len(a & b) / union


def multi_hot(indices: frozenset[int], dim: int) -> np.ndarray:
    """Multi-hot feature vector of an observed index set."""
    x = np.zeros(dim)
    if indices:
        arr = np.fromiter((i for i in indices if 0 <= i < dim), dtype=np.int64)
        x[arr] = 1.0
    return x


def _nn_features(indices: frozenset[int], dim: int) -> np.ndarray:
    """L2-normalized multi-hot features for the NN attack models.

    Top-k index sets contain thousands of ones on paper-scale models;
    normalizing keeps the MLP's effective learning rate independent of
    k (the raw multi-hot is kept for JAC, which is scale-free).
    """
    x = multi_hot(indices, dim)
    norm = np.linalg.norm(x)
    if norm > 0:
        x /= norm
    return x


def kmeans_1d_top_cluster(scores: np.ndarray, iterations: int = 50) -> np.ndarray:
    """2-means on scalar scores; returns indices of the high cluster.

    Degenerates gracefully: constant scores yield the single best index
    (a minimal guess rather than "everything").
    """
    if len(scores) == 0:
        return np.empty(0, dtype=np.int64)
    lo, hi = float(scores.min()), float(scores.max())
    if hi - lo < 1e-12:
        return np.asarray([int(np.argmax(scores))], dtype=np.int64)
    centroids = np.asarray([lo, hi])
    for _ in range(iterations):
        assign = np.abs(scores[:, None] - centroids[None, :]).argmin(axis=1)
        new = centroids.copy()
        for c in range(2):
            members = scores[assign == c]
            if len(members):
                new[c] = members.mean()
        if np.allclose(new, centroids):
            break
        centroids = new
    top = int(np.argmax(centroids))
    return np.flatnonzero(assign == top).astype(np.int64)


@dataclass
class JacAttack:
    """Jaccard-similarity nearest-neighbour scoring (Algorithm 2, JAC).

    Scores label l by the Jaccard similarity between the client's
    observations (union over its rounds) and the teacher observations
    for l (union over the same rounds).
    """

    def score(
        self,
        observed_by_round: dict[int, frozenset[int]],
        teacher_by_round: dict[int, dict[int, list[frozenset[int]]]],
        n_labels: int,
    ) -> np.ndarray:
        client_union: set[int] = set()
        for obs in observed_by_round.values():
            client_union |= obs
        scores = np.zeros(n_labels)
        for label in range(n_labels):
            teacher_union: set[int] = set()
            for rnd in observed_by_round:
                for sample in teacher_by_round.get(rnd, {}).get(label, []):
                    teacher_union |= sample
            scores[label] = jaccard(frozenset(client_union), frozenset(teacher_union))
        return scores


def _attack_mlp(input_dim: int, n_labels: int, hidden: int,
                seed: int) -> Sequential:
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Linear(input_dim, hidden, rng),
            ReLU(),
            Dropout(0.5, rng),
            Linear(hidden, n_labels, rng),
        ]
    )


def _train_classifier(
    model: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    epochs: int,
    lr: float,
    batch_size: int,
    rng: np.random.Generator,
) -> None:
    n = len(y)
    for _ in range(epochs):
        order = rng.permutation(n)
        for start in range(0, n, batch_size):
            batch = order[start : start + batch_size]
            logits = model.forward(x[batch], train=True)
            _, dlogits = softmax_cross_entropy(logits, y[batch])
            model.backward(dlogits)
            model.sgd_step(lr)


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


@dataclass
class NnAttack:
    """Per-round MLP scoring (Algorithm 2, NN): one model per round,
    scores averaged across the client's rounds.

    The paper's attack models are 2-FC MLPs with a 1000-unit hidden
    layer; ``hidden`` defaults lower because the synthetic tasks are
    smaller, and is configurable.
    """

    hidden: int = 128
    epochs: int = 30
    lr: float = 0.5
    batch_size: int = 16
    seed: int = 0

    def fit_round_models(
        self,
        teacher_by_round: dict[int, dict[int, list[frozenset[int]]]],
        feature_dim: int,
        n_labels: int,
    ) -> dict[int, Sequential]:
        """Train M_t on round t's teacher observations."""
        rng = np.random.default_rng(self.seed)
        models: dict[int, Sequential] = {}
        for rnd, per_label in teacher_by_round.items():
            xs, ys = [], []
            for label, samples in per_label.items():
                for sample in samples:
                    xs.append(_nn_features(sample, feature_dim))
                    ys.append(label)
            model = _attack_mlp(feature_dim, n_labels, self.hidden,
                                self.seed + rnd)
            _train_classifier(
                model, np.asarray(xs), np.asarray(ys, dtype=np.int64),
                self.epochs, self.lr, self.batch_size, rng,
            )
            models[rnd] = model
        return models

    def score(
        self,
        observed_by_round: dict[int, frozenset[int]],
        models: dict[int, Sequential],
        feature_dim: int,
        n_labels: int,
    ) -> np.ndarray:
        scores = np.zeros(n_labels)
        used = 0
        for rnd, obs in observed_by_round.items():
            if rnd not in models:
                continue
            x = _nn_features(obs, feature_dim)[None, :]
            logits = models[rnd].forward(x, train=False)
            scores += _softmax(logits)[0]
            used += 1
        if used:
            scores /= used
        return scores


@dataclass
class NnSingleAttack:
    """Single-model scoring (Algorithm 2, NN-single): one MLP over the
    concatenated multi-hot features of all rounds; rounds a client did
    not participate in are zeroed."""

    hidden: int = 256
    epochs: int = 30
    lr: float = 0.5
    batch_size: int = 16
    seed: int = 0

    def _concat_features(
        self,
        observed_by_round: dict[int, frozenset[int]],
        rounds: list[int],
        feature_dim: int,
    ) -> np.ndarray:
        parts = [
            _nn_features(observed_by_round.get(rnd, frozenset()), feature_dim)
            for rnd in rounds
        ]
        return np.concatenate(parts)

    def fit(
        self,
        teacher_by_round: dict[int, dict[int, list[frozenset[int]]]],
        feature_dim: int,
        n_labels: int,
    ) -> tuple[Sequential, list[int]]:
        """Train M_0 on concatenated teacher features of all rounds."""
        rounds = sorted(teacher_by_round.keys())
        rng = np.random.default_rng(self.seed)
        samples_per_label = min(
            len(teacher_by_round[rnd].get(0, [])) for rnd in rounds
        ) if rounds else 0
        xs, ys = [], []
        for label in range(n_labels):
            n_samples = min(
                len(teacher_by_round[rnd].get(label, [])) for rnd in rounds
            )
            for s in range(n_samples):
                per_round = {
                    rnd: teacher_by_round[rnd][label][s] for rnd in rounds
                }
                xs.append(self._concat_features(per_round, rounds, feature_dim))
                ys.append(label)
        del samples_per_label
        model = _attack_mlp(feature_dim * len(rounds), n_labels, self.hidden,
                            self.seed)
        _train_classifier(
            model, np.asarray(xs), np.asarray(ys, dtype=np.int64),
            self.epochs, self.lr, self.batch_size, rng,
        )
        return model, rounds

    def score(
        self,
        observed_by_round: dict[int, frozenset[int]],
        model: Sequential,
        rounds: list[int],
        feature_dim: int,
    ) -> np.ndarray:
        x = self._concat_features(observed_by_round, rounds, feature_dim)[None, :]
        logits = model.forward(x, train=False)
        return _softmax(logits)[0]


def decide_labels(
    scores: np.ndarray, known_count: int | None = None
) -> np.ndarray:
    """Final decision stage (Algorithm 2, lines 22-28)."""
    if known_count is not None:
        if not 1 <= known_count <= len(scores):
            raise ValueError("known label count out of range")
        top = np.argsort(scores)[::-1][:known_count]
        return np.sort(top).astype(np.int64)
    return np.sort(kmeans_1d_top_cluster(scores)).astype(np.int64)
