"""End-to-end sensitive-label inference attack (Algorithm 2).

Pipeline, matching the paper step by step:

1. run (or receive) T traced OLIVE rounds and extract per-client
   observed index sets from the side channel (:mod:`.leakage`);
2. build *teacher* observations: for every round t and label l, replay
   local training from the round's global model on the attacker's
   public per-label data X_l and record the top-k index set, coarsened
   into the same observation space;
3. score every (client, label) pair with JAC / NN / NN-single;
4. decide the label set (known count, or 1-D 2-means otherwise);
5. report the ``all`` (exact-set) and ``top-1`` metrics of Section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..core.olive import OliveRoundLog
from ..fl.client import TrainingConfig, compute_update
from ..fl.datasets import ClientData
from ..fl.models import Sequential
from .classifiers import JacAttack, NnAttack, NnSingleAttack, decide_labels
from .leakage import coarsen_indices, feature_dim, observe_rounds

METHODS = ("jac", "nn", "nn_single")


@dataclass(frozen=True)
class AttackConfig:
    """Attacker hyperparameters."""

    method: str = "jac"
    granularity: str = "word"
    teacher_samples_per_label: int = 3
    known_label_count: int | None = None
    nn_hidden: int = 128
    nn_epochs: int = 30
    nn_lr: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ValueError(f"unknown attack method {self.method!r}")


@dataclass
class AttackResult:
    """Per-client inferences plus the paper's two success metrics."""

    inferred: dict[int, np.ndarray]
    scores: dict[int, np.ndarray]
    true_labels: dict[int, frozenset[int]]
    all_accuracy: float
    top1_accuracy: float


def build_teacher(
    logs: list[OliveRoundLog],
    model: Sequential,
    test_data_by_label: dict[int, np.ndarray],
    training: TrainingConfig,
    config: AttackConfig,
) -> dict[int, dict[int, list[frozenset[int]]]]:
    """Teacher observations teacher[t][l] (Algorithm 2, lines 9-12).

    The attacker splits its public X_l into
    ``teacher_samples_per_label`` shards and replays the client
    procedure (local SGD from theta^t, top-k sparsify) on each shard,
    yielding several observation samples per (round, label).
    """
    rng = np.random.default_rng(config.seed)
    teacher: dict[int, dict[int, list[frozenset[int]]]] = {}
    splits = max(1, config.teacher_samples_per_label)
    with obs.span("attack.build_teacher", rounds=len(logs),
                  labels=len(test_data_by_label), splits=splits):
        for log in logs:
            per_label: dict[int, list[frozenset[int]]] = {}
            with obs.span("attack.teacher_round", round=log.round_index):
                for label, x in test_data_by_label.items():
                    shards = np.array_split(np.arange(len(x)), splits)
                    samples = []
                    for shard in shards:
                        if len(shard) == 0:
                            continue
                        data = ClientData(
                            client_id=-1,
                            x=x[shard],
                            y=np.full(len(shard), label),
                            label_set=frozenset([label]),
                        )
                        update = compute_update(
                            model, log.weights_before, data, training, rng
                        )
                        samples.append(
                            coarsen_indices(update.indices,
                                            config.granularity)
                        )
                    obs.add("attack.teacher_samples", len(samples))
                    per_label[label] = samples
            teacher[log.round_index] = per_label
    return teacher


def run_attack(
    logs: list[OliveRoundLog],
    model: Sequential,
    test_data_by_label: dict[int, np.ndarray],
    training: TrainingConfig,
    true_labels: dict[int, frozenset[int]],
    d: int,
    config: AttackConfig | None = None,
) -> AttackResult:
    """Execute Algorithm 2 over a sequence of traced rounds."""
    config = config or AttackConfig()
    n_labels = len(test_data_by_label)
    dim = feature_dim(d, config.granularity)

    attack_span = obs.span("attack.run", method=config.method,
                           rounds=len(logs), granularity=config.granularity)
    with attack_span:
        with obs.span("attack.observe"):
            observations = observe_rounds(logs, config.granularity)
        # Per client: round index -> observed set, only rounds joined.
        per_client: dict[int, dict[int, frozenset[int]]] = {}
        for round_obs in observations:
            for cid, observed in round_obs.observed.items():
                per_client.setdefault(cid, {})[round_obs.round_index] = (
                    observed
                )
        obs.add("attack.clients_observed", len(per_client))

        teacher = build_teacher(logs, model, test_data_by_label, training,
                                config)

        scores: dict[int, np.ndarray] = {}
        with obs.span("attack.score", method=config.method,
                      clients=len(per_client)):
            if config.method == "jac":
                attack = JacAttack()
                for cid, by_round in per_client.items():
                    scores[cid] = attack.score(by_round, teacher, n_labels)
            elif config.method == "nn":
                attack = NnAttack(
                    hidden=config.nn_hidden, epochs=config.nn_epochs,
                    lr=config.nn_lr, seed=config.seed,
                )
                models = attack.fit_round_models(teacher, dim, n_labels)
                for cid, by_round in per_client.items():
                    scores[cid] = attack.score(by_round, models, dim,
                                               n_labels)
            else:  # nn_single
                attack = NnSingleAttack(
                    hidden=config.nn_hidden, epochs=config.nn_epochs,
                    lr=config.nn_lr, seed=config.seed,
                )
                single_model, rounds = attack.fit(teacher, dim, n_labels)
                for cid, by_round in per_client.items():
                    scores[cid] = attack.score(by_round, single_model,
                                               rounds, dim)

        inferred: dict[int, np.ndarray] = {}
        with obs.span("attack.decide"):
            for cid, s in scores.items():
                known = config.known_label_count
                if known is not None and cid in true_labels:
                    # Fixed setting: the attacker knows the set size.
                    known = len(true_labels[cid])
                inferred[cid] = decide_labels(s, known_count=known)

    return AttackResult(
        inferred=inferred,
        scores=scores,
        true_labels=true_labels,
        all_accuracy=all_accuracy(inferred, true_labels),
        top1_accuracy=top1_accuracy(scores, true_labels),
    )


def all_accuracy(
    inferred: dict[int, np.ndarray], true_labels: dict[int, frozenset[int]]
) -> float:
    """Fraction of attacked clients whose label set matches exactly."""
    attacked = [cid for cid in inferred if cid in true_labels]
    if not attacked:
        return 0.0
    hits = sum(
        1 for cid in attacked
        if frozenset(int(lab) for lab in inferred[cid]) == true_labels[cid]
    )
    return hits / len(attacked)


def top1_accuracy(
    scores: dict[int, np.ndarray], true_labels: dict[int, frozenset[int]]
) -> float:
    """Fraction of clients whose highest-scored label is truly theirs."""
    attacked = [cid for cid in scores if cid in true_labels]
    if not attacked:
        return 0.0
    hits = sum(
        1 for cid in attacked
        if int(np.argmax(scores[cid])) in true_labels[cid]
    )
    return hits / len(attacked)


def chance_top1(true_labels: dict[int, frozenset[int]], n_labels: int) -> float:
    """Expected top-1 success of random guessing (baseline reference)."""
    if not true_labels:
        return 0.0
    return float(
        np.mean([len(s) / n_labels for s in true_labels.values()])
    )
