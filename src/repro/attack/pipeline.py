"""End-to-end sensitive-label inference attack (Algorithm 2).

Pipeline, matching the paper step by step:

1. run (or receive) T traced OLIVE rounds and extract per-client
   observed index sets from the side channel (:mod:`.leakage`);
2. build *teacher* observations: for every round t and label l, replay
   local training from the round's global model on the attacker's
   public per-label data X_l and record the top-k index set, coarsened
   into the same observation space;
3. score every (client, label) pair with JAC / NN / NN-single;
4. decide the label set (known count, or 1-D 2-means otherwise);
5. report the ``all`` (exact-set) and ``top-1`` metrics of Section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..core.olive import OliveRoundLog
from ..fl.client import TrainingConfig
from ..fl.models import Sequential
from ..runtime import STREAM_TEACHER, RuntimeConfig, TrainTask, run_train_tasks
from ..serving.engine import ServedBatch
from .classifiers import (
    JacAttack,
    NnAttack,
    NnSingleAttack,
    _attack_mlp,
    _nn_features,
    _softmax,
    _train_classifier,
    decide_labels,
    jaccard,
)
from .leakage import (
    coarsen_indices,
    feature_dim,
    observe_rounds,
    serving_feature_dim,
    serving_slot_observations,
)

METHODS = ("jac", "nn", "nn_single")


@dataclass(frozen=True)
class AttackConfig:
    """Attacker hyperparameters."""

    method: str = "jac"
    granularity: str = "word"
    teacher_samples_per_label: int = 3
    known_label_count: int | None = None
    nn_hidden: int = 128
    nn_epochs: int = 30
    nn_lr: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ValueError(f"unknown attack method {self.method!r}")


@dataclass
class AttackResult:
    """Per-client inferences plus the paper's two success metrics."""

    inferred: dict[int, np.ndarray]
    scores: dict[int, np.ndarray]
    true_labels: dict[int, frozenset[int]]
    all_accuracy: float
    top1_accuracy: float


def build_teacher(
    logs: list[OliveRoundLog],
    model: Sequential,
    test_data_by_label: dict[int, np.ndarray],
    training: TrainingConfig,
    config: AttackConfig,
    runtime: RuntimeConfig | None = None,
) -> dict[int, dict[int, list[frozenset[int]]]]:
    """Teacher observations teacher[t][l] (Algorithm 2, lines 9-12).

    The attacker splits its public X_l into
    ``teacher_samples_per_label`` shards and replays the client
    procedure (local SGD from theta^t, top-k sparsify) on each shard,
    yielding several observation samples per (round, label).

    All replays are independent, so they batch through the cohort
    runtime executor (``runtime``; serial by default).  Each replay's
    randomness derives from its ``(round, label, shard)`` identity, so
    the teacher is bit-identical for every executor and worker count.
    """
    splits = max(1, config.teacher_samples_per_label)
    tasks: list[TrainTask] = []
    slots: list[tuple[int, int]] = []  # (round_index, label) per task
    for log in logs:
        for label, x in test_data_by_label.items():
            for shard_idx, shard in enumerate(
                np.array_split(np.arange(len(x)), splits)
            ):
                if len(shard) == 0:
                    continue
                tasks.append(TrainTask(
                    seed_key=(log.round_index, int(label), shard_idx),
                    stream=STREAM_TEACHER,
                    entropy=config.seed,
                    weights=log.weights_before,
                    x=x[shard],
                    y=np.full(len(shard), label),
                    training=training,
                ))
                slots.append((log.round_index, int(label)))

    teacher: dict[int, dict[int, list[frozenset[int]]]] = {
        log.round_index: {int(label): [] for label in test_data_by_label}
        for log in logs
    }
    with obs.span("attack.build_teacher", rounds=len(logs),
                  labels=len(test_data_by_label), splits=splits,
                  tasks=len(tasks)):
        index_sets = run_train_tasks(model, tasks, runtime)
        for (round_index, label), indices in zip(slots, index_sets):
            teacher[round_index][label].append(
                coarsen_indices(indices, config.granularity)
            )
            obs.add("attack.teacher_samples")
    return teacher


def run_attack(
    logs: list[OliveRoundLog],
    model: Sequential,
    test_data_by_label: dict[int, np.ndarray],
    training: TrainingConfig,
    true_labels: dict[int, frozenset[int]],
    d: int,
    config: AttackConfig | None = None,
    runtime: RuntimeConfig | None = None,
) -> AttackResult:
    """Execute Algorithm 2 over a sequence of traced rounds."""
    config = config or AttackConfig()
    n_labels = len(test_data_by_label)
    dim = feature_dim(d, config.granularity)

    attack_span = obs.span("attack.run", method=config.method,
                           rounds=len(logs), granularity=config.granularity)
    with attack_span:
        with obs.span("attack.observe"):
            observations = observe_rounds(logs, config.granularity)
        # Per client: round index -> observed set, only rounds joined.
        per_client: dict[int, dict[int, frozenset[int]]] = {}
        for round_obs in observations:
            for cid, observed in round_obs.observed.items():
                per_client.setdefault(cid, {})[round_obs.round_index] = (
                    observed
                )
        obs.add("attack.clients_observed", len(per_client))

        teacher = build_teacher(logs, model, test_data_by_label, training,
                                config, runtime=runtime)

        scores: dict[int, np.ndarray] = {}
        with obs.span("attack.score", method=config.method,
                      clients=len(per_client)):
            if config.method == "jac":
                attack = JacAttack()
                for cid, by_round in per_client.items():
                    scores[cid] = attack.score(by_round, teacher, n_labels)
            elif config.method == "nn":
                attack = NnAttack(
                    hidden=config.nn_hidden, epochs=config.nn_epochs,
                    lr=config.nn_lr, seed=config.seed,
                )
                models = attack.fit_round_models(teacher, dim, n_labels)
                for cid, by_round in per_client.items():
                    scores[cid] = attack.score(by_round, models, dim,
                                               n_labels)
            else:  # nn_single
                attack = NnSingleAttack(
                    hidden=config.nn_hidden, epochs=config.nn_epochs,
                    lr=config.nn_lr, seed=config.seed,
                )
                single_model, rounds = attack.fit(teacher, dim, n_labels)
                for cid, by_round in per_client.items():
                    scores[cid] = attack.score(by_round, single_model,
                                               rounds, dim)

        inferred: dict[int, np.ndarray] = {}
        with obs.span("attack.decide"):
            for cid, s in scores.items():
                known = config.known_label_count
                if known is not None and cid in true_labels:
                    # Fixed setting: the attacker knows the set size.
                    known = len(true_labels[cid])
                inferred[cid] = decide_labels(s, known_count=known)

    return AttackResult(
        inferred=inferred,
        scores=scores,
        true_labels=true_labels,
        all_accuracy=all_accuracy(inferred, true_labels),
        top1_accuracy=top1_accuracy(scores, true_labels),
    )


def all_accuracy(
    inferred: dict[int, np.ndarray], true_labels: dict[int, frozenset[int]]
) -> float:
    """Fraction of attacked clients whose label set matches exactly."""
    attacked = [cid for cid in inferred if cid in true_labels]
    if not attacked:
        return 0.0
    hits = sum(
        1 for cid in attacked
        if frozenset(int(lab) for lab in inferred[cid]) == true_labels[cid]
    )
    return hits / len(attacked)


def top1_accuracy(
    scores: dict[int, np.ndarray], true_labels: dict[int, frozenset[int]]
) -> float:
    """Fraction of clients whose highest-scored label is truly theirs."""
    attacked = [cid for cid in scores if cid in true_labels]
    if not attacked:
        return 0.0
    hits = sum(
        1 for cid in attacked
        if int(np.argmax(scores[cid])) in true_labels[cid]
    )
    return hits / len(attacked)


def chance_top1(true_labels: dict[int, frozenset[int]], n_labels: int) -> float:
    """Expected top-1 success of random guessing (baseline reference)."""
    if not true_labels:
        return 0.0
    return float(
        np.mean([len(s) / n_labels for s in true_labels.values()])
    )


# -- serving-side attack ------------------------------------------------
# The same adversary, retargeted at inference: from a served batch's
# trace it tries to recover *which class each slot was served* (the
# inference-time analogue of the sensitive-label attack).  The attacker
# first submits probe requests of known class and records their slot
# observations (teacher), then scores victim slots with the same
# classifier machinery -- Jaccard against per-class teacher sets, or
# the attack MLP trained on the probe observations.


@dataclass
class ServingAttackResult:
    """Per-slot class scores plus the headline leakage metric."""

    scores: np.ndarray       # (n_slots, n_labels)
    labels: np.ndarray       # (n_slots,) class actually served
    auc: float               # macro one-vs-rest AUC; 0.5 = no signal
    top1_accuracy: float
    method: str


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """Ranks (1-based) with ties sharing their average rank."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values))
    sorted_vals = values[order]
    start = 0
    while start < len(values):
        end = start
        while end + 1 < len(values) and sorted_vals[end + 1] == sorted_vals[start]:
            end += 1
        ranks[order[start : end + 1]] = (start + end + 2) / 2.0
        start = end + 1
    return ranks


def macro_ovr_auc(scores: np.ndarray, labels: np.ndarray,
                  n_labels: int) -> float:
    """Macro-averaged one-vs-rest AUC of a class-score matrix.

    Mann-Whitney with average-rank tie handling, so an attacker whose
    scores carry no information (all slots identical, as against the
    oblivious engine) lands on exactly 0.5.  Labels without both a
    positive and a negative slot are skipped; 0.5 if none qualify.
    """
    aucs = []
    for label in range(n_labels):
        positives = labels == label
        n_pos = int(positives.sum())
        n_neg = len(labels) - n_pos
        if n_pos == 0 or n_neg == 0:
            continue
        ranks = _average_ranks(scores[:, label])
        u = ranks[positives].sum() - n_pos * (n_pos + 1) / 2.0
        aucs.append(u / (n_pos * n_neg))
    return float(np.mean(aucs)) if aucs else 0.5


def run_serving_attack(
    victim_batches: list[ServedBatch],
    probe_batches: list[ServedBatch],
    n_labels: int,
    config: AttackConfig | None = None,
) -> ServingAttackResult:
    """Score how well the trace reveals which class each slot got.

    ``probe_batches`` are the attacker's own traced requests (classes
    known to it -- the serving teacher); ``victim_batches`` are the
    traced batches under attack.  Returns macro one-vs-rest AUC over
    victim slots: ~=0.5 against the oblivious engine, well above it
    against the plain row-read path.
    """
    config = config or AttackConfig()
    with obs.span("attack.serving", method=config.method,
                  victim_batches=len(victim_batches),
                  probe_batches=len(probe_batches)):
        victim_obs: list[frozenset[int]] = []
        victim_labels: list[int] = []
        for batch in victim_batches:
            victim_obs.extend(
                serving_slot_observations(batch, config.granularity)
            )
            victim_labels.extend(int(lab) for lab in batch.labels)
        teacher: dict[int, list[frozenset[int]]] = {
            label: [] for label in range(n_labels)
        }
        for batch in probe_batches:
            for observed, label in zip(
                serving_slot_observations(batch, config.granularity),
                batch.labels,
            ):
                teacher[int(label)].append(observed)
        obs.add("attack.serving_slots", len(victim_obs))

        n_slots = len(victim_obs)
        scores = np.zeros((n_slots, n_labels))
        if config.method == "jac":
            for i, observed in enumerate(victim_obs):
                for label in range(n_labels):
                    if teacher[label]:
                        scores[i, label] = max(
                            jaccard(observed, t) for t in teacher[label]
                        )
        else:  # nn / nn_single: one MLP over the probe observations
            dim = serving_feature_dim(n_labels, config.granularity)
            train_x = np.stack([
                _nn_features(observed, dim)
                for label in range(n_labels)
                for observed in teacher[label]
            ])
            train_y = np.asarray([
                label
                for label in range(n_labels)
                for _ in teacher[label]
            ])
            model = _attack_mlp(dim, n_labels, config.nn_hidden, config.seed)
            _train_classifier(
                model, train_x, train_y, config.nn_epochs, config.nn_lr,
                batch_size=32, rng=np.random.default_rng(config.seed),
            )
            features = np.stack(
                [_nn_features(observed, dim) for observed in victim_obs]
            )
            scores = _softmax(model.forward(features, train=False))

        labels = np.asarray(victim_labels, dtype=np.int64)
        auc = macro_ovr_auc(scores, labels, n_labels)
        top1 = float(np.mean(scores.argmax(axis=1) == labels))
    return ServingAttackResult(
        scores=scores, labels=labels, auc=auc,
        top1_accuracy=top1, method=config.method,
    )
