"""Recursive Path ORAM: the position map stored in smaller ORAMs.

The flat :class:`repro.oram.path_oram.PathORAM` keeps its position map
as enclave-private state.  Real Zerotrace cannot do that -- the map is
itself data whose access pattern leaks -- so it stores the map
recursively: each ORAM's position map is packed into blocks held by a
smaller ORAM, until the innermost map fits in registers (here: a small
linear-scanned array).  Every data access then costs one path access
per recursion level, which is exactly the "oblivious reading of the
position maps" overhead the paper cites when explaining Path ORAM's
cost in Figure 10.

Positions are packed ``entries_per_block`` to a block; the recursion
bottoms out when a map has at most ``base_map_limit`` entries, which is
then scanned obliviously (o_mov-selected) on every access.
"""

from __future__ import annotations

import random
from typing import Any

from ..oblivious.primitives import o_mov
from ..sgx.memory import Trace
from .path_oram import PathORAM


class RecursiveMap:
    """Position map stored inside a Path ORAM, recursively."""

    def __init__(
        self,
        capacity: int,
        n_leaves: int,
        entries_per_block: int = 8,
        base_map_limit: int = 64,
        trace: Trace | None = None,
        rng: random.Random | None = None,
        level: int = 0,
    ) -> None:
        self.capacity = capacity
        self.n_leaves = n_leaves
        self.entries_per_block = entries_per_block
        self._rng = rng or random.Random()
        self.level = level
        if capacity <= base_map_limit:
            self._base: list[int] | None = [
                self._rng.randrange(n_leaves) for _ in range(capacity)
            ]
            self._oram: PathORAM | None = None
            self._inner: "RecursiveMap" | None = None
        else:
            self._base = None
            n_blocks = (capacity + entries_per_block - 1) // entries_per_block
            self._oram = PathORAM(
                n_blocks,
                stash_limit=40,
                trace=trace,
                seed=self._rng.getrandbits(62),
            )
            # Initialize each packed block with random leaf assignments.
            for b in range(n_blocks):
                block = tuple(
                    self._rng.randrange(n_leaves)
                    for _ in range(entries_per_block)
                )
                self._oram.write(b, block)
            self._inner = None  # the block ORAM has its own private map

    @property
    def depth(self) -> int:
        """Number of ORAM levels under this map (0 = register base)."""
        if self._base is not None:
            return 0
        return 1

    def get_and_refresh(self, index: int) -> tuple[int, int]:
        """Read the position of ``index`` and replace it with a fresh
        random leaf -- the atomic remap of every Path ORAM access.

        Returns ``(old_leaf, new_leaf)``.
        """
        if not 0 <= index < self.capacity:
            raise IndexError("position-map index out of range")
        new_leaf = self._rng.randrange(self.n_leaves)
        if self._base is not None:
            # Oblivious scan of the register-resident base map.
            current = self._base[0]
            for i in range(self.capacity):
                current = o_mov(i == index, self._base[i], current)
            for i in range(self.capacity):
                self._base[i] = o_mov(i == index, new_leaf, self._base[i])
            return current, new_leaf
        block_id = index // self.entries_per_block
        offset = index % self.entries_per_block
        block = self._oram.read(block_id)
        current = block[0]
        for i in range(self.entries_per_block):
            current = o_mov(i == offset, block[i], current)
        updated = tuple(
            o_mov(i == offset, new_leaf, block[i])
            for i in range(self.entries_per_block)
        )
        self._oram.write(block_id, updated)
        return current, new_leaf


class RecursivePathORAM:
    """Path ORAM whose position map is itself ORAM-resident.

    Interface-compatible with :class:`PathORAM` (read/write/access);
    every access performs the data-tree path plus one position-map
    ORAM access, both visible in the shared trace.
    """

    def __init__(
        self,
        capacity: int,
        bucket_size: int = 4,
        stash_limit: int = 20,
        entries_per_block: int = 8,
        base_map_limit: int = 64,
        trace: Trace | None = None,
        seed: int | None = None,
    ) -> None:
        self._rng = random.Random(seed)
        self._data = PathORAM(
            capacity,
            bucket_size=bucket_size,
            stash_limit=stash_limit,
            trace=trace,
            seed=self._rng.getrandbits(62),
        )
        self._map = RecursiveMap(
            capacity,
            self._data.n_leaves,
            entries_per_block=entries_per_block,
            base_map_limit=base_map_limit,
            trace=trace,
            rng=self._rng,
        )
        # Align the data ORAM's private map with the recursive one: the
        # data ORAM must use OUR positions, so we drive it explicitly.
        self._data._position = [0] * capacity  # neutralized; see access()
        self.capacity = capacity
        self.accesses = 0

    def access(self, op: str, block_id: int, new_value: Any = None) -> Any:
        """One access: recursive map lookup + data-tree path."""
        if not 0 <= block_id < self.capacity:
            raise IndexError(f"block {block_id} out of range")
        self.accesses += 1
        # The recursive map is authoritative: fetch the old leaf and
        # the freshly installed one; mirror them into the data ORAM's
        # private array so its path fetch and write-back use them.
        old_leaf, new_leaf = self._map.get_and_refresh(block_id)
        self._data._position[block_id] = old_leaf
        return self._data.access(
            op, block_id, new_value=new_value, new_leaf=new_leaf
        )

    def read(self, block_id: int) -> Any:
        """Oblivious read of one block."""
        return self.access("read", block_id)

    def write(self, block_id: int, value: Any) -> None:
        """Oblivious write of one block."""
        self.access("write", block_id, new_value=value)

    @property
    def stash_size(self) -> int:
        """Real blocks parked in the data-tree stash."""
        return self._data.stash_size
