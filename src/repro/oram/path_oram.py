"""Path ORAM (Stefanov et al.) with Zerotrace-style oblivious client state.

The paper benchmarks its aggregation algorithms against the
general-purpose state of the art: Path ORAM adapted to SGX (Zerotrace),
with the stash scanned linearly using CMOV-based primitives so that even
the enclave-internal client state leaks nothing.  This module implements
the full protocol:

* a complete binary tree of Z-slot buckets holding ``(block_id, leaf,
  value)`` records, dummies marked with ``block_id = -1``;
* a position map assigning each block a uniformly random leaf,
  refreshed on every access ("refresh for each update" -- the overhead
  the paper calls out);
* the canonical access: read the old leaf's root-to-leaf path into the
  stash, serve the request from the stash via an oblivious linear scan,
  then greedily write back the path from leaf to root.

The stash is bounded (default 20 overflow slots beyond the in-flight
path, the paper's setting); exceeding it raises :class:`StashOverflow`.
In the real Zerotrace the position map is itself recursively stored in
ORAM; here it is enclave-private state and its oblivious-access cost is
instead charged by the cost model (see ``repro.core.streams``).
"""

from __future__ import annotations

import random
from typing import Any

from ..oblivious.primitives import o_mov
from ..sgx.memory import Trace, TracedArray

DUMMY = -1


class StashOverflow(Exception):
    """The bounded stash could not absorb leftover blocks."""


class PathORAM:
    """A Path ORAM instance over ``capacity`` fixed blocks.

    Parameters
    ----------
    capacity:
        Number of addressable blocks (block ids ``0..capacity-1``).
    bucket_size:
        Z, blocks per tree bucket (4 is standard).
    stash_limit:
        Maximum number of real blocks allowed to remain in the stash
        after write-back (the paper fixes 20).
    trace:
        Optional :class:`Trace`; when given, tree bucket accesses are
        recorded so the adversary view can be inspected.
    """

    def __init__(
        self,
        capacity: int,
        bucket_size: int = 4,
        stash_limit: int = 20,
        trace: Trace | None = None,
        seed: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.bucket_size = bucket_size
        self.stash_limit = stash_limit
        self._rng = random.Random(seed)
        # Tree with at least `capacity` leaves.
        self.height = max(1, (capacity - 1).bit_length())
        self.n_leaves = 1 << self.height
        self.n_buckets = 2 * self.n_leaves - 1
        empty_bucket = tuple(
            (DUMMY, 0, 0.0) for _ in range(bucket_size)
        )
        self._tree = TracedArray(
            "oram_tree",
            [empty_bucket] * self.n_buckets,
            trace=trace,
            itemsize=bucket_size * 16,
        )
        self._position: list[int] = [
            self._rng.randrange(self.n_leaves) for _ in range(capacity)
        ]
        self._stash: list[tuple[int, int, Any]] = []
        self.accesses = 0

    # ------------------------------------------------------------------
    # Tree geometry
    # ------------------------------------------------------------------
    def _path_buckets(self, leaf: int) -> list[int]:
        """Bucket indices from root to ``leaf`` (root is bucket 0)."""
        node = leaf + self.n_leaves - 1
        path = []
        while True:
            path.append(node)
            if node == 0:
                break
            node = (node - 1) // 2
        path.reverse()
        return path

    @staticmethod
    def _is_ancestor(node: int, descendant: int) -> bool:
        while descendant > node:
            descendant = (descendant - 1) // 2
        return descendant == node

    # ------------------------------------------------------------------
    # Core access
    # ------------------------------------------------------------------
    def access(self, op: str, block_id: int, new_value: Any = None,
               new_leaf: int | None = None) -> Any:
        """One ORAM access; returns the block's (pre-write) value.

        ``op`` is ``"read"`` or ``"write"``.  Missing blocks read as 0.0
        (the aggregator initializes implicitly, like the paper's d-zero
        initialization of g*).  ``new_leaf`` lets an external position
        map (the recursive construction) dictate the remap target.
        """
        if not 0 <= block_id < self.capacity:
            raise IndexError(f"block {block_id} out of range")
        if op not in ("read", "write"):
            raise ValueError("op must be 'read' or 'write'")
        self.accesses += 1

        leaf = self._position[block_id]
        if new_leaf is None:
            new_leaf = self._rng.randrange(self.n_leaves)
        elif not 0 <= new_leaf < self.n_leaves:
            raise IndexError("forced new leaf out of range")
        self._position[block_id] = new_leaf

        # 1. Fetch the whole path into the stash.
        path = self._path_buckets(leaf)
        for bucket_idx in path:
            bucket = self._tree.read(bucket_idx)
            for slot in bucket:
                if slot[0] != DUMMY:
                    self._stash.append(slot)
            self._tree.write(
                bucket_idx,
                tuple((DUMMY, 0, 0.0) for _ in range(self.bucket_size)),
            )

        # 2. Serve the request from the stash with an oblivious scan:
        #    every entry is touched; selection happens in registers (the
        #    slot index is selected with o_mov so the scan's work is
        #    position-independent; payloads may be any type).
        found_at = -1
        for i, (bid, _, _val) in enumerate(self._stash):
            found_at = o_mov(bid == block_id, i, found_at)
        value: Any = self._stash[found_at][2] if found_at >= 0 else 0.0
        if op == "write":
            entry = (block_id, self._position[block_id], new_value)
            if found_at >= 0:
                self._stash[found_at] = entry
            else:
                self._stash.append(entry)
        elif found_at >= 0:
            bid, _, val = self._stash[found_at]
            self._stash[found_at] = (bid, self._position[block_id], val)
        else:
            self._stash.append((block_id, self._position[block_id], 0.0))

        # 3. Greedy write-back, leaf to root.
        for bucket_idx in reversed(path):
            placed: list[tuple[int, int, Any]] = []
            remaining: list[tuple[int, int, Any]] = []
            for entry in self._stash:
                entry_leaf_node = entry[1] + self.n_leaves - 1
                fits = (
                    len(placed) < self.bucket_size
                    and self._is_ancestor(bucket_idx, entry_leaf_node)
                )
                if fits:
                    placed.append(entry)
                else:
                    remaining.append(entry)
            self._stash = remaining
            bucket = list(placed)
            while len(bucket) < self.bucket_size:
                bucket.append((DUMMY, 0, 0.0))
            self._tree.write(bucket_idx, tuple(bucket))

        if len(self._stash) > self.stash_limit:
            raise StashOverflow(
                f"stash holds {len(self._stash)} blocks (limit {self.stash_limit})"
            )
        return value

    def read(self, block_id: int) -> Any:
        """Oblivious read of one block."""
        return self.access("read", block_id)

    def write(self, block_id: int, value: Any) -> None:
        """Oblivious write of one block."""
        self.access("write", block_id, new_value=value)

    @property
    def stash_size(self) -> int:
        """Real blocks currently parked in the stash."""
        return len(self._stash)
