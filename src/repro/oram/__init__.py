"""General-purpose ORAM comparators: flat Path ORAM with oblivious
stash, and the Zerotrace-style recursive-position-map construction."""

from .path_oram import DUMMY, PathORAM, StashOverflow
from .recursive import RecursiveMap, RecursivePathORAM

__all__ = [
    "DUMMY",
    "PathORAM",
    "RecursiveMap",
    "RecursivePathORAM",
    "StashOverflow",
]
