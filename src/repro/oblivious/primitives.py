"""Register-level oblivious primitives (Appendix A).

The paper implements ``o_mov`` / ``o_swap`` with the x86 ``CMOV``
instruction: the selected value travels register-to-register based on a
flag, producing *no* data-dependent memory access, branch, or timing
difference.  In this simulation the memory trace records accesses to
:class:`repro.sgx.memory.TracedArray` regions only, so register
arithmetic is invisible to the adversary by construction -- matching
the CMOV trust model.  The implementations below are additionally
branch-free at the Python level (pure arithmetic selection) so the
control flow itself is input-independent, mirroring the single-path
discipline the paper uses against branch-prediction and timing attacks.

Values may be scalars or same-length tuples (the paper's
``(index, value)`` weights are 2-tuples).
"""

from __future__ import annotations

from typing import Any, Tuple


def _as_int_flag(flag: Any) -> int:
    """Normalize a condition to the integers 0/1 without branching."""
    return int(bool(flag))


def o_mov(flag: Any, x: Any, y: Any) -> Any:
    """Branch-free select: returns ``x`` when ``flag`` else ``y``.

    Matches Listing 1: ``o_mov(flag, x, y) == x if flag else y``,
    computed arithmetically so no conditional control flow depends on
    ``flag``.  Tuples are selected element-wise.
    """
    f = _as_int_flag(flag)
    if isinstance(x, tuple):
        return tuple(o_mov(f, xi, yi) for xi, yi in zip(x, y))
    return f * x + (1 - f) * y


def o_swap(flag: Any, x: Any, y: Any) -> Tuple[Any, Any]:
    """Branch-free conditional swap: returns ``(y, x)`` when ``flag``.

    Matches Listing 2.  For numeric payloads the swap is computed with
    the select primitive; tuples swap element-wise.
    """
    f = _as_int_flag(flag)
    if isinstance(x, tuple):
        pairs = [o_swap(f, xi, yi) for xi, yi in zip(x, y)]
        return tuple(p[0] for p in pairs), tuple(p[1] for p in pairs)
    return o_mov(f, y, x), o_mov(f, x, y)


def o_min(x: float, y: float) -> float:
    """Branch-free minimum."""
    return o_mov(x < y, x, y)


def o_max(x: float, y: float) -> float:
    """Branch-free maximum."""
    return o_mov(x > y, x, y)


def o_equal(x: int, y: int) -> int:
    """Branch-free equality flag (0/1)."""
    return int(x == y)


def o_access(array, secret_offset: int) -> Any:
    """Obliviously read ``array[secret_offset]`` by scanning everything.

    The classic linear-scan ORAM-of-last-resort: every element is
    touched, the wanted one is retained via ``o_mov``, so the trace is
    independent of ``secret_offset``: exactly one read per element, in
    offset order.  O(len(array)) per access; used by the Path ORAM
    stash and position map (Zerotrace's approach).
    """
    result: Any = array.read(0)
    for i in range(1, len(array)):
        value = array.read(i)
        result = o_mov(i == secret_offset, value, result)
    return result


def o_access_rows(array, secret_row: int, row_width: int) -> list:
    """Obliviously read row ``secret_row`` of a row-major table.

    The TENNOR-style retrieval the oblivious serving path is built on:
    a table of ``len(array) // row_width`` rows is scanned front to
    back -- every element read exactly once, in offset order -- while
    the wanted row is retained in registers via :func:`o_mov`.  The
    trace is a pure function of the table shape; which row was wanted
    (for serving: which class the enclave is about to respond with) is
    invisible.  The batched serving engine performs the same scan as
    one ``read_block`` plus an arithmetic one-hot selection; this
    scalar form is the reference its trace is pinned against.
    """
    if row_width <= 0 or len(array) % row_width:
        raise ValueError("array length must be a multiple of row_width")
    n_rows = len(array) // row_width
    row: list = [0.0] * row_width
    for r in range(n_rows):
        wanted = o_equal(r, secret_row)
        for j in range(row_width):
            value = array.read(r * row_width + j)
            row[j] = o_mov(wanted, value, row[j])
    return row


def o_write(array, secret_offset: int, value: Any) -> None:
    """Obliviously write ``array[secret_offset] = value`` via full scan.

    Every slot is read and rewritten; only the target slot actually
    changes, selected in registers.  Trace depends only on the length.
    """
    for i in range(len(array)):
        current = array.read(i)
        array.write(i, o_mov(i == secret_offset, value, current))
