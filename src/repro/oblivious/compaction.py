"""Oblivious padding / compaction helpers for the DO aggregation path.

The differentially oblivious scheme of Section 5.4 hides the per-index
histogram of gradient indices by *padding*: appending dummy weights so
the adversary-visible histogram is a noised version of the true one.
Padding is the only randomization available to a DO mechanism built on
data structures (only one-sided, non-negative noise can be realized by
adding dummies -- Case et al., cited in the paper), which is one of the
two reasons the paper concludes DO is unattractive for FL.

These helpers stay deliberately simple: they operate on index/value
numpy arrays and return padded copies whose length is again under the
caller's control.
"""

from __future__ import annotations

import numpy as np


def pad_with_dummies(
    indices: np.ndarray,
    values: np.ndarray,
    dummy_counts: np.ndarray,
    dummy_index: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Append ``dummy_counts[i]`` zero-valued dummies for model index i.

    Dummies carry the *real* index (so the observed histogram is
    ``true + noise``) but a zero value, leaving the aggregate unchanged.
    A final block of ``dummy_index`` entries may be appended by callers
    needing a power-of-two length.
    """
    if len(dummy_counts) == 0:
        return indices.copy(), values.copy()
    if np.any(dummy_counts < 0):
        raise ValueError("dummy counts must be non-negative (one-sided noise)")
    extra_idx = np.repeat(
        np.arange(len(dummy_counts), dtype=indices.dtype), dummy_counts
    )
    padded_idx = np.concatenate([indices, extra_idx])
    padded_val = np.concatenate([values, np.zeros(len(extra_idx), dtype=values.dtype)])
    return padded_idx, padded_val


def pad_to_length(
    indices: np.ndarray,
    values: np.ndarray,
    length: int,
    dummy_index: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Pad with ``(dummy_index, 0.0)`` records up to ``length``."""
    if length < len(indices):
        raise ValueError("cannot pad below current length")
    extra = length - len(indices)
    padded_idx = np.concatenate(
        [indices, np.full(extra, dummy_index, dtype=indices.dtype)]
    )
    padded_val = np.concatenate([values, np.zeros(extra, dtype=values.dtype)])
    return padded_idx, padded_val


def truncated_geometric_noise(
    rng: np.random.Generator, epsilon: float, size: int, cap: int
) -> np.ndarray:
    """One-sided truncated-geometric padding noise per histogram bin.

    Shifted-and-truncated geometric noise gives a pure-epsilon DP
    histogram with only non-negative values; ``cap`` bounds the shift
    (noise is drawn in ``[0, 2*cap]`` around the shift ``cap``).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if cap < 0:
        raise ValueError("cap must be non-negative")
    alpha = np.exp(-epsilon)
    support = np.arange(0, 2 * cap + 1)
    weights = alpha ** np.abs(support - cap)
    weights /= weights.sum()
    return rng.choice(support, size=size, p=weights)
