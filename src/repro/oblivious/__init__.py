"""Oblivious building blocks: register-level select/swap primitives,
Batcher's bitonic sorting network, oblivious shuffle, and padding
helpers for the differentially oblivious path."""

from .compaction import pad_to_length, pad_with_dummies, truncated_geometric_noise
from .primitives import (
    o_access,
    o_access_rows,
    o_equal,
    o_max,
    o_min,
    o_mov,
    o_swap,
    o_write,
)
from .shuffle import oblivious_shuffle_numpy, oblivious_shuffle_traced
from .sort import (
    apply_network_traced,
    bitonic_network,
    bitonic_sort_numpy,
    bitonic_sort_traced,
    comparator_count,
    is_power_of_two,
    network_access_offsets,
    next_power_of_two,
    odd_even_merge_network,
)

__all__ = [
    "apply_network_traced",
    "bitonic_network",
    "bitonic_sort_numpy",
    "bitonic_sort_traced",
    "comparator_count",
    "is_power_of_two",
    "network_access_offsets",
    "next_power_of_two",
    "o_access",
    "o_access_rows",
    "o_equal",
    "o_max",
    "o_min",
    "o_mov",
    "o_swap",
    "o_write",
    "odd_even_merge_network",
    "oblivious_shuffle_numpy",
    "oblivious_shuffle_traced",
    "pad_to_length",
    "pad_with_dummies",
    "truncated_geometric_noise",
]
