"""Oblivious shuffle: random-key bitonic sort.

Used by the differentially oblivious aggregation path (Section 5.4),
which pads the gradient multiset with dummies and then obliviously
shuffles before a linear scatter pass.  Sorting by fresh uniform random
keys yields a permutation whose trace is input-independent (the network
schedule is fixed); the permutation itself is uniform up to key
collisions, which are negligible for 64-bit keys.
"""

from __future__ import annotations

import random

import numpy as np

from .sort import bitonic_sort_numpy, bitonic_sort_traced, is_power_of_two

_KEY_BITS = 62


def oblivious_shuffle_traced(array, rng: random.Random | None = None) -> None:
    """Shuffle a power-of-two :class:`TracedArray` in place.

    Each element is tagged with a random key (register-held, untraced),
    the pair array is bitonically sorted by key, and the tags dropped.
    The key draw and the sort schedule are both data-independent.
    """
    rng = rng or random.Random()
    n = len(array)
    if not is_power_of_two(n):
        raise ValueError("oblivious shuffle needs a power-of-two length")
    for i in range(n):
        value = array.read(i)
        array.write(i, (rng.getrandbits(_KEY_BITS), value))
    bitonic_sort_traced(array, key=lambda tagged: tagged[0])
    for i in range(n):
        tagged = array.read(i)
        array.write(i, tagged[1])


def oblivious_shuffle_numpy(
    *payloads: np.ndarray, rng: np.random.Generator | None = None
) -> None:
    """Vectorized equivalent: shuffle payload arrays with one permutation."""
    rng = rng or np.random.default_rng()
    if not payloads:
        return
    n = len(payloads[0])
    keys = rng.integers(0, 1 << _KEY_BITS, size=n, dtype=np.int64)
    bitonic_sort_numpy(keys, *payloads)
