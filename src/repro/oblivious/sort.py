"""Batcher's bitonic sorting network (Section 5.2's oblivious sort).

A sorting network compares and swaps positions in a schedule fixed by
the input *length* alone, so applying it with the register-oblivious
:func:`repro.oblivious.primitives.o_swap` at every comparator yields a
fully oblivious sort: the access trace is the same for every input of a
given length (the core of the paper's Proposition 5.2 proof).

Three interchangeable implementations are provided:

* :func:`bitonic_sort_traced` -- over a
  :class:`repro.sgx.memory.TracedArray` with arbitrary Python elements;
  every comparator contributes four accesses (read i, read j, write i,
  write j) to the trace, recorded one network *stage* at a time as a
  single vectorized append (the comparators within a stage touch
  disjoint pairs, so batching preserves the exact access sequence).
* :func:`bitonic_sort_traced_columns` -- the batched oblivious kernel:
  numpy key/payload columns, stage-vectorized compare-exchanges *and*
  stage-batched trace recording.  Produces byte-for-byte the same trace
  as the element-at-a-time formulation while running orders of
  magnitude faster; used by the traced aggregators.
* :func:`bitonic_sort_numpy` -- the same network without a trace, for
  the performance benchmarks.

All require no padding from callers: non-power-of-two inputs raise,
because the aggregation algorithms pad with dummy weights themselves
(the padding *is* part of the algorithm in the paper).
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from .. import obs
from .primitives import o_swap


def is_power_of_two(n: int) -> bool:
    """True when n is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two >= n (>= 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def bitonic_network(n: int) -> Iterator[tuple[int, int, bool]]:
    """Comparator schedule ``(i, j, ascending)`` for a length-n network.

    ``n`` must be a power of two.  The schedule depends only on ``n``;
    this data-independence is what makes the sort oblivious.
    """
    if not is_power_of_two(n):
        raise ValueError(f"bitonic network needs a power-of-two length, got {n}")
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            for i in range(n):
                partner = i ^ j
                if partner > i:
                    ascending = (i & k) == 0
                    yield i, partner, ascending
            j //= 2
        k *= 2


def bitonic_stages(n: int) -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """The same comparator schedule, one network stage per item.

    Yields ``(i_lo, i_hi, ascending)`` numpy arrays holding every
    comparator of one ``(k, j)`` stage, ordered by increasing ``i_lo``
    -- exactly the order :func:`bitonic_network` enumerates them.
    Comparators within a stage touch disjoint position pairs, so a
    stage can be applied (and its accesses recorded) as one batch.
    """
    if not is_power_of_two(n):
        raise ValueError(f"bitonic network needs a power-of-two length, got {n}")
    idx = np.arange(n)
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            partner = idx ^ j
            lower = idx < partner
            i_lo = idx[lower]
            i_hi = partner[lower]
            ascending = (i_lo & k) == 0
            yield i_lo, i_hi, ascending
            j //= 2
        k *= 2


def _comparator_offsets(i_lo: np.ndarray, i_hi: np.ndarray) -> np.ndarray:
    """Flattened ``i, j, i, j`` offset stream of one stage's comparators."""
    offs = np.empty((len(i_lo), 4), dtype=np.int64)
    offs[:, 0] = i_lo
    offs[:, 1] = i_hi
    offs[:, 2] = i_lo
    offs[:, 3] = i_hi
    return offs.reshape(-1)


#: Per-comparator op pattern: read i, read j, write i, write j.
_RRWW = np.array([0, 0, 1, 1], dtype=np.uint8)


def _record_stage(trace, region: str, i_lo: np.ndarray, i_hi: np.ndarray) -> None:
    trace.record_batch(
        region, _comparator_offsets(i_lo, i_hi), np.tile(_RRWW, len(i_lo))
    )


def odd_even_merge_network(n: int) -> Iterator[tuple[int, int, bool]]:
    """Batcher's odd-even mergesort comparator schedule.

    The second classic O(n log^2 n) sorting network; slightly fewer
    comparators than the bitonic network and every comparator is
    ascending.  Offered as an alternative backend for the oblivious
    sort (see the sorting-network ablation benchmark); ``n`` must be a
    power of two.
    """
    if not is_power_of_two(n):
        raise ValueError(f"odd-even merge network needs a power of two, got {n}")
    p = 1
    while p < n:
        k = p
        while k >= 1:
            for j in range(k % p, n - k, 2 * k):
                for i in range(k):
                    left = i + j
                    right = i + j + k
                    if left // (2 * p) == right // (2 * p):
                        yield left, right, True
            k //= 2
        p *= 2


def apply_network_traced(
    array,
    network: Iterator[tuple[int, int, bool]],
    key: Callable[[object], object] = lambda w: w,
) -> None:
    """Run any comparator schedule obliviously over a traced array."""
    for i, j, ascending in network:
        a = array.read(i)
        b = array.read(j)
        out_of_order = (key(a) > key(b)) == ascending
        a, b = o_swap(out_of_order, a, b)
        array.write(i, a)
        array.write(j, b)


def comparator_count(n: int) -> int:
    """Number of comparators in the length-n network: n/2 * s(s+1)/2 stages."""
    if not is_power_of_two(n):
        raise ValueError("power-of-two length required")
    stages = n.bit_length() - 1
    return (n // 2) * stages * (stages + 1) // 2


def bitonic_sort_traced(
    array, key: Callable[[object], object] = lambda w: w
) -> None:
    """Sort a power-of-two :class:`TracedArray` in place, obliviously.

    Every comparator reads both elements, computes the order flag in
    registers, and conditionally swaps with ``o_swap``; both elements
    are always written back, so the trace is length-determined.  The
    four accesses per comparator are recorded one stage at a time via a
    batched append -- the recorded sequence is identical to the
    comparator-at-a-time loop.
    """
    n = len(array)
    data = array.data
    trace = array.trace
    with obs.span("kernel.bitonic_sort", n=n, traced=trace is not None):
        for i_lo, i_hi, ascending in bitonic_stages(n):
            if trace is not None:
                _record_stage(trace, array.name, i_lo, i_hi)
            for i, j, asc in zip(i_lo.tolist(), i_hi.tolist(),
                                 ascending.tolist()):
                a = data[i]
                b = data[j]
                out_of_order = (key(a) > key(b)) == asc
                a, b = o_swap(out_of_order, a, b)
                data[i] = a
                data[j] = b


def bitonic_sort_traced_columns(
    trace, region: str, keys: np.ndarray, *payloads: np.ndarray
) -> None:
    """Batched oblivious sort over numpy columns, recording into ``trace``.

    Sorts ``keys`` (and permutes each payload identically) with
    stage-vectorized compare-exchanges while appending each stage's
    ``read i, read j, write i, write j`` comparator accesses to
    ``region`` as one batch.  Because comparators within a stage are
    disjoint, both the data result and the recorded access sequence are
    identical to the element-at-a-time :func:`bitonic_sort_traced`;
    ``trace=None`` degrades to a pure :func:`bitonic_sort_numpy`.
    """
    n = len(keys)
    for p in payloads:
        if len(p) != n:
            raise ValueError("payload length mismatch")
    if n == 1:
        return
    with obs.span("kernel.bitonic_sort", n=n, traced=trace is not None):
        for i_lo, i_hi, ascending in bitonic_stages(n):
            if trace is not None:
                _record_stage(trace, region, i_lo, i_hi)
            a = keys[i_lo]
            b = keys[i_hi]
            swap = (a > b) == ascending
            sw_lo = i_lo[swap]
            sw_hi = i_hi[swap]
            keys[sw_lo], keys[sw_hi] = keys[sw_hi].copy(), keys[sw_lo].copy()
            for p in payloads:
                p[sw_lo], p[sw_hi] = p[sw_hi].copy(), p[sw_lo].copy()


def bitonic_sort_numpy(keys: np.ndarray, *payloads: np.ndarray) -> None:
    """Apply the same network to numpy arrays in place, stage-vectorized.

    ``keys`` drives the comparisons; each payload array is permuted
    identically.  All arrays must share a power-of-two length.
    """
    bitonic_sort_traced_columns(None, "", keys, *payloads)


def network_access_offsets(n: int) -> np.ndarray:
    """Element offsets touched by the traced sort, in order.

    Each comparator touches offsets ``i, j, i, j`` (two reads, two
    writes).  Because the schedule is length-determined, this stream is
    exactly the adversary-visible access pattern of the oblivious sort
    and feeds the cycle cost model.
    """
    chunks = [
        _comparator_offsets(i_lo, i_hi) for i_lo, i_hi, _ in bitonic_stages(n)
    ]
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chunks)
