"""Authenticated encryption and key derivation for the simulated enclave.

The real OLIVE system encrypts gradients with AES-GCM under per-client
keys negotiated during remote attestation.  No AES implementation is
available offline, so this module provides an encrypt-then-MAC scheme
built from the standard library:

* keystream: the SHAKE-256 XOF over ``key || nonce``, squeezed to the
  plaintext length and XORed over it (one C call per message -- the
  mega-cohort seal path is throughput-bound on this);
* tag: HMAC-SHA-256 over ``nonce || ciphertext`` with an independent
  subkey.

This preserves every property Algorithm 1 relies on: confidentiality of
gradients in transit, integrity (forged or corrupted ciphertexts are
rejected), and *authenticated-encryption-mode client verification* --
the enclave checks a loaded ciphertext decrypts under the sampled
client's key, so a malicious server cannot inject contributions from
clients outside the securely sampled set.
"""

from __future__ import annotations

import functools
import hashlib
import hmac
import os
import struct
import time
from dataclasses import dataclass

import numpy as np

from .. import obs

KEY_BYTES = 32
NONCE_BYTES = 16
TAG_BYTES = 32


class AuthenticationError(Exception):
    """Raised when a ciphertext fails tag verification."""


def generate_key(rng_bytes: bytes | None = None) -> bytes:
    """Fresh 256-bit key (deterministic when seed bytes are supplied)."""
    if rng_bytes is not None:
        return hashlib.sha256(b"key-gen" + rng_bytes).digest()
    return os.urandom(KEY_BYTES)


def derive_key(master: bytes, label: str) -> bytes:
    """HKDF-like labelled subkey derivation."""
    return hmac.new(master, b"derive:" + label.encode(), hashlib.sha256).digest()


@functools.lru_cache(maxsize=65536)
def _subkeys(key: bytes) -> tuple[bytes, bytes]:
    """The (enc, mac) subkey pair of ``key``, cached.

    A client's RA key is fixed for a deployment while seal/open run
    once per round: caching the two HMAC derivations takes them off the
    mega-cohort hot path.  Bounded LRU so 10^6-client runs cannot grow
    without limit.
    """
    return derive_key(key, "enc"), derive_key(key, "mac")


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    return hashlib.shake_256(key + nonce).digest(length)


def _xor_bytes(data: bytes, stream: bytes) -> bytes:
    """XOR two equal-length byte strings (vectorized; order-free op)."""
    return (
        np.frombuffer(data, dtype=np.uint8)
        ^ np.frombuffer(stream, dtype=np.uint8)
    ).tobytes()


@dataclass(frozen=True)
class Ciphertext:
    """AE ciphertext: nonce, body, and integrity tag."""

    nonce: bytes
    body: bytes
    tag: bytes

    def to_bytes(self) -> bytes:
        """Wire form: nonce || tag || body."""
        return self.nonce + self.tag + self.body

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Ciphertext":
        """Parse the wire form produced by :meth:`to_bytes`."""
        if len(raw) < NONCE_BYTES + TAG_BYTES:
            raise ValueError("ciphertext too short")
        return cls(
            nonce=raw[:NONCE_BYTES],
            tag=raw[NONCE_BYTES : NONCE_BYTES + TAG_BYTES],
            body=raw[NONCE_BYTES + TAG_BYTES :],
        )


def seal(key: bytes, plaintext: bytes, nonce: bytes | None = None) -> Ciphertext:
    """Encrypt-then-MAC ``plaintext`` under ``key``."""
    if len(key) != KEY_BYTES:
        raise ValueError("key must be 32 bytes")
    if nonce is None:
        nonce = os.urandom(NONCE_BYTES)
    if len(nonce) != NONCE_BYTES:
        raise ValueError("nonce must be 16 bytes")
    t0 = time.perf_counter() if obs.enabled() else 0.0
    enc_key, mac_key = _subkeys(key)
    stream = _keystream(enc_key, nonce, len(plaintext))
    body = _xor_bytes(plaintext, stream)
    tag = hmac.new(mac_key, nonce + body, hashlib.sha256).digest()
    if t0:
        obs.observe("crypto.seal_s", time.perf_counter() - t0)
    return Ciphertext(nonce=nonce, body=body, tag=tag)


def seal_batch(
    keys: list[bytes], payloads: list[bytes], nonces: list[bytes]
) -> list[Ciphertext]:
    """Seal one contiguous chunk of uploads (mega-cohort client path).

    Per-message AE state (subkeys, keystream, tag) is inherently
    per-key, so sealing stays a loop -- but one tight loop over a
    pre-encoded chunk, producing ciphertexts byte-identical to
    per-client :func:`seal` calls with the same nonces.
    """
    if not (len(keys) == len(payloads) == len(nonces)):
        raise ValueError("keys/payloads/nonces length mismatch")
    return [
        seal(key, payload, nonce=nonce)
        for key, payload, nonce in zip(keys, payloads, nonces)
    ]


def open_sealed(key: bytes, ct: Ciphertext) -> bytes:
    """Verify and decrypt; raises :class:`AuthenticationError` on forgery."""
    if len(key) != KEY_BYTES:
        raise ValueError("key must be 32 bytes")
    t0 = time.perf_counter() if obs.enabled() else 0.0
    enc_key, mac_key = _subkeys(key)
    expected = hmac.new(mac_key, ct.nonce + ct.body, hashlib.sha256).digest()
    if not hmac.compare_digest(expected, ct.tag):
        raise AuthenticationError("tag verification failed")
    stream = _keystream(enc_key, ct.nonce, len(ct.body))
    plaintext = _xor_bytes(ct.body, stream)
    if t0:
        obs.observe("crypto.unseal_s", time.perf_counter() - t0)
    return plaintext


#: Big-endian (u32 index, f64 value) record -- the exact layout
#: ``struct.pack(">Id", ...)`` produces, so ``tobytes()`` of a filled
#: array is byte-identical to the per-record loop it replaces.
_SPARSE_RECORD = np.dtype([("i", ">u4"), ("v", ">f8")])


def encode_sparse_gradient(indices, values) -> bytes:
    """Wire format for a sparse gradient: ``k`` records of (u32, f64)."""
    if len(indices) != len(values):
        raise ValueError("indices and values must have equal length")
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size and (idx.min() < 0 or idx.max() > 0xFFFFFFFF):
        raise ValueError("index out of u32 range")
    records = np.empty(idx.size, dtype=_SPARSE_RECORD)
    records["i"] = idx
    records["v"] = np.asarray(values, dtype=np.float64)
    return struct.pack(">I", idx.size) + records.tobytes()


def encode_sparse_gradients_batch(indices, values) -> list[bytes]:
    """Encode a ``(C, k)`` stack of sparse gradients in one pass.

    One record-array fill and one ``tobytes`` replace C per-client
    encodings; each returned payload is byte-identical to
    :func:`encode_sparse_gradient` on the corresponding row.
    """
    idx = np.asarray(indices, dtype=np.int64)
    val = np.asarray(values, dtype=np.float64)
    if idx.shape != val.shape or idx.ndim != 2:
        raise ValueError("indices/values must be equal-shape (C, k) stacks")
    if idx.size and (idx.min() < 0 or idx.max() > 0xFFFFFFFF):
        raise ValueError("index out of u32 range")
    n, k = idx.shape
    records = np.empty((n, k), dtype=_SPARSE_RECORD)
    records["i"] = idx
    records["v"] = val
    header = struct.pack(">I", k)
    blob = records.tobytes()
    stride = k * 12
    return [header + blob[c * stride : (c + 1) * stride] for c in range(n)]


def decode_sparse_gradient(raw: bytes) -> tuple[list[int], list[float]]:
    """Inverse of :func:`encode_sparse_gradient`."""
    if len(raw) < 4:
        raise ValueError("truncated gradient payload")
    (k,) = struct.unpack(">I", raw[:4])
    expected = 4 + k * 12
    if len(raw) != expected:
        raise ValueError("gradient payload length mismatch")
    indices: list[int] = []
    values: list[float] = []
    for i in range(k):
        idx, val = struct.unpack(">Id", raw[4 + i * 12 : 16 + i * 12])
        indices.append(idx)
        values.append(val)
    return indices, values


def encode_quantized_gradient(indices, levels, scale: float) -> bytes:
    """Compact wire format for a quantized sparse gradient.

    ``k`` records of (u32 index, i16 level) after an 8-byte scale --
    the bandwidth-saving upload format sparsification+quantization
    exists for (Section 6's 1-3 orders of magnitude).
    """
    if len(indices) != len(levels):
        raise ValueError("indices and levels must have equal length")
    out = [struct.pack(">Id", len(indices), float(scale))]
    for idx, level in zip(indices, levels):
        if not -32768 <= int(level) <= 32767:
            raise ValueError("quantization level exceeds 16-bit range")
        out.append(struct.pack(">Ih", int(idx), int(level)))
    return b"".join(out)


def decode_quantized_gradient(raw: bytes) -> tuple[list[int], list[int], float]:
    """Inverse of :func:`encode_quantized_gradient`."""
    if len(raw) < 12:
        raise ValueError("truncated quantized payload")
    k, scale = struct.unpack(">Id", raw[:12])
    expected = 12 + k * 6
    if len(raw) != expected:
        raise ValueError("quantized payload length mismatch")
    indices: list[int] = []
    levels: list[int] = []
    for i in range(k):
        idx, level = struct.unpack(">Ih", raw[12 + i * 6 : 18 + i * 6])
        indices.append(idx)
        levels.append(level)
    return indices, levels, scale
