"""Authenticated encryption and key derivation for the simulated enclave.

The real OLIVE system encrypts gradients with AES-GCM under per-client
keys negotiated during remote attestation.  No AES implementation is
available offline, so this module provides an encrypt-then-MAC scheme
built from the standard library:

* keystream: SHA-256 in counter mode (``SHA256(key || nonce || counter)``)
  XORed over the plaintext;
* tag: HMAC-SHA-256 over ``nonce || ciphertext`` with an independent
  subkey.

This preserves every property Algorithm 1 relies on: confidentiality of
gradients in transit, integrity (forged or corrupted ciphertexts are
rejected), and *authenticated-encryption-mode client verification* --
the enclave checks a loaded ciphertext decrypts under the sampled
client's key, so a malicious server cannot inject contributions from
clients outside the securely sampled set.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct
from dataclasses import dataclass

KEY_BYTES = 32
NONCE_BYTES = 16
TAG_BYTES = 32


class AuthenticationError(Exception):
    """Raised when a ciphertext fails tag verification."""


def generate_key(rng_bytes: bytes | None = None) -> bytes:
    """Fresh 256-bit key (deterministic when seed bytes are supplied)."""
    if rng_bytes is not None:
        return hashlib.sha256(b"key-gen" + rng_bytes).digest()
    return os.urandom(KEY_BYTES)


def derive_key(master: bytes, label: str) -> bytes:
    """HKDF-like labelled subkey derivation."""
    return hmac.new(master, b"derive:" + label.encode(), hashlib.sha256).digest()


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    for counter in range((length + 31) // 32):
        blocks.append(
            hashlib.sha256(key + nonce + struct.pack(">Q", counter)).digest()
        )
    return b"".join(blocks)[:length]


@dataclass(frozen=True)
class Ciphertext:
    """AE ciphertext: nonce, body, and integrity tag."""

    nonce: bytes
    body: bytes
    tag: bytes

    def to_bytes(self) -> bytes:
        """Wire form: nonce || tag || body."""
        return self.nonce + self.tag + self.body

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Ciphertext":
        """Parse the wire form produced by :meth:`to_bytes`."""
        if len(raw) < NONCE_BYTES + TAG_BYTES:
            raise ValueError("ciphertext too short")
        return cls(
            nonce=raw[:NONCE_BYTES],
            tag=raw[NONCE_BYTES : NONCE_BYTES + TAG_BYTES],
            body=raw[NONCE_BYTES + TAG_BYTES :],
        )


def seal(key: bytes, plaintext: bytes, nonce: bytes | None = None) -> Ciphertext:
    """Encrypt-then-MAC ``plaintext`` under ``key``."""
    if len(key) != KEY_BYTES:
        raise ValueError("key must be 32 bytes")
    if nonce is None:
        nonce = os.urandom(NONCE_BYTES)
    if len(nonce) != NONCE_BYTES:
        raise ValueError("nonce must be 16 bytes")
    enc_key = derive_key(key, "enc")
    mac_key = derive_key(key, "mac")
    stream = _keystream(enc_key, nonce, len(plaintext))
    body = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = hmac.new(mac_key, nonce + body, hashlib.sha256).digest()
    return Ciphertext(nonce=nonce, body=body, tag=tag)


def open_sealed(key: bytes, ct: Ciphertext) -> bytes:
    """Verify and decrypt; raises :class:`AuthenticationError` on forgery."""
    if len(key) != KEY_BYTES:
        raise ValueError("key must be 32 bytes")
    enc_key = derive_key(key, "enc")
    mac_key = derive_key(key, "mac")
    expected = hmac.new(mac_key, ct.nonce + ct.body, hashlib.sha256).digest()
    if not hmac.compare_digest(expected, ct.tag):
        raise AuthenticationError("tag verification failed")
    stream = _keystream(enc_key, ct.nonce, len(ct.body))
    return bytes(c ^ s for c, s in zip(ct.body, stream))


def encode_sparse_gradient(indices, values) -> bytes:
    """Wire format for a sparse gradient: ``k`` records of (u32, f64)."""
    if len(indices) != len(values):
        raise ValueError("indices and values must have equal length")
    out = [struct.pack(">I", len(indices))]
    for idx, val in zip(indices, values):
        out.append(struct.pack(">Id", int(idx), float(val)))
    return b"".join(out)


def decode_sparse_gradient(raw: bytes) -> tuple[list[int], list[float]]:
    """Inverse of :func:`encode_sparse_gradient`."""
    if len(raw) < 4:
        raise ValueError("truncated gradient payload")
    (k,) = struct.unpack(">I", raw[:4])
    expected = 4 + k * 12
    if len(raw) != expected:
        raise ValueError("gradient payload length mismatch")
    indices: list[int] = []
    values: list[float] = []
    for i in range(k):
        idx, val = struct.unpack(">Id", raw[4 + i * 12 : 16 + i * 12])
        indices.append(idx)
        values.append(val)
    return indices, values


def encode_quantized_gradient(indices, levels, scale: float) -> bytes:
    """Compact wire format for a quantized sparse gradient.

    ``k`` records of (u32 index, i16 level) after an 8-byte scale --
    the bandwidth-saving upload format sparsification+quantization
    exists for (Section 6's 1-3 orders of magnitude).
    """
    if len(indices) != len(levels):
        raise ValueError("indices and levels must have equal length")
    out = [struct.pack(">Id", len(indices), float(scale))]
    for idx, level in zip(indices, levels):
        if not -32768 <= int(level) <= 32767:
            raise ValueError("quantization level exceeds 16-bit range")
        out.append(struct.pack(">Ih", int(idx), int(level)))
    return b"".join(out)


def decode_quantized_gradient(raw: bytes) -> tuple[list[int], list[int], float]:
    """Inverse of :func:`encode_quantized_gradient`."""
    if len(raw) < 12:
        raise ValueError("truncated quantized payload")
    k, scale = struct.unpack(">Id", raw[:12])
    expected = 12 + k * 6
    if len(raw) != expected:
        raise ValueError("quantized payload length mismatch")
    indices: list[int] = []
    levels: list[int] = []
    for i in range(k):
        idx, level = struct.unpack(">Ih", raw[12 + i * 6 : 18 + i * 6])
        indices.append(idx)
        levels.append(level)
    return indices, levels, scale
