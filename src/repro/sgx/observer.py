"""Side-channel adversary view of an enclave trace.

The semi-honest server of Section 3.1 cannot read enclave data, but it
observes which addresses the enclave touches.  This module projects a
recorded :class:`repro.sgx.memory.Trace` into what such an adversary
learns, at the two granularities the paper evaluates:

* ``granularity="word"`` -- every element offset (the strongest,
  page-probe-plus-probe-everything adversary used in Figures 4-7);
* ``granularity="cacheline"`` -- 64-byte lines, what cache attacks on
  SGX realistically achieve (Figure 8).

The central quantity for the attack of Section 4 is, per client, the
set of offsets of the *aggregation buffer* ``g*`` touched while that
client's gradient was being folded in; for the non-oblivious Linear
algorithm that set equals the client's top-k index set.

Projection runs on the trace's columnar arrays (one vectorized coarsen
plus ``np.unique`` instead of a Python loop per access); the
list/frozenset return types are unchanged, and ``*_array`` variants
expose the raw numpy views for bulk consumers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .memory import Trace

WORD = "word"
CACHELINE = "cacheline"


@dataclass(frozen=True)
class ObserverConfig:
    """What the adversary can resolve."""

    granularity: str = WORD
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.granularity not in (WORD, CACHELINE):
            raise ValueError(f"unknown granularity {self.granularity!r}")


class SideChannelObserver:
    """Adversary that watches accesses to one named region."""

    def __init__(self, region: str, config: ObserverConfig | None = None,
                 itemsize: int = 8) -> None:
        self.region = region
        self.config = config or ObserverConfig()
        self.itemsize = itemsize

    def _coarsen(self, offset: int) -> int:
        if self.config.granularity == WORD:
            return offset
        return (offset * self.itemsize) // self.config.line_bytes

    def _coarsen_array(self, offsets: np.ndarray) -> np.ndarray:
        if self.config.granularity == WORD:
            return offsets
        return (offsets.astype(np.int64) * self.itemsize) // self.config.line_bytes

    def observed_sequence_array(self, trace: Trace) -> np.ndarray:
        """Ordered observed offsets/lines as a numpy array."""
        return self._coarsen_array(trace.offsets_array(self.region))

    def observed_sequence(self, trace: Trace) -> list[int]:
        """Ordered (possibly repeating) observed offsets/lines."""
        return self.observed_sequence_array(trace).tolist()

    def observed_set(self, trace: Trace) -> frozenset[int]:
        """Distinct observed offsets/lines -- the attack's raw feature."""
        return frozenset(np.unique(self.observed_sequence_array(trace)).tolist())

    def observed_write_set(self, trace: Trace) -> frozenset[int]:
        """Distinct observed *written* offsets/lines."""
        offs = self._coarsen_array(trace.offsets_array(self.region, op="write"))
        return frozenset(np.unique(offs).tolist())

    def indices_to_observation(self, indices) -> frozenset[int]:
        """Coarsen a ground-truth index set the way this observer would.

        Used by the attack pipeline to build *teacher* observations that
        live in the same feature space as leaked ones (Algorithm 2,
        lines 9-12).
        """
        arr = np.asarray(list(indices), dtype=np.int64)
        if arr.size == 0:
            return frozenset()
        return frozenset(np.unique(self._coarsen_array(arr)).tolist())
