"""Cycle-level cost model for enclave memory behaviour.

Pure-Python wall time reproduces the *asymptotic* behaviour of the
paper's algorithms (the O(nkd) vs O((nk+d)log^2) separation of
Figure 10), but the cache- and paging-driven effects of Figures 11-12
are properties of the SGX memory hierarchy, not of the interpreter.
This module reproduces that hierarchy explicitly, matching the paper's
evaluation machine (Section 5.5):

* 1 MB L2 and 8 MB L3 set-associative LRU caches;
* a 96 MB EPC; pages touched beyond it incur the SGX paging penalty
  (re-encryption plus integrity-tree verification, tens of
  microseconds -- orders of magnitude above a DRAM access);
* inside-EPC misses still pay the memory-encryption-engine surcharge.

Algorithms feed their (data-independent) cacheline address streams to
:class:`CostModel`, which returns total simulated cycles.  Because every
oblivious algorithm's stream is a pure function of the input *shape*,
the streams are generated structurally (see :mod:`repro.core.streams`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from .. import obs


@dataclass(frozen=True)
class CostParameters:
    """Machine parameters; defaults mirror the paper's Xeon E-2174G."""

    line_bytes: int = 64
    l2_bytes: int = 1 * 1024 * 1024
    l2_assoc: int = 16
    l3_bytes: int = 8 * 1024 * 1024
    l3_assoc: int = 16
    page_bytes: int = 4096
    epc_bytes: int = 96 * 1024 * 1024
    cycles_l1_hit: int = 4
    cycles_l2_hit: int = 14
    cycles_l3_hit: int = 44
    cycles_dram: int = 250          # DRAM + MEE decrypt/integrity check
    cycles_epc_page_fault: int = 140_000  # EWB/ELDU paging round trip
    cycles_per_element_op: int = 6  # ALU work per touched element


class SetAssociativeCache:
    """Set-associative LRU cache over cacheline addresses."""

    def __init__(self, capacity_bytes: int, assoc: int, line_bytes: int) -> None:
        if capacity_bytes % (assoc * line_bytes):
            raise ValueError("capacity must be a multiple of assoc * line size")
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.n_sets = capacity_bytes // (assoc * line_bytes)
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, line: int) -> bool:
        """Touch one cacheline; returns True on hit."""
        ways = self._sets[line % self.n_sets]
        if line in ways:
            ways.remove(line)
            ways.append(line)
            self.hits += 1
            return True
        self.misses += 1
        if len(ways) >= self.assoc:
            ways.pop(0)
        ways.append(line)
        return False

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0


class EpcPager:
    """Page-granular EPC residency with LRU eviction.

    When the touched working set exceeds the EPC, every fault pays the
    SGX paging penalty (page re-encryption + integrity verification).
    """

    def __init__(self, epc_bytes: int, page_bytes: int) -> None:
        self.page_bytes = page_bytes
        self.capacity_pages = max(epc_bytes // page_bytes, 1)
        self._resident: dict[int, None] = {}
        self.faults = 0
        self.hits = 0
        self.cold = 0

    def access(self, page: int) -> str:
        """Touch one page; returns ``"hit"``, ``"cold"``, or ``"evict"``.

        Only faults that displace a resident page model the expensive
        SGX EWB/ELDU paging round trip; cold first-touch misses are
        ordinary (MEE-priced) DRAM traffic.
        """
        if page in self._resident:
            # Move to MRU position.
            del self._resident[page]
            self._resident[page] = None
            self.hits += 1
            return "hit"
        if len(self._resident) >= self.capacity_pages:
            oldest = next(iter(self._resident))
            del self._resident[oldest]
            self._resident[page] = None
            self.faults += 1
            return "evict"
        self._resident[page] = None
        self.cold += 1
        return "cold"

    def reset(self) -> None:
        self._resident.clear()
        self.faults = 0
        self.hits = 0
        self.cold = 0


@dataclass
class CostReport:
    """Aggregate outcome of charging an address stream."""

    accesses: int = 0
    cycles: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    dram_accesses: int = 0
    page_faults: int = 0

    @property
    def seconds(self) -> float:
        """Simulated seconds at the paper machine's 3.8 GHz."""
        return self.cycles / 3.8e9

    def merge(self, other: "CostReport") -> "CostReport":
        return CostReport(
            accesses=self.accesses + other.accesses,
            cycles=self.cycles + other.cycles,
            l2_hits=self.l2_hits + other.l2_hits,
            l3_hits=self.l3_hits + other.l3_hits,
            dram_accesses=self.dram_accesses + other.dram_accesses,
            page_faults=self.page_faults + other.page_faults,
        )


@dataclass(frozen=True)
class ReplayStats:
    """Cumulative replay statistics of one :class:`CostModel`.

    Accumulated across every ``charge_*`` call since the last
    :meth:`CostModel.reset` -- callers that previously merged per-call
    :class:`CostReport` objects can read one typed snapshot instead.
    The same fields feed the telemetry gauges (``cost.*``).
    """

    accesses: int = 0
    cycles: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    l3_hits: int = 0
    l3_misses: int = 0
    epc_hits: int = 0
    epc_cold: int = 0
    epc_evictions: int = 0

    @property
    def seconds(self) -> float:
        """Simulated seconds at the paper machine's 3.8 GHz."""
        return self.cycles / 3.8e9

    def as_gauges(self) -> dict[str, int]:
        """Flat ``cost.<field>`` mapping for telemetry gauges."""
        return {
            "cost.accesses": self.accesses,
            "cost.cycles": self.cycles,
            "cost.l2_hits": self.l2_hits,
            "cost.l2_misses": self.l2_misses,
            "cost.l3_hits": self.l3_hits,
            "cost.l3_misses": self.l3_misses,
            "cost.epc_hits": self.epc_hits,
            "cost.epc_cold": self.epc_cold,
            "cost.epc_evictions": self.epc_evictions,
        }


class CostModel:
    """Charges an address stream through L2 -> L3 -> DRAM/EPC paging."""

    def __init__(self, params: CostParameters | None = None) -> None:
        self.params = params or CostParameters()
        p = self.params
        self.l2 = SetAssociativeCache(p.l2_bytes, p.l2_assoc, p.line_bytes)
        self.l3 = SetAssociativeCache(p.l3_bytes, p.l3_assoc, p.line_bytes)
        self.pager = EpcPager(p.epc_bytes, p.page_bytes)
        self._total_accesses = 0
        self._total_cycles = 0

    def reset(self) -> None:
        self.l2.reset()
        self.l3.reset()
        self.pager.reset()
        self._total_accesses = 0
        self._total_cycles = 0

    @property
    def stats(self) -> ReplayStats:
        """Cumulative hit/miss/paging totals since the last reset."""
        return ReplayStats(
            accesses=self._total_accesses,
            cycles=self._total_cycles,
            l2_hits=self.l2.hits,
            l2_misses=self.l2.misses,
            l3_hits=self.l3.hits,
            l3_misses=self.l3.misses,
            epc_hits=self.pager.hits,
            epc_cold=self.pager.cold,
            epc_evictions=self.pager.faults,
        )

    def publish_telemetry(self) -> None:
        """Expose the cumulative stats as ``cost.*`` telemetry gauges."""
        for name, value in self.stats.as_gauges().items():
            obs.gauge(name, value)

    def charge_lines(self, lines: Iterable[int]) -> CostReport:
        """Charge a stream of cacheline indices; returns the report.

        The LRU replay is inherently sequential; numpy inputs (the
        trace engine's ``cachelines_array`` / ``network_access_offsets``
        streams) are converted to plain ints up front, which is several
        times faster than iterating numpy scalars.
        """
        if isinstance(lines, np.ndarray):
            lines = lines.tolist()
        p = self.params
        lines_per_page = p.page_bytes // p.line_bytes
        report = CostReport()
        cycles = 0
        n = 0
        l2 = self.l2
        l3 = self.l3
        pager = self.pager
        with obs.span("cost.charge") as charge_span:
            for line in lines:
                n += 1
                cycles += p.cycles_per_element_op
                if l2.access(line):
                    cycles += p.cycles_l2_hit
                    report.l2_hits += 1
                    continue
                if l3.access(line):
                    cycles += p.cycles_l3_hit
                    report.l3_hits += 1
                    continue
                report.dram_accesses += 1
                outcome = pager.access(line // lines_per_page)
                if outcome == "evict":
                    report.page_faults += 1
                    cycles += p.cycles_epc_page_fault
                else:
                    cycles += p.cycles_dram
            report.accesses = n
            report.cycles = cycles
            self._total_accesses += n
            self._total_cycles += cycles
            charge_span.set(accesses=n, cycles=cycles)
        if obs.enabled():
            self.publish_telemetry()
        return report

    def charge_addresses(self, byte_addresses: Iterable[int]) -> CostReport:
        """Charge byte addresses (coarsened to cachelines)."""
        line_bytes = self.params.line_bytes
        if isinstance(byte_addresses, np.ndarray):
            return self.charge_lines(byte_addresses // line_bytes)
        return self.charge_lines(a // line_bytes for a in byte_addresses)
