"""Cycle-level cost model for enclave memory behaviour.

Pure-Python wall time reproduces the *asymptotic* behaviour of the
paper's algorithms (the O(nkd) vs O((nk+d)log^2) separation of
Figure 10), but the cache- and paging-driven effects of Figures 11-12
are properties of the SGX memory hierarchy, not of the interpreter.
This module reproduces that hierarchy explicitly, matching the paper's
evaluation machine (Section 5.5):

* 1 MB L2 and 8 MB L3 set-associative LRU caches;
* a 96 MB EPC; pages touched beyond it incur the SGX paging penalty
  (re-encryption plus integrity-tree verification, tens of
  microseconds -- orders of magnitude above a DRAM access);
* inside-EPC misses still pay the memory-encryption-engine surcharge.

Algorithms feed their (data-independent) cacheline address streams to
:class:`CostModel`, which returns total simulated cycles.  Because every
oblivious algorithm's stream is a pure function of the input *shape*,
the streams are generated structurally (see :mod:`repro.core.streams`).

Two replay engines share the model:

* ``engine="reference"`` -- the original element-at-a-time Python LRU
  (:class:`SetAssociativeCache` / :class:`EpcPager`), kept as the
  executable specification;
* ``engine="vector"`` (default) -- a vectorized replayer
  (:class:`VectorSetAssociativeCache`) that consumes numpy chunks and
  produces byte-for-byte identical :class:`ReplayStats`.  It collapses
  repeated runs analytically (run-length fast path), proves most
  cache hits via the LRU stack-distance inclusion property, and only
  serializes the residual first-touch/far-reuse "events"
  (see DESIGN.md section 9 for the argument of exactness).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from .. import obs

#: Accesses per vectorized replay batch; bounds intermediate arrays.
#: Measured optimum on array-fed streams (larger batches amortize the
#: per-batch classification overhead until sort locality degrades).
CHUNK_ACCESSES = 1 << 19


def _sort_key(values: np.ndarray, upper: int) -> np.ndarray:
    """Cheapest dtype for a stable argsort of ``values`` in [0, upper].

    numpy's stable sort is a radix sort for 16-bit integers (~8x faster
    than the int64 merge sort); the downcast pass is cheap relative.
    """
    if upper < (1 << 15):
        return values.astype(np.int16)
    if upper < (1 << 31):
        return values.astype(np.int32)
    return values


@dataclass(frozen=True)
class CostParameters:
    """Machine parameters; defaults mirror the paper's Xeon E-2174G."""

    line_bytes: int = 64
    l2_bytes: int = 1 * 1024 * 1024
    l2_assoc: int = 16
    l3_bytes: int = 8 * 1024 * 1024
    l3_assoc: int = 16
    page_bytes: int = 4096
    epc_bytes: int = 96 * 1024 * 1024
    cycles_l1_hit: int = 4
    cycles_l2_hit: int = 14
    cycles_l3_hit: int = 44
    cycles_dram: int = 250          # DRAM + MEE decrypt/integrity check
    cycles_epc_page_fault: int = 140_000  # EWB/ELDU paging round trip
    cycles_per_element_op: int = 6  # ALU work per touched element


class SetAssociativeCache:
    """Set-associative LRU cache over cacheline addresses (reference)."""

    def __init__(self, capacity_bytes: int, assoc: int, line_bytes: int) -> None:
        if capacity_bytes % (assoc * line_bytes):
            raise ValueError("capacity must be a multiple of assoc * line size")
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.n_sets = capacity_bytes // (assoc * line_bytes)
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, line: int) -> bool:
        """Touch one cacheline; returns True on hit."""
        ways = self._sets[line % self.n_sets]
        if line in ways:
            ways.remove(line)
            ways.append(line)
            self.hits += 1
            return True
        self.misses += 1
        if len(ways) >= self.assoc:
            ways.pop(0)
        ways.append(line)
        return False

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0


class EpcPager:
    """Page-granular EPC residency with LRU eviction.

    When the touched working set exceeds the EPC, every fault pays the
    SGX paging penalty (page re-encryption + integrity verification).
    """

    def __init__(self, epc_bytes: int, page_bytes: int) -> None:
        self.page_bytes = page_bytes
        self.capacity_pages = max(epc_bytes // page_bytes, 1)
        self._resident: dict[int, None] = {}
        self.faults = 0
        self.hits = 0
        self.cold = 0

    def access(self, page: int) -> str:
        """Touch one page; returns ``"hit"``, ``"cold"``, or ``"evict"``.

        Only faults that displace a resident page model the expensive
        SGX EWB/ELDU paging round trip; cold first-touch misses are
        ordinary (MEE-priced) DRAM traffic.
        """
        if page in self._resident:
            # Move to MRU position.
            del self._resident[page]
            self._resident[page] = None
            self.hits += 1
            return "hit"
        if len(self._resident) >= self.capacity_pages:
            oldest = next(iter(self._resident))
            del self._resident[oldest]
            self._resident[page] = None
            self.faults += 1
            return "evict"
        self._resident[page] = None
        self.cold += 1
        return "cold"

    def reset(self) -> None:
        self._resident.clear()
        self.faults = 0
        self.hits = 0
        self.cold = 0


class VectorSetAssociativeCache:
    """Vectorized set-associative LRU over numpy address blocks.

    State lives in two ``(n_sets, assoc)`` arrays: resident line tags
    and the global stream position of each way's last use.  Exactness
    rests on the LRU *inclusion property*: at any instant a set's
    residents are exactly the ``assoc`` most-recently-touched distinct
    lines mapping to it, so an access hits iff its stack distance (the
    number of distinct same-set lines touched since its previous touch)
    is below the associativity.  A block of addresses (with strictly
    increasing positions) is then resolved in two tiers:

    1. *Classification* (fully vectorized) decides most accesses
       without replaying state:

       * stack distance < assoc is implied when the previous same-set
         occurrence lies at most ``assoc`` same-set accesses back --
         certain hit (covers repeated runs, bitonic comparator
         read/write pairs, and steady-state scans);
       * a first touch of a line absent from the carry-in state is a
         certain miss (cold fills, first sort passes);
       * when the running maximum of previous-occurrence indices stays
         at or below the access's own previous index, every access in
         its reuse window touched a distinct line, so a window of at
         least ``assoc`` accesses is a certain miss (cyclic sweeps and
         stage-ordered sort streams beyond capacity).

    2. Sets left with any *unclassified* access (irregular far reuses)
       replay their whole sub-streams through exact per-set event
       rounds: per set the residual events are processed in order, but
       event rank r of every such set forms one conflict-free round
       resolved with whole-array operations, with certain-hit recency
       refreshes applied lazily (``maximum.at``) right before the next
       event round of their set (a certain hit's line stays within the
       top-``assoc`` of its set's LRU stack, so it is never evicted
       before its position and the lazy refresh is exact).

    End-of-block state for tier-1 sets is reconciled directly as the
    top-``assoc`` last-touched lines per set -- the inclusion property
    again -- merging carry-in residents with the block's touches.
    """

    def __init__(self, capacity_bytes: int, assoc: int, line_bytes: int) -> None:
        if capacity_bytes % (assoc * line_bytes):
            raise ValueError("capacity must be a multiple of assoc * line size")
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.n_sets = capacity_bytes // (assoc * line_bytes)
        self._tags = np.full((self.n_sets, assoc), -1, dtype=np.int64)
        self._lru = np.full((self.n_sets, assoc), -1, dtype=np.int64)
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self._tags.fill(-1)
        self._lru.fill(-1)
        self.hits = 0
        self.misses = 0

    def access_block(self, lines: np.ndarray, pos: np.ndarray) -> np.ndarray:
        """Touch a block of cachelines; returns the boolean hit mask.

        ``pos`` carries each access's global stream position (strictly
        increasing within and across calls); it doubles as the LRU
        timestamp.
        """
        n = lines.size
        hit = np.zeros(n, dtype=bool)
        if n == 0:
            return hit
        assoc = self.assoc
        sets = lines % self.n_sets
        line_max = int(lines.max())
        order = np.argsort(_sort_key(sets, self.n_sets - 1), kind="stable")
        ss = sets[order]
        newgrp = np.empty(n, dtype=bool)
        newgrp[0] = True
        np.not_equal(ss[1:], ss[:-1], out=newgrp[1:])
        starts = np.flatnonzero(newgrp)
        # Group id per sorted access and index within its set's
        # sub-stream, via one prefix sum (no per-group repeats).
        gid = np.cumsum(newgrp, dtype=np.int64) - 1
        sidx_sorted = np.arange(n, dtype=np.int64) - starts[gid]
        sidx = np.empty(n, dtype=np.int64)
        sidx[order] = sidx_sorted
        # Previous same-(set, line) occurrence, as a sub-stream index.
        # ``pos`` is ascending within the block and the set is a pure
        # function of the line, so one stable sort by line groups each
        # (set, line) chain in access order.  Carry-in residents count
        # as virtual accesses at indices -1 - recency_rank (MRU first);
        # "never touched" is NONE.
        none = np.int64(-(assoc + 2))
        o2 = np.argsort(_sort_key(lines, line_max), kind="stable")
        prev = np.full(n, none, dtype=np.int64)
        a, b = o2[1:], o2[:-1]
        same = lines[a] == lines[b]
        prev[a[same]] = sidx[b[same]]
        first = np.flatnonzero(prev == none)
        if first.size:
            s_f = sets[first]
            eq = self._tags[s_f] == lines[first][:, None]
            found = eq.any(axis=1)
            ts_f = self._lru[s_f, eq.argmax(axis=1)]
            rank = (self._lru[s_f] > ts_f[:, None]).sum(axis=1)
            prev[first[found]] = (-1 - rank)[found]
        # Reuse window width (same-set accesses since previous touch).
        width = sidx - prev - 1
        cert_hit = (prev > none) & (width < assoc)
        # Exclusive running maximum of prev along each sub-stream: when
        # it never exceeds an access's own prev, every access in the
        # window touched a distinct line, so the stack distance equals
        # the window width exactly.
        pv = prev[order]
        shifted = np.empty(n, dtype=np.int64)
        shifted[0] = none - 1
        shifted[1:] = pv[:-1]
        shifted[starts] = none - 1
        span = np.int64(n - (none - 1) + 1)
        runmax = np.maximum.accumulate(shifted - (none - 1) + gid * span)
        monotone_sorted = runmax - gid * span + (none - 1) <= pv
        monotone = np.empty(n, dtype=bool)
        monotone[order] = monotone_sorted
        cert_miss = (prev == none) | (monotone & (width >= assoc))
        unresolved = ~(cert_hit | cert_miss)
        # Patch rule for irregular far reuses (e.g. bitonic sort pass
        # boundaries, where near-reuse clusters break the running-max
        # rule): examine a bounded patch of same-set accesses right
        # after the previous touch.  Patch members whose own prev lies
        # strictly before the access's prev touched pairwise-distinct
        # lines, all different from the access's own line and from the
        # carry-in residents more recent than it (any repeat would have
        # its prev inside the patch/window instead), so counting
        # ``assoc`` of them proves stack distance >= assoc: certain
        # miss.
        u = np.flatnonzero(unresolved)
        if u.size:
            ipos = np.empty(n, dtype=np.int64)
            ipos[order] = np.arange(n, dtype=np.int64)
            pv_all = prev[order]
            p_u = prev[u]
            virt = p_u < 0
            base = np.where(virt, -1 - p_u, 0)  # carry-in ranks, all distinct
            p0_rel = np.where(virt, 0, p_u + 1)
            start = ipos[u] - sidx[u] + p0_rel
            realwin = sidx[u] - p0_rel
            # Staged depths: most accesses find ``assoc`` window-firsts
            # within a few entries; the deep pass (sized for the
            # sparsest structural pattern -- a same-set comparator pair
            # alternating two lines for ~32 consecutive same-set
            # accesses, 2 distinct per cluster) runs on the remainder.
            for depth in (2 * assoc + 4, 16 * assoc + 16):
                c_u = np.minimum(realwin, depth)
                cols = np.arange(depth, dtype=np.int64)[None, :]
                take = np.minimum(start[:, None] + cols, n - 1)
                inside = cols < c_u[:, None]
                pj = pv_all[take]
                distinct = base + (inside & (pj < p_u[:, None])).sum(axis=1)
                hit_cap = distinct >= assoc
                cert_miss[u[hit_cap]] = True
                unresolved[u[hit_cap]] = False
                rem = ~hit_cap & (realwin > depth)
                if not rem.any():
                    break
                u, p_u, base, start, realwin = (
                    u[rem], p_u[rem], base[rem], start[rem], realwin[rem]
                )
        hit[cert_hit] = True
        if unresolved.any():
            # Exact replay for every set containing an unresolved
            # access (their certain outcomes are recomputed -- the
            # rounds engine is self-contained and agrees with them).
            badflag = np.zeros(self.n_sets, dtype=bool)
            badflag[sets[unresolved]] = True
            bad = badflag[sets]
            idx = np.flatnonzero(bad)
            hit[idx] = self._access_rounds(lines[idx], pos[idx])
            t1 = np.flatnonzero(~bad)
        else:
            t1 = None  # whole block is tier-1
        self._reconcile(lines, sets, pos, t1)
        n_hits = int(hit.sum())
        self.hits += n_hits
        self.misses += n - n_hits
        return hit

    def _reconcile(
        self, lines: np.ndarray, sets: np.ndarray, pos: np.ndarray,
        t1: np.ndarray | None,
    ) -> None:
        """Rewrite touched tier-1 sets as top-``assoc`` by last touch."""
        if t1 is not None:
            if t1.size == 0:
                return
            lines, sets, pos = lines[t1], sets[t1], pos[t1]
        assoc = self.assoc
        tags, lru = self._tags, self._lru
        flags = np.zeros(self.n_sets, dtype=bool)
        flags[sets] = True
        touched = np.flatnonzero(flags)
        # Carry-in residents of the touched sets join the candidates.
        # They precede the block's touches so that, with each resident
        # line appearing at most once and carrying an older timestamp
        # than any block position, a single stable sort by line leaves
        # every (set, line) group in timestamp order.
        carry = tags[touched]
        valid = carry != -1
        c_sets = np.broadcast_to(touched[:, None], carry.shape)[valid]
        c_lines = carry[valid]
        c_ts = lru[touched][valid]
        all_sets = np.concatenate((c_sets, sets))
        all_lines = np.concatenate((c_lines, lines))
        all_ts = np.concatenate((c_ts, pos))
        # Last touch per (set, line): the final entry of each line group
        # (the set is a pure function of the line).
        o = np.argsort(
            _sort_key(all_lines, int(all_lines.max()) if all_lines.size else 0),
            kind="stable",
        )
        last = np.empty(o.size, dtype=bool)
        last[-1] = True
        last[:-1] = all_lines[o[1:]] != all_lines[o[:-1]]
        k = o[last]
        k_sets, k_lines, k_ts = all_sets[k], all_lines[k], all_ts[k]
        # Top-assoc per set by ts: rank from each set group's end.
        o2 = np.lexsort((k_ts, k_sets))
        ks = k_sets[o2]
        ng = np.empty(o2.size, dtype=bool)
        ng[0] = True
        np.not_equal(ks[1:], ks[:-1], out=ng[1:])
        gstarts = np.flatnonzero(ng)
        gcounts = np.diff(np.append(gstarts, o2.size))
        ends = np.repeat(gstarts + gcounts, gcounts)
        rank = ends - 1 - np.arange(o2.size, dtype=np.int64)
        keep = rank < assoc
        sel = o2[keep]
        tags[touched] = -1
        lru[touched] = -1
        tags[k_sets[sel], rank[keep]] = k_lines[sel]
        lru[k_sets[sel], rank[keep]] = k_ts[sel]

    def _access_rounds(self, lines: np.ndarray, pos: np.ndarray) -> np.ndarray:
        """Exact event-round replay for the given accesses.

        Self-contained: expects the full sub-streams of every set it
        touches, maintains ``_tags``/``_lru`` incrementally, and does
        not update the hit/miss counters (the caller does).
        """
        n = lines.size
        hit = np.zeros(n, dtype=bool)
        sets = lines % self.n_sets
        order = np.argsort(sets, kind="stable")
        ss = sets[order]
        newgrp = np.empty(n, dtype=bool)
        newgrp[0] = True
        np.not_equal(ss[1:], ss[:-1], out=newgrp[1:])
        starts = np.flatnonzero(newgrp)
        counts = np.diff(np.append(starts, n))
        # Index of each access within its set's sub-stream.
        sidx_sorted = np.arange(n, dtype=np.int64) - np.repeat(starts, counts)
        sidx = np.empty(n, dtype=np.int64)
        sidx[order] = sidx_sorted
        # Previous occurrence of the same (set, line) in the block.
        o2 = np.lexsort((pos, lines, sets))
        prev = np.full(n, -1, dtype=np.int64)
        a, b = o2[1:], o2[:-1]
        same = (sets[a] == sets[b]) & (lines[a] == lines[b])
        prev[a[same]] = sidx[b[same]]
        # Stack distance < assoc  =>  guaranteed hit.
        certain = (prev >= 0) & (sidx - prev <= self.assoc)
        hit[certain] = True
        # Event ranks / refresh buckets: exclusive per-set event count.
        ev_sorted = (~certain[order]).astype(np.int64)
        excl = np.cumsum(ev_sorted) - ev_sorted
        rank_sorted = excl - np.repeat(excl[starts], counts)
        rank = np.empty(n, dtype=np.int64)
        rank[order] = rank_sorted

        ev_idx = np.flatnonzero(~certain)
        hit_idx = np.flatnonzero(certain)
        ev_rank = rank[ev_idx]
        ev_by_rank = ev_idx[np.argsort(ev_rank, kind="stable")]
        ev_rank_sorted = np.sort(ev_rank, kind="stable")
        hit_bucket = rank[hit_idx]
        hit_by_bucket = hit_idx[np.argsort(hit_bucket, kind="stable")]
        hit_bucket_sorted = np.sort(hit_bucket, kind="stable")

        tags, lru = self._tags, self._lru
        n_rounds = int(ev_rank_sorted[-1]) + 1 if ev_idx.size else 0
        max_bucket = int(hit_bucket_sorted[-1]) if hit_idx.size else -1
        for r in range(max(n_rounds, max_bucket + 1)):
            # Lazy recency refreshes scheduled before this event round.
            lo = np.searchsorted(hit_bucket_sorted, r, side="left")
            hi = np.searchsorted(hit_bucket_sorted, r, side="right")
            if hi > lo:
                h = hit_by_bucket[lo:hi]
                s_h, x_h = sets[h], lines[h]
                eq = tags[s_h] == x_h[:, None]
                np.maximum.at(lru, (s_h, eq.argmax(axis=1)), pos[h])
            lo = np.searchsorted(ev_rank_sorted, r, side="left")
            hi = np.searchsorted(ev_rank_sorted, r, side="right")
            if hi <= lo:
                continue
            e = ev_by_rank[lo:hi]   # one event per set: conflict-free
            ls, se, ps = lines[e], sets[e], pos[e]
            eq = tags[se] == ls[:, None]
            h = eq.any(axis=1)
            hit[e] = h
            if h.any():
                lru[se[h], eq[h].argmax(axis=1)] = ps[h]
            m = ~h
            if m.any():
                ms = se[m]
                victim = lru[ms].argmin(axis=1)
                tags[ms, victim] = ls[m]
                lru[ms, victim] = ps[m]
        return hit


@dataclass
class CostReport:
    """Aggregate outcome of charging an address stream."""

    accesses: int = 0
    cycles: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    dram_accesses: int = 0
    page_faults: int = 0

    @property
    def seconds(self) -> float:
        """Simulated seconds at the paper machine's 3.8 GHz."""
        return self.cycles / 3.8e9

    def merge(self, other: "CostReport") -> "CostReport":
        return CostReport(
            accesses=self.accesses + other.accesses,
            cycles=self.cycles + other.cycles,
            l2_hits=self.l2_hits + other.l2_hits,
            l3_hits=self.l3_hits + other.l3_hits,
            dram_accesses=self.dram_accesses + other.dram_accesses,
            page_faults=self.page_faults + other.page_faults,
        )


@dataclass(frozen=True)
class ReplayStats:
    """Cumulative replay statistics of one :class:`CostModel`.

    Accumulated across every ``charge_*`` call since the last
    :meth:`CostModel.reset` -- callers that previously merged per-call
    :class:`CostReport` objects can read one typed snapshot instead.
    The same fields feed the telemetry gauges (``cost.*``).
    """

    accesses: int = 0
    cycles: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    l3_hits: int = 0
    l3_misses: int = 0
    epc_hits: int = 0
    epc_cold: int = 0
    epc_evictions: int = 0

    @property
    def seconds(self) -> float:
        """Simulated seconds at the paper machine's 3.8 GHz."""
        return self.cycles / 3.8e9

    def as_gauges(self) -> dict[str, int]:
        """Flat ``cost.<field>`` mapping for telemetry gauges."""
        return {
            "cost.accesses": self.accesses,
            "cost.cycles": self.cycles,
            "cost.l2_hits": self.l2_hits,
            "cost.l2_misses": self.l2_misses,
            "cost.l3_hits": self.l3_hits,
            "cost.l3_misses": self.l3_misses,
            "cost.epc_hits": self.epc_hits,
            "cost.epc_cold": self.epc_cold,
            "cost.epc_evictions": self.epc_evictions,
        }


class CostModel:
    """Charges an address stream through L2 -> L3 -> DRAM/EPC paging.

    ``engine="vector"`` (default) replays numpy chunks through the
    vectorized LRU; ``engine="reference"`` keeps the element-at-a-time
    replay.  Both engines produce identical :class:`ReplayStats` and
    per-call :class:`CostReport` values (pinned in
    ``tests/test_sgx_cost.py``).
    """

    def __init__(
        self, params: CostParameters | None = None, engine: str = "vector"
    ) -> None:
        if engine not in ("vector", "reference"):
            raise ValueError(f"unknown replay engine: {engine!r}")
        self.params = params or CostParameters()
        self.engine = engine
        p = self.params
        cache_cls = (
            VectorSetAssociativeCache if engine == "vector"
            else SetAssociativeCache
        )
        self.l2 = cache_cls(p.l2_bytes, p.l2_assoc, p.line_bytes)
        self.l3 = cache_cls(p.l3_bytes, p.l3_assoc, p.line_bytes)
        self.pager = EpcPager(p.epc_bytes, p.page_bytes)
        self._lines_per_page = p.page_bytes // p.line_bytes
        self._clock = 0
        self._total_accesses = 0
        self._total_cycles = 0

    def reset(self) -> None:
        self.l2.reset()
        self.l3.reset()
        self.pager.reset()
        self._clock = 0
        self._total_accesses = 0
        self._total_cycles = 0

    @property
    def stats(self) -> ReplayStats:
        """Cumulative hit/miss/paging totals since the last reset."""
        return ReplayStats(
            accesses=self._total_accesses,
            cycles=self._total_cycles,
            l2_hits=self.l2.hits,
            l2_misses=self.l2.misses,
            l3_hits=self.l3.hits,
            l3_misses=self.l3.misses,
            epc_hits=self.pager.hits,
            epc_cold=self.pager.cold,
            epc_evictions=self.pager.faults,
        )

    def publish_telemetry(self) -> None:
        """Expose the cumulative stats as ``cost.*`` telemetry gauges."""
        for name, value in self.stats.as_gauges().items():
            obs.gauge(name, value)

    # -- vectorized path ------------------------------------------------

    @staticmethod
    def _detect_period(heads: np.ndarray) -> int:
        """Dominant reuse period of a head stream (0 if none).

        The period is the modal distance between consecutive
        occurrences of the same line; structural streams revisit their
        working set with one fixed stride (e.g. the Baseline stream's
        per-iteration g* block), so the mode covers most of the stream
        when a steady-state span exists.
        """
        m = int(heads.size)
        o = np.argsort(heads, kind="stable")
        ho = heads[o]
        same = ho[1:] == ho[:-1]
        gaps = (o[1:] - o[:-1])[same]
        gaps = gaps[gaps <= 8192]
        if gaps.size < m // 4:
            return 0
        counts = np.bincount(gaps)
        period = int(counts.argmax())
        if period < 2 or int(counts[period]) < m // 8 or 6 * period > m:
            return 0
        return period

    def _charge_array(self, arr: np.ndarray, report: CostReport) -> None:
        """Charge one numpy chunk through the vectorized hierarchy."""
        arr = np.ascontiguousarray(arr, dtype=np.int64)
        p = self.params
        n_total = int(arr.size)
        if n_total == 0:
            return
        # Run-length fast path: a repeat of the immediately preceding
        # line is a guaranteed L2 hit (the head access left it MRU and
        # nothing intervened in its set), so whole repeated runs --
        # linear scans touch each line 8-16x consecutively -- are
        # charged analytically and only run heads enter the hierarchy.
        # The wide (pre-collapse) passes only test equality, so they
        # run at int32 width when the lines fit -- half the memory
        # traffic on the hot RLE scans.
        if int(arr.min()) >= 0 and int(arr.max()) < (1 << 31):
            narrow = arr.astype(np.int32)
        else:
            narrow = arr
        if n_total > 1:
            heads_idx = np.flatnonzero(narrow[1:] != narrow[:-1]) + 1
            heads_idx = np.concatenate((np.zeros(1, dtype=np.int64), heads_idx))
        else:
            heads_idx = np.zeros(1, dtype=np.int64)
        heads = narrow[heads_idx]
        n_rep = n_total - int(heads.size)
        # Period-2 collapse: bitonic comparators emit alternating pair
        # runs x,y,x,y,... (one cluster per 8-element line pair).  A
        # repeat whose alternation continues one more step (its partner
        # repeats right after) has stack distance <= 1, a guaranteed L2
        # hit for assoc >= 2, and dropping it is window-exact: the run
        # touches only x and y, so no other access's window boundary
        # falls inside it, the kept first occurrences represent both
        # lines in any window that saw the dropped repeat, and the
        # run's relative recency order (y then x) is already carried by
        # the first pair.  The continuation condition keeps the run's
        # final out-of-phase repeat, whose partner line is NOT
        # re-touched after it -- dropping that one would misplace the
        # partner's kept representative outside later reuse windows.
        m = int(heads.size)
        if m > 4 and self.l2.assoc >= 2:
            drop = np.zeros(m, dtype=bool)
            mid = heads[2:m - 1]
            drop[2:m - 1] = (mid == heads[:m - 3]) & (heads[3:] == heads[1:m - 2])
            if drop.any():
                keep0 = ~drop
                n_rep += int(drop.sum())
                heads = heads[keep0]
                heads_idx = heads_idx[keep0]
                m = int(heads.size)
        heads = heads.astype(np.int64, copy=False)
        pos = self._clock + heads_idx
        # Steady-state periodic skip: when the stream cycles through a
        # fixed working set (Baseline's per-iteration g* block, Linear's
        # output scans), every period beyond the warm-up repeats the
        # same per-phase outcomes.  The hierarchy is steady level by
        # level -- L2 windows repeat from period 2, L3 windows (built
        # from steady L2 misses) from period 3, pager windows from
        # period 4 -- so we keep four leading periods plus the final
        # one (which carries the true last-touch recency of every span
        # line) and replicate period 4's per-phase outcomes over the
        # skipped middle.  Guard: only when the pager is already full
        # or provably cannot fill within this chunk, so no cold/evict
        # transition can hide inside a skipped span.
        period = 0
        spans: list[tuple[int, int]] = []
        if m >= 4096:
            pager = self.pager
            safe = len(pager._resident) >= pager.capacity_pages
            if not safe:
                chunk_pages = np.unique(heads // self._lines_per_page)
                safe = (
                    len(pager._resident) + int(chunk_pages.size)
                    < pager.capacity_pages
                )
            if safe:
                period = self._detect_period(heads)
        kcum = None
        if period:
            periodic = np.zeros(m, dtype=bool)
            periodic[period:] = heads[period:] == heads[:-period]
            step = np.diff(periodic.astype(np.int8))
            run_start = np.flatnonzero(step == 1) + 1
            run_end = np.flatnonzero(step == -1) + 1
            if periodic[0]:
                run_start = np.concatenate(([0], run_start))
            if periodic[-1]:
                run_end = np.concatenate((run_end, [m]))
            skip = np.zeros(m, dtype=bool)
            for t0, t1 in zip(run_start.tolist(), run_end.tolist()):
                # Skip whole periods only, so the tail rejoins the
                # stream phase-aligned: every junction then looks
                # exactly like a true period boundary (same adjacency,
                # same reuse windows) and the remaining tail of >= one
                # period carries the true final recency.
                reps = (t1 - t0 - 4 * period) // period
                if reps > 0:
                    skip[t0 + 3 * period:t0 + (3 + reps) * period] = True
                    spans.append((t0, reps))
            if spans:
                kcum = np.cumsum(~skip) - 1
                keep1 = ~skip
                heads = heads[keep1]
                pos = pos[keep1]
        mk = int(heads.size)
        track = bool(spans)
        l2_hit = self.l2.access_block(heads, pos)
        self.l2.hits += n_rep
        l2_hits = int(l2_hit.sum()) + n_rep
        l2m_idx = np.flatnonzero(~l2_hit)
        l3_hit = self.l3.access_block(heads[l2m_idx], pos[l2m_idx])
        l3_hits = int(l3_hit.sum())
        dram_idx = l2m_idx[~l3_hit]
        n_dram = int(dram_idx.size)
        if track:
            # Per-access outcome codes of the kept stream, consumed by
            # the span replication below: 0 L2 hit, 1 L3 hit, 2 DRAM
            # (EPC hit), 3 EPC cold, 4 EPC eviction (page fault).
            code = np.zeros(mk, dtype=np.int8)
            code[l2m_idx[l3_hit]] = 1
        faults = 0
        if n_dram:
            pages = heads[dram_idx] // self._lines_per_page
            # Same run-length collapse at page granularity: consecutive
            # same-page DRAM accesses beyond the first are EPC hits.
            if n_dram > 1:
                ph = np.flatnonzero(pages[1:] != pages[:-1]) + 1
                head_pos = np.concatenate((np.zeros(1, dtype=np.int64), ph))
            else:
                head_pos = np.zeros(1, dtype=np.int64)
            page_heads = pages[head_pos]
            pager = self.pager
            access = pager.access
            before = pager.faults
            if track:
                rmap = {"hit": 2, "cold": 3, "evict": 4}
                pcodes = [rmap[access(pg)] for pg in page_heads.tolist()]
                code[dram_idx] = 2
                code[dram_idx[head_pos]] = np.array(pcodes, dtype=np.int8)
            else:
                for pg in page_heads.tolist():
                    access(pg)
            faults = pager.faults - before
            pager.hits += n_dram - int(page_heads.size)
        if spans:
            pager = self.pager
            for t0, reps in spans:
                mates = kcum[t0 + 2 * period:t0 + 3 * period]
                cnt = np.bincount(code[mates], minlength=5) * reps
                # Defensive: a period-4 cold cannot occur (its page was
                # touched in an earlier period), but were one reported
                # the repeats would be resident-page hits.
                if cnt[3]:
                    cnt[2] += cnt[3]
                    cnt[3] = 0
                l2_hits += int(cnt[0])
                l3_hits += int(cnt[1])
                n_dram += int(cnt[2] + cnt[3] + cnt[4])
                faults += int(cnt[4])
                self.l2.hits += int(cnt[0])
                self.l2.misses += int(cnt[1:].sum())
                self.l3.hits += int(cnt[1])
                self.l3.misses += int(cnt[2:].sum())
                pager.hits += int(cnt[2])
                pager.cold += int(cnt[3])
                pager.faults += int(cnt[4])
        self._clock += n_total
        cycles = (
            n_total * p.cycles_per_element_op
            + l2_hits * p.cycles_l2_hit
            + l3_hits * p.cycles_l3_hit
            + (n_dram - faults) * p.cycles_dram
            + faults * p.cycles_epc_page_fault
        )
        report.accesses += n_total
        report.cycles += cycles
        report.l2_hits += l2_hits
        report.l3_hits += l3_hits
        report.dram_accesses += n_dram
        report.page_faults += faults

    def _charge_vector(self, lines, report: CostReport) -> None:
        if isinstance(lines, np.ndarray):
            for lo in range(0, lines.size, CHUNK_ACCESSES):
                self._charge_array(lines[lo:lo + CHUNK_ACCESSES], report)
            return
        it = iter(lines)
        while True:
            arr = np.fromiter(
                itertools.islice(it, CHUNK_ACCESSES), dtype=np.int64
            )
            if arr.size == 0:
                break
            self._charge_array(arr, report)

    def charge_chunks(self, chunks: Iterator[np.ndarray]) -> CostReport:
        """Charge a stream of numpy cacheline chunks (vector engine).

        This is the array-end-to-end fast path fed by the chunked
        structural streams (``repro.core.streams.*_stream_chunks``).
        The reference engine consumes the same chunks element-at-a-time
        so both engines stay drop-in interchangeable.
        """
        report = CostReport()
        with obs.span("cost.charge") as charge_span:
            if self.engine == "vector":
                for arr in chunks:
                    self._charge_vector(np.asarray(arr), report)
                self._total_accesses += report.accesses
                self._total_cycles += report.cycles
            else:
                for arr in chunks:
                    self._charge_seq(np.asarray(arr).tolist(), report)
            charge_span.set(accesses=report.accesses, cycles=report.cycles)
        if obs.enabled():
            self.publish_telemetry()
        return report

    # -- reference path -------------------------------------------------

    def _charge_seq(self, lines, report: CostReport) -> None:
        """Element-at-a-time replay (the executable specification)."""
        p = self.params
        lines_per_page = self._lines_per_page
        cycles = 0
        n = 0
        l2 = self.l2
        l3 = self.l3
        pager = self.pager
        for line in lines:
            n += 1
            cycles += p.cycles_per_element_op
            if l2.access(line):
                cycles += p.cycles_l2_hit
                report.l2_hits += 1
                continue
            if l3.access(line):
                cycles += p.cycles_l3_hit
                report.l3_hits += 1
                continue
            report.dram_accesses += 1
            outcome = pager.access(line // lines_per_page)
            if outcome == "evict":
                report.page_faults += 1
                cycles += p.cycles_epc_page_fault
            else:
                cycles += p.cycles_dram
        report.accesses += n
        report.cycles += cycles
        self._total_accesses += n
        self._total_cycles += cycles

    def charge_lines(self, lines: Iterable[int]) -> CostReport:
        """Charge a stream of cacheline indices; returns the report.

        Accepts numpy arrays, lists, or generators; the vector engine
        batches generators into numpy chunks, the reference engine
        converts arrays to plain ints up front (several times faster
        than iterating numpy scalars).
        """
        report = CostReport()
        with obs.span("cost.charge") as charge_span:
            if self.engine == "vector":
                self._charge_vector(lines, report)
                self._total_accesses += report.accesses
                self._total_cycles += report.cycles
            else:
                if isinstance(lines, np.ndarray):
                    lines = lines.tolist()
                self._charge_seq(lines, report)
            charge_span.set(accesses=report.accesses, cycles=report.cycles)
        if obs.enabled():
            self.publish_telemetry()
        return report

    def charge_addresses(self, byte_addresses: Iterable[int]) -> CostReport:
        """Charge byte addresses (coarsened to cachelines)."""
        line_bytes = self.params.line_bytes
        if isinstance(byte_addresses, np.ndarray):
            return self.charge_lines(byte_addresses // line_bytes)
        return self.charge_lines(a // line_bytes for a in byte_addresses)


def replay_trace_cost(
    trace,
    layout,
    params: CostParameters | None = None,
    engine: str = "vector",
) -> tuple[CostModel, CostReport]:
    """Replay a whole recorded trace through a fresh :class:`CostModel`.

    Maps every access of ``trace`` (all regions, original order) onto
    its simulated physical byte address via ``layout``
    (:class:`repro.sgx.memory.RegionLayout`) in one vectorized gather,
    then charges the resulting address stream.  This is how the
    serving subsystem prices an inference batch: the engine records
    the batch's trace, and this replay answers "what would that access
    sequence cost on the modelled machine" -- returning the model (for
    cumulative :attr:`CostModel.stats`) and the batch's
    :class:`CostReport`.
    """
    model = CostModel(params, engine=engine)
    rids, offs, _ = trace.columns()
    names = trace.region_names
    if len(rids) == 0:
        return model, CostReport()
    bases = np.asarray([layout.base(name) for name in names], dtype=np.int64)
    itemsizes = np.asarray(
        [layout.itemsize(name) for name in names], dtype=np.int64
    )
    addresses = bases[rids] + offs.astype(np.int64) * itemsizes[rids]
    report = model.charge_addresses(addresses)
    return model, report
