"""Simulated SGX remote attestation (RA).

Reproduces the protocol-level behaviour of Section 2.2: an enclave
exposes a *measurement* (hash of its initial code/data identity), a
trusted attestation service signs a *quote* over that measurement, and a
client verifies the quote against the expected measurement before
exchanging a shared key.  A failed verification aborts the client's
participation, exactly as Algorithm 1 prescribes.

Key exchange is classic finite-field Diffie-Hellman over a fixed
2048-bit MODP group (RFC 3526 group 14), authenticated on the enclave
side by inclusion of the enclave's public share in the signed quote.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass

# RFC 3526, 2048-bit MODP group 14.
_DH_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
_DH_GENERATOR = 2


class AttestationError(Exception):
    """Quote verification failed: wrong measurement or bad signature."""


def measure(code_identity: bytes) -> bytes:
    """Enclave measurement: hash of initial code/data (MRENCLAVE)."""
    return hashlib.sha256(b"mrenclave:" + code_identity).digest()


@dataclass(frozen=True)
class Quote:
    """Signed attestation report binding a measurement to a DH share."""

    measurement: bytes
    dh_public: int
    signature: bytes


class AttestationService:
    """Stand-in for the Intel Attestation Service (trusted third party).

    Holds a signing key; enclaves request quote signatures, clients
    verify them.  HMAC plays the role of the EPID group signature: the
    relevant property (unforgeability relative to the trusted service)
    is preserved.
    """

    def __init__(
        self,
        signing_key: bytes | None = None,
        platform_secret: bytes | None = None,
    ) -> None:
        self._signing_key = signing_key or os.urandom(32)
        # Stand-in for the per-platform root sealing secret the SGX
        # hardware derives sealing keys from: enclaves with the same
        # measurement on the same platform obtain the same sealing key,
        # which is exactly what lets a restarted (or failed-over)
        # enclave unseal a crashed sibling's checkpoint.
        self._platform_secret = platform_secret or os.urandom(32)

    def sealing_key(self, measurement: bytes) -> bytes:
        """MRENCLAVE-policy sealing key for ``measurement``.

        Bound to (platform, measurement) as the SGX ``EGETKEY``
        sealing-key derivation is: a different enclave binary (or a
        different platform) derives a different key and cannot unseal
        state checkpoints.
        """
        return hmac.new(
            self._platform_secret, b"seal:" + measurement, hashlib.sha256
        ).digest()

    def sign_quote(self, measurement: bytes, dh_public: int) -> Quote:
        """Sign an attestation report for an enclave."""
        payload = measurement + dh_public.to_bytes(256, "big")
        sig = hmac.new(self._signing_key, payload, hashlib.sha256).digest()
        return Quote(measurement=measurement, dh_public=dh_public, signature=sig)

    def verify_quote(self, quote: Quote) -> bool:
        """Check a quote's signature against this service's key."""
        payload = quote.measurement + quote.dh_public.to_bytes(256, "big")
        expected = hmac.new(self._signing_key, payload, hashlib.sha256).digest()
        return hmac.compare_digest(expected, quote.signature)


class DiffieHellman:
    """One party's ephemeral DH state over the fixed MODP group."""

    def __init__(self, secret: int | None = None) -> None:
        self._secret = secret or int.from_bytes(os.urandom(32), "big")
        self.public = pow(_DH_GENERATOR, self._secret, _DH_PRIME)

    def shared_key(self, peer_public: int) -> bytes:
        """Derive the session key from the peer's public share."""
        if not 1 < peer_public < _DH_PRIME - 1:
            raise AttestationError("invalid DH public share")
        shared = pow(peer_public, self._secret, _DH_PRIME)
        return hashlib.sha256(b"ra-kdf:" + shared.to_bytes(256, "big")).digest()


def client_attest(
    service: AttestationService,
    quote: Quote,
    expected_measurement: bytes,
    client_dh: DiffieHellman,
) -> bytes:
    """Client side of RA: verify the quote, then derive the session key.

    Raises :class:`AttestationError` when the quote is forged or the
    enclave identity differs from what the client expects -- the client
    must refuse to join FL in that case (Section 3.2).
    """
    if not service.verify_quote(quote):
        raise AttestationError("quote signature invalid")
    if not hmac.compare_digest(quote.measurement, expected_measurement):
        raise AttestationError("enclave measurement mismatch")
    return client_dh.shared_key(quote.dh_public)
