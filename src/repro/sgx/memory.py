"""Traced memory: the foundation of the TEE access-pattern model.

The paper's threat model (Section 3.1) gives the untrusted server the
ability to observe the sequence of memory addresses an enclave touches,
either at word granularity (strongest adversary) or at cacheline
granularity (64 bytes, what published SGX attacks achieve).  This module
provides the simulated memory substrate on which every aggregation
algorithm in :mod:`repro.core` runs:

* :class:`MemoryAccess` -- one observed access ``(region, offset, op)``,
  matching the paper's triple ``a = (A[i], op, val)`` with ``val``
  withheld from the adversary (data is encrypted inside the enclave; the
  side channel leaks *addresses*, not plaintext).
* :class:`Trace` -- an append-only recording of accesses with projection
  helpers (restrict to one region, coarsen to cachelines).
* :class:`TracedArray` -- a fixed-length array whose ``read``/``write``
  record into a :class:`Trace`.

Tracing can be disabled (``trace=None``) so that the same algorithm
implementations also serve as fast functional references.

Storage layout
--------------

The trace is *columnar* (structure of arrays): three parallel numpy
arrays -- ``int32`` element offsets, ``uint8`` region ids, ``uint8``
operation codes -- grown by amortized doubling.  One recorded access
costs 6 bytes instead of one frozen dataclass plus a list slot
(~100+ bytes), and whole access blocks append as single vectorized
``numpy`` copies via :meth:`Trace.record_block` /
:meth:`Trace.record_batch` / :meth:`Trace.record_columns`.  Region
names are interned into a per-trace table in first-use order.  The
object-based views (:meth:`Trace.__iter__`, :meth:`Trace.project`,
:meth:`Trace.offsets`, ...) are preserved as compatibility wrappers
that materialize :class:`MemoryAccess` records on demand; batched
consumers should prefer the ``*_array`` variants, which return numpy
arrays without constructing any per-access objects.

The batched-recording contract: every batch API appends exactly the
access sequence that the equivalent loop of scalar :meth:`Trace.record`
calls would have appended, in the same order.  Batching changes *how*
the sequence is stored, never *what* the adversary observes -- the
trace-equivalence regression tests (``tests/test_trace_engine_equivalence.py``)
enforce this byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

import hashlib

import numpy as np

CACHELINE_BYTES = 64

READ = "read"
WRITE = "write"

#: Numeric operation codes used by the columnar storage and the
#: ``*_array`` fast paths (``ops`` columns hold these values).
OP_READ = 0
OP_WRITE = 1

_OP_NAMES = (READ, WRITE)

_INITIAL_CAPACITY = 256
_INT32_MAX = np.iinfo(np.int32).max
_INT32_MIN = np.iinfo(np.int32).min


def _norm_op(op: Any) -> int:
    """Normalize ``"read"``/``"write"`` (or 0/1) to an operation code."""
    if op == READ or op == OP_READ:
        return OP_READ
    if op == WRITE or op == OP_WRITE:
        return OP_WRITE
    raise ValueError(f"unknown memory operation {op!r}")


@dataclass(frozen=True)
class MemoryAccess:
    """A single observed memory access.

    Mirrors the paper's formal model ``a = (A[i], op, val)`` from
    Section 3.3, except ``val`` is never exposed: the adversary sees
    addresses and operation types only.
    """

    region: str
    offset: int
    op: str

    def cacheline(self, itemsize: int, line_bytes: int = CACHELINE_BYTES) -> int:
        """Cacheline index of this access for ``itemsize``-byte elements."""
        return (self.offset * itemsize) // line_bytes


class Trace:
    """Ordered sequence of memory accesses in columnar storage.

    Two traces compare equal iff they contain the identical ordered
    access sequence, which is exactly the paper's notion of a
    0-statistically-oblivious algorithm when it holds for all same-shape
    inputs (Definition 2.2 with delta = 0).
    """

    __slots__ = ("_region_names", "_region_ids", "_rids", "_offs", "_ops",
                 "_n", "_memmap_dir")

    def __init__(self, memmap_dir: str | None = None) -> None:
        """``memmap_dir`` (opt-in) backs the columns with anonymous
        disk-backed memmaps in that directory instead of RAM.

        A traced 10^5-client round records hundreds of millions of
        accesses; memmap backing lets the trace grow past physical
        memory while every recording/projection API behaves
        identically (memmaps are ndarrays).  Files are unlinked at
        creation, so the space is reclaimed when the trace is
        garbage-collected, superseded by growth, or the process exits.
        """
        self._region_names: list[str] = []
        self._region_ids: dict[str, int] = {}
        self._memmap_dir = memmap_dir
        self._rids = self._alloc(_INITIAL_CAPACITY, np.uint8)
        self._offs = self._alloc(_INITIAL_CAPACITY, np.int32)
        self._ops = self._alloc(_INITIAL_CAPACITY, np.uint8)
        self._n = 0

    def _alloc(self, length: int, dtype: Any) -> np.ndarray:
        """An uninitialized column of ``length`` elements.

        RAM by default; an unlinked disk-backed memmap when
        ``memmap_dir`` was given.
        """
        if self._memmap_dir is None:
            return np.empty(length, dtype=dtype)
        import os
        import tempfile

        fd, path = tempfile.mkstemp(prefix="trace-", suffix=".col",
                                    dir=self._memmap_dir)
        try:
            column = np.memmap(path, dtype=dtype, mode="w+",
                               shape=(max(length, 1),))
        finally:
            os.close(fd)
            os.unlink(path)
        return column

    # ------------------------------------------------------------------
    # Region table
    # ------------------------------------------------------------------
    def region_id(self, region: str) -> int:
        """Intern a region name, returning its small-integer id."""
        rid = self._region_ids.get(region)
        if rid is None:
            rid = len(self._region_names)
            if rid > np.iinfo(self._rids.dtype).max:
                widened = self._alloc(len(self._rids), np.uint16)
                widened[: self._n] = self._rids[: self._n]
                self._rids = widened
            self._region_names.append(region)
            self._region_ids[region] = rid
        return rid

    def region_index(self, region: str) -> int | None:
        """Id of an already-interned region, or ``None``."""
        return self._region_ids.get(region)

    @property
    def region_names(self) -> tuple[str, ...]:
        """Interned region names, in first-use order (index = region id)."""
        return tuple(self._region_names)

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def _ensure(self, extra: int) -> None:
        need = self._n + extra
        cap = len(self._offs)
        if need <= cap:
            return
        new_cap = cap
        while new_cap < need:
            new_cap *= 2
        for attr in ("_rids", "_offs", "_ops"):
            old = getattr(self, attr)
            grown = self._alloc(new_cap, old.dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, attr, grown)

    def _widen_offsets_if_needed(self, lo: int, hi: int) -> None:
        if self._offs.dtype == np.int32 and (hi > _INT32_MAX or lo < _INT32_MIN):
            widened = self._alloc(len(self._offs), np.int64)
            widened[: self._n] = self._offs[: self._n]
            self._offs = widened

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, region: str, offset: int, op: str) -> None:
        """Append one access to the trace."""
        self._ensure(1)
        offset = int(offset)
        self._widen_offsets_if_needed(offset, offset)
        n = self._n
        self._rids[n] = self.region_id(region)
        self._offs[n] = offset
        self._ops[n] = _norm_op(op)
        self._n = n + 1

    def record_block(self, region: str, start: int, stop: int, op: str) -> None:
        """Append a contiguous run ``region[start:stop]`` of one op.

        Equivalent to ``for o in range(start, stop): record(region, o, op)``
        as a single vectorized append.
        """
        count = stop - start
        if count <= 0:
            return
        self._widen_offsets_if_needed(start, stop - 1)
        self._ensure(count)
        n = self._n
        self._rids[n : n + count] = self.region_id(region)
        self._offs[n : n + count] = np.arange(start, stop, dtype=self._offs.dtype)
        self._ops[n : n + count] = _norm_op(op)
        self._n = n + count

    def record_batch(self, region: str, offsets: Any, op: Any) -> None:
        """Append many accesses to one region in one call.

        ``offsets`` is any integer array-like; ``op`` is either a single
        operation (applied to every offset) or a per-offset array of
        operation codes / names.  Order follows ``offsets``.
        """
        offs = np.asarray(offsets)
        count = offs.size
        if count == 0:
            return
        if offs.ndim != 1:
            offs = offs.reshape(-1)
        if offs.size:
            self._widen_offsets_if_needed(int(offs.min()), int(offs.max()))
        self._ensure(count)
        n = self._n
        self._rids[n : n + count] = self.region_id(region)
        self._offs[n : n + count] = offs
        if isinstance(op, (str, int)):
            self._ops[n : n + count] = _norm_op(op)
        else:
            ops_arr = np.asarray(op)
            if ops_arr.dtype.kind not in "iu":
                ops_arr = np.asarray([_norm_op(o) for o in op], dtype=np.uint8)
            self._ops[n : n + count] = ops_arr.reshape(-1)
        self._n = n + count

    def record_columns(self, region_ids: Any, offsets: Any, ops: Any) -> None:
        """Append pre-built columns (ids from :meth:`region_id`).

        The fully general batch append for access sequences that
        interleave regions (e.g. the Linear aggregator's
        ``g``/``g_star``/``g_star`` triplets).  All three arrays must
        have equal length; ``ops`` holds numeric operation codes.
        """
        rids = np.asarray(region_ids).reshape(-1)
        offs = np.asarray(offsets).reshape(-1)
        ops_arr = np.asarray(ops).reshape(-1)
        count = offs.size
        if count == 0:
            return
        if not (rids.size == count == ops_arr.size):
            raise ValueError("record_columns requires equal-length columns")
        if rids.size and int(rids.max()) >= len(self._region_names):
            raise ValueError("unknown region id in record_columns")
        self._widen_offsets_if_needed(int(offs.min()), int(offs.max()))
        self._ensure(count)
        n = self._n
        self._rids[n : n + count] = rids
        self._offs[n : n + count] = offs
        self._ops[n : n + count] = ops_arr
        self._n = n + count

    # ------------------------------------------------------------------
    # Columnar views (fast paths)
    # ------------------------------------------------------------------
    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The raw ``(region_ids, offsets, ops)`` columns.

        Views into the live storage -- treat as read-only; they are
        invalidated by the next append.
        """
        n = self._n
        return self._rids[:n], self._offs[:n], self._ops[:n]

    @property
    def nbytes(self) -> int:
        """Bytes of columnar storage currently allocated."""
        return self._rids.nbytes + self._offs.nbytes + self._ops.nbytes

    def _mask(self, region: str, op: Any | None = None) -> np.ndarray | None:
        rid = self._region_ids.get(region)
        if rid is None:
            return None
        rids, _, ops = self.columns()
        mask = rids == rid
        if op is not None:
            mask &= ops == _norm_op(op)
        return mask

    def offsets_array(self, region: str, op: str | None = None) -> np.ndarray:
        """Offsets touched in ``region`` as an ``int64`` numpy array."""
        mask = self._mask(region, op)
        if mask is None:
            return np.empty(0, dtype=np.int64)
        return self._offs[: self._n][mask].astype(np.int64, copy=False)

    def cachelines_array(
        self,
        region: str,
        itemsize: int,
        line_bytes: int = CACHELINE_BYTES,
        op: str | None = None,
    ) -> np.ndarray:
        """Cacheline indices touched in ``region`` as a numpy array."""
        offs = self.offsets_array(region, op)
        return (offs * itemsize) // line_bytes

    def project_arrays(self, region: str) -> tuple[np.ndarray, np.ndarray]:
        """``(offsets, op_codes)`` of one region, order preserved."""
        mask = self._mask(region)
        if mask is None:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.uint8)
        n = self._n
        return (
            self._offs[:n][mask].astype(np.int64, copy=False),
            self._ops[:n][mask],
        )

    # ------------------------------------------------------------------
    # Object-based compatibility API
    # ------------------------------------------------------------------
    @property
    def accesses(self) -> list[MemoryAccess]:
        """The trace as :class:`MemoryAccess` objects (materialized)."""
        return list(self)

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[MemoryAccess]:
        names = self._region_names
        rids, offs, ops = self.columns()
        for rid, off, op in zip(rids.tolist(), offs.tolist(), ops.tolist()):
            yield MemoryAccess(names[rid], off, _OP_NAMES[op])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        if self._n != other._n:
            return False
        rids_a, offs_a, ops_a = self.columns()
        rids_b, offs_b, ops_b = other.columns()
        if not np.array_equal(offs_a, offs_b) or not np.array_equal(ops_a, ops_b):
            return False
        if self._region_names == other._region_names:
            return bool(np.array_equal(rids_a, rids_b))
        # Different interning orders: translate b's ids into a's table.
        translate = np.asarray(
            [self._region_ids.get(name, -1) for name in other._region_names],
            dtype=np.int64,
        )
        if translate.size == 0:
            return True
        return bool(np.array_equal(rids_a, translate[rids_b]))

    def project(self, region: str) -> list[MemoryAccess]:
        """Accesses restricted to one named region, order preserved."""
        offs, ops = self.project_arrays(region)
        return [
            MemoryAccess(region, off, _OP_NAMES[op])
            for off, op in zip(offs.tolist(), ops.tolist())
        ]

    def offsets(self, region: str, op: str | None = None) -> list[int]:
        """Offsets touched in ``region`` (optionally one op), in order."""
        return self.offsets_array(region, op).tolist()

    def cachelines(
        self,
        region: str,
        itemsize: int,
        line_bytes: int = CACHELINE_BYTES,
        op: str | None = None,
    ) -> list[int]:
        """Cacheline indices touched in ``region``, in access order."""
        return self.cachelines_array(region, itemsize, line_bytes, op).tolist()

    def signature(self) -> tuple[tuple[str, int, str], ...]:
        """Hashable representation of the full trace."""
        names = self._region_names
        rids, offs, ops = self.columns()
        region_col = [names[r] for r in rids.tolist()]
        op_col = [_OP_NAMES[o] for o in ops.tolist()]
        return tuple(zip(region_col, offs.tolist(), op_col))

    def signature_digest(self) -> str:
        """SHA-256 digest of the canonical trace, for O(n) equality.

        Region ids are remapped to first-appearance order so that two
        traces with identical access sequences (even if their region
        tables were interned differently) hash identically.  Collisions
        aside, ``a.signature_digest() == b.signature_digest()`` iff
        ``a.signature() == b.signature()`` -- but without building the
        per-access tuples, so it stays usable at millions of accesses.
        """
        rids, offs, ops = self.columns()
        h = hashlib.sha256()
        if self._n:
            uniq, first = np.unique(rids, return_index=True)
            order = np.argsort(first)
            remap = np.zeros(int(uniq.max()) + 1, dtype=np.uint16)
            remap[uniq[order]] = np.arange(len(uniq), dtype=np.uint16)
            canonical_names = [self._region_names[i] for i in uniq[order].tolist()]
            h.update("\x00".join(canonical_names).encode())
            h.update(remap[rids].tobytes())
            h.update(offs.astype(np.int64, copy=False).tobytes())
            h.update(ops.tobytes())
        return h.hexdigest()

    @classmethod
    def from_columns(
        cls,
        regions: Sequence[str],
        region_ids: Any,
        offsets: Any,
        ops: Any,
    ) -> "Trace":
        """Build a trace directly from columnar data.

        ``regions`` is the id -> name table referenced by
        ``region_ids``; ``ops`` holds numeric operation codes.  Used by
        trace deserialization (:mod:`repro.core.checkpoint`).
        """
        trace = cls()
        for name in regions:
            trace.region_id(name)
        trace.record_columns(region_ids, offsets, ops)
        return trace


class TracedArray:
    """Fixed-length array whose element accesses are recorded.

    Elements may be any Python value (floats, ``(index, value)`` tuples,
    ORAM blocks).  ``itemsize`` is the modelled byte width of one element
    and controls cacheline coarsening; the paper uses 8-byte weights
    (u32 index + f32 value).
    """

    def __init__(
        self,
        name: str,
        data: Iterable[Any],
        trace: Trace | None = None,
        itemsize: int = 8,
    ) -> None:
        self.name = name
        self._data = list(data)
        self.trace = trace
        self.itemsize = itemsize

    @classmethod
    def zeros(
        cls,
        name: str,
        length: int,
        trace: Trace | None = None,
        itemsize: int = 8,
    ) -> "TracedArray":
        """Zero-initialized traced array."""
        return cls(name, [0.0] * length, trace=trace, itemsize=itemsize)

    def __len__(self) -> int:
        return len(self._data)

    @property
    def data(self) -> list[Any]:
        """The backing store, for batched kernels that record via the
        block APIs themselves.  Mutating it bypasses trace recording --
        callers own the obligation to record the matching accesses."""
        return self._data

    def read(self, offset: int) -> Any:
        """Traced element read."""
        if not 0 <= offset < len(self._data):
            raise IndexError(f"{self.name}[{offset}] out of bounds")
        if self.trace is not None:
            self.trace.record(self.name, offset, READ)
        return self._data[offset]

    def write(self, offset: int, value: Any) -> None:
        """Traced element write."""
        if not 0 <= offset < len(self._data):
            raise IndexError(f"{self.name}[{offset}] out of bounds")
        if self.trace is not None:
            self.trace.record(self.name, offset, WRITE)
        self._data[offset] = value

    def _check_block(self, start: int, stop: int) -> None:
        if not (0 <= start <= stop <= len(self._data)):
            raise IndexError(
                f"{self.name}[{start}:{stop}] out of bounds (len {len(self._data)})"
            )

    def read_block(self, start: int, stop: int) -> list[Any]:
        """Traced contiguous read of ``[start, stop)`` in one call.

        Records the same access sequence as ``[read(o) for o in
        range(start, stop)]`` via a single vectorized append.
        """
        self._check_block(start, stop)
        if self.trace is not None:
            self.trace.record_block(self.name, start, stop, READ)
        return self._data[start:stop]

    def write_block(self, start: int, stop: int, values: Sequence[Any]) -> None:
        """Traced contiguous write of ``[start, stop)`` in one call."""
        self._check_block(start, stop)
        if len(values) != stop - start:
            raise ValueError("write_block length mismatch")
        if self.trace is not None:
            self.trace.record_block(self.name, start, stop, WRITE)
        self._data[start:stop] = list(values)

    def _check_batch(self, offsets: np.ndarray) -> None:
        if offsets.size and (
            int(offsets.min()) < 0 or int(offsets.max()) >= len(self._data)
        ):
            raise IndexError(f"{self.name} batch access out of bounds")

    def read_batch(self, offsets: Any) -> list[Any]:
        """Traced read at a vector of offsets (one batched append)."""
        offs = np.asarray(offsets, dtype=np.int64).reshape(-1)
        self._check_batch(offs)
        if self.trace is not None:
            self.trace.record_batch(self.name, offs, READ)
        data = self._data
        return [data[o] for o in offs.tolist()]

    def write_batch(self, offsets: Any, values: Sequence[Any]) -> None:
        """Traced write at a vector of offsets (one batched append)."""
        offs = np.asarray(offsets, dtype=np.int64).reshape(-1)
        self._check_batch(offs)
        if len(values) != offs.size:
            raise ValueError("write_batch length mismatch")
        if self.trace is not None:
            self.trace.record_batch(self.name, offs, WRITE)
        data = self._data
        for o, v in zip(offs.tolist(), values):
            data[o] = v

    def snapshot(self) -> list[Any]:
        """Copy of the contents without generating trace records.

        Models the enclave reading its own private state when the result
        is about to leave through the (traced) output path anyway; used
        by tests and result extraction, never inside oblivious kernels.
        """
        return list(self._data)

    def load(self, values: Sequence[Any]) -> None:
        """Bulk-set contents without trace records (test setup helper)."""
        if len(values) != len(self._data):
            raise ValueError("length mismatch in TracedArray.load")
        self._data = list(values)


@dataclass
class RegionLayout:
    """Assigns simulated base byte addresses to named regions.

    The cost model (:mod:`repro.sgx.cost`) needs globally distinct
    physical addresses so that distinct regions occupy distinct
    cachelines.  Regions are laid out back to back, each aligned up to a
    cacheline boundary.
    """

    line_bytes: int = CACHELINE_BYTES
    _regions: dict[str, tuple[int, int, int]] = field(default_factory=dict)
    _next_base: int = 0

    def add(self, name: str, length: int, itemsize: int) -> int:
        """Register a region and return its base byte address."""
        if name in self._regions:
            raise ValueError(f"region {name!r} already laid out")
        base = self._next_base
        size = length * itemsize
        self._regions[name] = (base, size, itemsize)
        aligned = (size + self.line_bytes - 1) // self.line_bytes * self.line_bytes
        self._next_base = base + aligned
        return base

    def base(self, name: str) -> int:
        """Base byte address of a region."""
        return self._regions[name][0]

    def itemsize(self, name: str) -> int:
        """Element byte width of a region."""
        return self._regions[name][2]

    def byte_address(self, name: str, offset: int) -> int:
        """Simulated physical byte address of one element."""
        base, size, itemsize = self._regions[name]
        addr = base + offset * itemsize
        if not base <= addr < base + size:
            raise IndexError(f"address outside region {name!r}")
        return addr

    def byte_addresses(self, name: str, offsets: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`byte_address` over an offset array."""
        base, size, itemsize = self._regions[name]
        offs = np.asarray(offsets, dtype=np.int64)
        addrs = base + offs * itemsize
        if offs.size and (
            int(addrs.min()) < base or int(addrs.max()) >= base + size
        ):
            raise IndexError(f"address outside region {name!r}")
        return addrs

    def total_bytes(self) -> int:
        """Total laid-out bytes including alignment padding."""
        return self._next_base
