"""Traced memory: the foundation of the TEE access-pattern model.

The paper's threat model (Section 3.1) gives the untrusted server the
ability to observe the sequence of memory addresses an enclave touches,
either at word granularity (strongest adversary) or at cacheline
granularity (64 bytes, what published SGX attacks achieve).  This module
provides the simulated memory substrate on which every aggregation
algorithm in :mod:`repro.core` runs:

* :class:`MemoryAccess` -- one observed access ``(region, offset, op)``,
  matching the paper's triple ``a = (A[i], op, val)`` with ``val``
  withheld from the adversary (data is encrypted inside the enclave; the
  side channel leaks *addresses*, not plaintext).
* :class:`Trace` -- an append-only recording of accesses with projection
  helpers (restrict to one region, coarsen to cachelines).
* :class:`TracedArray` -- a fixed-length array whose ``read``/``write``
  record into a :class:`Trace`.

Tracing can be disabled (``trace=None``) so that the same algorithm
implementations also serve as fast functional references.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

CACHELINE_BYTES = 64

READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class MemoryAccess:
    """A single observed memory access.

    Mirrors the paper's formal model ``a = (A[i], op, val)`` from
    Section 3.3, except ``val`` is never exposed: the adversary sees
    addresses and operation types only.
    """

    region: str
    offset: int
    op: str

    def cacheline(self, itemsize: int, line_bytes: int = CACHELINE_BYTES) -> int:
        """Cacheline index of this access for ``itemsize``-byte elements."""
        return (self.offset * itemsize) // line_bytes


class Trace:
    """Ordered sequence of :class:`MemoryAccess` records.

    Two traces compare equal iff they contain the identical ordered
    access sequence, which is exactly the paper's notion of a
    0-statistically-oblivious algorithm when it holds for all same-shape
    inputs (Definition 2.2 with delta = 0).
    """

    def __init__(self) -> None:
        self.accesses: list[MemoryAccess] = []

    def record(self, region: str, offset: int, op: str) -> None:
        """Append one access to the trace."""
        self.accesses.append(MemoryAccess(region, offset, op))

    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self.accesses)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self.accesses == other.accesses

    def project(self, region: str) -> list[MemoryAccess]:
        """Accesses restricted to one named region, order preserved."""
        return [a for a in self.accesses if a.region == region]

    def offsets(self, region: str, op: str | None = None) -> list[int]:
        """Offsets touched in ``region`` (optionally one op), in order."""
        return [
            a.offset
            for a in self.accesses
            if a.region == region and (op is None or a.op == op)
        ]

    def cachelines(
        self,
        region: str,
        itemsize: int,
        line_bytes: int = CACHELINE_BYTES,
        op: str | None = None,
    ) -> list[int]:
        """Cacheline indices touched in ``region``, in access order."""
        return [
            a.cacheline(itemsize, line_bytes)
            for a in self.accesses
            if a.region == region and (op is None or a.op == op)
        ]

    def signature(self) -> tuple[tuple[str, int, str], ...]:
        """Hashable representation of the full trace."""
        return tuple((a.region, a.offset, a.op) for a in self.accesses)


class TracedArray:
    """Fixed-length array whose element accesses are recorded.

    Elements may be any Python value (floats, ``(index, value)`` tuples,
    ORAM blocks).  ``itemsize`` is the modelled byte width of one element
    and controls cacheline coarsening; the paper uses 8-byte weights
    (u32 index + f32 value).
    """

    def __init__(
        self,
        name: str,
        data: Iterable[Any],
        trace: Trace | None = None,
        itemsize: int = 8,
    ) -> None:
        self.name = name
        self._data = list(data)
        self.trace = trace
        self.itemsize = itemsize

    @classmethod
    def zeros(
        cls,
        name: str,
        length: int,
        trace: Trace | None = None,
        itemsize: int = 8,
    ) -> "TracedArray":
        """Zero-initialized traced array."""
        return cls(name, [0.0] * length, trace=trace, itemsize=itemsize)

    def __len__(self) -> int:
        return len(self._data)

    def read(self, offset: int) -> Any:
        """Traced element read."""
        if not 0 <= offset < len(self._data):
            raise IndexError(f"{self.name}[{offset}] out of bounds")
        if self.trace is not None:
            self.trace.record(self.name, offset, READ)
        return self._data[offset]

    def write(self, offset: int, value: Any) -> None:
        """Traced element write."""
        if not 0 <= offset < len(self._data):
            raise IndexError(f"{self.name}[{offset}] out of bounds")
        if self.trace is not None:
            self.trace.record(self.name, offset, WRITE)
        self._data[offset] = value

    def snapshot(self) -> list[Any]:
        """Copy of the contents without generating trace records.

        Models the enclave reading its own private state when the result
        is about to leave through the (traced) output path anyway; used
        by tests and result extraction, never inside oblivious kernels.
        """
        return list(self._data)

    def load(self, values: Sequence[Any]) -> None:
        """Bulk-set contents without trace records (test setup helper)."""
        if len(values) != len(self._data):
            raise ValueError("length mismatch in TracedArray.load")
        self._data = list(values)


@dataclass
class RegionLayout:
    """Assigns simulated base byte addresses to named regions.

    The cost model (:mod:`repro.sgx.cost`) needs globally distinct
    physical addresses so that distinct regions occupy distinct
    cachelines.  Regions are laid out back to back, each aligned up to a
    cacheline boundary.
    """

    line_bytes: int = CACHELINE_BYTES
    _regions: dict[str, tuple[int, int, int]] = field(default_factory=dict)
    _next_base: int = 0

    def add(self, name: str, length: int, itemsize: int) -> int:
        """Register a region and return its base byte address."""
        if name in self._regions:
            raise ValueError(f"region {name!r} already laid out")
        base = self._next_base
        size = length * itemsize
        self._regions[name] = (base, size, itemsize)
        aligned = (size + self.line_bytes - 1) // self.line_bytes * self.line_bytes
        self._next_base = base + aligned
        return base

    def base(self, name: str) -> int:
        """Base byte address of a region."""
        return self._regions[name][0]

    def itemsize(self, name: str) -> int:
        """Element byte width of a region."""
        return self._regions[name][2]

    def byte_address(self, name: str, offset: int) -> int:
        """Simulated physical byte address of one element."""
        base, size, itemsize = self._regions[name]
        addr = base + offset * itemsize
        if not base <= addr < base + size:
            raise IndexError(f"address outside region {name!r}")
        return addr

    def total_bytes(self) -> int:
        """Total laid-out bytes including alignment padding."""
        return self._next_base
