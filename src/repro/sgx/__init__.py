"""Simulated Intel SGX substrate: traced memory, enclave runtime,
remote attestation, authenticated encryption, cycle cost model, and the
side-channel adversary view."""

from .attestation import (
    AttestationError,
    AttestationService,
    DiffieHellman,
    Quote,
    client_attest,
    measure,
)
from .cost import (
    CostModel,
    CostParameters,
    CostReport,
    EpcPager,
    ReplayStats,
    SetAssociativeCache,
)
from .crypto import (
    AuthenticationError,
    Ciphertext,
    decode_sparse_gradient,
    encode_sparse_gradient,
    generate_key,
    open_sealed,
    seal,
)
from .enclave import (
    Enclave,
    EnclaveSecurityError,
    KeyStore,
    provision_enclave_with_clients,
)
from .memory import (
    CACHELINE_BYTES,
    MemoryAccess,
    RegionLayout,
    Trace,
    TracedArray,
)
from .observer import CACHELINE, WORD, ObserverConfig, SideChannelObserver

__all__ = [
    "AttestationError",
    "AttestationService",
    "AuthenticationError",
    "CACHELINE",
    "CACHELINE_BYTES",
    "Ciphertext",
    "CostModel",
    "CostParameters",
    "CostReport",
    "DiffieHellman",
    "Enclave",
    "EnclaveSecurityError",
    "EpcPager",
    "KeyStore",
    "MemoryAccess",
    "ObserverConfig",
    "Quote",
    "RegionLayout",
    "ReplayStats",
    "SetAssociativeCache",
    "SideChannelObserver",
    "Trace",
    "TracedArray",
    "WORD",
    "client_attest",
    "decode_sparse_gradient",
    "encode_sparse_gradient",
    "generate_key",
    "measure",
    "open_sealed",
    "provision_enclave_with_clients",
    "seal",
]
