"""Enclave runtime: the trust boundary of the simulated TEE.

Models the pieces of Intel SGX that OLIVE's protocol depends on:

* a *measurement*-identified isolated runtime (see
  :mod:`repro.sgx.attestation`);
* a sealed per-client :class:`KeyStore` populated during provisioning
  (Algorithm 1, line 1);
* *secure client sampling* performed inside the enclave with an
  enclave-private RNG (line 4), so the untrusted server can neither bias
  nor predict the sampled set;
* AE-mode verification of loaded gradients against the sampled set
  (lines 7-11): contributions from unsampled clients or ciphertexts
  that fail authentication are rejected;
* an EPC budget: allocations beyond ``epc_bytes`` are still permitted
  (Linux SGX pages transparently) but are flagged so the cost model can
  charge paging penalties.

Memory allocated through :meth:`Enclave.alloc` is traced: the adversary
observes its access pattern through :class:`repro.sgx.observer.SideChannelObserver`.
"""

from __future__ import annotations

import hashlib
import random
import struct
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .. import obs
from . import crypto
from .attestation import AttestationService, DiffieHellman, Quote, measure
from .memory import RegionLayout, Trace, TracedArray

DEFAULT_EPC_BYTES = 96 * 1024 * 1024

#: Version tag of the sealed round-state checkpoint wire format.
CHECKPOINT_MAGIC = b"OLVCKPT1"


class EnclaveSecurityError(Exception):
    """A protocol violation detected inside the enclave (abort round).

    ``reason`` is a stable machine-readable label (``"unsampled"``,
    ``"duplicate"``, ``"replay"``, ``"corrupt"``, ``"checkpoint"``,
    ``"attestation"``) so callers -- the cohort runtime's failure-reason
    accounting and the shard coordinator's dedup-vs-reject decisions --
    can adjudicate without parsing the message.
    """

    def __init__(self, message: str, *, reason: str = "security") -> None:
        super().__init__(message)
        self.reason = reason


@dataclass
class KeyStore:
    """Sealed key-value store mapping client id -> RA shared key."""

    _keys: dict[int, bytes] = field(default_factory=dict)

    def put(self, client_id: int, key: bytes) -> None:
        """Seal one client's RA key."""
        self._keys[client_id] = key
        obs.add("enclave.keys_sealed")
        obs.add("enclave.bytes_sealed", len(key))

    def get(self, client_id: int) -> bytes:
        """Retrieve one client's RA key; unknown clients raise."""
        if client_id not in self._keys:
            raise EnclaveSecurityError(f"no RA key for client {client_id}")
        return self._keys[client_id]

    def __contains__(self, client_id: int) -> bool:
        return client_id in self._keys

    def __len__(self) -> int:
        return len(self._keys)


class Enclave:
    """A provisioned enclave instance.

    Parameters
    ----------
    code_identity:
        Bytes identifying the enclave binary; hashed into the
        measurement that clients verify during RA.
    attestation_service:
        The trusted quoting service shared with clients.
    epc_bytes:
        Usable EPC size; allocations beyond it mark the enclave as
        oversubscribed (paging cost applies in the cost model).
    seed:
        Seed for the enclave-private RNG (secure sampling); ``None``
        draws from OS entropy.
    trace_memmap_dir:
        When set, back the access trace's columnar storage with
        disk-backed memmaps in this directory -- traced mega-cohort
        rounds record hundreds of millions of accesses, more than
        fits in RAM.  ``None`` (default) keeps the trace in memory.
    """

    def __init__(
        self,
        code_identity: bytes = b"olive-aggregator-v1",
        attestation_service: AttestationService | None = None,
        epc_bytes: int = DEFAULT_EPC_BYTES,
        seed: int | None = None,
        trace_memmap_dir: str | None = None,
    ) -> None:
        self.code_identity = code_identity
        self.measurement = measure(code_identity)
        self.attestation_service = attestation_service or AttestationService()
        self.epc_bytes = epc_bytes
        self.keystore = KeyStore()
        self.trace_memmap_dir = trace_memmap_dir
        self.trace = Trace(memmap_dir=trace_memmap_dir)
        self.layout = RegionLayout()
        self._rng = random.Random(seed)
        self._dh = DiffieHellman(
            secret=self._rng.getrandbits(256) if seed is not None else None
        )
        self._allocated_bytes = 0
        self._region_counter = 0
        self._sampled: set[int] = set()
        # Per-round replay defence: which clients already contributed
        # and the digests of accepted ciphertexts.  Both reset at the
        # next secure sampling (a new round).
        self._loaded_clients: set[int] = set()
        self._seen_digests: set[bytes] = set()

    # ------------------------------------------------------------------
    # Attestation / provisioning
    # ------------------------------------------------------------------
    def quote(self) -> Quote:
        """Produce a signed quote carrying the enclave's DH share."""
        return self.attestation_service.sign_quote(self.measurement, self._dh.public)

    def complete_ra(self, client_id: int, client_dh_public: int) -> None:
        """Finish RA with one client and seal the shared key."""
        key = self._dh.shared_key(client_dh_public)
        self.keystore.put(client_id, key)

    def attest_peer(self, quote: Quote) -> bytes:
        """Mutually attest a *peer enclave* and derive a channel key.

        The sharded aggregation service runs leaf and root enclaves of
        the same binary; before sealed partial aggregates (or replicated
        keystore entries) cross between them, each side verifies the
        other's quote against its **own** measurement -- only an enclave
        running identical code is trusted -- and derives the shared DH
        key for the leaf<->root channel.  Raises
        :class:`EnclaveSecurityError` on a forged quote or a
        measurement mismatch.
        """
        if not self.attestation_service.verify_quote(quote):
            obs.add("enclave.peer_attestations_failed")
            raise EnclaveSecurityError(
                "peer quote signature invalid", reason="attestation"
            )
        if quote.measurement != self.measurement:
            obs.add("enclave.peer_attestations_failed")
            raise EnclaveSecurityError(
                "peer enclave measurement mismatch", reason="attestation"
            )
        obs.add("enclave.peer_attestations")
        return self._dh.shared_key(quote.dh_public)

    def replicate_keys_to(self, peer: "Enclave") -> None:
        """Migrate the sealed keystore to an attested sibling enclave.

        Models SGX sealed-key migration: the transfer is only permitted
        after mutual attestation succeeds (identical measurement on the
        shared platform), which is what lets every leaf enclave decrypt
        any client's upload -- the property shard failover depends on.
        """
        self.attest_peer(peer.quote())
        peer.attest_peer(self.quote())
        for cid, key in self.keystore._keys.items():
            peer.keystore.put(cid, key)

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------
    def alloc(self, length: int, itemsize: int = 8, name: str | None = None) -> TracedArray:
        """Allocate a traced region inside the enclave."""
        if name is None:
            name = f"region{self._region_counter}"
        self._region_counter += 1
        self.layout.add(name, max(length, 1), itemsize)
        self._allocated_bytes += length * itemsize
        obs.add("enclave.alloc_bytes", length * itemsize)
        if self.oversubscribed:
            obs.add("enclave.epc_oversubscriptions")
        return TracedArray.zeros(name, length, trace=self.trace, itemsize=itemsize)

    @property
    def allocated_bytes(self) -> int:
        """Bytes currently allocated inside the enclave."""
        return self._allocated_bytes

    @property
    def oversubscribed(self) -> bool:
        """True when allocations exceed the EPC (paging territory)."""
        return self._allocated_bytes > self.epc_bytes

    def reset_trace(self) -> None:
        """Start a fresh observation window (new round)."""
        self.trace = Trace(memmap_dir=self.trace_memmap_dir)
        self.layout = RegionLayout()
        self._allocated_bytes = 0
        self._region_counter = 0

    # ------------------------------------------------------------------
    # Secure sampling and client verification (Algorithm 1, lines 4-11)
    # ------------------------------------------------------------------
    def begin_round(self, sampled: Iterable[int] | None = None) -> None:
        """Reset the per-round replay-defence state explicitly.

        Round drivers call this at the top of every round.  Secure
        sampling does it implicitly, but replay- or audit-driven rounds
        (and shard leaves, whose sampled set arrives from the root over
        the attested channel instead of being drawn locally) skip
        resampling -- without an explicit reset they would inherit the
        previous round's accepted-digest set and wrongly reject honest
        re-contributions.

        ``sampled``, when given, installs the round's participant set
        (the leaf-enclave case); ``None`` leaves the current set alone.
        """
        self._loaded_clients = set()
        self._seen_digests = set()
        if sampled is not None:
            self._sampled = {int(cid) for cid in sampled}
        obs.add("enclave.rounds_begun")

    def sample_clients(self, population: Sequence[int], rate: float) -> list[int]:
        """Poisson-sample the round's participants inside the enclave."""
        if not 0.0 < rate <= 1.0:
            raise ValueError("sampling rate must be in (0, 1]")
        with obs.span("ecall.sample_clients", hist="ecall.wall_s",
                      population=len(population)):
            sampled = [cid for cid in population if self._rng.random() < rate]
            if not sampled:
                # Guarantee progress on tiny populations: resample one.
                sampled = [population[self._rng.randrange(len(population))]]
            self.begin_round(sampled=sampled)
        return sampled

    @property
    def sampled_clients(self) -> set[int]:
        """This round's securely sampled participant set."""
        return set(self._sampled)

    def _guard_upload(
        self, client_id: int, ciphertext: crypto.Ciphertext
    ) -> bytes:
        """Replay defence, checked *before* spending a decryption.

        One contribution per sampled client per round, and no
        ciphertext may be accepted twice -- a replayed (or duplicated)
        upload would double a client's weight in the aggregate.
        """
        if client_id not in self._sampled:
            obs.add("enclave.gradients_rejected")
            raise EnclaveSecurityError(
                f"client {client_id} was not securely sampled this round",
                reason="unsampled",
            )
        digest = hashlib.sha256(ciphertext.to_bytes()).digest()
        if client_id in self._loaded_clients:
            obs.add("enclave.gradients_rejected")
            obs.add("runtime.rejected")
            raise EnclaveSecurityError(
                f"client {client_id} already contributed this round",
                reason="duplicate",
            )
        if digest in self._seen_digests:
            obs.add("enclave.gradients_rejected")
            obs.add("runtime.rejected")
            raise EnclaveSecurityError(
                f"client {client_id}: replayed ciphertext", reason="replay"
            )
        return digest

    def _record_upload(self, client_id: int, digest: bytes) -> None:
        """Mark an upload accepted (only after successful decryption)."""
        self._loaded_clients.add(client_id)
        self._seen_digests.add(digest)

    # ------------------------------------------------------------------
    # Partial-aggregate combination (root enclave of the sharded service)
    # ------------------------------------------------------------------
    def has_digest(self, digest: bytes) -> bool:
        """True when ``digest`` was already accepted this round."""
        return digest in self._seen_digests

    def record_partial(self, digest: bytes, client_ids: Iterable[int]) -> None:
        """Accept one shard's sealed partial aggregate into this round.

        The cross-shard double-count defence of the root enclave: a
        partial whose digest was already combined is a replay, and a
        partial covering a client another shard already accounted for
        would double that client's weight.  Both raise
        :class:`EnclaveSecurityError`; the coordinator treats the
        replay case as "already combined" when resuming after a root
        restart.
        """
        ids = {int(cid) for cid in client_ids}
        if digest in self._seen_digests:
            obs.add("enclave.partials_rejected")
            raise EnclaveSecurityError(
                "partial aggregate already combined this round",
                reason="replay",
            )
        overlap = self._loaded_clients.intersection(ids)
        if overlap:
            obs.add("enclave.partials_rejected")
            raise EnclaveSecurityError(
                f"clients {sorted(overlap)[:4]} appear in multiple shard "
                "partials", reason="duplicate",
            )
        self._seen_digests.add(digest)
        self._loaded_clients.update(ids)
        obs.add("enclave.partials_combined")

    # ------------------------------------------------------------------
    # Sealed round-state checkpoints (crash recovery / shard failover)
    # ------------------------------------------------------------------
    def _sealing_key(self) -> bytes:
        """The MRENCLAVE-policy sealing key of this enclave binary."""
        return self.attestation_service.sealing_key(self.measurement)

    def export_round_state(
        self, round_index: int = 0, partial: np.ndarray | None = None
    ) -> crypto.Ciphertext:
        """Seal the round's recovery state for crash/failover restart.

        The checkpoint captures everything a restarted (or failed-over)
        enclave needs to resume mid-round without double-counting or
        losing accepted uploads: the sampled set, the accepted-client
        set, the accepted-ciphertext digest set, and -- for aggregating
        enclaves -- the partial aggregate.  It is sealed under the
        platform's MRENCLAVE sealing key, so only an enclave running
        the identical binary on the same platform can restore it; the
        untrusted host that stores checkpoints between crashes sees
        only ciphertext.
        """
        with obs.span("ecall.export_state", hist="ecall.wall_s",
                      round=round_index):
            parts = [CHECKPOINT_MAGIC, struct.pack(">I", int(round_index))]
            for ids in (sorted(self._sampled), sorted(self._loaded_clients)):
                parts.append(struct.pack(">I", len(ids)))
                parts.append(np.asarray(ids, dtype=">u8").tobytes())
            digests = sorted(self._seen_digests)
            parts.append(struct.pack(">I", len(digests)))
            parts.extend(digests)
            if partial is None:
                parts.append(struct.pack(">BI", 0, 0))
            else:
                arr = np.ascontiguousarray(partial, dtype=np.float64)
                parts.append(struct.pack(">BI", 1, arr.size))
                parts.append(arr.tobytes())
            payload = b"".join(parts)
            # Deterministic SIV-style nonce: a function of the sealed
            # state itself, so checkpoint bytes (and therefore whole
            # recovered rounds) replay bit-identically.
            nonce = hashlib.sha256(b"ckpt-nonce:" + payload).digest()[:16]
            ciphertext = crypto.seal(self._sealing_key(), payload, nonce=nonce)
            obs.add("enclave.checkpoints_exported")
            obs.add("enclave.checkpoint_bytes", len(ciphertext.to_bytes()))
            return ciphertext

    def restore_round_state(
        self, checkpoint: crypto.Ciphertext
    ) -> tuple[int, np.ndarray | None]:
        """Restore sealed round state; returns ``(round, partial)``.

        Only a checkpoint sealed by an enclave with the same
        measurement on the same platform unseals; anything else --
        tampered bytes, a different binary, a different platform --
        raises :class:`EnclaveSecurityError` (``reason="checkpoint"``).
        """
        with obs.span("ecall.restore_state", hist="ecall.wall_s"):
            try:
                payload = crypto.open_sealed(self._sealing_key(), checkpoint)
            except crypto.AuthenticationError as exc:
                obs.add("enclave.checkpoints_rejected")
                raise EnclaveSecurityError(
                    "checkpoint failed unsealing (tampered, wrong "
                    "measurement, or wrong platform)", reason="checkpoint"
                ) from exc
            if payload[:8] != CHECKPOINT_MAGIC:
                obs.add("enclave.checkpoints_rejected")
                raise EnclaveSecurityError(
                    "unrecognized checkpoint format", reason="checkpoint"
                )
            off = len(CHECKPOINT_MAGIC)
            (round_index,) = struct.unpack_from(">I", payload, off)
            off += 4
            id_sets: list[set[int]] = []
            for _ in range(2):
                (count,) = struct.unpack_from(">I", payload, off)
                off += 4
                ids = np.frombuffer(payload, dtype=">u8", count=count,
                                    offset=off)
                off += 8 * count
                id_sets.append({int(v) for v in ids})
            (count,) = struct.unpack_from(">I", payload, off)
            off += 4
            digests = {payload[off + 32 * i: off + 32 * (i + 1)]
                       for i in range(count)}
            off += 32 * count
            has_partial, size = struct.unpack_from(">BI", payload, off)
            off += 5
            partial = None
            if has_partial:
                partial = np.frombuffer(
                    payload, dtype=np.float64, count=size, offset=off
                ).copy()
            self._sampled, self._loaded_clients = id_sets
            self._seen_digests = digests
            obs.add("enclave.checkpoints_restored")
            return int(round_index), partial

    def load_gradient(
        self, client_id: int, ciphertext: crypto.Ciphertext
    ) -> tuple[list[int], list[float]]:
        """Decrypt and verify one client contribution.

        Rejects clients outside the sampled set and ciphertexts that
        fail AE verification, raising :class:`EnclaveSecurityError` --
        the injection defence of Algorithm 1 line 8.
        """
        with obs.span("ecall.load_gradient", hist="ecall.wall_s",
                      client=client_id):
            digest = self._guard_upload(client_id, ciphertext)
            key = self.keystore.get(client_id)
            try:
                payload = crypto.open_sealed(key, ciphertext)
            except crypto.AuthenticationError as exc:
                obs.add("enclave.gradients_rejected")
                raise EnclaveSecurityError(
                    f"client {client_id}: gradient failed authentication",
                    reason="corrupt",
                ) from exc
            self._record_upload(client_id, digest)
            obs.add("enclave.gradients_loaded")
            obs.add("enclave.bytes_decrypted", len(ciphertext.body))
            return crypto.decode_sparse_gradient(payload)

    def load_quantized_gradient(
        self, client_id: int, ciphertext: crypto.Ciphertext
    ) -> tuple[list[int], list[float]]:
        """Decrypt, verify, and dequantize a compact client upload."""
        with obs.span("ecall.load_quantized_gradient", hist="ecall.wall_s",
                      client=client_id):
            digest = self._guard_upload(client_id, ciphertext)
            key = self.keystore.get(client_id)
            try:
                payload = crypto.open_sealed(key, ciphertext)
            except crypto.AuthenticationError as exc:
                obs.add("enclave.gradients_rejected")
                raise EnclaveSecurityError(
                    f"client {client_id}: gradient failed authentication",
                    reason="corrupt",
                ) from exc
            self._record_upload(client_id, digest)
            obs.add("enclave.gradients_loaded")
            obs.add("enclave.bytes_decrypted", len(ciphertext.body))
            indices, levels, scale = crypto.decode_quantized_gradient(payload)
            return indices, [level * scale for level in levels]

    # ------------------------------------------------------------------
    # Enclave-private randomness (DP noise must be drawn inside)
    # ------------------------------------------------------------------
    def gauss(self, sigma: float) -> float:
        """One sample of enclave-private Gaussian noise."""
        return self._rng.gauss(0.0, sigma)

    def gauss_vector(self, sigma: float, length: int) -> list[float]:
        """A vector of enclave-private Gaussian noise."""
        with obs.span("ecall.gauss_vector", hist="ecall.wall_s",
                      length=length):
            return [self._rng.gauss(0.0, sigma) for _ in range(length)]


def provision_enclave_with_clients(
    enclave: Enclave, client_ids: Iterable[int]
) -> dict[int, bytes]:
    """Run RA for every client; returns client-side session keys.

    Convenience used by tests and examples: each client verifies the
    enclave quote against the expected measurement and both sides derive
    the same shared key.
    """
    from .attestation import client_attest

    quote = enclave.quote()
    keys: dict[int, bytes] = {}
    for cid in client_ids:
        dh = DiffieHellman()
        key = client_attest(
            enclave.attestation_service, quote, enclave.measurement, dh
        )
        enclave.complete_ra(cid, dh.public)
        keys[cid] = key
    return keys
