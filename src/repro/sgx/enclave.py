"""Enclave runtime: the trust boundary of the simulated TEE.

Models the pieces of Intel SGX that OLIVE's protocol depends on:

* a *measurement*-identified isolated runtime (see
  :mod:`repro.sgx.attestation`);
* a sealed per-client :class:`KeyStore` populated during provisioning
  (Algorithm 1, line 1);
* *secure client sampling* performed inside the enclave with an
  enclave-private RNG (line 4), so the untrusted server can neither bias
  nor predict the sampled set;
* AE-mode verification of loaded gradients against the sampled set
  (lines 7-11): contributions from unsampled clients or ciphertexts
  that fail authentication are rejected;
* an EPC budget: allocations beyond ``epc_bytes`` are still permitted
  (Linux SGX pages transparently) but are flagged so the cost model can
  charge paging penalties.

Memory allocated through :meth:`Enclave.alloc` is traced: the adversary
observes its access pattern through :class:`repro.sgx.observer.SideChannelObserver`.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .. import obs
from . import crypto
from .attestation import AttestationService, DiffieHellman, Quote, measure
from .memory import RegionLayout, Trace, TracedArray

DEFAULT_EPC_BYTES = 96 * 1024 * 1024


class EnclaveSecurityError(Exception):
    """A protocol violation detected inside the enclave (abort round)."""


@dataclass
class KeyStore:
    """Sealed key-value store mapping client id -> RA shared key."""

    _keys: dict[int, bytes] = field(default_factory=dict)

    def put(self, client_id: int, key: bytes) -> None:
        """Seal one client's RA key."""
        self._keys[client_id] = key
        obs.add("enclave.keys_sealed")
        obs.add("enclave.bytes_sealed", len(key))

    def get(self, client_id: int) -> bytes:
        """Retrieve one client's RA key; unknown clients raise."""
        if client_id not in self._keys:
            raise EnclaveSecurityError(f"no RA key for client {client_id}")
        return self._keys[client_id]

    def __contains__(self, client_id: int) -> bool:
        return client_id in self._keys

    def __len__(self) -> int:
        return len(self._keys)


class Enclave:
    """A provisioned enclave instance.

    Parameters
    ----------
    code_identity:
        Bytes identifying the enclave binary; hashed into the
        measurement that clients verify during RA.
    attestation_service:
        The trusted quoting service shared with clients.
    epc_bytes:
        Usable EPC size; allocations beyond it mark the enclave as
        oversubscribed (paging cost applies in the cost model).
    seed:
        Seed for the enclave-private RNG (secure sampling); ``None``
        draws from OS entropy.
    trace_memmap_dir:
        When set, back the access trace's columnar storage with
        disk-backed memmaps in this directory -- traced mega-cohort
        rounds record hundreds of millions of accesses, more than
        fits in RAM.  ``None`` (default) keeps the trace in memory.
    """

    def __init__(
        self,
        code_identity: bytes = b"olive-aggregator-v1",
        attestation_service: AttestationService | None = None,
        epc_bytes: int = DEFAULT_EPC_BYTES,
        seed: int | None = None,
        trace_memmap_dir: str | None = None,
    ) -> None:
        self.code_identity = code_identity
        self.measurement = measure(code_identity)
        self.attestation_service = attestation_service or AttestationService()
        self.epc_bytes = epc_bytes
        self.keystore = KeyStore()
        self.trace_memmap_dir = trace_memmap_dir
        self.trace = Trace(memmap_dir=trace_memmap_dir)
        self.layout = RegionLayout()
        self._rng = random.Random(seed)
        self._dh = DiffieHellman(
            secret=self._rng.getrandbits(256) if seed is not None else None
        )
        self._allocated_bytes = 0
        self._region_counter = 0
        self._sampled: set[int] = set()
        # Per-round replay defence: which clients already contributed
        # and the digests of accepted ciphertexts.  Both reset at the
        # next secure sampling (a new round).
        self._loaded_clients: set[int] = set()
        self._seen_digests: set[bytes] = set()

    # ------------------------------------------------------------------
    # Attestation / provisioning
    # ------------------------------------------------------------------
    def quote(self) -> Quote:
        """Produce a signed quote carrying the enclave's DH share."""
        return self.attestation_service.sign_quote(self.measurement, self._dh.public)

    def complete_ra(self, client_id: int, client_dh_public: int) -> None:
        """Finish RA with one client and seal the shared key."""
        key = self._dh.shared_key(client_dh_public)
        self.keystore.put(client_id, key)

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------
    def alloc(self, length: int, itemsize: int = 8, name: str | None = None) -> TracedArray:
        """Allocate a traced region inside the enclave."""
        if name is None:
            name = f"region{self._region_counter}"
        self._region_counter += 1
        self.layout.add(name, max(length, 1), itemsize)
        self._allocated_bytes += length * itemsize
        obs.add("enclave.alloc_bytes", length * itemsize)
        if self.oversubscribed:
            obs.add("enclave.epc_oversubscriptions")
        return TracedArray.zeros(name, length, trace=self.trace, itemsize=itemsize)

    @property
    def allocated_bytes(self) -> int:
        """Bytes currently allocated inside the enclave."""
        return self._allocated_bytes

    @property
    def oversubscribed(self) -> bool:
        """True when allocations exceed the EPC (paging territory)."""
        return self._allocated_bytes > self.epc_bytes

    def reset_trace(self) -> None:
        """Start a fresh observation window (new round)."""
        self.trace = Trace(memmap_dir=self.trace_memmap_dir)
        self.layout = RegionLayout()
        self._allocated_bytes = 0
        self._region_counter = 0

    # ------------------------------------------------------------------
    # Secure sampling and client verification (Algorithm 1, lines 4-11)
    # ------------------------------------------------------------------
    def sample_clients(self, population: Sequence[int], rate: float) -> list[int]:
        """Poisson-sample the round's participants inside the enclave."""
        if not 0.0 < rate <= 1.0:
            raise ValueError("sampling rate must be in (0, 1]")
        with obs.span("ecall.sample_clients", population=len(population)):
            sampled = [cid for cid in population if self._rng.random() < rate]
            if not sampled:
                # Guarantee progress on tiny populations: resample one.
                sampled = [population[self._rng.randrange(len(population))]]
            self._sampled = set(sampled)
            self._loaded_clients = set()
            self._seen_digests = set()
        return sampled

    @property
    def sampled_clients(self) -> set[int]:
        """This round's securely sampled participant set."""
        return set(self._sampled)

    def _guard_upload(
        self, client_id: int, ciphertext: crypto.Ciphertext
    ) -> bytes:
        """Replay defence, checked *before* spending a decryption.

        One contribution per sampled client per round, and no
        ciphertext may be accepted twice -- a replayed (or duplicated)
        upload would double a client's weight in the aggregate.
        """
        if client_id not in self._sampled:
            obs.add("enclave.gradients_rejected")
            raise EnclaveSecurityError(
                f"client {client_id} was not securely sampled this round"
            )
        digest = hashlib.sha256(ciphertext.to_bytes()).digest()
        if client_id in self._loaded_clients:
            obs.add("enclave.gradients_rejected")
            obs.add("runtime.rejected")
            raise EnclaveSecurityError(
                f"client {client_id} already contributed this round"
            )
        if digest in self._seen_digests:
            obs.add("enclave.gradients_rejected")
            obs.add("runtime.rejected")
            raise EnclaveSecurityError(
                f"client {client_id}: replayed ciphertext"
            )
        return digest

    def _record_upload(self, client_id: int, digest: bytes) -> None:
        """Mark an upload accepted (only after successful decryption)."""
        self._loaded_clients.add(client_id)
        self._seen_digests.add(digest)

    def load_gradient(
        self, client_id: int, ciphertext: crypto.Ciphertext
    ) -> tuple[list[int], list[float]]:
        """Decrypt and verify one client contribution.

        Rejects clients outside the sampled set and ciphertexts that
        fail AE verification, raising :class:`EnclaveSecurityError` --
        the injection defence of Algorithm 1 line 8.
        """
        with obs.span("ecall.load_gradient", client=client_id):
            digest = self._guard_upload(client_id, ciphertext)
            key = self.keystore.get(client_id)
            try:
                payload = crypto.open_sealed(key, ciphertext)
            except crypto.AuthenticationError as exc:
                obs.add("enclave.gradients_rejected")
                raise EnclaveSecurityError(
                    f"client {client_id}: gradient failed authentication"
                ) from exc
            self._record_upload(client_id, digest)
            obs.add("enclave.gradients_loaded")
            obs.add("enclave.bytes_decrypted", len(ciphertext.body))
            return crypto.decode_sparse_gradient(payload)

    def load_quantized_gradient(
        self, client_id: int, ciphertext: crypto.Ciphertext
    ) -> tuple[list[int], list[float]]:
        """Decrypt, verify, and dequantize a compact client upload."""
        with obs.span("ecall.load_quantized_gradient", client=client_id):
            digest = self._guard_upload(client_id, ciphertext)
            key = self.keystore.get(client_id)
            try:
                payload = crypto.open_sealed(key, ciphertext)
            except crypto.AuthenticationError as exc:
                obs.add("enclave.gradients_rejected")
                raise EnclaveSecurityError(
                    f"client {client_id}: gradient failed authentication"
                ) from exc
            self._record_upload(client_id, digest)
            obs.add("enclave.gradients_loaded")
            obs.add("enclave.bytes_decrypted", len(ciphertext.body))
            indices, levels, scale = crypto.decode_quantized_gradient(payload)
            return indices, [level * scale for level in levels]

    # ------------------------------------------------------------------
    # Enclave-private randomness (DP noise must be drawn inside)
    # ------------------------------------------------------------------
    def gauss(self, sigma: float) -> float:
        """One sample of enclave-private Gaussian noise."""
        return self._rng.gauss(0.0, sigma)

    def gauss_vector(self, sigma: float, length: int) -> list[float]:
        """A vector of enclave-private Gaussian noise."""
        with obs.span("ecall.gauss_vector", length=length):
            return [self._rng.gauss(0.0, sigma) for _ in range(length)]


def provision_enclave_with_clients(
    enclave: Enclave, client_ids: Iterable[int]
) -> dict[int, bytes]:
    """Run RA for every client; returns client-side session keys.

    Convenience used by tests and examples: each client verifies the
    enclave quote against the expected measurement and both sides derive
    the same shared key.
    """
    from .attestation import client_attest

    quote = enclave.quote()
    keys: dict[int, bytes] = {}
    for cid in client_ids:
        dh = DiffieHellman()
        key = client_attest(
            enclave.attestation_service, quote, enclave.measurement, dh
        )
        enclave.complete_ra(cid, dh.public)
        keys[cid] = key
    return keys
