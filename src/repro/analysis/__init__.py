"""Leakage quantification: entropies, mutual information between
observations and label sets, index-label correlation structure, and
trace statistics."""

from .leakage_metrics import (
    TraceSummary,
    index_label_correlation,
    label_separability,
    mutual_information,
    normalized_leakage,
    observation_entropy,
    trace_summary,
)

__all__ = [
    "TraceSummary",
    "index_label_correlation",
    "label_separability",
    "mutual_information",
    "normalized_leakage",
    "observation_entropy",
    "trace_summary",
]
