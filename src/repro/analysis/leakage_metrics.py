"""Information-theoretic quantification of access-pattern leakage.

The attack of Section 4 demonstrates leakage operationally (label
inference succeeds); this module quantifies it information-
theoretically, which makes "how much does each aggregator leak?" a
single number:

* :func:`observation_entropy` -- empirical Shannon entropy of the
  adversary's per-client observations.  A fully oblivious aggregator
  yields one distinct observation, hence 0 bits.
* :func:`mutual_information` -- empirical I(observation; label set).
  Under Linear aggregation on sparse input this approaches H(labels)
  (the observation pins down the labels); under Advanced it is 0.
* :func:`index_label_correlation` -- per-label frequency profile of
  observed indices, the structure the JAC/NN classifiers exploit.
* :func:`trace_summary` -- per-region access statistics of a trace.

Empirical estimates use plug-in entropies over hashable observation
values; for the small client counts of the experiments these carry the
usual positive bias, so comparisons should be like-for-like (same
number of clients), as in :mod:`tests.test_analysis`.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping, Sequence

import numpy as np

from ..sgx.memory import OP_READ, Trace


def _entropy(counts: Counter) -> float:
    total = sum(counts.values())
    if total == 0:
        return 0.0
    out = 0.0
    for c in counts.values():
        p = c / total
        out -= p * math.log2(p)
    return out


def observation_entropy(observations: Iterable[Hashable]) -> float:
    """Empirical entropy (bits) of the adversary's observations."""
    return _entropy(Counter(observations))


def mutual_information(
    observations: Sequence[Hashable], labels: Sequence[Hashable]
) -> float:
    """Plug-in estimate of I(observation; label) in bits.

    ``observations[i]`` and ``labels[i]`` belong to the same client;
    both must be hashable (frozensets work).
    """
    if len(observations) != len(labels):
        raise ValueError("observations and labels must align")
    if not observations:
        return 0.0
    h_o = _entropy(Counter(observations))
    h_l = _entropy(Counter(labels))
    h_joint = _entropy(Counter(zip(observations, labels)))
    return max(0.0, h_o + h_l - h_joint)


def normalized_leakage(
    observations: Sequence[Hashable], labels: Sequence[Hashable]
) -> float:
    """I(O; L) / H(L): the fraction of label entropy the side channel
    reveals; 1.0 means the observation determines the label set."""
    h_l = _entropy(Counter(labels))
    if h_l == 0.0:
        return 0.0
    return mutual_information(observations, labels) / h_l


def index_label_correlation(
    observed_by_client: Mapping[int, frozenset[int]],
    labels_by_client: Mapping[int, frozenset[int]],
    dim: int,
    n_labels: int,
) -> np.ndarray:
    """Per-label observation frequency matrix (n_labels x dim).

    Entry ``[l, i]`` is the fraction of clients holding label ``l``
    whose observation contained index ``i`` -- high-contrast rows are
    what the attack classifiers learn.
    """
    matrix = np.zeros((n_labels, dim))
    counts = np.zeros(n_labels)
    for cid, observed in observed_by_client.items():
        for label in labels_by_client.get(cid, frozenset()):
            counts[label] += 1
            for idx in observed:
                if 0 <= idx < dim:
                    matrix[label, idx] += 1
    nonzero = counts > 0
    matrix[nonzero] /= counts[nonzero, None]
    return matrix


def label_separability(matrix: np.ndarray) -> float:
    """Mean pairwise L1 distance between label frequency profiles.

    0 means all labels induce identical observation statistics (no
    leakage signal); larger means the classifiers have more to work
    with.
    """
    n_labels = matrix.shape[0]
    if n_labels < 2:
        return 0.0
    total = 0.0
    pairs = 0
    for a in range(n_labels):
        for b in range(a + 1, n_labels):
            total += float(np.abs(matrix[a] - matrix[b]).mean())
            pairs += 1
    return total / pairs


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate statistics of one recorded trace."""

    total_accesses: int
    reads: int
    writes: int
    regions: dict[str, int]
    distinct_offsets: dict[str, int]


def trace_summary(trace: Trace) -> TraceSummary:
    """Per-region access statistics of a trace (columnar, one pass)."""
    rids, offs, ops = trace.columns()
    names = trace.region_names
    reads = int((ops == OP_READ).sum())
    counts = np.bincount(rids, minlength=len(names))
    # Distinct offsets per region: unique (region, offset) pairs, then
    # count pairs per region.
    regions: dict[str, int] = {}
    distinct_offsets: dict[str, int] = {}
    if len(rids):
        pairs = np.unique(
            np.stack([rids.astype(np.int64), offs.astype(np.int64)], axis=1),
            axis=0,
        )
        distinct_counts = np.bincount(pairs[:, 0], minlength=len(names))
        # Report regions in first-appearance order, like a scan would.
        uniq, first = np.unique(rids, return_index=True)
        for rid in uniq[np.argsort(first, kind="stable")].tolist():
            regions[names[rid]] = int(counts[rid])
            distinct_offsets[names[rid]] = int(distinct_counts[rid])
    return TraceSummary(
        total_accesses=len(trace),
        reads=reads,
        writes=len(trace) - reads,
        regions=regions,
        distinct_offsets=distinct_offsets,
    )
