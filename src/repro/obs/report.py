"""Round-health report: render a flight recording as a human story.

``python -m repro report <telemetry.jsonl>`` turns the JSONL event
stream a run leaves behind (``--telemetry-out``, ``BENCH_TELEMETRY=1``
bench archives) into the questions an operator actually asks:

* **where did each round's time go?** -- a per-round phase waterfall
  reconstructed from the span trees (spans are causally linked through
  ``trace_id``/``parent_id``, including spans recorded inside process
  workers and shard leaves);
* **what failed, and why?** -- failure-reason and retry breakdowns from
  the runtime counters, plus the shard crash/failover/restart event
  log in time order;
* **how slow is the tail?** -- p50/p95/p99 tables for every recorded
  histogram (client latency, ECALL duration, seal/unseal, shard
  latency, backoff);
* **what did privacy cost?** -- the ε trajectory from the accountant's
  timestamped ``dp.epsilon`` gauge events.

``--strict`` makes structural damage fatal (non-zero exit): any
unparseable line or any span whose ``parent_id`` never appears in its
trace ("orphans" -- the signature of dropped worker telemetry).  CI
feeds the chaos-smoke archive through strict mode so a regression in
context propagation fails the build, not just the aesthetics.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

#: Width of the waterfall bar column.
_BAR_WIDTH = 30


@dataclass
class SpanNode:
    """One span event plus its reconstructed children."""

    event: dict
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.event.get("name", "?")

    @property
    def t_start(self) -> float:
        return float(self.event.get("t_start", 0.0))

    @property
    def wall_s(self) -> float:
        return float(self.event.get("wall_s", 0.0))


@dataclass
class FlightRecording:
    """A parsed telemetry stream, indexed for reporting."""

    events: list[dict]
    parse_errors: int = 0

    #: Derived indexes (filled by :func:`build_recording`).
    roots: dict[str, list[SpanNode]] = field(default_factory=dict)
    orphans: list[dict] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    hists: dict[str, dict] = field(default_factory=dict)
    point_events: list[dict] = field(default_factory=list)
    gauge_series: dict[str, list[tuple[float, float]]] = \
        field(default_factory=dict)

    @property
    def spans(self) -> list[dict]:
        return [e for e in self.events if e.get("type") == "span"]


def parse_stream(path: str | Path) -> FlightRecording:
    """Read a JSONL telemetry stream, counting unparseable lines."""
    events: list[dict] = []
    errors = 0
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                errors += 1
                continue
            if isinstance(event, dict):
                events.append(event)
            else:
                errors += 1
    return FlightRecording(events=events, parse_errors=errors)


def build_recording(rec: FlightRecording) -> FlightRecording:
    """Index the raw events: span trees, snapshots, series, events."""
    spans = rec.spans
    by_id = {e["span_id"]: SpanNode(e) for e in spans if "span_id" in e}
    for event in spans:
        sid = event.get("span_id")
        node = by_id.get(sid) if sid is not None else SpanNode(event)
        if node is None:
            node = SpanNode(event)
        parent_id = event.get("parent_id")
        if parent_id is None:
            rec.roots.setdefault(
                event.get("trace_id", "?"), []).append(node)
        elif parent_id in by_id:
            by_id[parent_id].children.append(node)
        else:
            rec.orphans.append(event)
    for nodes in rec.roots.values():
        nodes.sort(key=lambda n: n.t_start)
    for trace in by_id.values():
        trace.children.sort(key=lambda n: n.t_start)

    # Snapshots: last-per-name wins (a stream may carry several,
    # e.g. worker exits plus the coordinator's final flush); span
    # summaries and incremental worker events are skipped -- the
    # merged coordinator snapshot already includes them.
    for event in rec.events:
        kind = event.get("type")
        if kind == "counter":
            rec.counters[event["name"]] = float(event["value"])
        elif kind == "gauge":
            rec.gauges[event["name"]] = float(event["value"])
            if "t" in event:
                rec.gauge_series.setdefault(event["name"], []).append(
                    (float(event["t"]), float(event["value"])))
        elif kind == "hist":
            rec.hists[event["name"]] = event
        elif kind == "event":
            rec.point_events.append(event)
    rec.point_events.sort(key=lambda e: e.get("t", 0.0))
    return rec


def load_recording(path: str | Path) -> FlightRecording:
    """Parse + index one telemetry JSONL file."""
    return build_recording(parse_stream(path))


def _fmt_s(s: float) -> str:
    if s >= 1.0:
        return f"{s:.2f}s"
    if s >= 1e-3:
        return f"{s * 1e3:.2f}ms"
    return f"{s * 1e6:.0f}us"


def _tree_lines(node: SpanNode, lines: list[str], depth: int,
                max_children: int = 8) -> None:
    attrs = node.event.get("attrs") or {}
    label = ", ".join(f"{k}={v}" for k, v in attrs.items()
                      if k in ("index", "client", "shard", "leaf",
                               "attempt", "executor"))
    err = "  ERROR" if node.event.get("error") else ""
    lines.append(f"{'  ' * depth}{node.name:<22} "
                 f"+{node.t_start:8.3f}s  {_fmt_s(node.wall_s):>9}"
                 f"{'  [' + label + ']' if label else ''}{err}")
    shown = node.children[:max_children]
    for child in shown:
        _tree_lines(child, lines, depth + 1, max_children)
    hidden = len(node.children) - len(shown)
    if hidden > 0:
        lines.append(f"{'  ' * (depth + 1)}... {hidden} more "
                     f"child span(s) elided")


def _waterfall(round_node: SpanNode) -> list[str]:
    """Direct children of a round span as a time-aligned waterfall.

    Same-named phases (the N per-client ``train``/``client`` spans)
    collapse into one row: the bar spans first start to last end, the
    wall column sums the instances.
    """
    t0 = round_node.t_start
    total = max(round_node.wall_s, 1e-9)
    phases: dict[str, dict] = {}
    for child in round_node.children:
        entry = phases.setdefault(child.name, {
            "count": 0, "wall_s": 0.0,
            "first": child.t_start, "last": child.t_start + child.wall_s,
        })
        entry["count"] += 1
        entry["wall_s"] += child.wall_s
        entry["first"] = min(entry["first"], child.t_start)
        entry["last"] = max(entry["last"], child.t_start + child.wall_s)
    lines: list[str] = []
    for name, entry in sorted(phases.items(), key=lambda kv: kv[1]["first"]):
        offset = max(0.0, entry["first"] - t0)
        extent = max(0.0, entry["last"] - entry["first"])
        start = int(_BAR_WIDTH * min(offset / total, 1.0))
        width = max(1, int(_BAR_WIDTH * min(extent / total, 1.0)))
        width = min(width, _BAR_WIDTH - start)
        bar = " " * start + "#" * width
        share = 100.0 * entry["wall_s"] / total
        count = f" x{entry['count']}" if entry["count"] > 1 else ""
        lines.append(f"    {name + count:<20} |{bar:<{_BAR_WIDTH}}| "
                     f"{_fmt_s(entry['wall_s']):>9} {share:5.1f}%")
    return lines


def render_report(rec: FlightRecording, title: str = "round-health report",
                  max_rounds: int = 8) -> str:
    """Render the full report as text."""
    lines = [title, "=" * len(title)]

    all_roots = [n for nodes in rec.roots.values() for n in nodes]
    round_roots = [n for n in all_roots if n.name in ("round", "shard.round")]
    n_spans = len(rec.spans)
    lines.append(
        f"events: {len(rec.events)}  spans: {n_spans}  "
        f"traces: {len(rec.roots)}  orphans: {len(rec.orphans)}  "
        f"parse errors: {rec.parse_errors}")

    # -- per-round timelines ------------------------------------------
    if round_roots:
        lines.append("")
        lines.append("rounds:")
        shown = round_roots[:max_rounds]
        for node in shown:
            attrs = node.event.get("attrs") or {}
            idx = attrs.get("index", "?")
            lines.append(f"  round {idx}: {_fmt_s(node.wall_s)} wall, "
                         f"{len(node.children)} phase span(s)")
            lines.extend(_waterfall(node))
        if len(round_roots) > len(shown):
            lines.append(f"  ... {len(round_roots) - len(shown)} more "
                         f"round(s) elided")
        lines.append("")
        lines.append("span tree (first round):")
        _tree_lines(shown[0], lines, 1)

    # -- histogram percentiles ----------------------------------------
    if rec.hists:
        lines.append("")
        lines.append("latency histograms:")
        lines.append(f"  {'name':<26} {'n':>6} {'p50':>10} {'p95':>10} "
                     f"{'p99':>10} {'max':>10}")
        for name, h in sorted(rec.hists.items()):
            lines.append(
                f"  {name:<26} {h.get('count', 0):>6} "
                f"{_fmt_s(float(h.get('p50', 0.0))):>10} "
                f"{_fmt_s(float(h.get('p95', 0.0))):>10} "
                f"{_fmt_s(float(h.get('p99', 0.0))):>10} "
                f"{_fmt_s(float(h.get('max', 0.0))):>10}")

    # -- failure / retry breakdown ------------------------------------
    reasons = {k.split(".", 2)[2]: v for k, v in rec.counters.items()
               if k.startswith("runtime.failure_reason.")}
    rejects = {k.split(".", 2)[2]: v for k, v in rec.counters.items()
               if k.startswith("shard.reject_reason.")}
    retry_keys = ("runtime.retries", "runtime.timeouts",
                  "runtime.transient_failures", "runtime.failures",
                  "runtime.dropouts", "runtime.stragglers_dropped")
    retries = {k: rec.counters[k] for k in retry_keys if k in rec.counters}
    if reasons or rejects or retries:
        lines.append("")
        lines.append("failures and retries:")
        for name, value in sorted(retries.items()):
            lines.append(f"  {name:<40} {value:g}")
        for reason, value in sorted(reasons.items()):
            lines.append(f"  client failure reason: {reason:<17} {value:g}")
        for reason, value in sorted(rejects.items()):
            lines.append(f"  enclave reject reason: {reason:<17} {value:g}")

    # -- shard / failover event log -----------------------------------
    shard_events = [e for e in rec.point_events
                    if str(e.get("name", "")).startswith("shard.")]
    if shard_events:
        lines.append("")
        lines.append("shard event log:")
        for event in shard_events:
            attrs = event.get("attrs") or {}
            detail = " ".join(f"{k}={v}" for k, v in attrs.items())
            lines.append(f"  +{event.get('t', 0.0):8.3f}s  "
                         f"{event['name']:<22} {detail}")

    # -- privacy-budget trajectory ------------------------------------
    eps = rec.gauge_series.get("dp.epsilon", [])
    if eps:
        lines.append("")
        lines.append("privacy budget (epsilon trajectory):")
        for t, value in eps:
            lines.append(f"  +{t:8.3f}s  epsilon = {value:.4f}")
    elif "dp.epsilon" in rec.gauges:
        lines.append("")
        lines.append(f"privacy budget: final epsilon = "
                     f"{rec.gauges['dp.epsilon']:.4f}")

    # -- structural problems ------------------------------------------
    if rec.orphans or rec.parse_errors:
        lines.append("")
        lines.append("structural problems:")
        if rec.parse_errors:
            lines.append(f"  {rec.parse_errors} unparseable line(s)")
        for event in rec.orphans[:10]:
            lines.append(
                f"  orphan span {event.get('path', event.get('name'))} "
                f"(parent_id={event.get('parent_id')} not in stream)")
        if len(rec.orphans) > 10:
            lines.append(f"  ... {len(rec.orphans) - 10} more orphan(s)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro report`` entry point; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Render a telemetry JSONL stream as a round-health "
                    "report (timelines, percentiles, failure breakdowns, "
                    "shard event log).",
    )
    parser.add_argument("path", help="telemetry JSONL file to render")
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on unparseable lines or orphaned spans",
    )
    parser.add_argument(
        "--max-rounds", type=int, default=8, metavar="N",
        help="render at most N round timelines (default 8)",
    )
    args = parser.parse_args(argv)

    if not Path(args.path).exists():
        print(f"error: no such telemetry file: {args.path}",
              file=sys.stderr)
        return 2
    rec = load_recording(args.path)
    print(render_report(rec, title=f"round-health report: {args.path}",
                        max_rounds=args.max_rounds))
    if args.strict and (rec.parse_errors or rec.orphans):
        print(f"strict: {rec.parse_errors} parse error(s), "
              f"{len(rec.orphans)} orphaned span(s)", file=sys.stderr)
        return 1
    return 0
