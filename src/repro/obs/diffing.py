"""Telemetry diff: which *phase* regressed between two runs.

``check_regression.py`` gates CI on a bench's ``wall_seconds``; that
catches "the run got slower" but says nothing about *where*.  This
module compares two flight recordings (telemetry JSONL archives) at
span-path granularity -- per-path count / total-wall / mean deltas,
plus per-histogram percentile deltas -- so a regression report reads
"``round/aggregate`` got 2.1x slower, ``ecall.load_gradient`` p95 grew
40%" instead of a single opaque number.

The summaries are built from whichever evidence a stream carries:
``span_summary`` events (written by :func:`repro.obs.summary.dump_jsonl`
bench archives) when present, else aggregated from raw ``span``
events; histograms from the last ``hist`` snapshot per name.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

#: Histogram fields compared per name.
_HIST_FIELDS = ("p50", "p95", "p99", "max")


@dataclass
class PathDelta:
    """One span path's before/after comparison."""

    path: str
    base_count: int
    cur_count: int
    base_wall_s: float
    cur_wall_s: float

    @property
    def wall_ratio(self) -> float:
        if self.base_wall_s <= 0.0:
            return float("inf") if self.cur_wall_s > 0.0 else 1.0
        return self.cur_wall_s / self.base_wall_s


@dataclass
class HistDelta:
    """One histogram field's before/after comparison."""

    name: str
    field: str
    base: float
    cur: float

    @property
    def ratio(self) -> float:
        if self.base <= 0.0:
            return float("inf") if self.cur > 0.0 else 1.0
        return self.cur / self.base


def summarize_events(events: list[dict]) -> tuple[dict, dict]:
    """Per-path ``{count, wall_s}`` and per-name hist snapshots.

    Prefers ``span_summary`` events (exact registry totals); falls back
    to summing raw ``span`` events when a stream has none.
    """
    paths: dict[str, dict] = {}
    hists: dict[str, dict] = {}
    have_summary = any(e.get("type") == "span_summary" for e in events)
    for event in events:
        kind = event.get("type")
        if kind == "span_summary":
            paths[event["path"]] = {
                "count": int(event.get("count", 0)),
                "wall_s": float(event.get("wall_s", 0.0)),
            }
        elif kind == "span" and not have_summary:
            entry = paths.setdefault(event.get("path", event.get("name")),
                                     {"count": 0, "wall_s": 0.0})
            entry["count"] += 1
            entry["wall_s"] += float(event.get("wall_s", 0.0))
        elif kind == "hist":
            hists[event["name"]] = event
    return paths, hists


def load_summary(path: str | Path) -> tuple[dict, dict]:
    """Parse one telemetry JSONL archive into comparison summaries."""
    events: list[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:  # tolerate a torn final line
                continue
            if isinstance(event, dict):
                events.append(event)
    return summarize_events(events)


def diff_runs(
    base: str | Path,
    cur: str | Path,
    tolerance: float = 1.5,
    grace_s: float = 0.05,
) -> tuple[list[PathDelta], list[HistDelta]]:
    """Compare two archives; returns (path deltas, histogram deltas).

    A path delta is *regressed* when the current total wall exceeds
    ``tolerance``x the base and the absolute growth exceeds
    ``grace_s`` (micro-spans jitter wildly in ratio terms).
    """
    base_paths, base_hists = load_summary(base)
    cur_paths, cur_hists = load_summary(cur)

    path_deltas = [
        PathDelta(
            path=path,
            base_count=base_paths.get(path, {}).get("count", 0),
            cur_count=cur_paths.get(path, {}).get("count", 0),
            base_wall_s=base_paths.get(path, {}).get("wall_s", 0.0),
            cur_wall_s=cur_paths.get(path, {}).get("wall_s", 0.0),
        )
        for path in sorted(set(base_paths) | set(cur_paths))
    ]
    hist_deltas = [
        HistDelta(name=name, field=f,
                  base=float(base_hists[name].get(f, 0.0)),
                  cur=float(cur_hists[name].get(f, 0.0)))
        for name in sorted(set(base_hists) & set(cur_hists))
        for f in _HIST_FIELDS
    ]
    return path_deltas, hist_deltas


def regressed_paths(
    deltas: list[PathDelta], tolerance: float = 1.5, grace_s: float = 0.05
) -> list[PathDelta]:
    """The path deltas that exceed the ratio + absolute-growth gates."""
    return [
        d for d in deltas
        if d.base_wall_s > 0.0
        and d.cur_wall_s > tolerance * d.base_wall_s
        and d.cur_wall_s - d.base_wall_s > grace_s
    ]


def regressed_hists(
    deltas: list[HistDelta], tolerance: float = 1.5, grace_s: float = 0.05
) -> list[HistDelta]:
    """The histogram deltas that exceed the same gates."""
    return [
        d for d in deltas
        if d.base > 0.0 and d.cur > tolerance * d.base
        and d.cur - d.base > grace_s
    ]


def render_diff(
    path_deltas: list[PathDelta],
    hist_deltas: list[HistDelta],
    tolerance: float = 1.5,
    grace_s: float = 0.05,
) -> str:
    """Render the comparison, flagging regressed rows with ``!``."""
    lines = ["telemetry diff (base -> current)"]
    bad_paths = {id(d) for d in regressed_paths(path_deltas, tolerance,
                                                grace_s)}
    bad_hists = {id(d) for d in regressed_hists(hist_deltas, tolerance,
                                                grace_s)}
    if path_deltas:
        lines.append(f"  {'span path':<34} {'count':>11} "
                     f"{'wall_s':>19} {'ratio':>7}")
        for d in sorted(path_deltas, key=lambda d: -d.cur_wall_s):
            flag = "!" if id(d) in bad_paths else " "
            ratio = (f"{d.wall_ratio:.2f}x"
                     if d.wall_ratio != float("inf") else "new")
            lines.append(
                f"{flag} {d.path:<34} {d.base_count:>5}->{d.cur_count:<5} "
                f"{d.base_wall_s:>8.3f}->{d.cur_wall_s:<8.3f} {ratio:>7}")
    if hist_deltas:
        lines.append(f"  {'histogram':<34} {'field':>5} "
                     f"{'base':>10} {'current':>10} {'ratio':>7}")
        for d in hist_deltas:
            flag = "!" if id(d) in bad_hists else " "
            ratio = f"{d.ratio:.2f}x" if d.ratio != float("inf") else "new"
            lines.append(f"{flag} {d.name:<34} {d.field:>5} "
                         f"{d.base:>10.6f} {d.cur:>10.6f} {ratio:>7}")
    if len(lines) == 1:
        lines.append("  (nothing to compare)")
    return "\n".join(lines)
