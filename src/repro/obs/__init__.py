"""Observability for the OLIVE stack: spans, counters, gauges, sinks.

Dependency-free telemetry with a no-op fast path (disabled by
default).  Typical use::

    from repro import obs

    with obs.session(sinks=[obs.JsonlSink("round_telemetry.jsonl")]):
        system.run(rounds=2, traced=True)
    print(obs.render_summary())

Instrumented modules call ``obs.span(...)`` / ``obs.add(...)`` /
``obs.gauge(...)`` / ``obs.observe(...)`` unconditionally; with
telemetry disabled these are single-attribute-check no-ops, so the hot
paths stay unmeasurably close to uninstrumented speed (see the
overhead guard in ``benchmarks/bench_trace_engine.py``).

Since the flight-recorder PR the layer is also a distributed tracer:
spans carry ``trace_id``/``span_id``/``parent_id``, contexts propagate
explicitly across executor and shard boundaries
(:func:`current_context` / ``span(parent=...)``), forked workers
record to JSONL shards merged back with :func:`absorb_events`, and the
recording renders as a round-health report (:mod:`repro.obs.report`,
``python -m repro report``) or diffs against another run
(:mod:`repro.obs.diffing`).
"""

from .sinks import JsonlSink, MemorySink, NullSink, read_jsonl
from .summary import dump_jsonl, render_summary, summary_tree
from .telemetry import (
    NOOP_SPAN,
    Histogram,
    Span,
    SpanStats,
    Telemetry,
    TraceContext,
    absorb_events,
    add,
    adopt_worker_session,
    configure,
    current_context,
    disable,
    enabled,
    event,
    gauge,
    get_telemetry,
    observe,
    reset,
    session,
    span,
)

__all__ = [
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "NOOP_SPAN",
    "NullSink",
    "Span",
    "SpanStats",
    "Telemetry",
    "TraceContext",
    "absorb_events",
    "add",
    "adopt_worker_session",
    "configure",
    "current_context",
    "disable",
    "dump_jsonl",
    "enabled",
    "event",
    "gauge",
    "get_telemetry",
    "observe",
    "read_jsonl",
    "render_summary",
    "reset",
    "session",
    "span",
    "summary_tree",
]
