"""Observability for the OLIVE stack: spans, counters, gauges, sinks.

Dependency-free telemetry with a no-op fast path (disabled by
default).  Typical use::

    from repro import obs

    with obs.session(sinks=[obs.JsonlSink("round_telemetry.jsonl")]):
        system.run(rounds=2, traced=True)
    print(obs.render_summary())

Instrumented modules call ``obs.span(...)`` / ``obs.add(...)`` /
``obs.gauge(...)`` unconditionally; with telemetry disabled these are
single-attribute-check no-ops, so the hot paths stay unmeasurably
close to uninstrumented speed (see the overhead guard in
``benchmarks/bench_trace_engine.py``).
"""

from .sinks import JsonlSink, MemorySink, NullSink, read_jsonl
from .summary import dump_jsonl, render_summary, summary_tree
from .telemetry import (
    NOOP_SPAN,
    Span,
    SpanStats,
    Telemetry,
    add,
    configure,
    disable,
    enabled,
    gauge,
    get_telemetry,
    reset,
    session,
    span,
)

__all__ = [
    "JsonlSink",
    "MemorySink",
    "NOOP_SPAN",
    "NullSink",
    "Span",
    "SpanStats",
    "Telemetry",
    "add",
    "configure",
    "disable",
    "dump_jsonl",
    "enabled",
    "gauge",
    "get_telemetry",
    "read_jsonl",
    "render_summary",
    "reset",
    "session",
    "span",
    "summary_tree",
]
