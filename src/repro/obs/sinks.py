"""Telemetry sinks: where finished-span and snapshot events go.

The sink contract is three methods -- ``emit(event: dict)``,
``flush()``, ``close()`` -- called under the telemetry lock, so sinks
need no synchronization of their own but must keep ``emit`` cheap.

* :class:`MemorySink` -- in-process event list (tests, summary dumps).
* :class:`JsonlSink` -- one JSON object per line, the machine-readable
  stream the benchmarks archive next to their results.
* :class:`NullSink` -- swallows everything (placeholder wiring).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO


class NullSink:
    """Discards every event."""

    def emit(self, event: dict) -> None:
        """Drop the event."""

    def flush(self) -> None:
        """Nothing to flush."""

    def close(self) -> None:
        """Nothing to close."""


class MemorySink:
    """Accumulates events in a list (the test/registry sink)."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        """Append one event."""
        self.events.append(event)

    def flush(self) -> None:
        """Nothing buffered beyond the list itself."""

    def close(self) -> None:
        """Nothing to close."""

    def spans(self) -> list[dict]:
        """Only the span events, in finish order."""
        return [e for e in self.events if e.get("type") == "span"]

    def last_values(self, kind: str) -> dict[str, float]:
        """Latest counter/gauge value per name (``kind`` selects which)."""
        out: dict[str, float] = {}
        for e in self.events:
            if e.get("type") == kind:
                out[e["name"]] = e["value"]
        return out


class JsonlSink:
    """Streams events as JSON Lines to ``path`` (created lazily).

    ``append=False`` (default) truncates any previous stream so one
    benchmark run leaves exactly one coherent event file.
    """

    def __init__(self, path: str | Path, append: bool = False) -> None:
        self.path = Path(path)
        self._mode = "a" if append else "w"
        self._fh: IO[str] | None = None

    def _handle(self) -> IO[str]:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, self._mode)
        return self._fh

    def emit(self, event: dict) -> None:
        """Write one event as a JSON line."""
        self._handle().write(json.dumps(event, default=str) + "\n")

    def flush(self) -> None:
        """Flush the file buffer (touches the file even if empty)."""
        self._handle().flush()

    def close(self) -> None:
        """Flush and close the stream."""
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None


def read_jsonl(path: str | Path) -> list[dict]:
    """Parse a JSONL event stream back into event dicts."""
    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
