"""Telemetry sinks: where finished-span and snapshot events go.

The sink contract is three methods -- ``emit(event: dict)``,
``flush()``, ``close()`` -- called under the telemetry lock, so sinks
need no synchronization of their own but must keep ``emit`` cheap.

* :class:`MemorySink` -- in-process event list (tests, summary dumps).
* :class:`JsonlSink` -- one JSON object per line, the machine-readable
  stream the benchmarks archive next to their results.  Crash-safe:
  registers an atexit flush/close guard on first open, refuses to
  write from a process that did not open it (a forked child), and
  supports :meth:`disinherit` so a fork can drop the parent's buffered
  handle without duplicating its contents.
* :class:`NullSink` -- swallows everything (placeholder wiring).

:func:`read_jsonl` parses a stream back, tolerating a truncated final
line by default -- the signature a killed recorder leaves behind.
"""

from __future__ import annotations

import atexit
import json
import os
from pathlib import Path
from typing import IO


class NullSink:
    """Discards every event."""

    def emit(self, event: dict) -> None:
        """Drop the event."""

    def flush(self) -> None:
        """Nothing to flush."""

    def close(self) -> None:
        """Nothing to close."""


class MemorySink:
    """Accumulates events in a list (the test/registry sink)."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        """Append one event."""
        self.events.append(event)

    def flush(self) -> None:
        """Nothing buffered beyond the list itself."""

    def close(self) -> None:
        """Nothing to close."""

    def spans(self) -> list[dict]:
        """Only the span events, in finish order."""
        return [e for e in self.events if e.get("type") == "span"]

    def last_values(self, kind: str) -> dict[str, float]:
        """Latest counter/gauge value per name (``kind`` selects which)."""
        out: dict[str, float] = {}
        for e in self.events:
            if e.get("type") == kind:
                out[e["name"]] = e["value"]
        return out


class JsonlSink:
    """Streams events as JSON Lines to ``path`` (created lazily).

    ``append=False`` (default) truncates any previous stream on first
    open so one benchmark run leaves exactly one coherent event file;
    after the first open the mode switches to append, so a
    close-then-reopen (atexit after an explicit close race) never
    truncates what was already written.

    A killed run must still leave a parseable stream, so the sink
    registers an atexit flush/close guard on first open (unregistered
    again on explicit close), and every write is guarded by the owning
    pid -- a forked child holding an inherited copy cannot interleave
    bytes into the parent's file.
    """

    def __init__(self, path: str | Path, append: bool = False) -> None:
        self.path = Path(path)
        self._mode = "a" if append else "w"
        self._fh: IO[str] | None = None
        self._owner_pid: int | None = None

    def _handle(self) -> IO[str] | None:
        if self._fh is None:
            if self._owner_pid is not None and self._owner_pid != os.getpid():
                return None  # inherited across fork: never reopen here
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, self._mode)
            self._mode = "a"
            self._owner_pid = os.getpid()
            atexit.register(self.close)
        elif self._owner_pid != os.getpid():
            return None
        return self._fh

    def emit(self, event: dict) -> None:
        """Write one event as a JSON line."""
        fh = self._handle()
        if fh is not None:
            fh.write(json.dumps(event, default=str) + "\n")

    def flush(self) -> None:
        """Flush the file buffer (touches the file even if empty)."""
        fh = self._handle()
        if fh is not None:
            fh.flush()

    def close(self) -> None:
        """Flush and close the stream."""
        if self._fh is not None and self._owner_pid == os.getpid():
            try:
                atexit.unregister(self.close)
            except Exception:
                pass
            self._fh.flush()
            self._fh.close()
            self._fh = None

    def disinherit(self) -> None:
        """Drop an inherited handle in a forked child without writing.

        Closing normally would flush the parent's buffered lines a
        second time from the child (``detach`` flushes too), so the
        file descriptor is repointed at ``os.devnull`` first: the
        close still flushes, but the buffered bytes land in the void
        and the real stream is untouched.
        """
        fh, self._fh = self._fh, None
        if fh is None:
            return
        try:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, fh.fileno())
            os.close(devnull)
            fh.close()
        except Exception:
            pass


def read_jsonl(path: str | Path, strict: bool = False) -> list[dict]:
    """Parse a JSONL event stream back into event dicts.

    A truncated *final* line (the mark a killed recorder leaves) is
    silently dropped unless ``strict``; corruption anywhere else
    always raises.
    """
    events = []
    with open(path) as fh:
        lines = [ln.strip() for ln in fh]
    last = len(lines) - 1
    for i, line in enumerate(lines):
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if strict or i != last:
                raise
    return events
