"""Human-readable and machine-readable views of a telemetry registry.

:func:`render_summary` prints the aggregated span tree (count, wall,
CPU, optional memory high-water per path) followed by counters and
gauges -- the "where did the time go" view the CLI and benchmarks show
on demand.  :func:`dump_jsonl` archives the same registry (plus any
events captured by attached :class:`~repro.obs.sinks.MemorySink`
instances) as one JSONL file, the format the CI benchmark artifacts
use.
"""

from __future__ import annotations

import json
from pathlib import Path

from .sinks import MemorySink
from .telemetry import Telemetry, get_telemetry


def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:.2f}s"
    if s >= 1e-3:
        return f"{s * 1e3:.2f}ms"
    return f"{s * 1e6:.0f}us"


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024 or unit == "GB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}GB"


def summary_tree(telemetry: Telemetry | None = None) -> dict:
    """The span registry as a nested dict (children keyed by name)."""
    tel = telemetry or get_telemetry()
    root: dict = {"children": {}}
    for path, stats in tel.span_stats.items():
        node = root
        for part in path.split("/"):
            node = node["children"].setdefault(part, {"children": {}})
        node["stats"] = {
            "count": stats.count,
            "wall_s": stats.wall_s,
            "cpu_s": stats.cpu_s,
            "errors": stats.errors,
            "mem_peak": stats.mem_peak,
        }
    return root


def render_summary(telemetry: Telemetry | None = None,
                   title: str = "telemetry summary") -> str:
    """Render the aggregated spans/counters/gauges as an indented tree."""
    tel = telemetry or get_telemetry()
    lines = [title]

    def walk(node: dict, name: str, indent: int) -> None:
        stats = node.get("stats")
        if stats is not None:
            mem = (f"  mem {_fmt_bytes(stats['mem_peak'])}"
                   if stats["mem_peak"] else "")
            err = f"  errors {stats['errors']}" if stats["errors"] else ""
            lines.append(
                f"{'  ' * indent}{name:<24} x{stats['count']:<5} "
                f"wall {_fmt_seconds(stats['wall_s']):>9}  "
                f"cpu {_fmt_seconds(stats['cpu_s']):>9}{mem}{err}"
            )
        children = sorted(
            node["children"].items(),
            key=lambda kv: -(kv[1].get("stats") or {}).get("wall_s", 0.0),
        )
        for child_name, child in children:
            walk(child, child_name, indent + 1)

    tree = summary_tree(tel)
    if tree["children"]:
        lines.append("spans:")
        for name, child in tree["children"].items():
            walk(child, name, 1)
    if tel.counters:
        lines.append("counters:")
        for name, value in sorted(tel.counters.items()):
            lines.append(f"  {name:<40} {value:g}")
    if tel.gauges:
        lines.append("gauges:")
        for name, value in sorted(tel.gauges.items()):
            lines.append(f"  {name:<40} {value:g}")
    if tel.histograms:
        lines.append("histograms:")
        for name, hist in sorted(tel.histograms.items()):
            lines.append(
                f"  {name:<28} n={hist.count:<6} "
                f"p50 {_fmt_seconds(hist.percentile(0.50)):>9}  "
                f"p95 {_fmt_seconds(hist.percentile(0.95)):>9}  "
                f"p99 {_fmt_seconds(hist.percentile(0.99)):>9}  "
                f"max {_fmt_seconds(hist.vmax if hist.count else 0.0):>9}"
            )
    if len(lines) == 1:
        lines.append("  (no telemetry recorded)")
    return "\n".join(lines)


def dump_jsonl(path: str | Path,
               telemetry: Telemetry | None = None) -> str | None:
    """Archive the registry (and captured events) as one JSONL file.

    Returns the written path, or ``None`` when telemetry is disabled
    (nothing to archive).  Event order: raw events from any attached
    :class:`MemorySink` (already in finish order), then one
    ``span_summary`` event per path, then the counter/gauge snapshot.
    """
    tel = telemetry or get_telemetry()
    if not tel.enabled:
        return None
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    events: list[dict] = []
    for sink in tel.sinks:
        if isinstance(sink, MemorySink):
            events.extend(sink.events)
    for span_path, stats in tel.span_stats.items():
        events.append({
            "type": "span_summary", "path": span_path,
            "count": stats.count, "wall_s": stats.wall_s,
            "cpu_s": stats.cpu_s, "errors": stats.errors,
            "mem_peak": stats.mem_peak,
        })
    events.extend(tel.snapshot_events())
    with open(path, "w") as fh:
        for event in events:
            fh.write(json.dumps(event, default=str) + "\n")
    return str(path)
