"""Structured telemetry: traced spans, counters, gauges, histograms.

The simulator's performance story (Figures 10-12, Table 1) depends on
knowing *where* a round spends its time -- client training vs ECALL
decryption vs the oblivious kernel vs cost-model replay.  This module
is the single instrumentation substrate for the whole stack, and since
the flight-recorder PR it is also a *distributed tracer*: every span
carries ``trace_id``/``span_id``/``parent_id``, contexts propagate
explicitly across thread/process executor boundaries, and the merged
event stream reconstructs one causally-linked tree per round even when
parts of it were recorded inside forked workers.

* :func:`span` -- a nested context manager recording wall time, CPU
  time, and (opt-in) the tracemalloc memory high-water mark of one
  phase.  Spans know their parents: ``span("round")`` containing
  ``span("aggregate")`` yields the path ``"round/aggregate"``.  An
  explicit ``parent=`` :class:`TraceContext` (captured with
  :func:`current_context`, shipped to a worker inside its job) re-roots
  the span under a remote parent -- the worker's span then carries the
  coordinator's ``trace_id`` and full path, so merged streams need no
  path rewriting.  ``hist=`` additionally records the span's wall time
  into the named histogram.
* :func:`add` / :func:`gauge` -- cumulative counters (accesses
  recorded, bytes sealed, clients dropped) and last-value gauges.
  Gauge sets are also emitted to sinks as timestamped events so
  time-series (the privacy-budget trajectory) survive into the JSONL.
* :func:`observe` -- record one value into a fixed-bucket log-spaced
  :class:`Histogram` with p50/p95/p99 export; the latency-distribution
  primitive (per-client train latency, ECALL duration, shard latency).
* :func:`event` -- a timestamped point event (a leaf crash, a
  failover) linked to the currently open span.
* pluggable sinks (:mod:`repro.obs.sinks`) receiving one event dict per
  finished span plus counter/gauge/histogram snapshots on flush.
  Sinks are flushed whenever a span tree completes (the local stack
  empties), so a crashed run still leaves a parseable stream.

Telemetry is **disabled by default** and the disabled path is a single
attribute check: :func:`span` returns a shared no-op context manager
and :func:`add`/:func:`gauge`/:func:`observe` return immediately, so
instrumented hot paths cost nothing measurable (guarded by
``benchmarks/bench_trace_engine.py::test_telemetry_overhead_guard``).
Consequently instrumentation sits at *call* granularity (one span per
kernel invocation, per ECALL, per phase) -- never per element.

**Fork safety**: a forked child inherits the parent's enabled flag and
sink objects; left alone it would interleave garbage into the parent's
stream.  An ``os.register_at_fork`` hook therefore disables telemetry
in every forked child and discards inherited sink buffers unwritten --
worker ``obs.add``/``obs.span`` calls degrade to true no-ops until the
child explicitly opts in via :func:`adopt_worker_session` (the process
executor's flight-recording path, which gives each worker its own
JSONL shard the coordinator later merges with :func:`absorb_events`).

Event schema (what sinks receive):

``{"type": "span", "seq": int, "name": str, "path": str, "depth": int,
"trace_id": str, "span_id": str, "parent_id": str | None,
"t_start": float, "wall_s": float, "cpu_s": float, "attrs": dict}``
plus optional ``"mem_peak"`` (bytes, when memory tracking is on) and
``"error": true`` when the span body raised.  Point events emit
``{"type": "event", "name": str, "t": float, "trace_id": str | None,
"parent_id": str | None, "attrs": dict}``; gauge sets emit
``{"type": "gauge", "name": str, "value": float, "t": float}``.
Snapshots emit ``{"type": "counter"|"gauge", "name": str, "value":
float}`` and ``{"type": "hist", "name": str, "count": int, "sum":
float, "min": float, "max": float, "p50": float, "p95": float,
"p99": float, "buckets": {str(bucket_index): count}}``; consumers of a
stream with several snapshots take the last value per name (counters
are cumulative).
"""

from __future__ import annotations

import itertools
import math
import os
import threading
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Sequence


class _NoopSpan:
    """Shared do-nothing span returned when telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        """Ignore attributes on the disabled path."""
        return self


#: The singleton no-op span (allocation-free disabled fast path).
NOOP_SPAN = _NoopSpan()


@dataclass(frozen=True)
class TraceContext:
    """A portable reference to an open span: ship it to a worker.

    Carries everything a remote child span needs to link itself into
    the originating tree -- the trace id, the parent's span id, and the
    parent's full path (so the child's path continues the tree without
    any merge-time rewriting).  Plain picklable dataclass: it rides
    inside :class:`repro.runtime.jobs.ClientJob` across fork/pickle
    boundaries.
    """

    trace_id: str
    span_id: str
    path: str = ""


@dataclass
class SpanStats:
    """Aggregated statistics for every span sharing one path."""

    count: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    errors: int = 0
    mem_peak: int = 0  # max over instances, bytes


#: Histogram bucket geometry: log-spaced upper bounds covering
#: 1e-7 .. 1e+5 (12 decades) at 8 buckets per decade, plus one
#: underflow bucket below the first bound and one overflow bucket
#: above the last -- wide enough for seconds-scale latencies and
#: count-scale metrics alike at ~33% relative resolution.
_HIST_MIN = 1e-7
_HIST_PER_DECADE = 8
_HIST_DECADES = 12
HIST_BOUNDS: tuple[float, ...] = tuple(
    _HIST_MIN * 10.0 ** (i / _HIST_PER_DECADE)
    for i in range(_HIST_PER_DECADE * _HIST_DECADES + 1)
)


class Histogram:
    """Dependency-free fixed-bucket histogram with percentile export.

    Buckets are log-spaced (:data:`HIST_BOUNDS`); values at or below
    the smallest bound (including zero and negatives) land in the
    underflow bucket, values above the largest in the overflow bucket.
    Percentiles interpolate geometrically inside a bucket and are
    clamped to the observed ``[min, max]``, so small-count histograms
    stay honest.
    """

    __slots__ = ("counts", "count", "total", "vmin", "vmax")

    def __init__(self) -> None:
        self.counts = [0] * (len(HIST_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[self._bucket_index(value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @staticmethod
    def _bucket_index(value: float) -> int:
        if not value > _HIST_MIN:  # zero, negative, NaN -> underflow
            return 0
        idx = int(math.log10(value / _HIST_MIN) * _HIST_PER_DECADE) + 1
        if idx < 1:
            return 1
        return min(idx, len(HIST_BOUNDS))

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in [0, 1]) from the bucket counts."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            seen += c
            if seen >= target:
                lo = HIST_BOUNDS[i - 1] if 0 < i <= len(HIST_BOUNDS) \
                    else _HIST_MIN
                hi = HIST_BOUNDS[i] if i < len(HIST_BOUNDS) else self.vmax
                if i == 0 or hi <= lo:
                    est = self.vmin if i == 0 else hi
                else:
                    frac = 1.0 - (seen - target) / c
                    est = lo * (hi / lo) ** frac
                return min(max(est, self.vmin), self.vmax)
        return self.vmax

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram (a worker shard's) into this one."""
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        self.vmin = min(self.vmin, other.vmin)
        self.vmax = max(self.vmax, other.vmax)

    def snapshot(self, name: str) -> dict:
        """The ``hist`` snapshot event for this histogram."""
        return {
            "type": "hist", "name": name, "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "buckets": {str(i): c for i, c in enumerate(self.counts) if c},
        }

    @classmethod
    def from_snapshot(cls, event: dict) -> "Histogram":
        """Rebuild a histogram from its ``hist`` snapshot event."""
        h = cls()
        for key, c in event.get("buckets", {}).items():
            h.counts[int(key)] = int(c)
        h.count = int(event.get("count", sum(h.counts)))
        h.total = float(event.get("sum", 0.0))
        if h.count:
            h.vmin = float(event.get("min", 0.0))
            h.vmax = float(event.get("max", 0.0))
        return h


class Span:
    """A live span; use via ``with telemetry.span(name): ...``.

    ``set(**attrs)`` attaches attributes after entry (e.g. a result
    size known only at the end of the phase).
    """

    __slots__ = ("_tel", "name", "attrs", "path", "depth", "_t_start",
                 "_t0_wall", "_t0_cpu", "_mem0", "trace_id", "span_id",
                 "parent_id", "_parent_ctx", "_hist")

    def __init__(self, tel: "Telemetry", name: str, attrs: dict,
                 parent: TraceContext | None = None,
                 hist: str | None = None) -> None:
        self._tel = tel
        self.name = name
        self.attrs = attrs
        self.path = name
        self.depth = 0
        self._t_start = 0.0
        self._t0_wall = 0.0
        self._t0_cpu = 0.0
        self._mem0 = -1
        self.trace_id = ""
        self.span_id = ""
        self.parent_id: str | None = None
        self._parent_ctx = parent
        self._hist = hist

    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tel = self._tel
        stack = tel._stack()
        ctx = self._parent_ctx
        if ctx is not None:
            # Explicit (possibly remote) parent wins over the local
            # stack: every executor's client spans then share one path
            # family regardless of where the work physically ran.
            self.trace_id = ctx.trace_id
            self.parent_id = ctx.span_id
            self.path = (ctx.path + "/" + self.name) if ctx.path \
                else self.name
            self.depth = self.path.count("/")
        elif stack:
            parent = stack[-1]
            self.trace_id = parent.trace_id
            self.parent_id = parent.span_id
            self.path = parent.path + "/" + self.name
            self.depth = parent.depth + 1
        else:
            self.trace_id = tel._next_id("t")
        self.span_id = tel._next_id("s")
        stack.append(self)
        if tel._track_memory and tracemalloc.is_tracing():
            self._mem0 = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()
        self._t_start = time.perf_counter() - tel._epoch
        self._t0_wall = time.perf_counter()
        self._t0_cpu = time.process_time()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        wall = time.perf_counter() - self._t0_wall
        cpu = time.process_time() - self._t0_cpu
        mem_peak = -1
        if self._mem0 >= 0 and tracemalloc.is_tracing():
            # Peak since the most recent reset_peak (approximate under
            # nesting: a child span's reset narrows the parent window).
            mem_peak = max(0, tracemalloc.get_traced_memory()[1] - self._mem0)
        stack = self._tel._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # unbalanced exit; recover
            stack.remove(self)
        self._tel._finish_span(self, wall, cpu, mem_peak,
                               error=exc_type is not None,
                               tree_complete=not stack)
        return False


class Telemetry:
    """One telemetry domain: registry state plus attached sinks.

    A module-level instance (:func:`get_telemetry`) serves the whole
    process; tests may build private instances.  All mutation is
    guarded by one lock; the span stack is thread-local so parallel
    client runners each get a coherent nesting.
    """

    def __init__(self, enabled: bool = False, sinks: Sequence[Any] = (),
                 track_memory: bool = False) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._enabled = False
        self._track_memory = False
        # Worker mode: stream counter/histogram mutations to the sinks
        # as they happen.  Forked pool workers exit through os._exit
        # (no atexit), so a final registry snapshot would never be
        # written; incremental events make the shard complete at every
        # tree-completion flush instead.
        self._stream_stats = False
        self.sinks: list[Any] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.span_stats: dict[str, SpanStats] = {}
        self._seq = 0
        self._epoch = time.perf_counter()
        self._ids = itertools.count(1)
        self._pid_tag = "%x" % os.getpid()
        self.configure(enabled=enabled, sinks=sinks,
                       track_memory=track_memory)

    # -- state -----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True when spans/counters are being recorded."""
        return self._enabled

    def configure(self, enabled: bool = True,
                  sinks: Sequence[Any] | None = None,
                  track_memory: bool = False) -> "Telemetry":
        """(Re)configure; keeps accumulated state (see :meth:`reset`)."""
        self._enabled = enabled
        if sinks is not None:
            self.sinks = list(sinks)
        self._track_memory = track_memory
        self._stream_stats = False
        self._pid_tag = "%x" % os.getpid()
        if track_memory and enabled and not tracemalloc.is_tracing():
            tracemalloc.start()
        return self

    def reset(self) -> None:
        """Drop every counter, gauge, span aggregate, and the sequence."""
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()
            self.span_stats.clear()
            self._seq = 0
            self._epoch = time.perf_counter()
            self._ids = itertools.count(1)
            self._pid_tag = "%x" % os.getpid()

    def _next_id(self, prefix: str) -> str:
        # itertools.count.__next__ is atomic under the GIL; the pid tag
        # keeps ids unique across forked workers recording in parallel.
        return f"{prefix}{self._pid_tag}-{next(self._ids):x}"

    # -- recording -------------------------------------------------------
    def span(self, name: str, *, parent: TraceContext | None = None,
             hist: str | None = None, **attrs: Any) -> Span | _NoopSpan:
        """Open a span; no-op (and allocation-free) when disabled.

        ``parent`` re-roots the span under an explicit (possibly
        remote) :class:`TraceContext`; ``hist`` additionally records
        the span's wall seconds into the named histogram on exit.
        """
        if not self._enabled:
            return NOOP_SPAN
        return Span(self, name, attrs, parent=parent, hist=hist)

    def current_context(self) -> TraceContext | None:
        """The innermost open span on this thread, as a portable ref."""
        if not self._enabled:
            return None
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        top = stack[-1]
        return TraceContext(trace_id=top.trace_id, span_id=top.span_id,
                            path=top.path)

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment a cumulative counter."""
        if not self._enabled:
            return
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + value
            if self._stream_stats and self.sinks:
                event = {"type": "counter_add", "name": name,
                         "value": float(value)}
                for sink in self.sinks:
                    sink.emit(event)

    def gauge(self, name: str, value: float) -> None:
        """Set a last-value-wins gauge (emitted to sinks with a time)."""
        if not self._enabled:
            return
        with self._lock:
            self.gauges[name] = float(value)
            if self.sinks:
                event = {"type": "gauge", "name": name,
                         "value": float(value),
                         "t": round(time.perf_counter() - self._epoch, 9)}
                for sink in self.sinks:
                    sink.emit(event)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""
        if not self._enabled:
            return
        with self._lock:
            self._observe_locked(name, value)

    def _observe_locked(self, name: str, value: float) -> None:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        h.observe(value)
        if self._stream_stats and self.sinks:
            event = {"type": "observe", "name": name, "value": float(value)}
            for sink in self.sinks:
                sink.emit(event)

    def event(self, name: str, **attrs: Any) -> None:
        """Emit a timestamped point event linked to the open span."""
        if not self._enabled:
            return
        stack = getattr(self._local, "stack", None)
        trace_id = parent_id = None
        if stack:
            trace_id, parent_id = stack[-1].trace_id, stack[-1].span_id
        with self._lock:
            if not self.sinks:
                return
            event = {
                "type": "event", "name": name,
                "t": round(time.perf_counter() - self._epoch, 9),
                "trace_id": trace_id, "parent_id": parent_id,
                "attrs": attrs,
            }
            for sink in self.sinks:
                sink.emit(event)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _finish_span(self, span: Span, wall: float, cpu: float,
                     mem_peak: int, error: bool,
                     tree_complete: bool = False) -> None:
        with self._lock:
            seq = self._seq
            self._seq += 1
            stats = self.span_stats.get(span.path)
            if stats is None:
                stats = self.span_stats[span.path] = SpanStats()
            stats.count += 1
            stats.wall_s += wall
            stats.cpu_s += cpu
            if error:
                stats.errors += 1
            if mem_peak > stats.mem_peak:
                stats.mem_peak = mem_peak
            if span._hist is not None:
                self._observe_locked(span._hist, wall)
            if not self.sinks:
                return
            event: dict[str, Any] = {
                "type": "span", "seq": seq, "name": span.name,
                "path": span.path, "depth": span.depth,
                "trace_id": span.trace_id, "span_id": span.span_id,
                "parent_id": span.parent_id,
                "t_start": round(span._t_start, 9),
                "wall_s": round(wall, 9), "cpu_s": round(cpu, 9),
                "attrs": span.attrs,
            }
            if mem_peak >= 0:
                event["mem_peak"] = mem_peak
            if error:
                event["error"] = True
            for sink in self.sinks:
                sink.emit(event)
            if tree_complete:
                # Crash safety: a completed span tree is a consistent
                # prefix -- push it to disk so a killed run still
                # leaves a parseable recording.
                for sink in self.sinks:
                    sink.flush()

    # -- merge (flight-recorder shards) ----------------------------------
    def absorb_events(self, events: Sequence[dict]) -> int:
        """Merge a drained worker shard's events into this registry.

        Span events update ``span_stats`` (their paths are already
        full, thanks to explicit-context propagation), counters add,
        gauges last-write-win, histograms merge bucket-wise, and every
        absorbed event is re-emitted to the attached sinks so the
        coordinator's stream becomes the complete flight recording.
        Returns the number of events absorbed.
        """
        if not self._enabled or not events:
            return 0
        n = 0
        with self._lock:
            for event in events:
                kind = event.get("type")
                if kind == "span":
                    stats = self.span_stats.get(event["path"])
                    if stats is None:
                        stats = self.span_stats[event["path"]] = SpanStats()
                    stats.count += 1
                    stats.wall_s += event.get("wall_s", 0.0)
                    stats.cpu_s += event.get("cpu_s", 0.0)
                    if event.get("error"):
                        stats.errors += 1
                    if event.get("mem_peak", -1) > stats.mem_peak:
                        stats.mem_peak = event["mem_peak"]
                elif kind in ("counter", "counter_add"):
                    self.counters[event["name"]] = (
                        self.counters.get(event["name"], 0.0)
                        + float(event["value"]))
                elif kind == "observe":
                    h = self.histograms.get(event["name"])
                    if h is None:
                        h = self.histograms[event["name"]] = Histogram()
                    h.observe(float(event["value"]))
                elif kind == "gauge":
                    self.gauges[event["name"]] = float(event["value"])
                elif kind == "hist":
                    h = self.histograms.get(event["name"])
                    if h is None:
                        h = self.histograms[event["name"]] = Histogram()
                    h.merge(Histogram.from_snapshot(event))
                elif kind != "event":
                    continue
                n += 1
                for sink in self.sinks:
                    sink.emit(event)
            for sink in self.sinks:
                sink.flush()
        return n

    # -- output ----------------------------------------------------------
    def snapshot_events(self) -> list[dict]:
        """Current counters, gauges, and histograms as snapshot events."""
        with self._lock:
            return (
                [{"type": "counter", "name": n, "value": v}
                 for n, v in sorted(self.counters.items())]
                + [{"type": "gauge", "name": n, "value": v}
                   for n, v in sorted(self.gauges.items())]
                + [h.snapshot(n)
                   for n, h in sorted(self.histograms.items())]
            )

    def flush(self, snapshot: bool = True) -> None:
        """Emit a counter/gauge/histogram snapshot and flush sinks."""
        if snapshot:
            for event in self.snapshot_events():
                for sink in self.sinks:
                    sink.emit(event)
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        """Flush and close every sink."""
        self.flush()
        for sink in self.sinks:
            sink.close()


#: Process-global telemetry instance used by the instrumented modules.
_GLOBAL = Telemetry()


def _disable_in_forked_child() -> None:
    """Make a forked child's inherited telemetry a true no-op.

    The child shares the parent's sink objects (and, for file sinks,
    the parent's buffered handle) by memory copy; recording through
    them would interleave garbage into the parent's stream, and even a
    GC-time flush of the inherited buffer would duplicate lines.  So:
    disable, discard inherited sinks *without writing* (sinks expose
    ``disinherit`` for exactly this), and give the child fresh
    thread-local state and a fresh pid tag.  A worker that *should*
    record opts back in through :func:`adopt_worker_session`.
    """
    tel = _GLOBAL
    tel._enabled = False
    for sink in tel.sinks:
        disinherit = getattr(sink, "disinherit", None)
        if disinherit is not None:
            try:
                disinherit()
            except Exception:
                pass
    tel.sinks = []
    tel._local = threading.local()
    tel._pid_tag = "%x" % os.getpid()


if hasattr(os, "register_at_fork"):  # not on Windows spawn-only platforms
    os.register_at_fork(after_in_child=_disable_in_forked_child)


def get_telemetry() -> Telemetry:
    """The process-global :class:`Telemetry` instance."""
    return _GLOBAL


def configure(enabled: bool = True, sinks: Sequence[Any] | None = None,
              track_memory: bool = False) -> Telemetry:
    """Configure the global instance; returns it."""
    return _GLOBAL.configure(enabled=enabled, sinks=sinks,
                             track_memory=track_memory)


def disable() -> None:
    """Disable the global instance and detach its sinks."""
    _GLOBAL.configure(enabled=False, sinks=[])


def reset() -> None:
    """Clear the global instance's accumulated state."""
    _GLOBAL.reset()


def span(name: str, *, parent: TraceContext | None = None,
         hist: str | None = None, **attrs: Any) -> Span | _NoopSpan:
    """Open a span on the global instance (no-op when disabled)."""
    if not _GLOBAL._enabled:
        return NOOP_SPAN
    return Span(_GLOBAL, name, attrs, parent=parent, hist=hist)


def current_context() -> TraceContext | None:
    """Portable context of the open span (None when disabled/empty)."""
    if not _GLOBAL._enabled:
        return None
    return _GLOBAL.current_context()


def add(name: str, value: float = 1.0) -> None:
    """Increment a global counter (no-op when disabled)."""
    if not _GLOBAL._enabled:
        return
    _GLOBAL.add(name, value)


def gauge(name: str, value: float) -> None:
    """Set a global gauge (no-op when disabled)."""
    if not _GLOBAL._enabled:
        return
    _GLOBAL.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record into a global histogram (no-op when disabled)."""
    if not _GLOBAL._enabled:
        return
    _GLOBAL.observe(name, value)


def event(name: str, **attrs: Any) -> None:
    """Emit a global point event (no-op when disabled)."""
    if not _GLOBAL._enabled:
        return
    _GLOBAL.event(name, **attrs)


def absorb_events(events: Sequence[dict]) -> int:
    """Merge drained worker-shard events into the global registry."""
    return _GLOBAL.absorb_events(events)


def enabled() -> bool:
    """Is the global instance recording?"""
    return _GLOBAL._enabled


def adopt_worker_session(shard_dir: str | Path, epoch: float) -> Telemetry:
    """Opt a forked worker into flight recording (its own JSONL shard).

    Called from the process executor's worker initializer *after* the
    at-fork hook disabled the inherited state.  The worker records to
    ``<shard_dir>/worker-<pid>.jsonl``; ``epoch`` is the coordinator's
    perf-counter epoch, so span ``t_start`` values from every worker
    and the coordinator share one timeline (fork keeps the monotonic
    clock origin).  Pool workers exit through ``os._exit`` (no atexit),
    so the session runs in *streaming* mode: every counter increment
    and histogram observation is written as its own ``counter_add`` /
    ``observe`` event and the shard is flushed at each span-tree
    completion -- the shard is always complete up to the last finished
    job, even if the worker is killed.  The coordinator drains and
    merges the shards with :func:`absorb_events`.
    """
    from .sinks import JsonlSink

    tel = _GLOBAL
    tel.reset()
    path = Path(shard_dir) / f"worker-{os.getpid()}.jsonl"
    sink = JsonlSink(path, append=True)
    tel.configure(enabled=True, sinks=[sink])
    tel._stream_stats = True
    tel._epoch = epoch
    sink.flush()  # create the shard eagerly so drains see every worker
    return tel


@contextmanager
def session(sinks: Sequence[Any] = (), track_memory: bool = False,
            keep_state: bool = False) -> Iterator[Telemetry]:
    """Enable global telemetry for one ``with`` block, then restore.

    Starts from a clean registry unless ``keep_state``; flushes a final
    counter/gauge snapshot to the sinks on exit.  The previous
    enabled/sink configuration is restored afterwards, so nested tests
    cannot leak instrumentation into each other.
    """
    prev_enabled = _GLOBAL._enabled
    prev_sinks = list(_GLOBAL.sinks)
    prev_track = _GLOBAL._track_memory
    if not keep_state:
        _GLOBAL.reset()
    _GLOBAL.configure(enabled=True, sinks=sinks, track_memory=track_memory)
    try:
        yield _GLOBAL
    finally:
        _GLOBAL.flush()
        _GLOBAL.configure(enabled=prev_enabled, sinks=prev_sinks,
                          track_memory=prev_track)
