"""Structured telemetry: spans, counters, gauges, and a no-op fast path.

The simulator's performance story (Figures 10-12, Table 1) depends on
knowing *where* a round spends its time -- client training vs ECALL
decryption vs the oblivious kernel vs cost-model replay.  This module
is the single instrumentation substrate for the whole stack:

* :func:`span` -- a nested context manager recording wall time, CPU
  time, and (opt-in) the tracemalloc memory high-water mark of one
  phase.  Spans know their parents: ``span("round")`` containing
  ``span("aggregate")`` yields the path ``"round/aggregate"``.
* :func:`add` / :func:`gauge` -- cumulative counters (accesses
  recorded, bytes sealed, clients dropped) and last-value gauges
  (cost-model hit/miss totals).
* pluggable sinks (:mod:`repro.obs.sinks`) receiving one event dict per
  finished span plus counter/gauge snapshots on flush.

Telemetry is **disabled by default** and the disabled path is a single
attribute check: :func:`span` returns a shared no-op context manager
and :func:`add`/:func:`gauge` return immediately, so instrumented hot
paths cost nothing measurable (guarded by
``benchmarks/bench_trace_engine.py::test_telemetry_overhead_guard``).
Consequently instrumentation sits at *call* granularity (one span per
kernel invocation, per ECALL, per phase) -- never per element.

Event schema (what sinks receive):

``{"type": "span", "seq": int, "name": str, "path": str, "depth": int,
"t_start": float, "wall_s": float, "cpu_s": float, "attrs": dict}``
plus optional ``"mem_peak"`` (bytes, when memory tracking is on) and
``"error": true`` when the span body raised.  Snapshots emit
``{"type": "counter"|"gauge", "name": str, "value": float}``; consumers
of a stream with several snapshots take the last value per name
(counters are cumulative).
"""

from __future__ import annotations

import threading
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Sequence


class _NoopSpan:
    """Shared do-nothing span returned when telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        """Ignore attributes on the disabled path."""
        return self


#: The singleton no-op span (allocation-free disabled fast path).
NOOP_SPAN = _NoopSpan()


@dataclass
class SpanStats:
    """Aggregated statistics for every span sharing one path."""

    count: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    errors: int = 0
    mem_peak: int = 0  # max over instances, bytes


class Span:
    """A live span; use via ``with telemetry.span(name): ...``.

    ``set(**attrs)`` attaches attributes after entry (e.g. a result
    size known only at the end of the phase).
    """

    __slots__ = ("_tel", "name", "attrs", "path", "depth", "_t_start",
                 "_t0_wall", "_t0_cpu", "_mem0")

    def __init__(self, tel: "Telemetry", name: str, attrs: dict) -> None:
        self._tel = tel
        self.name = name
        self.attrs = attrs
        self.path = name
        self.depth = 0
        self._t_start = 0.0
        self._t0_wall = 0.0
        self._t0_cpu = 0.0
        self._mem0 = -1

    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self._tel._stack()
        if stack:
            parent = stack[-1]
            self.path = parent.path + "/" + self.name
            self.depth = parent.depth + 1
        stack.append(self)
        if self._tel._track_memory and tracemalloc.is_tracing():
            self._mem0 = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()
        self._t_start = time.perf_counter() - self._tel._epoch
        self._t0_wall = time.perf_counter()
        self._t0_cpu = time.process_time()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        wall = time.perf_counter() - self._t0_wall
        cpu = time.process_time() - self._t0_cpu
        mem_peak = -1
        if self._mem0 >= 0 and tracemalloc.is_tracing():
            # Peak since the most recent reset_peak (approximate under
            # nesting: a child span's reset narrows the parent window).
            mem_peak = max(0, tracemalloc.get_traced_memory()[1] - self._mem0)
        stack = self._tel._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # unbalanced exit; recover
            stack.remove(self)
        self._tel._finish_span(self, wall, cpu, mem_peak,
                               error=exc_type is not None)
        return False


class Telemetry:
    """One telemetry domain: registry state plus attached sinks.

    A module-level instance (:func:`get_telemetry`) serves the whole
    process; tests may build private instances.  All mutation is
    guarded by one lock; the span stack is thread-local so parallel
    client runners each get a coherent nesting.
    """

    def __init__(self, enabled: bool = False, sinks: Sequence[Any] = (),
                 track_memory: bool = False) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._enabled = False
        self._track_memory = False
        self.sinks: list[Any] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.span_stats: dict[str, SpanStats] = {}
        self._seq = 0
        self._epoch = time.perf_counter()
        self.configure(enabled=enabled, sinks=sinks,
                       track_memory=track_memory)

    # -- state -----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True when spans/counters are being recorded."""
        return self._enabled

    def configure(self, enabled: bool = True,
                  sinks: Sequence[Any] | None = None,
                  track_memory: bool = False) -> "Telemetry":
        """(Re)configure; keeps accumulated state (see :meth:`reset`)."""
        self._enabled = enabled
        if sinks is not None:
            self.sinks = list(sinks)
        self._track_memory = track_memory
        if track_memory and enabled and not tracemalloc.is_tracing():
            tracemalloc.start()
        return self

    def reset(self) -> None:
        """Drop every counter, gauge, span aggregate, and the sequence."""
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.span_stats.clear()
            self._seq = 0
            self._epoch = time.perf_counter()

    # -- recording -------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span | _NoopSpan:
        """Open a span; no-op (and allocation-free) when disabled."""
        if not self._enabled:
            return NOOP_SPAN
        return Span(self, name, attrs)

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment a cumulative counter."""
        if not self._enabled:
            return
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set a last-value-wins gauge."""
        if not self._enabled:
            return
        with self._lock:
            self.gauges[name] = float(value)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _finish_span(self, span: Span, wall: float, cpu: float,
                     mem_peak: int, error: bool) -> None:
        with self._lock:
            seq = self._seq
            self._seq += 1
            stats = self.span_stats.get(span.path)
            if stats is None:
                stats = self.span_stats[span.path] = SpanStats()
            stats.count += 1
            stats.wall_s += wall
            stats.cpu_s += cpu
            if error:
                stats.errors += 1
            if mem_peak > stats.mem_peak:
                stats.mem_peak = mem_peak
            if not self.sinks:
                return
            event: dict[str, Any] = {
                "type": "span", "seq": seq, "name": span.name,
                "path": span.path, "depth": span.depth,
                "t_start": round(span._t_start, 9),
                "wall_s": round(wall, 9), "cpu_s": round(cpu, 9),
                "attrs": span.attrs,
            }
            if mem_peak >= 0:
                event["mem_peak"] = mem_peak
            if error:
                event["error"] = True
            for sink in self.sinks:
                sink.emit(event)

    # -- output ----------------------------------------------------------
    def snapshot_events(self) -> list[dict]:
        """Current counters and gauges as a list of snapshot events."""
        with self._lock:
            return (
                [{"type": "counter", "name": n, "value": v}
                 for n, v in sorted(self.counters.items())]
                + [{"type": "gauge", "name": n, "value": v}
                   for n, v in sorted(self.gauges.items())]
            )

    def flush(self, snapshot: bool = True) -> None:
        """Emit a counter/gauge snapshot (optional) and flush sinks."""
        if snapshot:
            for event in self.snapshot_events():
                for sink in self.sinks:
                    sink.emit(event)
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        """Flush and close every sink."""
        self.flush()
        for sink in self.sinks:
            sink.close()


#: Process-global telemetry instance used by the instrumented modules.
_GLOBAL = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-global :class:`Telemetry` instance."""
    return _GLOBAL


def configure(enabled: bool = True, sinks: Sequence[Any] | None = None,
              track_memory: bool = False) -> Telemetry:
    """Configure the global instance; returns it."""
    return _GLOBAL.configure(enabled=enabled, sinks=sinks,
                             track_memory=track_memory)


def disable() -> None:
    """Disable the global instance and detach its sinks."""
    _GLOBAL.configure(enabled=False, sinks=[])


def reset() -> None:
    """Clear the global instance's accumulated state."""
    _GLOBAL.reset()


def span(name: str, **attrs: Any) -> Span | _NoopSpan:
    """Open a span on the global instance (no-op when disabled)."""
    if not _GLOBAL._enabled:
        return NOOP_SPAN
    return Span(_GLOBAL, name, attrs)


def add(name: str, value: float = 1.0) -> None:
    """Increment a global counter (no-op when disabled)."""
    if not _GLOBAL._enabled:
        return
    _GLOBAL.add(name, value)


def gauge(name: str, value: float) -> None:
    """Set a global gauge (no-op when disabled)."""
    if not _GLOBAL._enabled:
        return
    _GLOBAL.gauge(name, value)


def enabled() -> bool:
    """Is the global instance recording?"""
    return _GLOBAL._enabled


@contextmanager
def session(sinks: Sequence[Any] = (), track_memory: bool = False,
            keep_state: bool = False) -> Iterator[Telemetry]:
    """Enable global telemetry for one ``with`` block, then restore.

    Starts from a clean registry unless ``keep_state``; flushes a final
    counter/gauge snapshot to the sinks on exit.  The previous
    enabled/sink configuration is restored afterwards, so nested tests
    cannot leak instrumentation into each other.
    """
    prev_enabled = _GLOBAL._enabled
    prev_sinks = list(_GLOBAL.sinks)
    prev_track = _GLOBAL._track_memory
    if not keep_state:
        _GLOBAL.reset()
    _GLOBAL.configure(enabled=True, sinks=sinks, track_memory=track_memory)
    try:
        yield _GLOBAL
    finally:
        _GLOBAL.flush()
        _GLOBAL.configure(enabled=prev_enabled, sinks=prev_sinks,
                          track_memory=prev_track)
