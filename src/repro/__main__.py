"""``python -m repro`` -- a 30-second tour of OLIVE.

Runs a small federated training with the fully oblivious Advanced
aggregator, reports the DP budget, and machine-checks obliviousness.
Output goes through stdlib :mod:`logging` (module loggers under the
``repro`` namespace); ``-v``/``--verbose`` raises the level to DEBUG
and appends the telemetry summary tree of the demo run.  For the full
demos see the ``examples/`` directory.
"""

import argparse
import logging
import sys
from typing import Sequence

import numpy as np

from . import obs
from .core import OliveConfig, OliveSystem, traces_equal
from .fl import (
    SPECS,
    SyntheticClassData,
    TrainingConfig,
    build_model,
    partition_clients,
)
from .runtime import EnclaveFaultConfig, FaultConfig, RuntimeConfig, ShardConfig

logger = logging.getLogger("repro.demo")


def _parse_args(argv: Sequence[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Quick OLIVE demo: train, report DP budget, "
                    "verify obliviousness.",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="DEBUG logging plus the telemetry summary tree",
    )
    parser.add_argument(
        "--telemetry-out", metavar="PATH", default=None,
        help="write the demo's telemetry event stream to PATH as JSONL",
    )
    parser.add_argument(
        "--workers", type=int, metavar="N", default=1,
        help="cohort runtime workers; N > 1 trains clients on a thread "
             "pool (results are bit-identical to serial)",
    )
    parser.add_argument(
        "--executor", choices=("serial", "thread", "process", "vectorized"),
        default=None,
        help="cohort executor override; 'vectorized' trains the whole "
             "cohort as stacked tensors (default: thread when "
             "--workers > 1, else serial)",
    )
    parser.add_argument(
        "--dropout-rate", type=float, metavar="P", default=0.0,
        help="inject client dropouts at rate P per (round, client); "
             "the accountant then charges realized cohort sizes",
    )
    parser.add_argument(
        "--shards", type=int, metavar="N", default=None,
        help="aggregate through N leaf enclaves plus a root enclave "
             "(sharded multi-enclave service with crash recovery and "
             "failover) instead of one aggregator enclave",
    )
    parser.add_argument(
        "--leaf-crash-rate", type=float, metavar="P", default=0.0,
        help="with --shards: crash each leaf attempt with probability "
             "P; the service recovers from sealed checkpoints and the "
             "demo reports crashes, failovers, and completion rate",
    )
    parser.add_argument(
        "--straggler-rate", type=float, metavar="P", default=0.0,
        help="inject client stragglers (delayed uploads) at rate P per "
             "(round, client)",
    )
    parser.add_argument(
        "--audit-log", metavar="PATH", default=None,
        help="record a chained audit log of the run at PATH; verify it "
             "afterwards with 'python -m repro audit PATH --strict'",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed for sampling, training, and fault injection",
    )
    return parser.parse_args(list(argv))


def _configure_logging(verbose: bool) -> None:
    # force=True rebinds the handler to the *current* sys.stdout so the
    # demo stays capturable (pytest capsys, redirected pipes).
    logging.basicConfig(
        level=logging.DEBUG if verbose else logging.INFO,
        format="%(message)s",
        stream=sys.stdout,
        force=True,
    )


def main(argv: Sequence[str] | None = None) -> None:
    """Run the quick demo (``argv`` defaults to no flags).

    ``python -m repro report <telemetry.jsonl>`` dispatches to the
    round-health report renderer instead (see :mod:`repro.obs.report`).
    """
    argv = list(argv) if argv is not None else []
    if argv and argv[0] == "report":
        from .obs import report

        raise SystemExit(report.main(argv[1:]))
    if argv and argv[0] == "audit":
        from .audit import cli as audit_cli

        raise SystemExit(audit_cli.main(argv[1:]))
    if argv and argv[0] == "serve":
        from .serving import cli as serving_cli

        raise SystemExit(serving_cli.main(argv[1:]))
    args = _parse_args(argv)
    _configure_logging(args.verbose)

    sinks: list = [obs.MemorySink()]
    if args.telemetry_out:
        sinks.append(obs.JsonlSink(args.telemetry_out))

    logger.info(
        "OLIVE: oblivious and differentially private FL on a simulated TEE"
    )
    gen = SyntheticClassData(SPECS["tiny"], seed=0)
    clients = partition_clients(gen, 20, 30, 2, seed=0)
    config = OliveConfig(
        sample_rate=0.5, noise_multiplier=1.12, aggregator="advanced",
        training=TrainingConfig(local_epochs=2, local_lr=0.3,
                                sparse_ratio=0.1),
    )
    executor = args.executor or ("thread" if args.workers > 1 else "serial")
    runtime = RuntimeConfig(
        executor=executor,
        workers=max(1, args.workers),
        faults=FaultConfig(dropout_rate=args.dropout_rate,
                           straggler_rate=args.straggler_rate),
    )
    shards = None
    if args.shards is not None:
        shards = ShardConfig(
            shards=args.shards,
            faults=EnclaveFaultConfig(leaf_crash_rate=args.leaf_crash_rate),
        )
    recorder = None
    if args.audit_log:
        from .audit import AuditRecorder, make_manifest

        manifest = make_manifest(
            data={"spec": "tiny", "seed": 0, "n_clients": 20,
                  "samples_per_client": 30, "labels_per_client": 2,
                  "partition_seed": 0},
            model={"name": "tiny_mlp", "seed": 0},
            config=config, runtime=runtime, shards=shards,
            seed=args.seed,
        )
        recorder = AuditRecorder(args.audit_log, manifest)
    system = OliveSystem(build_model("tiny_mlp", seed=0), clients, config,
                         seed=args.seed, runtime=runtime, shards=shards,
                         audit=recorder)
    x, y = gen.balanced(20, np.random.default_rng(1))
    logger.info("  %d clients attested; %d-parameter model",
                len(clients), system.d)
    logger.info("  cohort runtime: %s executor, %d worker(s), "
                "dropout rate %.2f", runtime.executor, runtime.workers,
                args.dropout_rate)
    if shards is not None:
        logger.info("  sharded aggregation: %d leaf enclaves, leaf "
                    "crash rate %.2f", args.shards, args.leaf_crash_rate)
    logger.info("  accuracy before: %.3f", system.evaluate(x, y))

    with obs.session(sinks=sinks):
        logs = system.run(4)
        logger.info("  accuracy after 4 rounds: %.3f",
                    system.evaluate(x, y))
        logger.info("  privacy spent: epsilon = %.2f (delta = %g)",
                    logs[-1].epsilon, config.delta)

        if shards is not None:
            # Sharded rounds keep the access pattern inside the leaf
            # enclaves, so report the fault-tolerance story instead of
            # the root-trace obliviousness check.
            reports = [lg.shard_report for lg in logs if lg.shard_report]
            crashes = sum(o.crashes for r in reports for o in r.outcomes)
            failovers = sum(o.failovers for r in reports
                            for o in r.outcomes)
            completion = min(r.completion_rate for r in reports)
            logger.info("  shard recovery: %d leaf crash(es), %d "
                        "failover(s), min completion rate %.2f",
                        crashes, failovers, completion)
        else:
            a = system.run_round(traced=True)
            other = OliveSystem(
                build_model("tiny_mlp", seed=0),
                partition_clients(SyntheticClassData(SPECS["tiny"], seed=9),
                                  20, 30, 2, seed=0),
                config, seed=args.seed, runtime=runtime,
            )
            other.run(4)
            b = other.run_round(traced=True)
            logger.info("  oblivious aggregation verified: %s (%d recorded "
                        "accesses)", traces_equal(a.trace, b.trace),
                        len(a.trace))
            other.close()
        # Close inside the session: executor shutdown drains any
        # process-worker telemetry shards into the attached sinks
        # before the summary is rendered and the final snapshot flushed.
        system.close()
        if recorder is not None:
            recorder.close()
        summary = obs.render_summary(title="telemetry summary (demo run)")

    logger.debug("%s", summary)
    if args.telemetry_out:
        logger.info("  telemetry events written to %s", args.telemetry_out)
    if recorder is not None:
        logger.info(
            "  audit log: %d round(s) committed and sealed at %s "
            "(verify: python -m repro audit %s --strict)",
            recorder.rounds, args.audit_log, args.audit_log)


if __name__ == "__main__":
    main(sys.argv[1:])
