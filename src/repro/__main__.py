"""``python -m repro`` -- a 30-second tour of OLIVE.

Runs a small federated training with the fully oblivious Advanced
aggregator, prints the DP budget, and machine-checks obliviousness.
For the full demos see the ``examples/`` directory.
"""

import numpy as np

from .core import OliveConfig, OliveSystem, traces_equal
from .fl import (
    SPECS,
    SyntheticClassData,
    TrainingConfig,
    build_model,
    partition_clients,
)


def main() -> None:
    """Run the quick demo."""
    print("OLIVE: oblivious and differentially private FL on a simulated TEE")
    gen = SyntheticClassData(SPECS["tiny"], seed=0)
    clients = partition_clients(gen, 20, 30, 2, seed=0)
    config = OliveConfig(
        sample_rate=0.5, noise_multiplier=1.12, aggregator="advanced",
        training=TrainingConfig(local_epochs=2, local_lr=0.3,
                                sparse_ratio=0.1),
    )
    system = OliveSystem(build_model("tiny_mlp", seed=0), clients, config,
                         seed=0)
    x, y = gen.balanced(20, np.random.default_rng(1))
    print(f"  {len(clients)} clients attested; {system.d}-parameter model")
    print(f"  accuracy before: {system.evaluate(x, y):.3f}")
    logs = system.run(4)
    print(f"  accuracy after 4 rounds: {system.evaluate(x, y):.3f}")
    print(f"  privacy spent: epsilon = {logs[-1].epsilon:.2f} "
          f"(delta = {config.delta})")

    a = system.run_round(traced=True)
    other = OliveSystem(
        build_model("tiny_mlp", seed=0),
        partition_clients(SyntheticClassData(SPECS["tiny"], seed=9),
                          20, 30, 2, seed=0),
        config, seed=0,
    )
    other.run(4)
    b = other.run_round(traced=True)
    print(f"  oblivious aggregation verified: "
          f"{traces_equal(a.trace, b.trace)} "
          f"({len(a.trace)} recorded accesses)")


if __name__ == "__main__":
    main()
