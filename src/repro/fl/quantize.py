"""Gradient quantization for communication-efficient uploads.

Section 3.3 notes the index leak exists "regardless of its quantization
and/or encoding methods".  This module supplies the quantizers an FL
deployment would stack on top of sparsification:

* :func:`quantize_stochastic` -- QSGD-style unbiased stochastic
  quantization to ``2^bits`` levels per coordinate, scaled by the
  vector's max magnitude;
* :func:`quantize_deterministic` -- nearest-level rounding (biased,
  lower variance);
* :class:`QuantizedUpdate` -- the compact wire representation
  (levels + scale + indices) with exact byte accounting, used to
  quantify the communication savings sparsification+quantization buys
  (the bandwidth argument motivating top-k in the first place).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .client import LocalUpdate


@dataclass(frozen=True)
class QuantizedUpdate:
    """A sparse, quantized client update ready for the wire."""

    client_id: int
    indices: np.ndarray       # int64 coordinate ids
    levels: np.ndarray        # signed integer quantization levels
    scale: float              # levels * scale ~= values
    bits: int                 # bits per level on the wire

    def dequantize(self) -> LocalUpdate:
        """Back to a float sparse update."""
        values = self.levels.astype(np.float64) * self.scale
        return LocalUpdate(
            client_id=self.client_id,
            indices=self.indices.copy(),
            values=values,
        )

    @property
    def wire_bytes(self) -> int:
        """Bytes on the wire: 4 B index + ceil(bits/8) B level each,
        plus the 8 B scale."""
        per_record = 4 + (self.bits + 7) // 8
        return 8 + per_record * len(self.indices)


def _levels_and_scale(values: np.ndarray, bits: int) -> tuple[int, float]:
    if bits < 1 or bits > 16:
        raise ValueError("bits must be in [1, 16]")
    n_levels = (1 << (bits - 1)) - 1  # symmetric signed range
    magnitude = float(np.max(np.abs(values))) if len(values) else 0.0
    if magnitude == 0.0:
        return n_levels, 1.0
    return n_levels, magnitude / n_levels


def quantize_stochastic(
    update: LocalUpdate, bits: int, rng: np.random.Generator
) -> QuantizedUpdate:
    """Unbiased stochastic quantization (QSGD).

    Each value v with ``v / scale`` between levels ``l`` and ``l+1`` is
    rounded up with probability equal to its fractional part, so
    ``E[dequantize()] == update.values`` exactly.
    """
    n_levels, scale = _levels_and_scale(update.values, bits)
    if len(update.values) == 0 or scale == 0.0:
        # scale underflows to 0.0 for subnormal magnitudes; quantize
        # those to zero levels (one per index, keeping the update
        # well-formed) under a unit scale.
        return QuantizedUpdate(update.client_id, update.indices.copy(),
                               np.zeros(len(update.indices), dtype=np.int64),
                               1.0, bits)
    scaled = update.values / scale
    floor = np.floor(scaled)
    frac = scaled - floor
    up = rng.random(len(scaled)) < frac
    levels = (floor + up).astype(np.int64)
    levels = np.clip(levels, -n_levels, n_levels)
    return QuantizedUpdate(update.client_id, update.indices.copy(),
                           levels, scale, bits)


def quantize_deterministic(update: LocalUpdate, bits: int) -> QuantizedUpdate:
    """Nearest-level rounding."""
    n_levels, scale = _levels_and_scale(update.values, bits)
    if len(update.values) == 0 or scale == 0.0:
        return QuantizedUpdate(update.client_id, update.indices.copy(),
                               np.zeros(len(update.indices), dtype=np.int64),
                               1.0, bits)
    levels = np.clip(np.round(update.values / scale), -n_levels,
                     n_levels).astype(np.int64)
    return QuantizedUpdate(update.client_id, update.indices.copy(),
                           levels, scale, bits)


def dense_wire_bytes(d: int) -> int:
    """Bytes to upload an unsparsified float32 model delta."""
    return 4 * d


def compression_ratio(q: QuantizedUpdate, d: int) -> float:
    """Dense-float32 bytes divided by this upload's wire bytes."""
    return dense_wire_bytes(d) / max(q.wire_bytes, 1)
