"""Synthetic label-structured datasets standing in for the paper's data.

The paper evaluates on MNIST, CIFAR-10/100, and Purchase100.  None of
those are distributable here, so each is replaced by a synthetic
class-conditional Gaussian dataset with the *same input shape and label
count*.  What the attack of Section 4 exploits is the correlation
between a client's label set and the top-k index set of its locally
trained update; any class-conditional distribution induces that
correlation (each class pulls on its own output-layer rows and on the
features that separate it), so the attack dynamics -- and the defense's
effect -- are preserved.

Client partitioning follows Section 4.2: each client holds a subset of
labels, either a *fixed* size known to the attacker or a *random* size
up to a maximum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class DatasetSpec:
    """Shape metadata tying a dataset to its paper global model."""

    name: str
    input_shape: tuple[int, ...]
    n_labels: int
    model_name: str

    @property
    def input_dim(self) -> int:
        """Flattened input dimensionality."""
        out = 1
        for s in self.input_shape:
            out *= s
        return out


SPECS: dict[str, DatasetSpec] = {
    "tiny": DatasetSpec("tiny", (24,), 6, "tiny_mlp"),
    "mnist": DatasetSpec("mnist", (784,), 10, "mnist_mlp"),
    "cifar10": DatasetSpec("cifar10", (3072,), 10, "cifar10_mlp"),
    "cifar10_cnn": DatasetSpec("cifar10_cnn", (3, 32, 32), 10, "cifar10_cnn"),
    "purchase100": DatasetSpec("purchase100", (600,), 100, "purchase100_mlp"),
    "cifar100": DatasetSpec("cifar100", (3, 32, 32), 100, "cifar100_cnn"),
}


class SyntheticClassData:
    """Class-conditional Gaussian generator for one dataset spec.

    Each label ``l`` has a prototype ``mu_l ~ N(0, 1)^dim``; samples are
    ``mu_l * signal + N(0, noise)``.  Purchase100-like tabular data is
    thresholded to {0, 1} to mimic binary purchase features.
    """

    def __init__(
        self,
        spec: DatasetSpec,
        seed: int = 0,
        signal: float = 1.0,
        noise: float = 0.5,
    ) -> None:
        self.spec = spec
        self.signal = signal
        self.noise = noise
        rng = np.random.default_rng(seed)
        self._prototypes = rng.normal(size=(spec.n_labels, spec.input_dim))
        self._binary = spec.name == "purchase100"
        self._seed = seed

    def sample(
        self, labels: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw one sample per entry of ``labels``."""
        base = self._prototypes[labels] * self.signal
        x = base + rng.normal(0.0, self.noise, size=base.shape)
        if self._binary:
            x = (x > 0).astype(np.float64)
        if len(self.spec.input_shape) > 1:
            x = x.reshape((len(labels),) + self.spec.input_shape)
        return x

    def balanced(
        self, n_per_label: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """n_per_label samples of every label (the server's public data)."""
        labels = np.repeat(np.arange(self.spec.n_labels), n_per_label)
        return self.sample(labels, rng), labels


@dataclass
class ClientData:
    """One client's private shard."""

    client_id: int
    x: np.ndarray
    y: np.ndarray
    label_set: frozenset[int] = field(default_factory=frozenset)

    def __len__(self) -> int:
        return len(self.y)


def assign_label_sets(
    n_clients: int,
    n_labels: int,
    labels_per_client: int,
    fixed: bool,
    rng: np.random.Generator,
) -> list[frozenset[int]]:
    """Label subsets per client (Section 4.2's fixed/random settings)."""
    if not 1 <= labels_per_client <= n_labels:
        raise ValueError("labels_per_client out of range")
    sets = []
    for _ in range(n_clients):
        size = labels_per_client
        if not fixed:
            size = int(rng.integers(1, labels_per_client + 1))
        chosen = rng.choice(n_labels, size=size, replace=False)
        sets.append(frozenset(int(lab) for lab in chosen))
    return sets


def partition_clients(
    generator: SyntheticClassData,
    n_clients: int,
    samples_per_client: int,
    labels_per_client: int,
    fixed: bool = True,
    seed: int = 0,
) -> list[ClientData]:
    """Generate each client's local shard from its label subset."""
    rng = np.random.default_rng(seed)
    label_sets = assign_label_sets(
        n_clients, generator.spec.n_labels, labels_per_client, fixed, rng
    )
    clients = []
    for cid, label_set in enumerate(label_sets):
        choices = np.array(sorted(label_set))
        y = rng.choice(choices, size=samples_per_client)
        x = generator.sample(y, rng)
        clients.append(ClientData(client_id=cid, x=x, y=y, label_set=label_set))
    return clients


def server_test_data_by_label(
    generator: SyntheticClassData, n_per_label: int, seed: int = 1
) -> dict[int, np.ndarray]:
    """The attacker's public i.i.d. per-label test data, X_l for l in L."""
    rng = np.random.default_rng(seed)
    out: dict[int, np.ndarray] = {}
    for label in range(generator.spec.n_labels):
        labels = np.full(n_per_label, label)
        out[label] = generator.sample(labels, rng)
    return out
