"""Pairwise-masking secure aggregation (Bonawitz et al.) -- and why it
does not fix the sparsification leak.

The paper's Section 3.3 ("Generality") argues the gradient-index side
channel is not SGX-specific: *any* scheme that hides gradient values
but reveals which model coordinates each client touches -- e.g. sparse
secure aggregation (SparseSecAgg) -- leaks the same index sets the
attack of Section 4 consumes.  This module provides that comparison
substrate:

* dense secure aggregation: every pair of clients derives a shared
  mask from a DH key agreement; client i adds ``+mask_ij`` for j > i
  and ``-mask_ij`` for j < i, so the server-side sum cancels all masks
  exactly and reveals only the aggregate;
* sparse secure aggregation: the same masking applied per *declared
  index set* -- values are hidden, but the index sets travel in the
  clear (they must, or the server could not align the masked values),
  which is precisely the leak.

Masks are generated from pairwise seeds with the SHA-256 counter
stream of :mod:`repro.sgx.crypto`, mapped into a finite field of
fixed-point values so cancellation is exact.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..sgx.attestation import DiffieHellman
from .client import LocalUpdate

FIELD_BITS = 62
FIELD_MOD = 1 << FIELD_BITS
FIXED_POINT_SCALE = 1 << 24


def encode_fixed_point(values: np.ndarray) -> np.ndarray:
    """Map floats into the masking field (two's-complement style)."""
    scaled = np.round(values * FIXED_POINT_SCALE).astype(np.int64)
    return np.mod(scaled, FIELD_MOD)


def decode_fixed_point(field_values: np.ndarray, n_summands: int) -> np.ndarray:
    """Invert :func:`encode_fixed_point` after summation.

    ``n_summands`` bounds the magnitude so the centred representative
    is recovered correctly.
    """
    centred = np.where(
        field_values >= FIELD_MOD // 2, field_values - FIELD_MOD, field_values
    )
    return centred.astype(np.float64) / FIXED_POINT_SCALE


def _mask_stream(seed: bytes, length: int) -> np.ndarray:
    """Deterministic field elements from a pairwise seed."""
    out = np.empty(length, dtype=np.int64)
    counter = 0
    pos = 0
    while pos < length:
        block = hashlib.sha256(seed + counter.to_bytes(8, "big")).digest()
        for off in range(0, 32, 8):
            if pos >= length:
                break
            word = int.from_bytes(block[off : off + 8], "big")
            out[pos] = word % FIELD_MOD
            pos += 1
        counter += 1
    return out


@dataclass
class SecAggClient:
    """One secure-aggregation participant with pairwise mask seeds."""

    client_id: int
    pair_seeds: dict[int, bytes]

    def mask_dense(self, values: np.ndarray) -> np.ndarray:
        """Masked dense vector: encoded values plus signed pair masks."""
        masked = encode_fixed_point(values)
        for peer, seed in self.pair_seeds.items():
            mask = _mask_stream(seed, len(values))
            if self.client_id < peer:
                masked = np.mod(masked + mask, FIELD_MOD)
            else:
                masked = np.mod(masked - mask, FIELD_MOD)
        return masked

    def mask_sparse(self, update: LocalUpdate, d: int) -> "MaskedSparseUpdate":
        """SparseSecAgg-style upload: masked values, PLAINTEXT indices.

        The masks are derived per model coordinate (seed stream over
        the full dimension, gathered at the declared indices) so that
        coordinate-aligned masks cancel whenever both peers include the
        coordinate -- the scheme's correctness requires the server to
        see which coordinates each client sent.
        """
        masked = encode_fixed_point(update.values)
        for peer, seed in self.pair_seeds.items():
            full_mask = _mask_stream(seed, d)
            gathered = full_mask[update.indices]
            if self.client_id < peer:
                masked = np.mod(masked + gathered, FIELD_MOD)
            else:
                masked = np.mod(masked - gathered, FIELD_MOD)
        return MaskedSparseUpdate(
            client_id=self.client_id,
            indices=update.indices.copy(),
            masked_values=masked,
        )


@dataclass(frozen=True)
class MaskedSparseUpdate:
    """What the SparseSecAgg server receives: indices are visible."""

    client_id: int
    indices: np.ndarray
    masked_values: np.ndarray


def setup_pairwise_seeds(client_ids: list[int],
                         seed: int | None = None) -> dict[int, SecAggClient]:
    """Run pairwise DH between all clients; returns ready participants."""
    import random

    rng = random.Random(seed)
    dh = {
        cid: DiffieHellman(secret=rng.getrandbits(256) or 2)
        for cid in client_ids
    }
    clients = {}
    for cid in client_ids:
        seeds = {
            peer: dh[cid].shared_key(dh[peer].public)
            for peer in client_ids
            if peer != cid
        }
        clients[cid] = SecAggClient(client_id=cid, pair_seeds=seeds)
    return clients


def aggregate_dense_masked(masked_vectors: list[np.ndarray],
                           n_clients: int) -> np.ndarray:
    """Server-side sum of dense masked vectors; masks cancel exactly."""
    total = np.zeros_like(masked_vectors[0])
    for vec in masked_vectors:
        total = np.mod(total + vec, FIELD_MOD)
    return decode_fixed_point(total, n_clients)


def aggregate_sparse_masked(
    uploads: list[MaskedSparseUpdate], d: int
) -> tuple[np.ndarray, dict[int, frozenset[int]]]:
    """Server-side SparseSecAgg aggregation.

    Coordinates where the contributing client sets differ retain
    residual masks (the well-known alignment problem of sparse secure
    aggregation); coordinates shared by all contributors -- and the
    full aggregate when every pair either shares or omits a coordinate
    together -- decode exactly.  Crucially, the returned ``leaked``
    mapping is the per-client plaintext index set: the attack surface
    exists with no TEE anywhere.
    """
    field_total = np.zeros(d, dtype=np.int64)
    contributors: dict[int, set[int]] = {}
    leaked: dict[int, frozenset[int]] = {}
    for upload in uploads:
        leaked[upload.client_id] = frozenset(upload.indices.tolist())
        for idx, val in zip(upload.indices.tolist(),
                            upload.masked_values.tolist()):
            field_total[idx] = (field_total[idx] + val) % FIELD_MOD
            contributors.setdefault(idx, set()).add(upload.client_id)
    aggregate = decode_fixed_point(field_total, len(uploads))
    return aggregate, leaked
