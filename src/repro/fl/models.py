"""Numpy neural networks for the FL substrate.

Implements exactly the global-model architectures of the paper's
Table 2 / Appendix D with manual backprop, so no deep-learning framework
is needed:

============== ============================== ==========
model name     architecture                   parameters
============== ============================== ==========
mnist_mlp      784-64-10 MLP, dropout 0.5     50,890
cifar10_mlp    3072-64-10 MLP, dropout 0.5    197,322
cifar10_cnn    LeNet-5 (2 conv + 3 FC)        62,006
purchase100_mlp 600-64-100 MLP, dropout 0.5   44,964
cifar100_cnn   small CNN (ResNet-18 stand-in) ~200,747
============== ============================== ==========

``mnist_mlp``, ``cifar10_cnn`` and ``purchase100_mlp`` match the paper's
parameter counts exactly; ``cifar10_mlp`` differs by 2 (bias counting)
and ``cifar100_cnn`` substitutes ResNet-18 with a small CNN of
comparable (paper-reported) parameter count -- see DESIGN.md.

Every model exposes its parameters as one flat float64 vector
(:meth:`Sequential.get_flat` / :meth:`Sequential.set_flat`), the
representation federated learning exchanges and sparsifies.
"""

from __future__ import annotations

import numpy as np


class Layer:
    """Base layer: forward/backward plus parameter access."""

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> list[np.ndarray]:
        return []

    def grads(self) -> list[np.ndarray]:
        return []


class Linear(Layer):
    """Fully connected layer with bias."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator) -> None:
        scale = np.sqrt(2.0 / in_features)
        self.weight = rng.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        self._x = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x is not None
        self.grad_weight = self._x.T @ grad_out
        self.grad_bias = grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._mask


class Dropout(Layer):
    """Inverted dropout; identity at evaluation time."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.p = p
        self._rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if not train or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class Flatten(Layer):
    """Collapse (N, ...) feature maps to (N, features)."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._shape)


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int):
    """Unfold (N, C, H, W) into (N, out_h, out_w, C*kh*kw) patches."""
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    shape = (n, c, out_h, out_w, kh, kw)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2] * stride,
        x.strides[3] * stride,
        x.strides[2],
        x.strides[3],
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = patches.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h, out_w, c * kh * kw)
    return cols, out_h, out_w


class Conv2d(Layer):
    """2-D convolution via im2col with bias."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
    ) -> None:
        fan_in = in_channels * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)
        self.weight = rng.normal(
            0.0, scale, size=(out_channels, in_channels, kernel_size, kernel_size)
        )
        self.bias = np.zeros(out_channels)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self.stride = stride
        self.padding = padding
        self.kernel_size = kernel_size
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        self._x_shape = x.shape
        k = self.kernel_size
        cols, out_h, out_w = _im2col(x, k, k, self.stride, self.padding)
        self._cols = cols
        w_mat = self.weight.reshape(self.weight.shape[0], -1)
        out = cols @ w_mat.T + self.bias
        return out.transpose(0, 3, 1, 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._cols is not None and self._x_shape is not None
        n, c, h, w = self._x_shape
        k = self.kernel_size
        go = grad_out.transpose(0, 2, 3, 1)  # (N, out_h, out_w, out_c)
        out_c = go.shape[-1]
        go_flat = go.reshape(-1, out_c)
        cols_flat = self._cols.reshape(-1, self._cols.shape[-1])
        self.grad_weight = (go_flat.T @ cols_flat).reshape(self.weight.shape)
        self.grad_bias = go_flat.sum(axis=0)
        w_mat = self.weight.reshape(out_c, -1)
        dcols = (go_flat @ w_mat).reshape(self._cols.shape)
        # Fold patches back (col2im).
        out_h, out_w = dcols.shape[1], dcols.shape[2]
        dx = np.zeros((n, c, h + 2 * self.padding, w + 2 * self.padding))
        dpatches = dcols.reshape(n, out_h, out_w, c, k, k)
        for i in range(out_h):
            hi = i * self.stride
            for j in range(out_w):
                wj = j * self.stride
                dx[:, :, hi : hi + k, wj : wj + k] += dpatches[:, i, j]
        if self.padding:
            dx = dx[:, :, self.padding : -self.padding, self.padding : -self.padding]
        return dx

    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class MaxPool2d(Layer):
    """Non-overlapping max pooling (kernel == stride)."""

    def __init__(self, kernel_size: int) -> None:
        self.k = kernel_size
        self._argmax: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.k
        if h % k or w % k:
            raise ValueError("input not divisible by pooling kernel")
        self._x_shape = x.shape
        blocks = x.reshape(n, c, h // k, k, w // k, k).transpose(0, 1, 2, 4, 3, 5)
        flat = blocks.reshape(n, c, h // k, w // k, k * k)
        self._argmax = flat.argmax(axis=-1)
        return flat.max(axis=-1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._argmax is not None and self._x_shape is not None
        n, c, h, w = self._x_shape
        k = self.k
        dflat = np.zeros((n, c, h // k, w // k, k * k))
        np.put_along_axis(
            dflat, self._argmax[..., None], grad_out[..., None], axis=-1
        )
        dx = (
            dflat.reshape(n, c, h // k, w // k, k, k)
            .transpose(0, 1, 2, 4, 3, 5)
            .reshape(n, c, h, w)
        )
        return dx


class Sequential:
    """A feed-forward stack with flat-vector parameter access."""

    def __init__(self, layers: list[Layer]) -> None:
        self.layers = layers

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def params(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.params()]

    def grads(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads()]

    @property
    def num_params(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.params())

    def get_flat(self) -> np.ndarray:
        """Parameters as one flat float64 vector."""
        parts = self.params()
        if not parts:
            return np.empty(0)
        return np.concatenate([p.ravel() for p in parts])

    def set_flat(self, flat: np.ndarray) -> None:
        """Load parameters from a flat vector (inverse of get_flat)."""
        if flat.size != self.num_params:
            raise ValueError(
                f"expected {self.num_params} parameters, got {flat.size}"
            )
        offset = 0
        for p in self.params():
            p[...] = flat[offset : offset + p.size].reshape(p.shape)
            offset += p.size

    def get_flat_grads(self) -> np.ndarray:
        """Gradients as one flat vector (aligned with get_flat)."""
        return np.concatenate([g.ravel() for g in self.grads()])

    def sgd_step(self, lr: float) -> None:
        """One vanilla SGD step over all parameters."""
        for p, g in zip(self.params(), self.grads()):
            p -= lr * g


# ----------------------------------------------------------------------
# Batched (mega-cohort) execution: a whole cohort as one tensor
# ----------------------------------------------------------------------
#
# The cohort runtime's ``vectorized`` executor trains every sampled
# client in one stack of numpy tensors with a leading client axis:
# weights ``(C, in, out)``, activations ``(C, batch, features)``.  Each
# batched layer performs, per client slice, *exactly* the operations of
# its scalar counterpart above (same matmuls, same reductions, same
# elementwise ops), so the per-client results are bit-identical to a
# serial loop of ``Sequential`` -- the equivalence contract pinned by
# ``tests/test_vectorized_cohort.py``.  Only layers whose batched form
# preserves that contract are supported (the paper's MLP family); see
# :func:`supports_batched_training`.


class BatchedLinear:
    """A stack of C independent :class:`Linear` layers.

    ``compute_dx`` is cleared on the first layer of a stack: its input
    gradient is discarded by every caller, and at mega-cohort scale the
    skipped batched matmul is measurable (the serial path computes and
    discards it; the bits that matter are unaffected).
    """

    def __init__(self, weight: np.ndarray, bias: np.ndarray) -> None:
        self.weight = weight          # (C, in, out)
        self.bias = bias              # (C, out)
        self.grad_weight = np.zeros_like(weight)
        self.grad_bias = np.zeros_like(bias)
        self.compute_dx = True
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        self._x = x
        return np.matmul(x, self.weight) + self.bias[:, None, :]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._x is not None
        self.grad_weight = np.matmul(self._x.transpose(0, 2, 1), grad_out)
        self.grad_bias = grad_out.sum(axis=1)
        if not self.compute_dx:
            return grad_out
        return np.matmul(grad_out, self.weight.transpose(0, 2, 1))

    def sgd_step(self, lr: float) -> None:
        self.weight -= lr * self.grad_weight
        self.bias -= lr * self.grad_bias

    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]


class BatchedReLU:
    """Elementwise ReLU over the stacked activations."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._mask

    def sgd_step(self, lr: float) -> None:
        pass

    def params(self) -> list[np.ndarray]:
        return []


class BatchedDropout:
    """C independent inverted-dropout layers with pre-drawn masks.

    The serial :class:`Dropout` draws one ``rng.random(x.shape)`` per
    forward call from its layer-private Generator.  ``Generator.random``
    fills row-major from a sequential bit stream, so drawing all of a
    client's masks in one ``(total_rows, width)`` call yields exactly
    the concatenation of the per-batch draws -- one RNG call per client
    per layer instead of one per batch.  Masks are stored as booleans
    and divided by the keep rate at apply time (``True / keep`` equals
    the serial ``(draw < keep) / keep`` bit for bit).
    """

    def __init__(self, p: float) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.p = p
        self._rngs: list[np.random.Generator] | None = None
        self._total_rows = 0
        self._pool: np.ndarray | None = None   # (C, total_rows, width) float
        self._cursor = 0
        self._mask: np.ndarray | None = None

    def begin(self, total_rows: int, rngs: list[np.random.Generator]) -> None:
        """Arm the layer for one local-training run of ``total_rows``."""
        self._rngs = rngs
        self._total_rows = total_rows
        self._pool = None
        self._cursor = 0

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if not train or self.p == 0.0:
            self._mask = None
            return x
        assert self._rngs is not None, "begin() not called"
        keep = 1.0 - self.p
        if self._pool is None:
            width = x.shape[-1]
            pool = np.empty((len(self._rngs), self._total_rows, width),
                            dtype=bool)
            for i, rng in enumerate(self._rngs):
                pool[i] = rng.random((self._total_rows, width)) < keep
            # Divide the whole run's masks by the keep rate once; the
            # per-step slices below are then allocation-free views.
            self._pool = pool / keep
        b = x.shape[1]
        self._mask = self._pool[:, self._cursor : self._cursor + b, :]
        self._cursor += b
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask

    def sgd_step(self, lr: float) -> None:
        pass

    def params(self) -> list[np.ndarray]:
        return []


class BatchedFlatten:
    """Collapse (C, b, ...) feature maps to (C, b, features)."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._shape)

    def sgd_step(self, lr: float) -> None:
        pass

    def params(self) -> list[np.ndarray]:
        return []


def _im2col_batch(x: np.ndarray, kh: int, kw: int, stride: int, pad: int):
    """Unfold (C, N, ch, H, W) into (C, N, out_h, out_w, ch*kh*kw).

    The client-axis twin of :func:`_im2col`: identical window walk per
    client slice, with the leading cohort axis carried through the
    strides so the whole cohort unfolds in one ``as_strided`` view.
    """
    cc, n, ch, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (0, 0), (pad, pad), (pad, pad)))
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    shape = (cc, n, ch, out_h, out_w, kh, kw)
    strides = (
        x.strides[0],
        x.strides[1],
        x.strides[2],
        x.strides[3] * stride,
        x.strides[4] * stride,
        x.strides[3],
        x.strides[4],
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    cols = patches.transpose(0, 1, 3, 4, 2, 5, 6).reshape(
        cc, n, out_h, out_w, ch * kh * kw
    )
    return cols, out_h, out_w


class BatchedConv2d:
    """A stack of C independent :class:`Conv2d` layers.

    Per client slice this performs the exact im2col unfold, matmuls,
    and col2im fold of the scalar layer (same operand shapes per
    slice), so the results are bit-identical to a serial loop -- the
    contract ``tests/test_fl_models.py`` / ``test_vectorized_cohort.py``
    pin.  ``compute_dx`` mirrors :class:`BatchedLinear`: the first
    layer's input gradient is discarded by every caller, and for conv
    layers the skipped work (a matmul plus the col2im fold loop) is
    the most expensive part of the backward pass.
    """

    def __init__(self, weight: np.ndarray, bias: np.ndarray,
                 stride: int, padding: int) -> None:
        self.weight = weight          # (C, out_c, in_c, k, k)
        self.bias = bias              # (C, out_c)
        self.grad_weight = np.zeros_like(weight)
        self.grad_bias = np.zeros_like(bias)
        self.stride = stride
        self.padding = padding
        self.kernel_size = weight.shape[-1]
        self.compute_dx = True
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        self._x_shape = x.shape
        k = self.kernel_size
        cols, out_h, out_w = _im2col_batch(x, k, k, self.stride, self.padding)
        self._cols = cols
        cc = self.weight.shape[0]
        w_mat_t = self.weight.reshape(cc, self.weight.shape[1], -1)
        w_mat_t = w_mat_t.transpose(0, 2, 1)          # (C, ckk, out_c)
        out = np.matmul(cols, w_mat_t[:, None, None])
        out = out + self.bias[:, None, None, None, :]
        return out.transpose(0, 1, 4, 2, 3)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._cols is not None and self._x_shape is not None
        cc, n, c, h, w = self._x_shape
        k = self.kernel_size
        go = grad_out.transpose(0, 1, 3, 4, 2)  # (C, N, out_h, out_w, out_c)
        out_c = go.shape[-1]
        go_flat = go.reshape(cc, -1, out_c)
        cols_flat = self._cols.reshape(cc, -1, self._cols.shape[-1])
        self.grad_weight = np.matmul(
            go_flat.transpose(0, 2, 1), cols_flat
        ).reshape(self.weight.shape)
        self.grad_bias = go_flat.sum(axis=1)
        if not self.compute_dx:
            return grad_out
        w_mat = self.weight.reshape(cc, out_c, -1)
        dcols = np.matmul(go_flat, w_mat).reshape(self._cols.shape)
        out_h, out_w = dcols.shape[2], dcols.shape[3]
        dx = np.zeros((cc, n, c, h + 2 * self.padding, w + 2 * self.padding))
        dpatches = dcols.reshape(cc, n, out_h, out_w, c, k, k)
        for i in range(out_h):
            hi = i * self.stride
            for j in range(out_w):
                wj = j * self.stride
                dx[:, :, :, hi : hi + k, wj : wj + k] += dpatches[:, :, i, j]
        if self.padding:
            dx = dx[:, :, :, self.padding : -self.padding,
                    self.padding : -self.padding]
        return dx

    def sgd_step(self, lr: float) -> None:
        self.weight -= lr * self.grad_weight
        self.bias -= lr * self.grad_bias

    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]


class BatchedMaxPool2d:
    """Non-overlapping max pooling over (C, N, ch, H, W) stacks."""

    def __init__(self, kernel_size: int) -> None:
        self.k = kernel_size
        self._argmax: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        cc, n, c, h, w = x.shape
        k = self.k
        if h % k or w % k:
            raise ValueError("input not divisible by pooling kernel")
        self._x_shape = x.shape
        blocks = x.reshape(cc, n, c, h // k, k, w // k, k).transpose(
            0, 1, 2, 3, 5, 4, 6
        )
        flat = blocks.reshape(cc, n, c, h // k, w // k, k * k)
        self._argmax = flat.argmax(axis=-1)
        return flat.max(axis=-1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._argmax is not None and self._x_shape is not None
        cc, n, c, h, w = self._x_shape
        k = self.k
        dflat = np.zeros((cc, n, c, h // k, w // k, k * k))
        np.put_along_axis(
            dflat, self._argmax[..., None], grad_out[..., None], axis=-1
        )
        return (
            dflat.reshape(cc, n, c, h // k, w // k, k, k)
            .transpose(0, 1, 2, 3, 5, 4, 6)
            .reshape(cc, n, c, h, w)
        )

    def sgd_step(self, lr: float) -> None:
        pass

    def params(self) -> list[np.ndarray]:
        return []


#: Template layers with a bit-identical batched counterpart.
_BATCHABLE_LAYERS = (Linear, ReLU, Dropout, Flatten, Conv2d, MaxPool2d)


def supports_batched_training(model: Sequential) -> bool:
    """True when every layer of ``model`` has a batched counterpart."""
    return all(isinstance(layer, _BATCHABLE_LAYERS) for layer in model.layers)


class BatchedSequential:
    """C independent copies of one :class:`Sequential`, as tensor stacks.

    Initialized from a template architecture and one flat global weight
    vector: every client starts at the broadcast weights (the serial
    path's ``set_flat``) and diverges through its own data and dropout
    masks while sharing each layer's batched matmul.
    """

    def __init__(
        self,
        template: Sequential,
        global_weights: np.ndarray,
        n_clients: int,
    ) -> None:
        if not supports_batched_training(template):
            unsupported = sorted(
                {type(layer).__name__ for layer in template.layers
                 if not isinstance(layer, _BATCHABLE_LAYERS)}
            )
            raise ValueError(
                f"layers without a batched counterpart: {unsupported}"
            )
        if global_weights.size != template.num_params:
            raise ValueError(
                f"expected {template.num_params} parameters, "
                f"got {global_weights.size}"
            )
        self.n_clients = n_clients
        self.layers: list = []
        self._dropout_indices: list[int] = []
        offset = 0

        def stacked(shape: tuple[int, ...]) -> np.ndarray:
            nonlocal offset
            size = int(np.prod(shape)) if shape else 1
            flat = global_weights[offset : offset + size]
            offset += size
            out = np.empty((n_clients,) + shape)
            out[:] = flat.reshape(shape)
            return out

        for i, layer in enumerate(template.layers):
            if isinstance(layer, Linear):
                self.layers.append(BatchedLinear(
                    stacked(layer.weight.shape), stacked(layer.bias.shape)
                ))
            elif isinstance(layer, ReLU):
                self.layers.append(BatchedReLU())
            elif isinstance(layer, Dropout):
                self.layers.append(BatchedDropout(layer.p))
                self._dropout_indices.append(i)
            elif isinstance(layer, Flatten):
                self.layers.append(BatchedFlatten())
            elif isinstance(layer, Conv2d):
                self.layers.append(BatchedConv2d(
                    stacked(layer.weight.shape), stacked(layer.bias.shape),
                    layer.stride, layer.padding,
                ))
            elif isinstance(layer, MaxPool2d):
                self.layers.append(BatchedMaxPool2d(layer.k))
        if self.layers and isinstance(
            self.layers[0], (BatchedLinear, BatchedConv2d)
        ):
            self.layers[0].compute_dx = False

    @property
    def dropout_indices(self) -> list[int]:
        """Template-layer indices of the dropout layers (seeding keys)."""
        return list(self._dropout_indices)

    def begin_training(
        self,
        total_rows: int,
        dropout_rngs: list[dict[int, np.random.Generator]],
    ) -> None:
        """Arm dropout layers for one run consuming ``total_rows`` rows.

        ``dropout_rngs[c][i]`` is client ``c``'s Generator for the
        dropout layer at template index ``i`` -- the same sub-stream
        :func:`repro.runtime.seeding.reseed_model` assigns serially.
        """
        for i in self._dropout_indices:
            self.layers[i].begin(
                total_rows, [per_client[i] for per_client in dropout_rngs]
            )

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def sgd_step(self, lr: float) -> None:
        for layer in self.layers:
            layer.sgd_step(lr)

    def get_flat(self) -> np.ndarray:
        """Per-client flat parameter vectors, stacked to ``(C, d)``."""
        parts = [p for layer in self.layers for p in layer.params()]
        if not parts:
            return np.empty((self.n_clients, 0))
        return np.concatenate(
            [p.reshape(self.n_clients, -1) for p in parts], axis=1
        )


def softmax_cross_entropy_batch(
    logits: np.ndarray, labels: np.ndarray
) -> np.ndarray:
    """Batched loss gradient: per-client slices bit-identical to
    :func:`softmax_cross_entropy`'s ``dlogits`` (the loss value itself is
    not needed for training and is skipped)."""
    shifted = logits - logits.max(axis=2, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=2, keepdims=True)
    c, n = labels.shape
    dlogits = probs
    dlogits[np.arange(c)[:, None], np.arange(n)[None, :], labels] -= 1.0
    return dlogits / n


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and gradient w.r.t. the logits."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    n = logits.shape[0]
    loss = -np.log(probs[np.arange(n), labels] + 1e-12).mean()
    dlogits = probs.copy()
    dlogits[np.arange(n), labels] -= 1.0
    return float(loss), dlogits / n


def accuracy(model: Sequential, x: np.ndarray, y: np.ndarray) -> float:
    """Classification accuracy at evaluation time."""
    logits = model.forward(x, train=False)
    return float((logits.argmax(axis=1) == y).mean())


def _mlp(in_dim: int, hidden: int, out_dim: int,
         rng: np.random.Generator) -> Sequential:
    return Sequential(
        [
            Linear(in_dim, hidden, rng),
            ReLU(),
            Dropout(0.5, rng),
            Linear(hidden, out_dim, rng),
        ]
    )


def build_model(name: str, seed: int = 0) -> Sequential:
    """Construct a paper architecture by name (see module docstring)."""
    rng = np.random.default_rng(seed)
    if name == "tiny_mlp":
        # Not in the paper: a 378-parameter model for fast traced runs
        # (tests, examples); same structure as the paper MLPs.
        return _mlp(24, 12, 6, rng)
    if name == "mnist_mlp":
        return _mlp(28 * 28, 64, 10, rng)
    if name == "cifar10_mlp":
        return _mlp(3 * 32 * 32, 64, 10, rng)
    if name == "purchase100_mlp":
        return _mlp(600, 64, 100, rng)
    if name == "cifar10_cnn":
        # LeNet-5: matches the paper's 62,006 parameters exactly.
        return Sequential(
            [
                Conv2d(3, 6, 5, rng),
                ReLU(),
                MaxPool2d(2),
                Conv2d(6, 16, 5, rng),
                ReLU(),
                MaxPool2d(2),
                Flatten(),
                Linear(16 * 5 * 5, 120, rng),
                ReLU(),
                Linear(120, 84, rng),
                ReLU(),
                Linear(84, 10, rng),
            ]
        )
    if name == "cifar100_cnn":
        # ResNet-18 stand-in with a parameter count close to the
        # paper's reported 201,588 (see DESIGN.md substitution table).
        return Sequential(
            [
                Conv2d(3, 16, 3, rng, padding=1),
                ReLU(),
                MaxPool2d(2),
                Conv2d(16, 32, 3, rng, padding=1),
                ReLU(),
                MaxPool2d(2),
                Flatten(),
                Linear(32 * 8 * 8, 91, rng),
                ReLU(),
                Linear(91, 100, rng),
            ]
        )
    raise ValueError(f"unknown model {name!r}")


MODEL_NAMES = (
    "tiny_mlp",
    "mnist_mlp",
    "cifar10_mlp",
    "cifar10_cnn",
    "purchase100_mlp",
    "cifar100_cnn",
)
