"""FL client: local training, sparsification, clipping, encryption.

Implements ``EncClient`` of Algorithm 1: starting from the current
global weights, run local SGD over the private shard, take the model
delta, top-k sparsify it, L2-clip the surviving values, and encrypt the
``(index, value)`` records for the enclave under the RA-negotiated key.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sgx import crypto
from .datasets import ClientData
from .models import Sequential, softmax_cross_entropy
from .sparsify import l2_clip, random_k, threshold, top_ratio


@dataclass(frozen=True)
class LocalUpdate:
    """A sparse model delta produced by one client in one round."""

    client_id: int
    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.values):
            raise ValueError("indices/values length mismatch")

    @property
    def k(self) -> int:
        """Number of sparsified coordinates in this update."""
        return len(self.indices)


#: Supported client-side sparsifiers.  ``top_k`` is the paper's default
#: (data-dependent, leaky); ``threshold`` is the other data-dependent
#: family called out in Section 3.3 (it additionally leaks k itself);
#: ``random_k`` is the data-independent strawman that does not leak but
#: discards signal.
SPARSIFIERS = ("top_k", "threshold", "random_k")

#: Local optimizers: ``fedavg`` shares a multi-epoch weight delta
#: (DP-FedAVG); ``fedsgd`` shares one full-batch gradient step
#: (DP-FedSGD) -- the paper treats both uniformly as "gradients".
ALGORITHMS = ("fedavg", "fedsgd")


@dataclass(frozen=True)
class TrainingConfig:
    """Client-side hyperparameters of Algorithm 1."""

    local_epochs: int = 1
    local_lr: float = 0.1
    batch_size: int = 32
    sparse_ratio: float = 0.1
    clip: float = 1.0
    sparsifier: str = "top_k"
    threshold_tau: float = 0.01
    algorithm: str = "fedavg"

    def __post_init__(self) -> None:
        if self.sparsifier not in SPARSIFIERS:
            raise ValueError(f"unknown sparsifier {self.sparsifier!r}")
        if self.algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {self.algorithm!r}")


def local_train(
    model: Sequential,
    global_weights: np.ndarray,
    data: ClientData,
    config: TrainingConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Run local optimization from ``global_weights``; returns the
    dense delta (multi-epoch SGD for FedAVG, one full-batch gradient
    step for FedSGD)."""
    model.set_flat(global_weights)
    if config.algorithm == "fedsgd":
        logits = model.forward(data.x, train=True)
        _, dlogits = softmax_cross_entropy(logits, data.y)
        model.backward(dlogits)
        model.sgd_step(config.local_lr)
        return model.get_flat() - global_weights
    n = len(data)
    for _ in range(config.local_epochs):
        order = rng.permutation(n)
        for start in range(0, n, config.batch_size):
            batch = order[start : start + config.batch_size]
            logits = model.forward(data.x[batch], train=True)
            _, dlogits = softmax_cross_entropy(logits, data.y[batch])
            model.backward(dlogits)
            model.sgd_step(config.local_lr)
    return model.get_flat() - global_weights


def sparsify_delta(
    delta: np.ndarray, config: TrainingConfig, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Apply the configured sparsifier to a dense delta."""
    if config.sparsifier == "top_k":
        return top_ratio(delta, config.sparse_ratio)
    if config.sparsifier == "threshold":
        indices, values = threshold(delta, config.threshold_tau)
        if len(indices) == 0:
            # Never send an empty update; fall back to the single
            # largest coordinate (threshold too aggressive).
            return top_ratio(delta, 1.0 / max(delta.size, 1))
        return indices, values
    k = max(1, int(np.ceil(config.sparse_ratio * delta.size)))
    return random_k(delta, k, rng)


def compute_update(
    model: Sequential,
    global_weights: np.ndarray,
    data: ClientData,
    config: TrainingConfig,
    rng: np.random.Generator,
    clip_override: float | None = None,
) -> LocalUpdate:
    """EncClient lines 15-22: train, sparsify, L2-clip.

    ``clip_override`` supports server-broadcast adaptive clipping
    (Andrew et al.): when set, it replaces ``config.clip`` this round.
    """
    delta = local_train(model, global_weights, data, config, rng)
    indices, values = sparsify_delta(delta, config, rng)
    values = l2_clip(values, clip_override or config.clip)
    return LocalUpdate(client_id=data.client_id, indices=indices, values=values)


def encrypt_update(update: LocalUpdate, key: bytes) -> crypto.Ciphertext:
    """EncClient line 22: seal the sparse gradient under the RA key."""
    payload = crypto.encode_sparse_gradient(update.indices, update.values)
    return crypto.seal(key, payload)


def encrypt_quantized_update(
    update: LocalUpdate, key: bytes, bits: int, rng: np.random.Generator
) -> crypto.Ciphertext:
    """Quantize (QSGD) then seal: the bandwidth-saving upload path."""
    from .quantize import quantize_stochastic

    q = quantize_stochastic(update, bits, rng)
    payload = crypto.encode_quantized_gradient(q.indices, q.levels, q.scale)
    return crypto.seal(key, payload)
