"""FL client: local training, sparsification, clipping, encryption.

Implements ``EncClient`` of Algorithm 1: starting from the current
global weights, run local SGD over the private shard, take the model
delta, top-k sparsify it, L2-clip the surviving values, and encrypt the
``(index, value)`` records for the enclave under the RA-negotiated key.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sgx import crypto
from .datasets import ClientData
from .models import (
    BatchedSequential,
    Sequential,
    softmax_cross_entropy,
    softmax_cross_entropy_batch,
)
from .sparsify import (
    l2_clip,
    l2_clip_batch,
    random_k,
    random_k_batch,
    threshold,
    threshold_batch,
    top_ratio,
    top_ratio_batch,
)


@dataclass(frozen=True)
class LocalUpdate:
    """A sparse model delta produced by one client in one round."""

    client_id: int
    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if len(self.indices) != len(self.values):
            raise ValueError("indices/values length mismatch")

    @property
    def k(self) -> int:
        """Number of sparsified coordinates in this update."""
        return len(self.indices)


#: Supported client-side sparsifiers.  ``top_k`` is the paper's default
#: (data-dependent, leaky); ``threshold`` is the other data-dependent
#: family called out in Section 3.3 (it additionally leaks k itself);
#: ``random_k`` is the data-independent strawman that does not leak but
#: discards signal.
SPARSIFIERS = ("top_k", "threshold", "random_k")

#: Local optimizers: ``fedavg`` shares a multi-epoch weight delta
#: (DP-FedAVG); ``fedsgd`` shares one full-batch gradient step
#: (DP-FedSGD) -- the paper treats both uniformly as "gradients".
ALGORITHMS = ("fedavg", "fedsgd")


@dataclass(frozen=True)
class TrainingConfig:
    """Client-side hyperparameters of Algorithm 1."""

    local_epochs: int = 1
    local_lr: float = 0.1
    batch_size: int = 32
    sparse_ratio: float = 0.1
    clip: float = 1.0
    sparsifier: str = "top_k"
    threshold_tau: float = 0.01
    algorithm: str = "fedavg"

    def __post_init__(self) -> None:
        if self.sparsifier not in SPARSIFIERS:
            raise ValueError(f"unknown sparsifier {self.sparsifier!r}")
        if self.algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {self.algorithm!r}")


def local_train(
    model: Sequential,
    global_weights: np.ndarray,
    data: ClientData,
    config: TrainingConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Run local optimization from ``global_weights``; returns the
    dense delta (multi-epoch SGD for FedAVG, one full-batch gradient
    step for FedSGD)."""
    model.set_flat(global_weights)
    if config.algorithm == "fedsgd":
        logits = model.forward(data.x, train=True)
        _, dlogits = softmax_cross_entropy(logits, data.y)
        model.backward(dlogits)
        model.sgd_step(config.local_lr)
        return model.get_flat() - global_weights
    n = len(data)
    for _ in range(config.local_epochs):
        order = rng.permutation(n)
        for start in range(0, n, config.batch_size):
            batch = order[start : start + config.batch_size]
            logits = model.forward(data.x[batch], train=True)
            _, dlogits = softmax_cross_entropy(logits, data.y[batch])
            model.backward(dlogits)
            model.sgd_step(config.local_lr)
    return model.get_flat() - global_weights


def sparsify_delta(
    delta: np.ndarray, config: TrainingConfig, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Apply the configured sparsifier to a dense delta."""
    if config.sparsifier == "top_k":
        return top_ratio(delta, config.sparse_ratio)
    if config.sparsifier == "threshold":
        indices, values = threshold(delta, config.threshold_tau)
        if len(indices) == 0:
            # Never send an empty update; fall back to the single
            # largest coordinate (threshold too aggressive).
            return top_ratio(delta, 1.0 / max(delta.size, 1))
        return indices, values
    k = max(1, int(np.ceil(config.sparse_ratio * delta.size)))
    return random_k(delta, k, rng)


def compute_update(
    model: Sequential,
    global_weights: np.ndarray,
    data: ClientData,
    config: TrainingConfig,
    rng: np.random.Generator,
    clip_override: float | None = None,
) -> LocalUpdate:
    """EncClient lines 15-22: train, sparsify, L2-clip.

    ``clip_override`` supports server-broadcast adaptive clipping
    (Andrew et al.): when set -- including to an invalid ``0.0``, which
    :func:`~repro.fl.sparsify.l2_clip` rejects loudly rather than
    silently falling back to ``config.clip`` -- it replaces
    ``config.clip`` this round.
    """
    delta = local_train(model, global_weights, data, config, rng)
    indices, values = sparsify_delta(delta, config, rng)
    clip = clip_override if clip_override is not None else config.clip
    values = l2_clip(values, clip)
    return LocalUpdate(client_id=data.client_id, indices=indices, values=values)


# ----------------------------------------------------------------------
# Batched (mega-cohort) client path
# ----------------------------------------------------------------------
#
# The vectorized executor processes an entire cohort as stacked tensors:
# one batched local-training run over ``(C, n, features)`` data, one
# axis-1 sparsification over the ``(C, d)`` delta stack, one batched L2
# clip.  Per-client randomness still comes from each client's own
# derived Generators (the caller supplies them), so every row is
# bit-identical to :func:`compute_update` run serially for that client.


def local_train_batch(
    model: Sequential,
    global_weights: np.ndarray,
    xs: np.ndarray,
    ys: np.ndarray,
    config: TrainingConfig,
    train_rngs: list[np.random.Generator],
    dropout_rngs: list[dict[int, np.random.Generator]],
) -> np.ndarray:
    """Batched :func:`local_train`: returns the ``(C, d)`` delta stack.

    ``xs``/``ys`` stack C same-shape client shards; ``train_rngs`` are
    the per-client training Generators (consumed exactly as serially:
    one permutation per epoch, leaving the stream positioned for the
    sparsifier); ``dropout_rngs[c]`` maps template-layer index to client
    ``c``'s dropout Generator (:func:`~repro.runtime.seeding.reseed_model`'s
    sub-streams).
    """
    c, n = ys.shape[0], ys.shape[1]
    batched = BatchedSequential(model, global_weights, c)
    if config.algorithm == "fedsgd":
        batched.begin_training(n, dropout_rngs)
        logits = batched.forward(xs, train=True)
        dlogits = softmax_cross_entropy_batch(logits, ys)
        batched.backward(dlogits)
        batched.sgd_step(config.local_lr)
        return batched.get_flat() - global_weights
    batched.begin_training(config.local_epochs * n, dropout_rngs)
    row_index = np.arange(c)[:, None]
    for _ in range(config.local_epochs):
        orders = np.empty((c, n), dtype=np.int64)
        for i, rng in enumerate(train_rngs):
            orders[i] = rng.permutation(n)
        # One gather for the whole epoch; per-step batches are views of
        # it (same elements as the serial per-batch gather).
        ex = xs[row_index, orders]
        ey = ys[row_index, orders]
        for start in range(0, n, config.batch_size):
            stop = start + config.batch_size
            logits = batched.forward(ex[:, start:stop], train=True)
            dlogits = softmax_cross_entropy_batch(logits, ey[:, start:stop])
            batched.backward(dlogits)
            batched.sgd_step(config.local_lr)
    return batched.get_flat() - global_weights


def sparsify_delta_batch(
    deltas: np.ndarray,
    config: TrainingConfig,
    rngs: list[np.random.Generator],
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Batched :func:`sparsify_delta` over a ``(C, d)`` delta stack."""
    if config.sparsifier == "top_k":
        indices, values = top_ratio_batch(deltas, config.sparse_ratio)
        return list(zip(indices, values))
    if config.sparsifier == "threshold":
        return threshold_batch(deltas, config.threshold_tau)
    k = max(1, int(np.ceil(config.sparse_ratio * deltas.shape[1])))
    indices, values = random_k_batch(deltas, k, rngs)
    return list(zip(indices, values))


def compute_updates_batch(
    model: Sequential,
    global_weights: np.ndarray,
    datas: list[ClientData],
    config: TrainingConfig,
    train_rngs: list[np.random.Generator],
    dropout_rngs: list[dict[int, np.random.Generator]],
    clip_override: float | None = None,
) -> list[LocalUpdate]:
    """Batched :func:`compute_update` for C same-shape client shards.

    Every returned :class:`LocalUpdate` is bit-identical to the serial
    call for that client (same Generators, same operations per client
    slice) -- the contract the vectorized executor's equivalence suite
    enforces.
    """
    xs = np.stack([d.x for d in datas])
    ys = np.stack([d.y for d in datas])
    deltas = local_train_batch(
        model, global_weights, xs, ys, config, train_rngs, dropout_rngs
    )
    clip = clip_override if clip_override is not None else config.clip
    if config.sparsifier == "threshold":
        # Ragged output: training and selection are batched; the final
        # per-row clip reuses the scalar kernel on each short row.
        sparse = threshold_batch(deltas, config.threshold_tau)
        return [
            LocalUpdate(client_id=data.client_id, indices=idx,
                        values=l2_clip(val, clip))
            for data, (idx, val) in zip(datas, sparse)
        ]
    if config.sparsifier == "top_k":
        indices, values = top_ratio_batch(deltas, config.sparse_ratio)
    else:
        k = max(1, int(np.ceil(config.sparse_ratio * deltas.shape[1])))
        indices, values = random_k_batch(deltas, k, train_rngs)
    values = l2_clip_batch(values, clip)
    return [
        LocalUpdate(client_id=data.client_id, indices=idx, values=val)
        for data, idx, val in zip(datas, indices, values)
    ]


def encrypt_update(update: LocalUpdate, key: bytes) -> crypto.Ciphertext:
    """EncClient line 22: seal the sparse gradient under the RA key."""
    payload = crypto.encode_sparse_gradient(update.indices, update.values)
    return crypto.seal(key, payload)


def encrypt_quantized_update(
    update: LocalUpdate, key: bytes, bits: int, rng: np.random.Generator
) -> crypto.Ciphertext:
    """Quantize (QSGD) then seal: the bandwidth-saving upload path."""
    from .quantize import quantize_stochastic

    q = quantize_stochastic(update, bits, rng)
    payload = crypto.encode_quantized_gradient(q.indices, q.levels, q.scale)
    return crypto.seal(key, payload)
