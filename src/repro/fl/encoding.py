"""Index-set compression for sparse uploads.

Top-k index sets are sorted and dense-ish in [0, d); sending them as
raw u32s wastes most of the bits.  This module implements the standard
delta + varint (LEB128) encoding FL systems use to squeeze the index
stream, completing the paper's "regardless of its quantization and/or
encoding methods" pipeline: the leak analysis is unchanged because the
server must decode the indices to aggregate, whatever their wire form.
"""

from __future__ import annotations

import numpy as np


def varint_encode(values: list[int]) -> bytes:
    """LEB128-encode a list of non-negative integers."""
    out = bytearray()
    for value in values:
        if value < 0:
            raise ValueError("varint requires non-negative integers")
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def varint_decode(raw: bytes) -> list[int]:
    """Inverse of :func:`varint_encode`."""
    values = []
    current = 0
    shift = 0
    for byte in raw:
        current |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
            if shift > 63:
                raise ValueError("varint too long")
        else:
            values.append(current)
            current = 0
            shift = 0
    if shift != 0:
        raise ValueError("truncated varint stream")
    return values


def encode_index_set(indices: np.ndarray) -> bytes:
    """Delta + varint encoding of a sorted index array."""
    arr = np.asarray(indices, dtype=np.int64)
    if len(arr) == 0:
        return b""
    if np.any(arr < 0):
        raise ValueError("indices must be non-negative")
    if np.any(np.diff(arr) < 0):
        raise ValueError("indices must be sorted ascending")
    deltas = np.empty(len(arr), dtype=np.int64)
    deltas[0] = arr[0]
    deltas[1:] = np.diff(arr)
    return varint_encode(deltas.tolist())


def decode_index_set(raw: bytes) -> np.ndarray:
    """Inverse of :func:`encode_index_set`."""
    deltas = varint_decode(raw)
    if not deltas:
        return np.empty(0, dtype=np.int64)
    return np.cumsum(np.asarray(deltas, dtype=np.int64))


def index_wire_bytes(indices: np.ndarray) -> int:
    """Bytes on the wire for the compressed index set."""
    return len(encode_index_set(indices))


def raw_index_bytes(k: int) -> int:
    """Bytes for the uncompressed u32 representation."""
    return 4 * k
