"""Gradient sparsification and clipping (Algorithm 1, EncClient).

Top-k sparsification -- keeping the k coordinates of largest absolute
value -- is the communication-cost reducer whose *data-dependent index
choice* creates the side channel the paper attacks.  Threshold and
random-k variants are included for the generality claim of Section 3.3
(any data-dependent sparsification leaks; random-k is the
data-independent strawman that does not).
"""

from __future__ import annotations

import numpy as np


def top_k(delta: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Indices and values of the k largest-|.|$ coordinates.

    Indices are returned sorted ascending (the wire order the paper's
    clients use; the attack treats them as a set regardless).
    """
    d = delta.size
    if not 1 <= k <= d:
        raise ValueError(f"k must be in [1, {d}], got {k}")
    chosen = np.argpartition(np.abs(delta), d - k)[d - k :]
    chosen.sort()
    return chosen.astype(np.int64), delta[chosen].astype(np.float64)


def top_ratio(delta: np.ndarray, alpha: float) -> tuple[np.ndarray, np.ndarray]:
    """Top-k with k = ceil(alpha * d) (the paper's 'sparse ratio')."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError("sparse ratio must be in (0, 1]")
    k = max(1, int(np.ceil(alpha * delta.size)))
    return top_k(delta, k)


def threshold(delta: np.ndarray, tau: float) -> tuple[np.ndarray, np.ndarray]:
    """All coordinates with |value| >= tau (variable-length output)."""
    if tau < 0:
        raise ValueError("threshold must be non-negative")
    chosen = np.flatnonzero(np.abs(delta) >= tau).astype(np.int64)
    return chosen, delta[chosen].astype(np.float64)


def random_k(
    delta: np.ndarray, k: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """k uniformly random coordinates -- data-independent, leak-free."""
    d = delta.size
    if not 1 <= k <= d:
        raise ValueError(f"k must be in [1, {d}], got {k}")
    chosen = np.sort(rng.choice(d, size=k, replace=False)).astype(np.int64)
    return chosen, delta[chosen].astype(np.float64)


# ----------------------------------------------------------------------
# Batched (mega-cohort) variants: one call for a whole (C, d) stack
# ----------------------------------------------------------------------
#
# Each ``*_batch`` function applies the corresponding scalar sparsifier
# above to every row of a stacked delta tensor, producing bit-identical
# per-row results (numpy's axis-1 ``argpartition``/``sort``/``nonzero``
# run the same per-row routine the 1-D calls do; the equivalence suite
# pins this).


def top_k_batch(deltas: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise :func:`top_k` over a ``(C, d)`` stack -> ``(C, k)`` pairs."""
    d = deltas.shape[1]
    if not 1 <= k <= d:
        raise ValueError(f"k must be in [1, {d}], got {k}")
    chosen = np.argpartition(np.abs(deltas), d - k, axis=1)[:, d - k :]
    chosen.sort(axis=1)
    values = np.take_along_axis(deltas, chosen, axis=1)
    return chosen.astype(np.int64), values.astype(np.float64)


def top_ratio_batch(
    deltas: np.ndarray, alpha: float
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise :func:`top_ratio` (k = ceil(alpha * d), same k per row)."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError("sparse ratio must be in (0, 1]")
    k = max(1, int(np.ceil(alpha * deltas.shape[1])))
    return top_k_batch(deltas, k)


def threshold_batch(
    deltas: np.ndarray, tau: float
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Row-wise :func:`threshold`; ragged, so returns per-row pairs.

    Rows where nothing survives fall back to the single largest-|.|
    coordinate, matching the serial never-send-empty rule in
    :func:`repro.fl.client.sparsify_delta`.
    """
    if tau < 0:
        raise ValueError("threshold must be non-negative")
    mask = np.abs(deltas) >= tau
    counts = mask.sum(axis=1)
    rows, cols = np.nonzero(mask)              # row-major: cols ascending per row
    cuts = np.cumsum(counts)[:-1]
    idx_rows = np.split(cols.astype(np.int64), cuts)
    val_rows = np.split(deltas[rows, cols].astype(np.float64), cuts)
    out = []
    for c, (idx, val) in enumerate(zip(idx_rows, val_rows)):
        if len(idx) == 0:
            idx, val = top_k(deltas[c], 1)
        out.append((idx, val))
    return out


def random_k_batch(
    deltas: np.ndarray, k: int, rngs: list[np.random.Generator]
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise :func:`random_k`, one per-client Generator per row.

    The index draws stay a per-row loop (each row consumes its own
    stream, exactly as the serial path does); the value gather is
    vectorized.
    """
    c, d = deltas.shape
    if not 1 <= k <= d:
        raise ValueError(f"k must be in [1, {d}], got {k}")
    if len(rngs) != c:
        raise ValueError("one Generator per row required")
    chosen = np.empty((c, k), dtype=np.int64)
    for i, rng in enumerate(rngs):
        chosen[i] = np.sort(rng.choice(d, size=k, replace=False))
    values = np.take_along_axis(deltas, chosen, axis=1)
    return chosen, values.astype(np.float64)


def l2_clip_batch(values: np.ndarray, clip: float) -> np.ndarray:
    """Row-wise :func:`l2_clip` over ``(C, k)`` values.

    Row norms are computed via a batched matmul (one BLAS dot per row,
    the exact kernel ``np.linalg.norm`` uses for 1-D input), so the
    scaling decision and the scaled bits match the serial path exactly.
    """
    if clip <= 0:
        raise ValueError("clipping bound must be positive")
    out = values.astype(np.float64, copy=True)
    if out.shape[1] == 0:
        return out
    norms = np.sqrt(
        np.matmul(out[:, None, :], out[:, :, None])[:, 0, 0]
    )
    over = norms > clip
    if np.any(over):
        out[over] = out[over] * (clip / norms[over])[:, None]
    return out


def densify(indices: np.ndarray, values: np.ndarray, d: int) -> np.ndarray:
    """Expand a sparse gradient back to a dense length-d vector.

    Duplicate indices accumulate (matching the server-side aggregation
    semantics of Algorithm 5).
    """
    if len(indices) != len(values):
        raise ValueError("indices/values length mismatch")
    if len(indices) and (indices.min() < 0 or indices.max() >= d):
        raise ValueError("index out of range")
    dense = np.zeros(d)
    np.add.at(dense, indices, values)
    return dense


def l2_clip(values: np.ndarray, clip: float) -> np.ndarray:
    """Scale values so their L2 norm is at most ``clip`` (Alg. 1 line 21)."""
    if clip <= 0:
        raise ValueError("clipping bound must be positive")
    norm = float(np.linalg.norm(values))
    if norm <= clip or norm == 0.0:
        return values.copy()
    return values * (clip / norm)
