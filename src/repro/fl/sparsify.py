"""Gradient sparsification and clipping (Algorithm 1, EncClient).

Top-k sparsification -- keeping the k coordinates of largest absolute
value -- is the communication-cost reducer whose *data-dependent index
choice* creates the side channel the paper attacks.  Threshold and
random-k variants are included for the generality claim of Section 3.3
(any data-dependent sparsification leaks; random-k is the
data-independent strawman that does not).
"""

from __future__ import annotations

import numpy as np


def top_k(delta: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Indices and values of the k largest-|.|$ coordinates.

    Indices are returned sorted ascending (the wire order the paper's
    clients use; the attack treats them as a set regardless).
    """
    d = delta.size
    if not 1 <= k <= d:
        raise ValueError(f"k must be in [1, {d}], got {k}")
    chosen = np.argpartition(np.abs(delta), d - k)[d - k :]
    chosen.sort()
    return chosen.astype(np.int64), delta[chosen].astype(np.float64)


def top_ratio(delta: np.ndarray, alpha: float) -> tuple[np.ndarray, np.ndarray]:
    """Top-k with k = ceil(alpha * d) (the paper's 'sparse ratio')."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError("sparse ratio must be in (0, 1]")
    k = max(1, int(np.ceil(alpha * delta.size)))
    return top_k(delta, k)


def threshold(delta: np.ndarray, tau: float) -> tuple[np.ndarray, np.ndarray]:
    """All coordinates with |value| >= tau (variable-length output)."""
    if tau < 0:
        raise ValueError("threshold must be non-negative")
    chosen = np.flatnonzero(np.abs(delta) >= tau).astype(np.int64)
    return chosen, delta[chosen].astype(np.float64)


def random_k(
    delta: np.ndarray, k: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """k uniformly random coordinates -- data-independent, leak-free."""
    d = delta.size
    if not 1 <= k <= d:
        raise ValueError(f"k must be in [1, {d}], got {k}")
    chosen = np.sort(rng.choice(d, size=k, replace=False)).astype(np.int64)
    return chosen, delta[chosen].astype(np.float64)


def densify(indices: np.ndarray, values: np.ndarray, d: int) -> np.ndarray:
    """Expand a sparse gradient back to a dense length-d vector.

    Duplicate indices accumulate (matching the server-side aggregation
    semantics of Algorithm 5).
    """
    if len(indices) != len(values):
        raise ValueError("indices/values length mismatch")
    if len(indices) and (indices.min() < 0 or indices.max() >= d):
        raise ValueError("index out of range")
    dense = np.zeros(d)
    np.add.at(dense, indices, values)
    return dense


def l2_clip(values: np.ndarray, clip: float) -> np.ndarray:
    """Scale values so their L2 norm is at most ``clip`` (Alg. 1 line 21)."""
    if clip <= 0:
        raise ValueError("clipping bound must be positive")
    norm = float(np.linalg.norm(values))
    if norm <= clip or norm == 0.0:
        return values.copy()
    return values * (clip / norm)
