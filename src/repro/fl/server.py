"""Reference (non-TEE) federated training loops.

Provides the DP-FedAVG simulation the rest of the repository builds on:

* :class:`FederatedSimulation` -- client-level DP-FedAVG with top-k
  sparsified updates, recording per-round participants, their sparse
  updates (ground truth for the attack evaluation), and the global
  model trajectory.  This is the *plain CDP-FL* path: the server sees
  raw updates, exactly the trust problem OLIVE removes.
* :func:`run_ldp_round` / scheme hooks used by the Table 1 comparison,
  where clients perturb locally (LDP-FL) or rely on shuffle
  amplification (Shuffle-DP-FL).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from ..dp.mechanisms import gaussian_perturb
from ..runtime import CohortRuntime, RuntimeConfig
from .client import LocalUpdate, TrainingConfig, local_train
from .datasets import ClientData
from .models import Sequential, accuracy
from .sparsify import densify


@dataclass(frozen=True)
class ServerConfig:
    """Server-side hyperparameters of Algorithm 1."""

    sample_rate: float = 0.1
    server_lr: float = 1.0
    noise_multiplier: float = 1.12
    expected_clients: int | None = None  # q*N denominator; default q*len(clients)


@dataclass
class RoundLog:
    """Everything one round produced (attack ground truth included)."""

    round_index: int
    participants: list[int]
    updates: dict[int, LocalUpdate]
    weights_before: np.ndarray
    weights_after: np.ndarray


@dataclass
class FederatedSimulation:
    """Client-level DP-FedAVG over sparse updates (paper Section 3.2).

    The aggregation itself is the plain dense scatter-add; the OLIVE
    system (:mod:`repro.core.olive`) replaces it with enclave-resident
    oblivious aggregation without changing the learning semantics.
    """

    model: Sequential
    clients: list[ClientData]
    training: TrainingConfig = field(default_factory=TrainingConfig)
    server: ServerConfig = field(default_factory=ServerConfig)
    seed: int = 0
    runtime_config: RuntimeConfig = field(default_factory=RuntimeConfig)

    def __post_init__(self) -> None:
        faults = self.runtime_config.faults
        if faults.corrupt_rate > 0 or faults.replay_rate > 0:
            raise ValueError(
                "transport faults (corrupt/replay) need the encrypted "
                "OLIVE path; the plain simulation has no ciphertexts"
            )
        self._rng = np.random.default_rng(self.seed)
        self.history: list[RoundLog] = []
        self.global_weights = self.model.get_flat()
        self.runtime = CohortRuntime(
            self.runtime_config, copy.deepcopy(self.model), self.clients,
            entropy=self.seed,
        )

    @property
    def d(self) -> int:
        """Model dimensionality."""
        return self.global_weights.size

    def close(self) -> None:
        """Release runtime pools / shared memory (idempotent)."""
        self.runtime.close()

    def __enter__(self) -> "FederatedSimulation":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _sample_participants(self) -> list[int]:
        mask = self._rng.random(len(self.clients)) < self.server.sample_rate
        chosen = [c.client_id for c, m in zip(self.clients, mask) if m]
        if not chosen:
            chosen = [int(self._rng.integers(len(self.clients)))]
        return chosen

    def run_round(self, participants: list[int] | None = None) -> RoundLog:
        """One DP-FedAVG round; returns its log.

        Local training executes through the cohort runtime: parallel
        executors and injected faults change wall clock and who
        completes, never the surviving clients' update bits.
        """
        if participants is None:
            participants = self._sample_participants()
        weights_before = self.global_weights.copy()
        cohort = self.runtime.run_cohort(
            len(self.history), participants, weights_before, self.training,
        )
        updates: dict[int, LocalUpdate] = {
            d.client_id: d.result.to_update() for d in cohort.deliveries
        }
        self.runtime.check_quorum(len(updates), len(participants))

        aggregate = np.zeros(self.d)
        for update in updates.values():
            aggregate += densify(update.indices, update.values, self.d)
        denominator = self.server.expected_clients or max(
            1.0, self.server.sample_rate * len(self.clients)
        )
        mean_update = gaussian_perturb(
            aggregate, self.training.clip, self.server.noise_multiplier,
            denominator, self._rng,
        )
        self.global_weights = weights_before + self.server.server_lr * mean_update
        self.model.set_flat(self.global_weights)

        log = RoundLog(
            round_index=len(self.history),
            participants=sorted(updates),
            updates=updates,
            weights_before=weights_before,
            weights_after=self.global_weights.copy(),
        )
        self.history.append(log)
        return log

    def run(self, rounds: int) -> list[RoundLog]:
        """Run several rounds; returns their logs."""
        return [self.run_round() for _ in range(rounds)]

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Test accuracy of the current global model."""
        self.model.set_flat(self.global_weights)
        return accuracy(self.model, x, y)


def run_ldp_round(
    model: Sequential,
    global_weights: np.ndarray,
    participants: list[ClientData],
    training: TrainingConfig,
    local_sigma: float,
    rng: np.random.Generator,
    server_lr: float = 1.0,
) -> np.ndarray:
    """One LDP/Shuffle-style round: dense local perturbation, plain mean.

    Each client clips its dense delta to the training clip bound and
    adds ``N(0, (local_sigma * clip)^2)`` per coordinate before sending;
    the server (or shuffler output) is simply averaged.  Used by the
    Table 1 utility comparison.
    """
    d = global_weights.size
    aggregate = np.zeros(d)
    for data in participants:
        delta = local_train(model, global_weights, data, training, rng)
        norm = np.linalg.norm(delta)
        if norm > training.clip:
            delta = delta * (training.clip / norm)
        noisy = delta + rng.normal(0.0, local_sigma * training.clip, size=d)
        aggregate += noisy
    mean_update = aggregate / max(len(participants), 1)
    return global_weights + server_lr * mean_update
