"""RDP accountant for the subsampled Gaussian mechanism.

The paper quantifies the ``(epsilon, delta)``-DP of the trained model
with the moments accountant (Abadi et al.), whose modern formulation is
Renyi DP of the Poisson-subsampled Gaussian (Mironov et al.).  This
module implements:

* :func:`compute_rdp` -- RDP at integer orders alpha of one subsampled
  Gaussian step with sampling rate q and noise multiplier sigma, via the
  exact binomial expansion
  ``A(alpha) = sum_i C(alpha,i) (1-q)^(alpha-i) q^i exp(i(i-1)/(2 sigma^2))``;
* :func:`rdp_to_dp` -- conversion to ``(epsilon, delta)`` by minimizing
  ``rdp(alpha) + log(1/delta)/(alpha-1)`` over orders;
* :class:`PrivacyAccountant` -- accumulates rounds and reports the
  current client-level budget.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from scipy.special import gammaln, logsumexp

DEFAULT_ORDERS: tuple[int, ...] = tuple(range(2, 64)) + (
    64, 80, 96, 128, 192, 256, 512,
)


def _log_binom(n: int, k: int) -> float:
    return float(gammaln(n + 1) - gammaln(k + 1) - gammaln(n - k + 1))


def _log_a_int(q: float, sigma: float, alpha: int) -> float:
    """log A(alpha) for integer alpha >= 2 (Mironov et al., eq. for
    the Poisson-subsampled Gaussian)."""
    terms = []
    log_q = math.log(q)
    log_1mq = math.log1p(-q)
    for i in range(alpha + 1):
        log_term = (
            _log_binom(alpha, i)
            + i * log_q
            + (alpha - i) * log_1mq
            + (i * i - i) / (2.0 * sigma * sigma)
        )
        terms.append(log_term)
    return float(logsumexp(terms))


def compute_rdp(
    q: float, noise_multiplier: float, steps: int,
    orders: Sequence[int] = DEFAULT_ORDERS,
) -> list[float]:
    """RDP of ``steps`` subsampled-Gaussian rounds at each order."""
    if not 0.0 < q <= 1.0:
        raise ValueError("sampling rate must be in (0, 1]")
    if noise_multiplier <= 0 or noise_multiplier * noise_multiplier == 0.0:
        # The second clause catches subnormal sigmas whose square
        # underflows to zero: no meaningful guarantee either way.
        raise ValueError("noise multiplier must be positive for accounting")
    if steps < 0:
        raise ValueError("steps must be non-negative")
    rdp = []
    for alpha in orders:
        if alpha < 2:
            raise ValueError("orders must be integers >= 2")
        if q == 1.0:
            # Unsubsampled Gaussian: RDP(alpha) = alpha / (2 sigma^2).
            eps_alpha = alpha / (2.0 * noise_multiplier**2)
        else:
            eps_alpha = _log_a_int(q, noise_multiplier, alpha) / (alpha - 1)
        rdp.append(eps_alpha * steps)
    return rdp


def rdp_to_dp(
    rdp: Sequence[float], orders: Sequence[int], delta: float
) -> tuple[float, int]:
    """Best ``(epsilon, order)`` at the target delta."""
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    best_eps = math.inf
    best_order = orders[0]
    for eps_alpha, alpha in zip(rdp, orders):
        eps = eps_alpha + math.log(1.0 / delta) / (alpha - 1)
        if eps < best_eps:
            best_eps = eps
            best_order = alpha
    return best_eps, best_order


def epsilon_for(
    q: float, noise_multiplier: float, steps: int, delta: float,
    orders: Sequence[int] = DEFAULT_ORDERS,
) -> float:
    """Convenience: epsilon after ``steps`` rounds at the target delta."""
    rdp = compute_rdp(q, noise_multiplier, steps, orders)
    eps, _ = rdp_to_dp(rdp, orders, delta)
    return eps


def noise_multiplier_for(
    q: float, steps: int, target_epsilon: float, delta: float,
    orders: Sequence[int] = DEFAULT_ORDERS,
    tolerance: float = 1e-3,
) -> float:
    """Smallest sigma achieving the target budget (bisection search)."""
    if target_epsilon <= 0:
        raise ValueError("target epsilon must be positive")
    lo, hi = 1e-2, 1.0
    while epsilon_for(q, hi, steps, delta, orders) > target_epsilon:
        hi *= 2.0
        if hi > 1e4:
            raise RuntimeError("target budget unreachable")
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if epsilon_for(q, mid, steps, delta, orders) > target_epsilon:
            lo = mid
        else:
            hi = mid
    return hi


@dataclass
class PrivacyAccountant:
    """Accumulates per-round RDP and reports the running budget.

    Two kinds of rounds compose (RDP adds across mechanisms):

    * :meth:`step` -- a round at the *configured* sampling rate (the
      paper's fixed-q accounting);
    * :meth:`step_realized` -- a round charged at the cohort fraction
      that actually survived (dropouts, stragglers, rejections), used
      by the cohort runtime under fault injection.
    """

    sampling_rate: float
    noise_multiplier: float
    delta: float
    orders: tuple[int, ...] = DEFAULT_ORDERS
    steps: int = field(default=0)
    realized_rates: list[float] = field(default_factory=list)

    def step(self, rounds: int = 1) -> None:
        """Consume one (or more) subsampled-Gaussian rounds."""
        self.steps += rounds

    def step_realized(self, realized_rate: float) -> None:
        """Consume one round at the *realized* cohort fraction.

        ``realized_rate`` is survivors / N.  A round where nobody
        survived releases only data-independent noise and costs no
        budget (q = 0 contributes zero RDP), so it is recorded as 0
        and skipped in the epsilon computation.
        """
        if not 0.0 <= realized_rate <= 1.0:
            raise ValueError("realized rate must be in [0, 1]")
        self.realized_rates.append(float(realized_rate))

    @property
    def total_steps(self) -> int:
        """All rounds consumed, fixed-rate and realized alike."""
        return self.steps + len(self.realized_rates)

    @property
    def epsilon(self) -> float:
        """Current (epsilon, delta)-DP budget at the configured delta."""
        realized = [q for q in self.realized_rates if q > 0.0]
        if self.steps == 0 and not realized:
            return 0.0
        if (self.noise_multiplier <= 0
                or self.noise_multiplier * self.noise_multiplier == 0.0):
            # Noiseless (or underflowing-sigma) runs: no DP guarantee.
            return math.inf
        total_rdp = [0.0] * len(self.orders)
        if self.steps:
            rdp = compute_rdp(
                self.sampling_rate, self.noise_multiplier, self.steps,
                self.orders,
            )
            total_rdp = [a + b for a, b in zip(total_rdp, rdp)]
        # Group realized rounds by rate: RDP composes additively, and
        # equal-rate rounds share one compute_rdp call.
        for q, count in Counter(realized).items():
            rdp = compute_rdp(q, self.noise_multiplier, count, self.orders)
            total_rdp = [a + b for a, b in zip(total_rdp, rdp)]
        eps, _ = rdp_to_dp(total_rdp, self.orders, self.delta)
        return eps
