"""Differential privacy mechanisms used by OLIVE's server side.

DP-FedAVG adds Gaussian noise calibrated to the per-client L2 clipping
bound C before releasing the averaged update (Algorithm 1 line 12):
``(sum_i Delta_i + N(0, (sigma * C)^2 I)) / (q N)``.  ``sigma`` is the
*noise multiplier* (noise stddev divided by the clip), the quantity the
moments accountant consumes.
"""

from __future__ import annotations

import numpy as np


def gaussian_perturb(
    aggregate: np.ndarray,
    clip: float,
    noise_multiplier: float,
    denominator: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Noise and normalize a summed update.

    Parameters mirror Algorithm 1: ``aggregate`` is the plain sum of
    clipped client deltas, ``denominator`` is ``q * N`` (the expected
    participant count), ``noise_multiplier`` is sigma.
    """
    if clip <= 0:
        raise ValueError("clip must be positive")
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    if noise_multiplier < 0:
        raise ValueError("noise multiplier must be non-negative")
    noise = rng.normal(0.0, noise_multiplier * clip, size=aggregate.shape)
    return (aggregate + noise) / denominator


def sensitivity_of_mean(clip: float, denominator: float) -> float:
    """L2 sensitivity of the normalized sum to one client's presence."""
    return clip / denominator
