"""LDP-FL and Shuffle-DP-FL baselines (Table 1 comparison).

OLIVE's headline claim is ``OLIVE = CDP-FL`` in utility while matching
LDP-FL's trust model; the comparison schemes are:

* **LDP-FL** -- every client perturbs its own clipped update with a
  Gaussian calibrated so *each client's report alone* satisfies
  ``(epsilon_0, delta_0)``-LDP.  For a fixed central budget, the
  per-client sigma is ~sqrt(n) larger than the central sigma, drowning
  the signal unless n is enormous.
* **Shuffle-DP-FL** -- clients apply weaker local noise and a trusted
  shuffler anonymizes the batch; privacy amplification by shuffling
  converts ``epsilon_0``-LDP reports into a much smaller central
  epsilon.  We use the closed-form "privacy blanket / clones" style
  upper bound, which captures the paper's qualitative point: the
  amplified budget still cannot beat CDP, and degrades when n is small.
"""

from __future__ import annotations

import math

import numpy as np


def gaussian_ldp_sigma(epsilon: float, delta: float) -> float:
    """Classic Gaussian-mechanism sigma for one (sensitivity-1) report."""
    if epsilon <= 0 or not 0 < delta < 1:
        raise ValueError("need epsilon > 0 and delta in (0, 1)")
    return math.sqrt(2.0 * math.log(1.25 / delta)) / epsilon


def perturb_local(
    values: np.ndarray, clip: float, epsilon: float, delta: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Client-side Gaussian perturbation for LDP-FL."""
    sigma = gaussian_ldp_sigma(epsilon, delta) * clip
    return values + rng.normal(0.0, sigma, size=values.shape)


def shuffle_amplified_epsilon(
    local_epsilon: float, n: int, delta: float
) -> float:
    """Central epsilon after shuffling n epsilon_0-LDP reports.

    Closed-form upper bound in the style of Feldman-McMillan-Talwar
    ("hiding among clones"):

        eps_c = log(1 + (e^{eps0} - 1) *
                     (4 sqrt(2 log(4/delta) / ((e^{eps0}+1) n)) + 4/n))

    Valid for n large enough that the inner term is < 1; we clamp at
    ``local_epsilon`` since shuffling never hurts.
    """
    if local_epsilon <= 0 or n < 1 or not 0 < delta < 1:
        raise ValueError("invalid amplification parameters")
    e0 = math.expm1(local_epsilon)  # e^{eps0} - 1
    inner = (
        4.0 * math.sqrt(2.0 * math.log(4.0 / delta) /
                        ((math.exp(local_epsilon) + 1.0) * n))
        + 4.0 / n
    )
    amplified = math.log1p(e0 * inner)
    return min(amplified, local_epsilon)


def local_epsilon_for_central(
    target_epsilon: float, n: int, delta: float, tolerance: float = 1e-4
) -> float:
    """Largest local epsilon whose amplified central budget fits the target.

    Bisection on the monotone amplification bound; this is how the
    Shuffle-DP-FL baseline calibrates its per-client noise.
    """
    if target_epsilon <= 0:
        raise ValueError("target epsilon must be positive")
    lo, hi = 1e-6, 1e-6
    while shuffle_amplified_epsilon(hi, n, delta) < target_epsilon:
        hi *= 2.0
        if hi > 1e3:
            return hi  # amplification saturated; target trivially met
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if shuffle_amplified_epsilon(mid, n, delta) < target_epsilon:
            lo = mid
        else:
            hi = mid
    return lo
