"""Adaptive clipping for DP-FedAVG (Andrew et al., the paper's [5]).

A fixed clipping bound C either truncates signal (too small) or wastes
the privacy budget on noise (too large).  Adaptive clipping tracks a
target quantile of the client update norms with a differentially
private quantile estimator:

* each client reports one private bit ``b_i = 1[||delta_i|| <= C]``;
* the server averages the (noised) bits and nudges C geometrically
  toward the target quantile gamma:
  ``C <- C * exp(-lr * (mean(b) - gamma))``.

The bit aggregate is itself noised (sigma_b), and the paper's [5]
accounting treats the bit as a second, cheap query; here we expose the
machinery and verify its control behaviour, while the main accountant
covers the value query.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class AdaptiveClipper:
    """Geometric DP quantile tracker for the clipping bound.

    Parameters
    ----------
    initial_clip:
        Starting bound C_0.
    target_quantile:
        gamma: fraction of client norms that should fall below C.
    learning_rate:
        eta_C of the geometric update.
    bit_noise:
        Stddev of the Gaussian noise added to the bit sum (set 0 to
        disable for ablations).
    """

    initial_clip: float = 1.0
    target_quantile: float = 0.5
    learning_rate: float = 0.2
    bit_noise: float = 0.0

    def __post_init__(self) -> None:
        if self.initial_clip <= 0:
            raise ValueError("initial clip must be positive")
        if not 0.0 < self.target_quantile < 1.0:
            raise ValueError("target quantile must be in (0, 1)")
        if self.learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if self.bit_noise < 0:
            raise ValueError("bit noise must be non-negative")
        self.clip = self.initial_clip
        self.history: list[float] = [self.initial_clip]

    def clip_bit(self, norm: float) -> int:
        """The client-side private bit: was my norm within the bound?"""
        return int(norm <= self.clip)

    def update(self, bits: list[int] | np.ndarray,
               rng: np.random.Generator | None = None) -> float:
        """One server-side quantile step; returns the new bound."""
        bits = np.asarray(bits, dtype=np.float64)
        if len(bits) == 0:
            return self.clip
        total = float(bits.sum())
        if self.bit_noise > 0:
            rng = rng or np.random.default_rng()
            total += float(rng.normal(0.0, self.bit_noise))
        fraction = total / len(bits)
        self.clip *= float(np.exp(
            -self.learning_rate * (fraction - self.target_quantile)
        ))
        self.history.append(self.clip)
        return self.clip

    def step_with_norms(self, norms: list[float],
                        rng: np.random.Generator | None = None) -> float:
        """Convenience: derive the bits from raw norms and update."""
        return self.update([self.clip_bit(n) for n in norms], rng=rng)
