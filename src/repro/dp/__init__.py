"""Differential privacy: Gaussian mechanism, RDP (moments) accountant,
and the LDP / shuffle-model baselines for the Table 1 comparison."""

from .adaptive_clipping import AdaptiveClipper
from .accountant import (
    DEFAULT_ORDERS,
    PrivacyAccountant,
    compute_rdp,
    epsilon_for,
    noise_multiplier_for,
    rdp_to_dp,
)
from .ldp import (
    gaussian_ldp_sigma,
    local_epsilon_for_central,
    perturb_local,
    shuffle_amplified_epsilon,
)
from .mechanisms import gaussian_perturb, sensitivity_of_mean

__all__ = [
    "AdaptiveClipper",
    "DEFAULT_ORDERS",
    "PrivacyAccountant",
    "compute_rdp",
    "epsilon_for",
    "gaussian_ldp_sigma",
    "gaussian_perturb",
    "local_epsilon_for_central",
    "noise_multiplier_for",
    "perturb_local",
    "rdp_to_dp",
    "sensitivity_of_mean",
    "shuffle_amplified_epsilon",
]
