"""Concurrent request scheduler for the oblivious inference engine.

The serving front door: clients submit sealed requests from arbitrary
threads; a dispatcher thread forms **deadline-driven, fixed-shape
batches** and runs them through the engine.  A batch flushes when it
fills to the configured size or when its oldest request has waited
``max_wait_s`` -- and every batch is padded with dummy slots up to the
fixed size, so neither the batch *shape* nor the flush cadence encodes
how many real requests arrived (padding slots run the identical
compute and retrieval; ISSUE: batch composition must not leak).

Request/response confidentiality rides the training-side RA keys: the
scheduler unseals each request under the submitting client's key from
the enclave :class:`~repro.sgx.enclave.KeyStore` and seals the response
nonce-bound to the request (:mod:`repro.serving.envelopes`).

Telemetry (all under ``serving.*``): per-request queue wait and
end-to-end latency histograms, per-batch forward wall time and fill
counts, plus lock-guarded local counters (``requests_served``,
``batches``, ``padded_slots``) so tests can assert scheduling behavior
without a telemetry session.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..sgx import crypto
from .engine import ObliviousInferenceEngine, ServedBatch
from .envelopes import open_request, seal_response


@dataclass
class ServingConfig:
    """Scheduler knobs (the engine owns batch size and obliviousness)."""

    max_wait_s: float = 0.005   # oldest-request deadline before a flush
    traced: bool = False        # record per-batch traces (attack/audit)
    keep_batches: bool = False  # retain ServedBatch list (attack scoring)


@dataclass
class _Pending:
    """One unsealed request waiting for its batch."""

    client_id: int
    request_nonce: bytes
    x: np.ndarray
    future: Future
    arrived: float = field(default_factory=time.monotonic)


class InferenceServer:
    """Thread-safe sealed-request front end over a fixed-batch engine.

    Use as a context manager (``with InferenceServer(engine) as srv:``)
    or call :meth:`start` / :meth:`stop` explicitly.  ``stop`` drains:
    whatever is queued flushes as a final padded batch before the
    dispatcher exits, so no submitted future is left unresolved.
    """

    def __init__(
        self,
        engine: ObliviousInferenceEngine,
        config: ServingConfig | None = None,
    ) -> None:
        self.engine = engine
        self.config = config or ServingConfig()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: list[_Pending] = []
        self._stopping = False
        self._dispatcher: threading.Thread | None = None
        self._input_shape: tuple[int, ...] | None = None
        # Scheduling counters, asserted on by tests without telemetry.
        self.requests_served = 0
        self.batches = 0
        self.padded_slots = 0
        #: Retained batches when ``config.keep_batches`` (attack input).
        self.served: list[tuple[ServedBatch, int]] = []

    # ------------------------------------------------------------------
    def __enter__(self) -> "InferenceServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        if self._dispatcher is not None:
            raise RuntimeError("server already started")
        self._stopping = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serving-dispatcher", daemon=True
        )
        self._dispatcher.start()

    def stop(self) -> None:
        """Drain the queue, flush the final padded batch, join."""
        if self._dispatcher is None:
            return
        with self._wakeup:
            self._stopping = True
            self._wakeup.notify()
        self._dispatcher.join()
        self._dispatcher = None

    # ------------------------------------------------------------------
    def submit(self, client_id: int, sealed: crypto.Ciphertext) -> Future:
        """Enqueue one sealed request; resolves to the sealed response.

        Unsealing happens here, inside the enclave boundary: a bad key
        or tampered envelope raises immediately
        (:class:`~repro.sgx.crypto.AuthenticationError` /
        :class:`~repro.sgx.enclave.EnclaveSecurityError`) and never
        enters the batch queue.
        """
        if self._dispatcher is None:
            raise RuntimeError("server not started")
        key = self.engine.enclave.keystore.get(client_id)
        x = open_request(key, sealed)
        future: Future = Future()
        pending = _Pending(client_id, sealed.nonce, x, future)
        with self._wakeup:
            if self._input_shape is None:
                self._input_shape = x.shape
            elif x.shape != self._input_shape:
                raise ValueError(
                    f"request shape {x.shape} != serving shape "
                    f"{self._input_shape}"
                )
            self._queue.append(pending)
            self._wakeup.notify()
        return future

    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        cfg = self.config
        size = self.engine.batch_size
        while True:
            with self._wakeup:
                while True:
                    if len(self._queue) >= size:
                        break
                    if self._stopping:
                        break
                    if self._queue:
                        deadline = self._queue[0].arrived + cfg.max_wait_s
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._wakeup.wait(timeout=remaining)
                    else:
                        self._wakeup.wait()
                if self._stopping and not self._queue:
                    return
                batch = self._queue[:size]
                del self._queue[:size]
            self._run_batch(batch)

    def _run_batch(self, batch: list[_Pending]) -> None:
        cfg = self.config
        size = self.engine.batch_size
        started = time.monotonic()
        fill = len(batch)
        padded = size - fill
        for pending in batch:
            obs.observe("serving.queue_wait_s", started - pending.arrived)
        with obs.span("serving.batch", fill=fill, padded=padded):
            # Fixed-shape padding: dummy zero inputs occupy the empty
            # slots and run the identical compute + retrieval.
            assert self._input_shape is not None
            x = np.zeros((size, *self._input_shape))
            for slot, pending in enumerate(batch):
                x[slot] = pending.x
            try:
                result = self.engine.infer_batch(x, traced=cfg.traced)
            except BaseException as exc:
                for pending in batch:
                    pending.future.set_exception(exc)
                return
            for slot, pending in enumerate(batch):
                key = self.engine.enclave.keystore.get(pending.client_id)
                response = seal_response(
                    key,
                    pending.request_nonce,
                    int(result.labels[slot]),
                    result.calibrated[slot],
                )
                pending.future.set_result(response)
                obs.observe(
                    "serving.request_latency_s",
                    time.monotonic() - pending.arrived,
                )
        obs.observe("serving.batch_fill", float(fill))
        with self._lock:
            self.requests_served += fill
            self.batches += 1
            self.padded_slots += padded
            if cfg.keep_batches:
                self.served.append((result, fill))
