"""``python -m repro serve`` -- serve a checkpoint obliviously.

Loads a trained model from a training checkpoint (or trains a quick
synthetic one when no checkpoint is given), provisions serving clients
with RA keys, and drives a seeded open-loop load of sealed requests
through the batch scheduler.  Prints throughput, request-latency
percentiles, the modelled enclave cost of one traced batch, and --
with ``--attack`` -- the trace-leakage AUC of the configured mode
(~=0.5 oblivious, ~=1.0 plain).
"""

from __future__ import annotations

import argparse
import logging
import sys
import threading
import time
from typing import Sequence

import numpy as np

from .. import obs
from ..fl.datasets import SPECS, SyntheticClassData
from ..fl.models import build_model, softmax_cross_entropy
from ..sgx.enclave import Enclave, provision_enclave_with_clients
from .engine import ObliviousInferenceEngine, load_serving_model, replay_serving_cost
from .envelopes import open_response, seal_request
from .server import InferenceServer, ServingConfig

logger = logging.getLogger("repro.serve")


def _parse_args(argv: Sequence[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Oblivious model serving demo: load a checkpoint, "
                    "drive a sealed-request load, report latency and "
                    "leakage.",
    )
    parser.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="training checkpoint (.npz) to serve; architecture is "
             "inferred from the weight count (default: train a quick "
             "synthetic tiny_mlp in-process)",
    )
    parser.add_argument(
        "--model", metavar="NAME", default=None,
        help="architecture override when the checkpoint's weight count "
             "is ambiguous",
    )
    parser.add_argument(
        "--requests", type=int, metavar="N", default=64,
        help="number of sealed requests in the load run (default 64)",
    )
    parser.add_argument(
        "--clients", type=int, metavar="N", default=4,
        help="number of provisioned serving clients (default 4)",
    )
    parser.add_argument(
        "--batch-size", type=int, metavar="B", default=8,
        help="fixed serving batch shape (default 8)",
    )
    parser.add_argument(
        "--max-wait-ms", type=float, metavar="MS", default=5.0,
        help="deadline before a partial batch flushes padded (default 5)",
    )
    parser.add_argument(
        "--plain", action="store_true",
        help="serve with the non-oblivious row-read path (the leaky "
             "baseline the attack scores against)",
    )
    parser.add_argument(
        "--attack", action="store_true",
        help="after the load run, score trace leakage with the serving "
             "attack (JAC and NN)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for request sampling and open-loop arrivals",
    )
    parser.add_argument(
        "--telemetry-out", metavar="PATH", default=None,
        help="write the load run's telemetry event stream to PATH as "
             "JSONL (render: python -m repro report PATH)",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="DEBUG logging plus the telemetry summary tree",
    )
    return parser.parse_args(list(argv))


def _quick_model(seed: int):
    """A tiny_mlp given a few hundred synthetic SGD steps."""
    spec = SPECS["tiny"]
    model = build_model(spec.model_name, seed=seed)
    data = SyntheticClassData(spec, seed=seed)
    rng = np.random.default_rng(seed)
    for _ in range(200):
        y = rng.integers(0, spec.n_labels, size=32)
        x = data.sample(y, rng)
        logits = model.forward(x, train=True)
        _, dlogits = softmax_cross_entropy(logits, y)
        model.backward(dlogits)
        model.sgd_step(0.1)
    return model, spec


def main(argv: Sequence[str] | None = None) -> int:
    args = _parse_args(list(argv) if argv is not None else [])
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(message)s", stream=sys.stdout, force=True,
    )

    specs_by_model = {spec.model_name: spec for spec in SPECS.values()}
    if args.checkpoint:
        model, meta = load_serving_model(args.checkpoint, args.model)
        name = meta["model_name"]
        if name not in specs_by_model:
            logger.error("no dataset spec serves model %r", name)
            return 2
        spec = specs_by_model[name]
        logger.info("serving %s from %s (round %s)", name, args.checkpoint,
                    meta.get("round", "?"))
    else:
        model, spec = _quick_model(args.seed)
        logger.info("serving a freshly trained synthetic %s "
                    "(no --checkpoint given)", spec.model_name)

    sinks: list = [obs.MemorySink()]
    if args.telemetry_out:
        sinks.append(obs.JsonlSink(args.telemetry_out))

    enclave = Enclave(seed=args.seed)
    client_ids = list(range(1, max(1, args.clients) + 1))
    keys = provision_enclave_with_clients(enclave, client_ids)
    engine = ObliviousInferenceEngine(
        model, batch_size=args.batch_size, oblivious=not args.plain,
        enclave=enclave,
    )
    logger.info("  %d client(s) attested; batch size %d, mode: %s",
                len(client_ids), args.batch_size,
                "oblivious" if engine.oblivious else "PLAIN (leaky)")

    data = SyntheticClassData(spec, seed=args.seed)
    rng = np.random.default_rng(args.seed)
    # Open-loop arrivals: seeded exponential interarrival gaps with a
    # mean that keeps several requests in flight per batch window.
    mean_gap = (args.max_wait_ms / 1000.0) / max(1, args.batch_size // 2)
    gaps = rng.exponential(mean_gap, size=args.requests)
    labels_sent = rng.integers(0, spec.n_labels, size=args.requests)
    xs = data.sample(labels_sent, rng)

    latencies: list[float] = []
    latency_lock = threading.Lock()

    with obs.session(sinks=sinks):
        config = ServingConfig(max_wait_s=args.max_wait_ms / 1000.0)
        t_start = time.monotonic()
        with InferenceServer(engine, config) as server:
            futures = []
            for i in range(args.requests):
                time.sleep(gaps[i])
                cid = client_ids[i % len(client_ids)]
                sealed = seal_request(keys[cid], xs[i])
                t_submit = time.monotonic()
                future = server.submit(cid, sealed)

                def _done(f, t0=t_submit):
                    with latency_lock:
                        latencies.append(time.monotonic() - t0)

                future.add_done_callback(_done)
                futures.append((cid, future))
            responses = [(cid, f.result(timeout=30)) for cid, f in futures]
        wall = time.monotonic() - t_start

        label_counts = np.zeros(spec.n_labels, dtype=np.int64)
        for cid, sealed in responses:
            label, _ = open_response(keys[cid], sealed)
            label_counts[label] += 1
        lat = np.sort(np.asarray(latencies))
        logger.info("  served %d request(s) in %d batch(es) "
                    "(%d padded slot(s)) over %.2fs -> %.0f req/s",
                    server.requests_served, server.batches,
                    server.padded_slots, wall, args.requests / wall)
        logger.info("  request latency: p50 %.2fms  p95 %.2fms  p99 %.2fms",
                    1e3 * lat[int(0.50 * (len(lat) - 1))],
                    1e3 * lat[int(0.95 * (len(lat) - 1))],
                    1e3 * lat[int(0.99 * (len(lat) - 1))])
        logger.info("  response labels: %s", label_counts.tolist())

        traced = engine.infer_batch(
            xs[: args.batch_size]
            if args.requests >= args.batch_size
            else data.sample(
                rng.integers(0, spec.n_labels, size=args.batch_size), rng
            ),
            traced=True,
        )
        stats, report = replay_serving_cost(traced)
        logger.info("  modelled enclave cost per traced batch: %.1fus "
                    "(%d access(es), %d DRAM)",
                    1e6 * stats.seconds, report.accesses,
                    report.dram_accesses)

        if args.attack:
            from ..attack import AttackConfig, run_serving_attack

            def batches(n, seed):
                out = []
                r = np.random.default_rng(seed)
                for _ in range(n):
                    y = r.integers(0, spec.n_labels, size=args.batch_size)
                    out.append(engine.infer_batch(data.sample(y, r)))
                return out

            probes = batches(6, args.seed + 101)
            victims = batches(6, args.seed + 202)
            for method in ("jac", "nn"):
                result = run_serving_attack(
                    victims, probes, spec.n_labels,
                    AttackConfig(method=method, nn_epochs=10),
                )
                logger.info("  serving attack (%s): AUC %.3f, top-1 %.3f"
                            "%s", method, result.auc, result.top1_accuracy,
                            "  [no leakage]" if result.auc <= 0.55 else
                            "  [LEAKY]")
        summary = obs.render_summary(title="telemetry summary (serve run)")

    logger.debug("%s", summary)
    if args.telemetry_out:
        logger.info("  telemetry events written to %s", args.telemetry_out)
    return 0
