"""Oblivious inference engine: trace-oblivious forward passes in the enclave.

The serving twin of the oblivious aggregators.  A trained model (loaded
from the training checkpoint format) runs inside an :class:`Enclave`;
the data-dependent step of responding to a request -- retrieving the
predicted class's calibration row from a per-class table, the
embedding/table-lookup shape TENNOR makes the core of oblivious NN
execution -- goes through the enclave's traced memory in one of two
modes:

* **oblivious** (the product path): every slot scans the *entire*
  class table front to back (one ``read_block``, the grouped/batched
  form of :func:`repro.oblivious.primitives.o_access_rows`) and keeps
  the wanted row via arithmetic one-hot selection in registers.  The
  recorded trace is a pure function of ``(batch_size, n_labels)`` --
  input-independent, so the attack pipeline scores AUC 0.5 against it.
* **plain** (the non-oblivious reference): each slot reads only its
  predicted class's row, so the trace names the served class outright
  -- the baseline the leakage benchmarks measure against.

Dense layer compute (matmuls, activations) happens on register-modeled
numpy tensors, which the trace model treats as unobservable -- the same
trust model as the training-side kernels; what the adversary sees is
the table retrieval plus the fixed-order staging and output writes.

Batches are **fixed-shape**: the scheduler pads every batch to the
configured size, padding slots run through the identical compute and
retrieval, so batch fill leaks nothing either.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .. import obs
from ..fl.models import MODEL_NAMES, Linear, Sequential, build_model
from ..sgx.cost import CostParameters, CostReport, ReplayStats, replay_trace_cost
from ..sgx.enclave import Enclave
from ..sgx.memory import RegionLayout, Trace, TracedArray

#: Traced region names of one inference batch.
SERVE_IN_REGION = "serve_in"
SERVE_TABLE_REGION = "serve_table"
SERVE_OUT_REGION = "serve_out"


def model_output_dim(model: Sequential) -> int:
    """Number of output classes (the final Linear layer's width)."""
    for layer in reversed(model.layers):
        if isinstance(layer, Linear):
            return int(layer.bias.size)
    raise ValueError("model has no Linear output layer")


def infer_model_name(n_params: int) -> str:
    """Recover the architecture name from a checkpoint's weight count.

    The training checkpoint format stores weights + privacy ledger but
    not the architecture; every paper model has a distinct parameter
    count, so the count identifies it.
    """
    for name in MODEL_NAMES:
        if build_model(name).num_params == n_params:
            return name
    raise ValueError(
        f"no known architecture has {n_params} parameters "
        f"(known: {', '.join(MODEL_NAMES)})"
    )


def load_serving_model(
    path: str | Path, model_name: str | None = None
) -> tuple[Sequential, dict]:
    """Load a trained model from a training checkpoint (.npz).

    Returns ``(model, checkpoint_meta)``.  ``model_name`` overrides the
    parameter-count inference (needed only if two architectures ever
    collide in size).
    """
    with np.load(Path(path), allow_pickle=False) as archive:
        weights = archive["global_weights"]
        meta = json.loads(str(archive["meta"]))
    name = model_name or infer_model_name(weights.size)
    model = build_model(name, seed=0)
    if model.num_params != weights.size:
        raise ValueError(
            f"checkpoint holds {weights.size} weights, "
            f"{name} expects {model.num_params}"
        )
    model.set_flat(np.asarray(weights, dtype=np.float64))
    meta["model_name"] = name
    return model, meta


@dataclass
class ServedBatch:
    """Result of one fixed-shape inference batch."""

    logits: np.ndarray        # (B, L) raw model outputs
    calibrated: np.ndarray    # (B, L) logits + retrieved calibration row
    labels: np.ndarray        # (B,) predicted classes
    trace: Trace | None       # recorded access trace (traced mode)
    layout: RegionLayout | None


class ObliviousInferenceEngine:
    """Serves fixed-shape batches with an input-independent trace.

    Parameters
    ----------
    model:
        The trained :class:`Sequential` to serve.
    batch_size:
        Fixed batch shape; :meth:`infer_batch` refuses other sizes
        (the scheduler owns padding).
    oblivious:
        ``True`` scans the whole class table per slot; ``False`` is the
        leaky reference path reading only the predicted row.
    enclave:
        The enclave whose traced memory hosts the serving regions; a
        fresh one is created when omitted.
    calibration_seed:
        Seed of the per-class calibration table (row ``l`` is added to
        the logits when class ``l`` is served -- per-class bias
        calibration, giving the retrieval observable semantics).
    """

    def __init__(
        self,
        model: Sequential,
        batch_size: int = 8,
        oblivious: bool = True,
        enclave: Enclave | None = None,
        calibration_seed: int = 0,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.model = model
        self.batch_size = batch_size
        self.oblivious = oblivious
        self.enclave = enclave or Enclave(seed=calibration_seed)
        self.n_labels = model_output_dim(model)
        rng = np.random.default_rng(calibration_seed)
        #: (L, L) per-class calibration rows; row l is the logit offset
        #: applied when class l is the prediction.
        self.calibration = rng.normal(
            scale=1e-3, size=(self.n_labels, self.n_labels)
        )

    # ------------------------------------------------------------------
    def _alloc(
        self, traced: bool
    ) -> tuple[TracedArray, TracedArray, TracedArray]:
        """The three serving regions for one batch.

        Traced mode opens a fresh observation window on the enclave
        (one batch == one trace); untraced mode (throughput serving)
        backs the same code path with recording disabled.
        """
        b, lab = self.batch_size, self.n_labels
        if traced:
            self.enclave.reset_trace()
            stage = self.enclave.alloc(b, name=SERVE_IN_REGION)
            table = self.enclave.alloc(lab * lab, name=SERVE_TABLE_REGION)
            out = self.enclave.alloc(b * lab, name=SERVE_OUT_REGION)
        else:
            stage = TracedArray.zeros(SERVE_IN_REGION, b, trace=None)
            table = TracedArray.zeros(SERVE_TABLE_REGION, lab * lab,
                                      trace=None)
            out = TracedArray.zeros(SERVE_OUT_REGION, b * lab, trace=None)
        table.load(self.calibration.reshape(-1).tolist())
        return stage, table, out

    def infer_batch(self, x: np.ndarray, traced: bool = True) -> ServedBatch:
        """Serve one fixed-shape batch of feature tensors.

        ``x`` must stack exactly ``batch_size`` inputs.  In traced mode
        the returned batch carries the recorded trace and layout (one
        fresh observation window per batch).
        """
        if x.shape[0] != self.batch_size:
            raise ValueError(
                f"engine serves fixed batches of {self.batch_size}, "
                f"got {x.shape[0]} (the scheduler owns padding)"
            )
        lab = self.n_labels
        with obs.span("serving.forward", hist="serving.forward_s",
                      batch=self.batch_size, oblivious=self.oblivious):
            stage, table, out = self._alloc(traced)
            # Fixed-order staging: each sealed request lands in its
            # batch slot (one write per slot, slot order).
            stage.write_block(0, self.batch_size, [1.0] * self.batch_size)
            logits = self.model.forward(x, train=False)
            labels = logits.argmax(axis=1)
            rows = np.empty((self.batch_size, lab))
            eye = np.arange(lab)
            for slot in range(self.batch_size):
                pred = int(labels[slot])
                if self.oblivious:
                    # Grouped o_access_rows: scan the whole table in
                    # offset order, keep the wanted row arithmetically.
                    scanned = np.asarray(table.read_block(0, lab * lab))
                    onehot = (eye == pred).astype(np.float64)
                    rows[slot] = onehot @ scanned.reshape(lab, lab)
                else:
                    rows[slot] = table.read_block(
                        pred * lab, (pred + 1) * lab
                    )
            calibrated = logits + rows
            for slot in range(self.batch_size):
                out.write_block(
                    slot * lab, (slot + 1) * lab, calibrated[slot].tolist()
                )
            obs.add("serving.batches")
            obs.add("serving.inferences", self.batch_size)
        return ServedBatch(
            logits=logits,
            calibrated=calibrated,
            labels=labels,
            trace=self.enclave.trace if traced else None,
            layout=self.enclave.layout if traced else None,
        )


def replay_serving_cost(
    batch: ServedBatch,
    params: CostParameters | None = None,
    engine: str = "vector",
) -> tuple[ReplayStats, CostReport]:
    """Price one traced inference batch on the modelled machine.

    Vectorized cost-model replay over the batch's recorded trace;
    publishes the cumulative ``cost.*`` gauges when telemetry is on.
    """
    if batch.trace is None or batch.layout is None:
        raise ValueError("batch was not traced; run infer_batch(traced=True)")
    model, report = replay_trace_cost(
        batch.trace, batch.layout, params=params, engine=engine
    )
    return model.stats, report
