"""Oblivious model serving: the enclave inference engine, the sealed
request/response envelopes, and the concurrent batch scheduler.

Training produces a checkpoint; this package serves it without leaking
which class each request received -- the forward pass's recorded trace
is a pure function of the batch shape (see ``engine``), batches are
fixed-shape padded (see ``server``), and envelopes are fixed-layout
sealed blobs (see ``envelopes``).  The attack pipeline's serving mode
(:func:`repro.attack.run_serving_attack`) scores the residual leakage.
"""

from .engine import (
    SERVE_IN_REGION,
    SERVE_OUT_REGION,
    SERVE_TABLE_REGION,
    ObliviousInferenceEngine,
    ServedBatch,
    infer_model_name,
    load_serving_model,
    model_output_dim,
    replay_serving_cost,
)
from .envelopes import (
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    open_request,
    open_response,
    response_nonce,
    seal_request,
    seal_response,
)
from .server import InferenceServer, ServingConfig

__all__ = [
    "InferenceServer",
    "ObliviousInferenceEngine",
    "SERVE_IN_REGION",
    "SERVE_OUT_REGION",
    "SERVE_TABLE_REGION",
    "ServedBatch",
    "ServingConfig",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "infer_model_name",
    "load_serving_model",
    "model_output_dim",
    "open_request",
    "open_response",
    "replay_serving_cost",
    "response_nonce",
    "seal_request",
    "seal_response",
]
