"""Sealed request/response envelopes for the serving path.

Inference traffic crosses the same trust boundary as training uploads:
the untrusted host routes it, so feature vectors and predictions are
sealed under the per-client RA keys (:mod:`repro.sgx.crypto`) exactly
like gradients.  The wire formats are fixed-layout so the envelope
*size* is a pure function of the model's input/output shape -- batch
composition leaks nothing through lengths.

* request:  ``OLVIREQ1 || ndim || shape || float64 features``
* response: ``OLVIRSP1 || label || n_logits || float64 calibrated logits``

The response nonce is derived deterministically from the request nonce
(SIV-style, like sealed enclave checkpoints), binding each response to
exactly one request and keeping a served load replayable bit for bit.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

from ..sgx import crypto

REQUEST_MAGIC = b"OLVIREQ1"
RESPONSE_MAGIC = b"OLVIRSP1"


def encode_request(x: np.ndarray) -> bytes:
    """Serialize one request's feature tensor."""
    arr = np.ascontiguousarray(x, dtype=np.float64)
    if arr.ndim > 8:
        raise ValueError("request tensor rank too large")
    header = struct.pack(">B", arr.ndim) + struct.pack(
        f">{arr.ndim}I", *arr.shape
    )
    return REQUEST_MAGIC + header + arr.tobytes()


def decode_request(raw: bytes) -> np.ndarray:
    """Inverse of :func:`encode_request`."""
    if raw[: len(REQUEST_MAGIC)] != REQUEST_MAGIC:
        raise ValueError("unrecognized request format")
    off = len(REQUEST_MAGIC)
    (ndim,) = struct.unpack_from(">B", raw, off)
    off += 1
    shape = struct.unpack_from(f">{ndim}I", raw, off)
    off += 4 * ndim
    count = int(np.prod(shape)) if shape else 1
    arr = np.frombuffer(raw, dtype=np.float64, count=count, offset=off)
    return arr.reshape(shape).copy()


def encode_response(label: int, logits: np.ndarray) -> bytes:
    """Serialize one response (predicted label + calibrated logits)."""
    arr = np.ascontiguousarray(logits, dtype=np.float64).reshape(-1)
    return (
        RESPONSE_MAGIC
        + struct.pack(">II", int(label), arr.size)
        + arr.tobytes()
    )


def decode_response(raw: bytes) -> tuple[int, np.ndarray]:
    """Inverse of :func:`encode_response`."""
    if raw[: len(RESPONSE_MAGIC)] != RESPONSE_MAGIC:
        raise ValueError("unrecognized response format")
    off = len(RESPONSE_MAGIC)
    label, count = struct.unpack_from(">II", raw, off)
    off += 8
    logits = np.frombuffer(raw, dtype=np.float64, count=count, offset=off)
    return int(label), logits.copy()


def seal_request(
    key: bytes, x: np.ndarray, nonce: bytes | None = None
) -> crypto.Ciphertext:
    """Client side: seal a feature tensor under the RA session key."""
    return crypto.seal(key, encode_request(x), nonce=nonce)


def open_request(key: bytes, ct: crypto.Ciphertext) -> np.ndarray:
    """Enclave side: unseal and decode one request."""
    return decode_request(crypto.open_sealed(key, ct))


def response_nonce(request_nonce: bytes) -> bytes:
    """Deterministic response nonce bound to the request's nonce."""
    return hashlib.sha256(b"serve-rsp:" + request_nonce).digest()[
        : crypto.NONCE_BYTES
    ]


def seal_response(
    key: bytes, request_nonce: bytes, label: int, logits: np.ndarray
) -> crypto.Ciphertext:
    """Enclave side: seal a response, nonce-bound to its request."""
    return crypto.seal(
        key, encode_response(label, logits), nonce=response_nonce(request_nonce)
    )


def open_response(key: bytes, ct: crypto.Ciphertext) -> tuple[int, np.ndarray]:
    """Client side: unseal and decode one response."""
    return decode_response(crypto.open_sealed(key, ct))
