"""The OLIVE system: Algorithm 1 end to end.

Ties every substrate together: clients attest the enclave and exchange
keys (RA provisioning), each round the enclave securely samples
participants, clients train locally and send encrypted top-k-sparsified
clipped deltas, the enclave verifies/decrypts them, aggregates them
with a chosen (oblivious) algorithm, perturbs with enclave-private
Gaussian noise, and releases only the differentially private averaged
update.  A privacy accountant tracks the client-level (epsilon, delta)
budget across rounds.

Setting ``aggregator="linear"`` reproduces the *vulnerable*
configuration analysed in Section 3.3 (TEE without obliviousness);
``"advanced"``/``"baseline"``/``"path_oram"`` are the defenses of
Section 5.  Running a round with ``traced=True`` records the adversary-
visible access pattern for the attack framework.

Local training for the sampled cohort executes through the cohort
runtime (:mod:`repro.runtime`): a pluggable serial/thread/process
executor with per-``(round, client)`` seed derivation (bit-identical
results across executors), deterministic fault injection, retries,
per-client timeouts, and a minimum-quorum completion policy.  The
enclave aggregates the surviving cohort and, under fault injection,
the DP accountant charges the realized cohort fraction.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..dp.accountant import PrivacyAccountant
from ..dp.adaptive_clipping import AdaptiveClipper
from ..fl.client import LocalUpdate, TrainingConfig
from ..fl.datasets import ClientData
from ..fl.models import Sequential, accuracy
from ..runtime import (
    STATUS_REJECTED,
    CohortResult,
    CohortRuntime,
    RuntimeConfig,
    ShardConfig,
    ShardedAggregator,
    ShardRoundReport,
    record_failure_reason,
)
from ..sgx.enclave import Enclave, EnclaveSecurityError, provision_enclave_with_clients
from ..sgx.memory import Trace
from .aggregation import AGGREGATORS
from .grouping import aggregate_grouped, aggregate_grouped_traced


@dataclass(frozen=True)
class OliveConfig:
    """All hyperparameters of one OLIVE deployment."""

    sample_rate: float = 0.1
    server_lr: float = 1.0
    noise_multiplier: float = 1.12
    delta: float = 1e-5
    aggregator: str = "advanced"
    group_size: int | None = None  # Section 5.3 optimization when set
    training: TrainingConfig = field(default_factory=TrainingConfig)
    expected_clients: int | None = None
    adaptive_clipping: bool = False
    clip_target_quantile: float = 0.5
    clip_learning_rate: float = 0.2
    quantize_bits: int | None = None  # QSGD upload compression when set

    def __post_init__(self) -> None:
        if self.aggregator not in AGGREGATORS:
            raise ValueError(f"unknown aggregator {self.aggregator!r}")
        if self.group_size is not None and self.aggregator != "advanced":
            raise ValueError("grouping only applies to the advanced aggregator")


@dataclass
class OliveRoundLog:
    """Per-round record: participants, trace, updates, budget."""

    round_index: int
    participants: list[int]
    updates: dict[int, LocalUpdate]
    trace: Trace | None
    weights_before: np.ndarray
    weights_after: np.ndarray
    epsilon: float
    cohort: CohortResult | None = None
    shard_report: ShardRoundReport | None = None


class OliveSystem:
    """An OLIVE server (enclave inside) plus its registered clients."""

    def __init__(
        self,
        model: Sequential,
        clients: list[ClientData],
        config: OliveConfig,
        seed: int = 0,
        runtime: RuntimeConfig | None = None,
        shards: ShardConfig | None = None,
        audit=None,
    ) -> None:
        self.model = model
        self.clients = clients
        self.config = config
        self.enclave = Enclave(seed=seed)
        self.client_keys = provision_enclave_with_clients(
            self.enclave, [c.client_id for c in clients]
        )
        self.global_weights = model.get_flat()
        self.accountant = PrivacyAccountant(
            sampling_rate=config.sample_rate,
            noise_multiplier=config.noise_multiplier,
            delta=config.delta,
        )
        self.history: list[OliveRoundLog] = []
        self.clipper: AdaptiveClipper | None = None
        if config.adaptive_clipping:
            self.clipper = AdaptiveClipper(
                initial_clip=config.training.clip,
                target_quantile=config.clip_target_quantile,
                learning_rate=config.clip_learning_rate,
            )
        self.runtime_config = runtime or RuntimeConfig()
        self.runtime = CohortRuntime(
            self.runtime_config, copy.deepcopy(model), clients,
            entropy=seed, keys=self.client_keys,
        )
        # Sharded multi-enclave aggregation: the system's enclave
        # becomes the *root*; leaf enclaves are spawned (attested, keys
        # replicated) by the service on first use.
        # Verifiable rounds: when an AuditRecorder is attached, every
        # completed round appends a chained commitment record (accepted
        # ciphertext Merkle root + released-aggregate digest + sealed
        # shard-partial digests) to its append-only log.
        self.audit = audit
        self.shard_service: ShardedAggregator | None = None
        if shards is not None:
            if config.adaptive_clipping:
                raise ValueError(
                    "adaptive clipping needs per-client norms at the "
                    "root and is not supported with sharded aggregation"
                )
            if config.group_size is not None:
                raise ValueError(
                    "grouped aggregation is root-level; configure the "
                    "leaf kernel via ShardConfig.aggregator instead"
                )
            self.shard_service = ShardedAggregator(
                self.enclave, shards, entropy=seed
            )

    @property
    def d(self) -> int:
        """Model dimensionality."""
        return self.global_weights.size

    def close(self) -> None:
        """Release runtime pools / shared memory (idempotent)."""
        self.runtime.close()

    def __enter__(self) -> "OliveSystem":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _aggregate(
        self, updates: list[LocalUpdate], trace: Trace | None
    ) -> np.ndarray:
        spec = AGGREGATORS[self.config.aggregator]
        if self.config.group_size is not None:
            if trace is not None:
                return aggregate_grouped_traced(
                    updates, self.d, self.config.group_size, trace
                )
            return aggregate_grouped(updates, self.d, self.config.group_size)
        if trace is not None:
            return spec.run_traced(updates, self.d, trace)
        return spec.run(updates, self.d)

    def run_round(
        self, traced: bool = False, dropouts: set[int] | None = None
    ) -> OliveRoundLog:
        """One full Algorithm 1 round.

        ``dropouts`` models clients that were securely sampled but
        failed to upload (battery, network); the cohort runtime can
        additionally inject dropouts, stragglers, transient failures
        and transport faults.  The enclave proceeds with the surviving
        set (subject to ``min_quorum``); the DP *denominator* stays the
        expected participant count qN, so the guarantee is unaffected
        (dropouts only add averaging noise, the standard DP-FedAVG
        treatment), while the *accountant* charges the realized cohort
        fraction when fault injection is active.
        """
        if traced and self.shard_service is not None:
            raise ValueError(
                "traced rounds are not supported with sharded "
                "aggregation: the access pattern lives in the leaf "
                "enclaves, not the root"
            )
        self.enclave.reset_trace()
        # Explicit round boundary: reset the replay-defence state even
        # on paths that skip secure sampling (audits, replays).
        self.enclave.begin_round()
        weights_before = self.global_weights.copy()
        dropouts = dropouts or set()

        with obs.span(
            "round", hist="round.wall_s", index=len(self.history),
            aggregator=self.config.aggregator, traced=traced,
            executor=self.runtime_config.executor,
        ):
            # Line 4: secure sampling inside the enclave.
            with obs.span("sample"):
                participants = self.enclave.sample_clients(
                    [c.client_id for c in self.clients],
                    self.config.sample_rate,
                )
            obs.add("round.clients_sampled", len(participants))

            # Lines 6-11: local training, encryption, enclave
            # verification -- executed through the cohort runtime.
            clip = (self.clipper.clip if self.clipper
                    else self.config.training.clip)
            cohort = self.runtime.run_cohort(
                len(self.history), participants, weights_before,
                self.config.training, clip=clip,
                quantize_bits=self.config.quantize_bits,
                forced_dropouts=dropouts,
            )
            updates: dict[int, LocalUpdate] = {}
            trace = self.enclave.trace if traced else None
            shard_report: ShardRoundReport | None = None
            if self.shard_service is not None:
                # Hierarchical path: leaf enclaves ingest shards of the
                # staged deliveries asynchronously (crash recovery,
                # failover, deadlines inside); the root combines sealed
                # partials.  Quorum is enforced *inside* the service --
                # QuorumNotMetError aborts before noise or accounting.
                shard_report = self.shard_service.aggregate_round(
                    len(self.history), cohort.deliveries, self.d,
                    sampled=set(participants),
                    quantize_bits=self.config.quantize_bits,
                    min_accepted=self.runtime.quorum_threshold(
                        len(participants)),
                )
                for cid, reason in shard_report.rejected.items():
                    outcome = cohort.outcomes.get(cid)
                    if outcome is not None:
                        outcome.status = STATUS_REJECTED
                        record_failure_reason(outcome, reason)
                accepted = list(shard_report.accepted_clients)
                aggregate = shard_report.aggregate
                obs.add("round.clients_dropped",
                        len(participants) - len(accepted))
                self.runtime.check_quorum(len(accepted),
                                          len(participants))
            else:
                for delivery in cohort.deliveries:
                    cid = delivery.client_id
                    assert delivery.ciphertext is not None
                    with obs.span(
                        "upload", client=cid,
                        quantized=self.config.quantize_bits is not None,
                    ):
                        blob = delivery.ciphertext.to_bytes()
                    obs.add("round.upload_bytes", len(blob))
                    try:
                        with obs.span("decrypt", client=cid):
                            if self.config.quantize_bits is not None:
                                indices, values = (
                                    self.enclave.load_quantized_gradient(
                                        cid, delivery.ciphertext
                                    )
                                )
                            else:
                                indices, values = self.enclave.load_gradient(
                                    cid, delivery.ciphertext
                                )
                    except EnclaveSecurityError as exc:
                        # Corrupt or replayed upload: the enclave
                        # refused it.  Only the *extra* copy of a
                        # replay is lost; a tampered original costs the
                        # client its round.
                        if not delivery.duplicate:
                            cohort.outcomes[cid].status = STATUS_REJECTED
                            record_failure_reason(cohort.outcomes[cid],
                                                  exc.reason)
                            updates.pop(cid, None)
                        continue
                    updates[cid] = LocalUpdate(
                        client_id=cid,
                        indices=np.asarray(indices, dtype=np.int64),
                        values=np.asarray(values, dtype=np.float64),
                    )
                accepted = sorted(updates)
                obs.add("round.clients_dropped",
                        len(participants) - len(accepted))

                # Completion policy: abort before anything leaves the
                # enclave if too few clients survived.
                self.runtime.check_quorum(len(accepted),
                                          len(participants))

                # Line 12: oblivious aggregation + enclave-private
                # perturbation.
                trace_before = len(trace) if trace is not None else 0
                with obs.span("aggregate",
                              aggregator=self.config.aggregator,
                              n_updates=len(updates)):
                    if updates:
                        aggregate = self._aggregate(
                            list(updates.values()), trace)
                    else:
                        aggregate = np.zeros(self.d)
                if trace is not None:
                    obs.add("trace.accesses_recorded",
                            len(trace) - trace_before)
                    obs.gauge("trace.accesses", len(trace))
                    obs.gauge("trace.nbytes", trace.nbytes)
            sigma = self.config.noise_multiplier * clip
            with obs.span("noise", sigma=sigma):
                noise = np.asarray(self.enclave.gauss_vector(sigma, self.d))
            denominator = self.config.expected_clients or max(
                1.0, self.config.sample_rate * len(self.clients)
            )
            mean_update = (aggregate + noise) / denominator

            # Lines 13-14: only the DP update leaves the enclave.
            self.global_weights = (
                weights_before + self.config.server_lr * mean_update
            )
            self.model.set_flat(self.global_weights)
            with obs.span("accountant"):
                if self.runtime_config.use_realized_accounting():
                    self.accountant.step_realized(
                        len(accepted) / max(1, len(self.clients))
                    )
                else:
                    self.accountant.step()
            obs.gauge("dp.epsilon", self.accountant.epsilon)
            if self.clipper is not None:
                # Quantile feedback (Andrew et al.): clients report whether
                # their pre-clip norm fit the bound; the enclave updates C.
                with obs.span("clip_update"):
                    bits = [
                        int(float(np.linalg.norm(u.values))
                            <= clip * (1 - 1e-9))
                        for u in updates.values()
                    ]
                    self.clipper.update(bits)
                obs.gauge("dp.clip", self.clipper.clip)

        log = OliveRoundLog(
            round_index=len(self.history),
            participants=sorted(accepted),
            updates=updates,
            trace=trace,
            weights_before=weights_before,
            weights_after=self.global_weights.copy(),
            epsilon=self.accountant.epsilon,
            cohort=cohort,
            shard_report=shard_report,
        )
        if self.audit is not None:
            self.audit.record_round(
                log.round_index,
                accepted=log.participants,
                ciphertexts=cohort.ciphertext_bytes(log.participants),
                weights_after=log.weights_after,
                epsilon=log.epsilon,
                clip=clip,
                traced=traced,
                forced_dropouts=sorted(dropouts),
                partials=(shard_report.sealed_partials
                          if shard_report is not None else None),
                degraded=(shard_report.degraded
                          if shard_report is not None else False),
                n_shards=(shard_report.n_shards
                          if shard_report is not None else None),
            )
        self.history.append(log)
        return log

    def run(self, rounds: int, traced: bool = False) -> list[OliveRoundLog]:
        """Run several Algorithm 1 rounds; returns their logs."""
        return [self.run_round(traced=traced) for _ in range(rounds)]

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Test accuracy of the current (DP) global model."""
        self.model.set_flat(self.global_weights)
        return accuracy(self.model, x, y)
