"""OLIVE's server-side aggregation algorithms (Sections 3.3 and 5).

Four aggregators, each in two interchangeable implementations:

* a **traced** implementation that runs element-at-a-time against
  :class:`repro.sgx.memory.TracedArray` regions, producing the exact
  adversary-visible access pattern (used by the security analysis, the
  attack evaluation, and the obliviousness property tests);
* a **fast** implementation (numpy-vectorized, same arithmetic and the
  same asymptotic work) used by the wall-clock benchmarks.

Algorithms:

=============  =========================  ==========================
name           paper                      complexity (time / space)
=============  =========================  ==========================
``linear``     Alg. 5, "Linear"           O(nk) / O(nk + d)
``baseline``   Alg. 3, "Baseline"         O(nk d / c) / O(nk + d)
``advanced``   Alg. 4, "Advanced"         O((nk+d) log^2 (nk+d)) / O(nk+d)
``path_oram``  Sec. 5, ORAM baseline      O((nk+d) log d) ORAM accesses
=============  =========================  ==========================

``linear`` is fully oblivious for dense gradients (Prop. 3.1) but leaks
every sparse index (Prop. 3.2); ``baseline`` is fully oblivious at
cacheline granularity (Prop. 5.1); ``advanced`` is fully oblivious at
word granularity (Prop. 5.2).

Region naming convention: the concatenated input gradients live in
region ``"g"`` (one 8-byte cell per ``(index, value)`` weight) and the
aggregation buffer in region ``"g_star"`` (4-byte weights, c = 16 per
64-byte cacheline, matching the paper's Section 5.1 arithmetic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..fl.client import LocalUpdate
from ..fl.sparsify import densify
from ..oblivious.primitives import o_mov
from ..oblivious.sort import bitonic_sort_numpy, bitonic_sort_traced, next_power_of_two
from ..oram.path_oram import PathORAM
from ..sgx.memory import Trace, TracedArray

#: Dummy index written by oblivious folding; larger than any model index.
M0 = (1 << 31) - 1

#: Weights per 64-byte cacheline in the aggregation buffer (4-byte weights).
WEIGHTS_PER_CACHELINE = 16

G_REGION = "g"
G_STAR_REGION = "g_star"


def _concat_updates(
    updates: Sequence[LocalUpdate],
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate client updates into flat index/value arrays."""
    if not updates:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    idx = np.concatenate([u.indices for u in updates]).astype(np.int64)
    val = np.concatenate([u.values for u in updates]).astype(np.float64)
    return idx, val


def _validate(indices: np.ndarray, d: int) -> None:
    if len(indices) and (indices.min() < 0 or indices.max() >= d):
        raise ValueError("gradient index out of model range")


# ----------------------------------------------------------------------
# Linear (Algorithm 5) -- not oblivious for sparse input
# ----------------------------------------------------------------------


def aggregate_linear(updates: Sequence[LocalUpdate], d: int) -> np.ndarray:
    """Fast Linear aggregation: plain scatter-add."""
    idx, val = _concat_updates(updates)
    _validate(idx, d)
    return densify(idx, val, d)


def aggregate_linear_traced(
    updates: Sequence[LocalUpdate], d: int, trace: Trace
) -> np.ndarray:
    """Traced Linear aggregation.

    The scan of ``g`` is fixed-order, but every input weight triggers a
    read+write of ``g_star[index]`` -- the data-dependent accesses of
    Proposition 3.2 that the attack of Section 4 consumes.
    """
    idx, val = _concat_updates(updates)
    _validate(idx, d)
    g = TracedArray(G_REGION, list(zip(idx.tolist(), val.tolist())),
                    trace=trace, itemsize=8)
    g_star = TracedArray.zeros(G_STAR_REGION, d, trace=trace, itemsize=4)
    for pos in range(len(g)):
        index, value = g.read(pos)
        current = g_star.read(index)
        g_star.write(index, current + value)
    return np.asarray(g_star.snapshot(), dtype=np.float64)


# ----------------------------------------------------------------------
# Baseline (Algorithm 3) -- cacheline-level fully oblivious
# ----------------------------------------------------------------------


def aggregate_baseline(
    updates: Sequence[LocalUpdate], d: int,
    cacheline_weights: int = WEIGHTS_PER_CACHELINE,
) -> np.ndarray:
    """Fast Baseline aggregation.

    Performs the same Theta(nk * d / c) element-update work as the
    traced version (one vectorized pass over the congruent stripe of
    ``g_star`` per input weight), so wall-clock comparisons against
    Advanced reproduce the paper's crossovers.
    """
    idx, val = _concat_updates(updates)
    _validate(idx, d)
    g_star = np.zeros(d)
    n_lines = (d + cacheline_weights - 1) // cacheline_weights
    lines = np.arange(n_lines)
    for index, value in zip(idx.tolist(), val.tolist()):
        offset = index % cacheline_weights
        stripe = np.minimum(lines * cacheline_weights + offset, d - 1)
        hits = stripe == index
        g_star[stripe] = g_star[stripe] + hits * value
    return g_star


def aggregate_baseline_traced(
    updates: Sequence[LocalUpdate], d: int, trace: Trace,
    cacheline_weights: int = WEIGHTS_PER_CACHELINE,
) -> np.ndarray:
    """Traced Baseline aggregation (Algorithm 3).

    For every input weight the whole aggregation buffer is swept, one
    touched weight per cacheline (the position congruent to the secret
    index modulo c); the true update is merged in registers via
    ``o_mov``.  Word-level addresses depend on ``index mod c`` only,
    so the cacheline-level trace is input-independent (Prop. 5.1).
    """
    idx, val = _concat_updates(updates)
    _validate(idx, d)
    g = TracedArray(G_REGION, list(zip(idx.tolist(), val.tolist())),
                    trace=trace, itemsize=8)
    g_star = TracedArray.zeros(G_STAR_REGION, d, trace=trace, itemsize=4)
    n_lines = (d + cacheline_weights - 1) // cacheline_weights
    for pos in range(len(g)):
        index, value = g.read(pos)
        offset = index % cacheline_weights
        for line in range(n_lines):
            # Touch exactly one weight per cacheline; the final partial
            # line is clamped so every input sweeps the same lines.
            target = min(line * cacheline_weights + offset, d - 1)
            current = g_star.read(target)
            flag = target == index
            g_star.write(target, o_mov(flag, current + value, current))
    return np.asarray(g_star.snapshot(), dtype=np.float64)


# ----------------------------------------------------------------------
# Advanced (Algorithm 4) -- fully oblivious
# ----------------------------------------------------------------------


def _fold_sorted(idx: np.ndarray, val: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized oblivious-folding semantics on an index-sorted array.

    The last element of every equal-index run keeps ``(index, run
    sum)``; every other position becomes ``(M0, 0)``.
    """
    m = len(idx)
    if m == 0:
        return idx.copy(), val.copy()
    last = np.empty(m, dtype=bool)
    last[:-1] = idx[:-1] != idx[1:]
    last[-1] = True
    csum = np.cumsum(val)
    run_totals = csum[last]
    run_totals[1:] -= csum[last][:-1]
    out_idx = np.full(m, M0, dtype=np.int64)
    out_val = np.zeros(m)
    out_idx[last] = idx[last]
    out_val[last] = run_totals
    return out_idx, out_val


def aggregate_advanced(updates: Sequence[LocalUpdate], d: int) -> np.ndarray:
    """Fast Advanced aggregation (Algorithm 4, stage-vectorized).

    initialization -> bitonic sort by index -> folding -> bitonic sort
    -> first d values.  Identical network and arithmetic to the traced
    version; validated against it in the test suite.
    """
    idx, val = _concat_updates(updates)
    _validate(idx, d)
    base = len(idx) + d
    m = next_power_of_two(base)
    work_idx = np.full(m, M0, dtype=np.int64)
    work_val = np.zeros(m)
    work_idx[: len(idx)] = idx
    work_val[: len(val)] = val
    work_idx[len(idx) : base] = np.arange(d)  # zero-valued initialization
    bitonic_sort_numpy(work_idx, work_val)
    folded_idx, folded_val = _fold_sorted(work_idx, work_val)
    bitonic_sort_numpy(folded_idx, folded_val)
    if not np.array_equal(folded_idx[:d], np.arange(d)):
        raise AssertionError("folding lost a model index")
    return folded_val[:d].copy()


def aggregate_advanced_traced(
    updates: Sequence[LocalUpdate], d: int, trace: Trace
) -> np.ndarray:
    """Traced Advanced aggregation (Algorithm 4, element-at-a-time).

    Every phase touches memory in an order fixed by ``nk + d`` alone:
    the fill is linear, both bitonic sorts follow the length-determined
    comparator network, and oblivious folding is one linear pass whose
    conditional carry/flush happens in registers via ``o_mov``
    (Prop. 5.2).
    """
    idx, val = _concat_updates(updates)
    _validate(idx, d)
    base = len(idx) + d
    m = next_power_of_two(base)
    g = TracedArray.zeros(G_REGION, m, trace=trace, itemsize=8)

    # Initialization (lines 1-3): inputs, d zero-valued weights, padding.
    for pos in range(len(idx)):
        g.write(pos, (int(idx[pos]), float(val[pos])))
    for j in range(d):
        g.write(len(idx) + j, (j, 0.0))
    for pos in range(base, m):
        g.write(pos, (M0, 0.0))

    # First oblivious sort by index (lines 4-5).
    bitonic_sort_traced(g, key=lambda w: w[0])

    # Oblivious folding (lines 6-14).
    carry_idx, carry_val = g.read(0)
    for pos in range(1, m):
        nxt_idx, nxt_val = g.read(pos)
        flag = nxt_idx == carry_idx
        prior = o_mov(flag, (M0, 0.0), (carry_idx, carry_val))
        g.write(pos - 1, prior)
        carry_val = o_mov(flag, carry_val + nxt_val, nxt_val)
        carry_idx = nxt_idx
    g.write(m - 1, (carry_idx, carry_val))

    # Second oblivious sort (lines 15-16) and output (line 17).
    bitonic_sort_traced(g, key=lambda w: w[0])
    out = np.empty(d)
    for j in range(d):
        index, value = g.read(j)
        if index != j:
            raise AssertionError("folding lost a model index")
        out[j] = value
    return out


# ----------------------------------------------------------------------
# Path ORAM baseline
# ----------------------------------------------------------------------


def aggregate_path_oram(
    updates: Sequence[LocalUpdate], d: int,
    trace: Trace | None = None,
    bucket_size: int = 4,
    stash_limit: int = 20,
    seed: int | None = None,
) -> np.ndarray:
    """ORAM-based aggregation: g* lives entirely inside a Path ORAM.

    Initialize d zero blocks, read-modify-write one block per input
    weight, then read out all d blocks -- the general-purpose scheme the
    paper compares against (Section 5, "ORAM-based method").
    """
    idx, val = _concat_updates(updates)
    _validate(idx, d)
    oram = PathORAM(d, bucket_size=bucket_size, stash_limit=stash_limit,
                    trace=trace, seed=seed)
    for index, value in zip(idx.tolist(), val.tolist()):
        current = oram.read(index)
        oram.write(index, current + value)
    return np.asarray([oram.read(j) for j in range(d)], dtype=np.float64)


# ----------------------------------------------------------------------
# Uniform front-end
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AggregatorSpec:
    """Descriptor for one aggregation algorithm."""

    name: str
    oblivious_sparse: str  # 'none' | 'cacheline' | 'full'

    def run(self, updates: Sequence[LocalUpdate], d: int) -> np.ndarray:
        """Fast-path aggregation."""
        return _FAST[self.name](updates, d)

    def run_traced(
        self, updates: Sequence[LocalUpdate], d: int, trace: Trace
    ) -> np.ndarray:
        """Traced aggregation recording the adversary-visible pattern."""
        return _TRACED[self.name](updates, d, trace)


_FAST = {
    "linear": aggregate_linear,
    "baseline": aggregate_baseline,
    "advanced": aggregate_advanced,
    "path_oram": aggregate_path_oram,
}

_TRACED = {
    "linear": aggregate_linear_traced,
    "baseline": aggregate_baseline_traced,
    "advanced": aggregate_advanced_traced,
    "path_oram": lambda updates, d, trace: aggregate_path_oram(
        updates, d, trace=trace
    ),
}

AGGREGATORS: dict[str, AggregatorSpec] = {
    "linear": AggregatorSpec("linear", oblivious_sparse="none"),
    "baseline": AggregatorSpec("baseline", oblivious_sparse="cacheline"),
    "advanced": AggregatorSpec("advanced", oblivious_sparse="full"),
    "path_oram": AggregatorSpec("path_oram", oblivious_sparse="full"),
}
