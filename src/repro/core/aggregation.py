"""OLIVE's server-side aggregation algorithms (Sections 3.3 and 5).

Four aggregators, each in two interchangeable implementations:

* a **traced** implementation producing the exact adversary-visible
  access pattern against the :class:`repro.sgx.memory.Trace` regions
  (used by the security analysis, the attack evaluation, and the
  obliviousness property tests);
* a **fast** implementation (numpy-vectorized, same arithmetic and the
  same asymptotic work) used by the wall-clock benchmarks.

The traced implementations are *batched*: they compute on numpy columns
and append whole access blocks to the trace (the columnar engine of
:mod:`repro.sgx.memory`), producing byte-for-byte the access sequence
of the original element-at-a-time formulation -- the trace-equivalence
regression tests pin this against a reference recorder.  This makes the
traced path 1-2 orders of magnitude faster, so the security experiments
scale with n, k, and d almost like the fast path does.

Algorithms:

=============  =========================  ==========================
name           paper                      complexity (time / space)
=============  =========================  ==========================
``linear``     Alg. 5, "Linear"           O(nk) / O(nk + d)
``baseline``   Alg. 3, "Baseline"         O(nk d / c) / O(nk + d)
``advanced``   Alg. 4, "Advanced"         O((nk+d) log^2 (nk+d)) / O(nk+d)
``path_oram``  Sec. 5, ORAM baseline      O((nk+d) log d) ORAM accesses
=============  =========================  ==========================

``linear`` is fully oblivious for dense gradients (Prop. 3.1) but leaks
every sparse index (Prop. 3.2); ``baseline`` is fully oblivious at
cacheline granularity (Prop. 5.1); ``advanced`` is fully oblivious at
word granularity (Prop. 5.2).

Region naming convention: the concatenated input gradients live in
region ``"g"`` (one 8-byte cell per ``(index, value)`` weight) and the
aggregation buffer in region ``"g_star"`` (4-byte weights, c = 16 per
64-byte cacheline, matching the paper's Section 5.1 arithmetic).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .. import obs
from ..fl.client import LocalUpdate
from ..fl.sparsify import densify
from ..oblivious.sort import bitonic_sort_traced_columns, next_power_of_two
from ..oram.path_oram import PathORAM
from ..sgx.memory import OP_READ, OP_WRITE, Trace

#: Dummy index written by oblivious folding; larger than any model index.
M0 = (1 << 31) - 1

#: Weights per 64-byte cacheline in the aggregation buffer (4-byte weights).
WEIGHTS_PER_CACHELINE = 16

G_REGION = "g"
G_STAR_REGION = "g_star"


def _kernel_span(name: str):
    """Wrap an aggregation kernel in a telemetry span.

    Records input shape and, for traced kernels, the number of accesses
    the call appended to the trace.  With telemetry disabled the
    wrapper is one ``enabled()`` check per kernel *call* (never per
    element), preserving the no-op fast path.
    """

    def deco(fn):
        @functools.wraps(fn)
        def wrapper(updates, d, *args, **kwargs):
            if not obs.enabled():
                return fn(updates, d, *args, **kwargs)
            trace = kwargs.get("trace")
            if trace is None and args and isinstance(args[0], Trace):
                trace = args[0]
            before = len(trace) if trace is not None else 0
            with obs.span(name, n_updates=len(updates), d=d) as sp:
                out = fn(updates, d, *args, **kwargs)
                if trace is not None:
                    sp.set(trace_accesses=len(trace) - before)
                return out

        return wrapper

    return deco


def _concat_updates(
    updates: Sequence[LocalUpdate],
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate client updates into flat index/value arrays."""
    if not updates:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    idx = np.concatenate([u.indices for u in updates]).astype(np.int64)
    val = np.concatenate([u.values for u in updates]).astype(np.float64)
    return idx, val


def _validate(indices: np.ndarray, d: int) -> None:
    if len(indices) and (indices.min() < 0 or indices.max() >= d):
        raise ValueError("gradient index out of model range")


# ----------------------------------------------------------------------
# Linear (Algorithm 5) -- not oblivious for sparse input
# ----------------------------------------------------------------------


@_kernel_span("kernel.linear")
def aggregate_linear(updates: Sequence[LocalUpdate], d: int) -> np.ndarray:
    """Fast Linear aggregation: plain scatter-add."""
    idx, val = _concat_updates(updates)
    _validate(idx, d)
    return densify(idx, val, d)


@_kernel_span("kernel.linear_traced")
def aggregate_linear_traced(
    updates: Sequence[LocalUpdate], d: int, trace: Trace
) -> np.ndarray:
    """Traced Linear aggregation.

    The scan of ``g`` is fixed-order, but every input weight triggers a
    read+write of ``g_star[index]`` -- the data-dependent accesses of
    Proposition 3.2 that the attack of Section 4 consumes.  Recorded as
    one batched ``(g read, g_star read, g_star write)`` triple per
    input weight.
    """
    idx, val = _concat_updates(updates)
    _validate(idx, d)
    nk = len(idx)
    if trace is not None and nk:
        g_id = trace.region_id(G_REGION)
        gstar_id = trace.region_id(G_STAR_REGION)
        offs = np.empty((nk, 3), dtype=np.int64)
        offs[:, 0] = np.arange(nk)
        offs[:, 1] = idx
        offs[:, 2] = idx
        rids = np.tile(
            np.array([g_id, gstar_id, gstar_id], dtype=np.uint16), nk
        )
        ops = np.tile(
            np.array([OP_READ, OP_READ, OP_WRITE], dtype=np.uint8), nk
        )
        trace.record_columns(rids, offs.reshape(-1), ops)
    g_star = np.zeros(d)
    np.add.at(g_star, idx, val)  # in-order accumulation, like the scan
    return g_star


# ----------------------------------------------------------------------
# Baseline (Algorithm 3) -- cacheline-level fully oblivious
# ----------------------------------------------------------------------


def _baseline_targets(
    idx: np.ndarray, d: int, cacheline_weights: int
) -> np.ndarray:
    """Per-input sweep targets: one touched weight per cacheline.

    Row ``p`` holds, for input weight ``p``, the ``g_star`` offsets the
    sweep touches -- the position congruent to ``idx[p] mod c`` in each
    line, with the final partial line clamped to ``d - 1`` so every
    input sweeps the same lines.
    """
    n_lines = (d + cacheline_weights - 1) // cacheline_weights
    lines = np.arange(n_lines, dtype=np.int64) * cacheline_weights
    return np.minimum(lines[None, :] + (idx % cacheline_weights)[:, None], d - 1)


@_kernel_span("kernel.baseline")
def aggregate_baseline(
    updates: Sequence[LocalUpdate], d: int,
    cacheline_weights: int = WEIGHTS_PER_CACHELINE,
) -> np.ndarray:
    """Fast Baseline aggregation.

    Performs the same Theta(nk * d / c) element-update work as the
    traced version (one vectorized pass over the congruent stripe of
    ``g_star`` per input weight), so wall-clock comparisons against
    Advanced reproduce the paper's crossovers.
    """
    idx, val = _concat_updates(updates)
    _validate(idx, d)
    g_star = np.zeros(d)
    n_lines = (d + cacheline_weights - 1) // cacheline_weights
    lines = np.arange(n_lines)
    for index, value in zip(idx.tolist(), val.tolist()):
        offset = index % cacheline_weights
        stripe = np.minimum(lines * cacheline_weights + offset, d - 1)
        hits = stripe == index
        g_star[stripe] = g_star[stripe] + hits * value
    return g_star


@_kernel_span("kernel.baseline_traced")
def aggregate_baseline_traced(
    updates: Sequence[LocalUpdate], d: int, trace: Trace,
    cacheline_weights: int = WEIGHTS_PER_CACHELINE,
) -> np.ndarray:
    """Traced Baseline aggregation (Algorithm 3).

    For every input weight the whole aggregation buffer is swept, one
    touched weight per cacheline (the position congruent to the secret
    index modulo c); the true update is merged in registers via
    ``o_mov``.  Word-level addresses depend on ``index mod c`` only,
    so the cacheline-level trace is input-independent (Prop. 5.1).
    Each input weight's ``g`` read plus interleaved read/write sweep of
    ``g_star`` is appended as one block.
    """
    idx, val = _concat_updates(updates)
    _validate(idx, d)
    nk = len(idx)
    g_star = np.zeros(d)
    if nk == 0:
        return g_star
    targets = _baseline_targets(idx, d, cacheline_weights)
    n_lines = targets.shape[1]
    if trace is not None:
        g_id = trace.region_id(G_REGION)
        gstar_id = trace.region_id(G_STAR_REGION)
        # Per input weight: (g, pos, read) then per line
        # (g_star, target, read), (g_star, target, write).
        width = 1 + 2 * n_lines
        offs = np.empty((nk, width), dtype=np.int64)
        offs[:, 0] = np.arange(nk)
        offs[:, 1::2] = targets
        offs[:, 2::2] = targets
        rids_row = np.full(width, gstar_id, dtype=np.uint16)
        rids_row[0] = g_id
        ops_row = np.empty(width, dtype=np.uint8)
        ops_row[0] = OP_READ
        ops_row[1::2] = OP_READ
        ops_row[2::2] = OP_WRITE
        trace.record_columns(
            np.tile(rids_row, nk), offs.reshape(-1), np.tile(ops_row, nk)
        )
    # The o_mov merge changes only the true index's weight.  A clamped
    # final line can make the sweep hit ``d - 1`` more than once for
    # index d-1; replicate the per-hit sequential adds exactly.
    hits_per_input = (targets == idx[:, None]).sum(axis=1)
    if np.all(hits_per_input == 1):
        np.add.at(g_star, idx, val)
    else:
        for index, value, hits in zip(
            idx.tolist(), val.tolist(), hits_per_input.tolist()
        ):
            for _ in range(hits):
                g_star[index] = g_star[index] + value
    return g_star


# ----------------------------------------------------------------------
# Advanced (Algorithm 4) -- fully oblivious
# ----------------------------------------------------------------------


def _fold_sorted(idx: np.ndarray, val: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized oblivious-folding semantics on an index-sorted array.

    The last element of every equal-index run keeps ``(index, run
    sum)``; every other position becomes ``(M0, 0)``.
    """
    m = len(idx)
    if m == 0:
        return idx.copy(), val.copy()
    last = np.empty(m, dtype=bool)
    last[:-1] = idx[:-1] != idx[1:]
    last[-1] = True
    csum = np.cumsum(val)
    run_totals = csum[last]
    run_totals[1:] -= csum[last][:-1]
    out_idx = np.full(m, M0, dtype=np.int64)
    out_val = np.zeros(m)
    out_idx[last] = idx[last]
    out_val[last] = run_totals
    return out_idx, out_val


def _advanced_core(
    idx: np.ndarray, val: np.ndarray, d: int, trace: Trace | None
) -> np.ndarray:
    """Algorithm 4 on numpy columns, optionally recording the trace.

    initialization -> bitonic sort by index -> folding -> bitonic sort
    -> first d values.  With a trace, every phase appends its accesses
    in batches: the fill and output scans as contiguous blocks, each
    sort stage as one comparator batch, and the folding pass as the
    ``read 0, (read pos, write pos-1)..., write m-1`` stream -- the
    exact sequence of the element-at-a-time formulation.
    """
    base = len(idx) + d
    m = next_power_of_two(base)
    work_idx = np.full(m, M0, dtype=np.int64)
    work_val = np.zeros(m)
    work_idx[: len(idx)] = idx
    work_val[: len(val)] = val
    work_idx[len(idx) : base] = np.arange(d)  # zero-valued initialization

    # Initialization (lines 1-3): inputs, d zero-valued weights, padding.
    if trace is not None:
        trace.record_block(G_REGION, 0, m, "write")

    # First oblivious sort by index (lines 4-5).
    bitonic_sort_traced_columns(trace, G_REGION, work_idx, work_val)

    # Oblivious folding (lines 6-14): one linear pass whose conditional
    # carry/flush happens in registers; the trace is read 0, then
    # (read pos, write pos-1) pairs, then the final write of m-1.
    if trace is not None:
        offs = np.empty(2 * m, dtype=np.int64)
        ops = np.empty(2 * m, dtype=np.uint8)
        offs[0] = 0
        ops[0] = OP_READ
        offs[1 : 2 * m - 1 : 2] = np.arange(1, m)
        ops[1 : 2 * m - 1 : 2] = OP_READ
        offs[2 : 2 * m - 1 : 2] = np.arange(0, m - 1)
        ops[2 : 2 * m - 1 : 2] = OP_WRITE
        offs[2 * m - 1] = m - 1
        ops[2 * m - 1] = OP_WRITE
        trace.record_batch(G_REGION, offs, ops)
    folded_idx, folded_val = _fold_sorted(work_idx, work_val)

    # Second oblivious sort (lines 15-16) and output (line 17).
    bitonic_sort_traced_columns(trace, G_REGION, folded_idx, folded_val)
    if trace is not None:
        trace.record_block(G_REGION, 0, d, "read")
    if not np.array_equal(folded_idx[:d], np.arange(d)):
        raise AssertionError("folding lost a model index")
    return folded_val[:d].copy()


@_kernel_span("kernel.advanced")
def aggregate_advanced(updates: Sequence[LocalUpdate], d: int) -> np.ndarray:
    """Fast Advanced aggregation (Algorithm 4, stage-vectorized).

    Identical network and arithmetic to the traced version (same core,
    no trace); validated against it in the test suite.
    """
    idx, val = _concat_updates(updates)
    _validate(idx, d)
    return _advanced_core(idx, val, d, trace=None)


@_kernel_span("kernel.advanced_traced")
def aggregate_advanced_traced(
    updates: Sequence[LocalUpdate], d: int, trace: Trace
) -> np.ndarray:
    """Traced Advanced aggregation (Algorithm 4, batched).

    Every phase touches memory in an order fixed by ``nk + d`` alone:
    the fill is linear, both bitonic sorts follow the length-determined
    comparator network, and oblivious folding is one linear pass whose
    conditional carry/flush happens in registers (Prop. 5.2).
    """
    idx, val = _concat_updates(updates)
    _validate(idx, d)
    return _advanced_core(idx, val, d, trace)


# ----------------------------------------------------------------------
# Path ORAM baseline
# ----------------------------------------------------------------------


@_kernel_span("kernel.path_oram")
def aggregate_path_oram(
    updates: Sequence[LocalUpdate], d: int,
    trace: Trace | None = None,
    bucket_size: int = 4,
    stash_limit: int = 20,
    seed: int | None = None,
) -> np.ndarray:
    """ORAM-based aggregation: g* lives entirely inside a Path ORAM.

    Initialize d zero blocks, read-modify-write one block per input
    weight, then read out all d blocks -- the general-purpose scheme the
    paper compares against (Section 5, "ORAM-based method").
    """
    idx, val = _concat_updates(updates)
    _validate(idx, d)
    oram = PathORAM(d, bucket_size=bucket_size, stash_limit=stash_limit,
                    trace=trace, seed=seed)
    for index, value in zip(idx.tolist(), val.tolist()):
        current = oram.read(index)
        oram.write(index, current + value)
    return np.asarray([oram.read(j) for j in range(d)], dtype=np.float64)


# ----------------------------------------------------------------------
# Uniform front-end
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AggregatorSpec:
    """Descriptor for one aggregation algorithm."""

    name: str
    oblivious_sparse: str  # 'none' | 'cacheline' | 'full'

    def run(self, updates: Sequence[LocalUpdate], d: int) -> np.ndarray:
        """Fast-path aggregation."""
        return _FAST[self.name](updates, d)

    def run_traced(
        self, updates: Sequence[LocalUpdate], d: int, trace: Trace
    ) -> np.ndarray:
        """Traced aggregation recording the adversary-visible pattern."""
        return _TRACED[self.name](updates, d, trace)


_FAST = {
    "linear": aggregate_linear,
    "baseline": aggregate_baseline,
    "advanced": aggregate_advanced,
    "path_oram": aggregate_path_oram,
}

_TRACED = {
    "linear": aggregate_linear_traced,
    "baseline": aggregate_baseline_traced,
    "advanced": aggregate_advanced_traced,
    "path_oram": lambda updates, d, trace: aggregate_path_oram(
        updates, d, trace=trace
    ),
}

AGGREGATORS: dict[str, AggregatorSpec] = {
    "linear": AggregatorSpec("linear", oblivious_sparse="none"),
    "baseline": AggregatorSpec("baseline", oblivious_sparse="cacheline"),
    "advanced": AggregatorSpec("advanced", oblivious_sparse="full"),
    "path_oram": AggregatorSpec("path_oram", oblivious_sparse="full"),
}
