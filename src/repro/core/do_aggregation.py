"""Differentially oblivious aggregation and its cost analysis (Sec. 5.4).

DO relaxes full obliviousness: the access pattern only needs to be
(epsilon, delta)-DP across neighbouring inputs.  The standard
construction for aggregation-like workloads (Allen et al., Mazloom &
Gordon) is:

1. pad the gradient multiset with zero-valued dummies so the observed
   per-index histogram equals ``true + one-sided noise``;
2. obliviously shuffle the padded multiset;
3. linearly scatter into g* (now safe: the adversary sees only the
   noised histogram in random order).

The paper's conclusion -- reproduced by :func:`do_padding_overhead` and
benchmarked in the ablation suite -- is that DO does not pay off in FL:
padding can only add *non-negative* noise (forcing a large truncated
shift), and the histogram sensitivity of one client is its whole top-k
set, so the expected padding scales like ``d * k / epsilon`` elements,
which quickly exceeds the fully-oblivious Advanced working set of
``nk + d``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..fl.client import LocalUpdate
from ..fl.sparsify import densify
from ..oblivious.compaction import pad_with_dummies, truncated_geometric_noise
from ..oblivious.shuffle import oblivious_shuffle_numpy
from .aggregation import M0, _concat_updates, _validate


@dataclass(frozen=True)
class DoParameters:
    """Privacy parameters of the DO access-pattern guarantee."""

    epsilon: float
    sensitivity: int  # histogram sensitivity: one client's k

    def per_bin_epsilon(self) -> float:
        """Epsilon available to each of the d histogram bins.

        One client changes up to ``sensitivity`` bins by 1 each, so by
        composition each bin's geometric mechanism runs at
        ``epsilon / sensitivity``.
        """
        if self.sensitivity < 1:
            raise ValueError("sensitivity must be >= 1")
        return self.epsilon / self.sensitivity


def do_padding_counts(
    d: int, params: DoParameters, rng: np.random.Generator, cap: int | None = None
) -> np.ndarray:
    """Dummy count per model index (one-sided truncated geometric)."""
    eps_bin = params.per_bin_epsilon()
    if cap is None:
        # Shift large enough that truncation mass is ~delta-negligible.
        cap = int(np.ceil(20.0 / eps_bin))
    return truncated_geometric_noise(rng, eps_bin, size=d, cap=cap)


def expected_padding_per_bin(params: DoParameters, cap: int | None = None) -> float:
    """Expected dummies per bin: the truncation shift dominates (~cap)."""
    eps_bin = params.per_bin_epsilon()
    if cap is None:
        cap = int(np.ceil(20.0 / eps_bin))
    return float(cap)


def do_padding_overhead(n: int, k: int, d: int, params: DoParameters) -> dict:
    """Working-set comparison: DO padding vs fully-oblivious Advanced.

    Returns the element counts each approach must sort/shuffle; the
    ratio > 1 regime is where the paper declares DO a dead end for FL.
    """
    expected_dummies = d * expected_padding_per_bin(params)
    do_elements = n * k + expected_dummies
    advanced_elements = n * k + d
    return {
        "do_elements": float(do_elements),
        "advanced_elements": float(advanced_elements),
        "overhead_ratio": float(do_elements / advanced_elements),
        "expected_dummies": float(expected_dummies),
    }


def aggregate_do(
    updates: Sequence[LocalUpdate],
    d: int,
    params: DoParameters,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """DO aggregation; returns (aggregate, observed histogram).

    The observed histogram is what the adversary learns from the
    post-shuffle linear scatter: per-index access counts equal to
    ``true counts + padding noise`` -- an (epsilon, ~0)-DP view.
    """
    rng = rng or np.random.default_rng()
    idx, val = _concat_updates(updates)
    _validate(idx, d)
    dummy_counts = do_padding_counts(d, params, rng)
    padded_idx, padded_val = pad_with_dummies(idx, val, dummy_counts, M0)
    # Oblivious shuffle over a power-of-two working vector.
    from ..oblivious.sort import next_power_of_two

    m = next_power_of_two(max(len(padded_idx), 1))
    work_idx = np.full(m, M0, dtype=np.int64)
    work_val = np.zeros(m)
    work_idx[: len(padded_idx)] = padded_idx
    work_val[: len(padded_val)] = padded_val
    oblivious_shuffle_numpy(work_idx, work_val, rng=rng)
    # Linear scatter; the adversary observes one access per element.
    real = work_idx != M0
    aggregate = densify(work_idx[real], work_val[real], d)
    histogram = np.bincount(work_idx[real], minlength=d).astype(np.int64)
    return aggregate, histogram
