"""Client-grouping optimization for Advanced (Section 5.3).

Bitonic sort has poor locality; once the nk+d working vector outgrows
the L3 cache (or worse, the EPC), Advanced pays heavily per comparator.
The paper's fix: split the n participants into groups of h, run
Advanced per group, and accumulate the per-group aggregates into an
enclave-resident buffer, carrying the result across groups.  Security
is unchanged -- the adversary already knows the participant set size,
and group order is data-independent -- while each sort now works on an
(hk + d)-length vector that can be sized to the cache.

Complexity moves from O((nk+d) log^2 (nk+d)) to
O((n/h) (hk+d) log^2 (hk+d)); the interesting regime is governed by the
memory hierarchy, reproduced by :mod:`repro.sgx.cost` over the streams
in :mod:`repro.core.streams` (Figure 12).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import obs
from ..fl.client import LocalUpdate
from ..sgx.memory import Trace
from .aggregation import aggregate_advanced, aggregate_advanced_traced


def split_groups(
    updates: Sequence[LocalUpdate], group_size: int
) -> list[list[LocalUpdate]]:
    """Partition the round's updates into groups of ``group_size``."""
    if group_size < 1:
        raise ValueError("group size must be positive")
    return [
        list(updates[start : start + group_size])
        for start in range(0, len(updates), group_size)
    ]


def aggregate_grouped(
    updates: Sequence[LocalUpdate], d: int, group_size: int
) -> np.ndarray:
    """Fast grouped-Advanced aggregation."""
    groups = split_groups(updates, group_size)
    with obs.span("kernel.grouped", groups=len(groups), d=d,
                  group_size=group_size):
        total = np.zeros(d)
        for group in groups:
            total += aggregate_advanced(group, d)
        return total


def aggregate_grouped_traced(
    updates: Sequence[LocalUpdate], d: int, group_size: int, trace: Trace
) -> np.ndarray:
    """Traced grouped-Advanced aggregation.

    Each group's Advanced pass is fully oblivious, and the carry
    accumulation is a linear pass over the enclave-resident buffer, so
    the composite trace depends only on the group sizes -- which the
    adversary already knows (it delivers the ciphertexts).
    """
    groups = split_groups(updates, group_size)
    with obs.span("kernel.grouped_traced", groups=len(groups), d=d,
                  group_size=group_size):
        total = np.zeros(d)
        for group in groups:
            total += aggregate_advanced_traced(group, d, trace)
        return total
