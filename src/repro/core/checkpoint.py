"""Checkpointing and trace serialization.

Production FL servers checkpoint between rounds; OLIVE's state is the
global weights plus the privacy ledger (rounds consumed) and, when
adaptive clipping is active, the current clip.  Enclave session keys
are deliberately NOT serialized -- on restart, clients re-attest the
fresh enclave, exactly as a real SGX redeployment would require.

Traces serialize to a compact ``.npz`` for offline analysis (the
attack and the leakage metrics both accept reloaded traces).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..sgx.memory import Trace
from .olive import OliveSystem


def save_checkpoint(system: OliveSystem, path: str | Path) -> None:
    """Write the restartable server state to ``path`` (.npz)."""
    path = Path(path)
    meta = {
        "rounds": system.accountant.steps,
        "realized_rates": list(system.accountant.realized_rates),
        "sample_rate": system.config.sample_rate,
        "noise_multiplier": system.config.noise_multiplier,
        "delta": system.config.delta,
        "aggregator": system.config.aggregator,
        "clip": system.clipper.clip if system.clipper
                else system.config.training.clip,
        # Audit continuity: a checkpoint taken mid-audited-run pins the
        # chained log's head so a restore can detect a swapped or
        # rewound log before resuming.
        "audit_head": system.audit.head if system.audit else None,
        "audit_rounds": system.audit.rounds if system.audit else None,
        "version": 3,
    }
    np.savez(
        path,
        global_weights=system.global_weights,
        meta=json.dumps(meta),
    )


def load_checkpoint(system: OliveSystem, path: str | Path) -> dict:
    """Restore weights + privacy ledger into a freshly built system.

    The system must have been constructed with the same model
    architecture and DP parameters; mismatches raise so a silently
    wrong privacy ledger cannot occur.  Returns the checkpoint
    metadata.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        weights = archive["global_weights"]
        meta = json.loads(str(archive["meta"]))
    if weights.size != system.d:
        raise ValueError(
            f"checkpoint holds {weights.size} weights, system expects {system.d}"
        )
    for field_name in ("sample_rate", "noise_multiplier", "delta"):
        if not np.isclose(meta[field_name], getattr(system.config, field_name)):
            raise ValueError(
                f"checkpoint {field_name}={meta[field_name]} differs from "
                f"system config; refusing to restore the privacy ledger"
            )
    system.global_weights = weights.copy()
    system.model.set_flat(system.global_weights)
    system.accountant.steps = int(meta["rounds"])
    # Version 1 checkpoints predate realized-cohort accounting; they
    # hold no realized rounds by construction.
    system.accountant.realized_rates = [
        float(q) for q in meta.get("realized_rates", [])
    ]
    if system.clipper is not None:
        system.clipper.clip = float(meta["clip"])
    # Version <3 checkpoints predate audit logging; nothing to check.
    expected_head = meta.get("audit_head")
    if expected_head is not None and system.audit is not None:
        if system.audit.head != expected_head:
            raise ValueError(
                "checkpoint was taken with audit-log head "
                f"{expected_head[:12]}..., but the attached recorder's "
                f"head is {system.audit.head[:12]}...; refusing to "
                "resume onto a diverged audit chain"
            )
    return meta


def save_trace(trace: Trace, path: str | Path) -> None:
    """Serialize a trace to ``.npz`` (region table + packed accesses).

    Straight columnar dump: the trace's region ids are remapped onto the
    sorted-name table the file format uses (stable across interning
    order), and the offset/op columns are written as-is.
    """
    rids, offs, ops = trace.columns()
    names = trace.region_names
    present = np.unique(rids).tolist() if len(rids) else []
    regions = sorted(names[r] for r in present)
    index = {r: i for i, r in enumerate(regions)}
    remap = np.zeros(max(len(names), 1), dtype=np.int32)
    for r in present:
        remap[r] = index[names[r]]
    np.savez_compressed(
        Path(path),
        regions=json.dumps(regions),
        region=remap[rids.astype(np.int64)],
        offset=offs.astype(np.int64),
        op=ops.astype(np.int8),
    )


def load_trace(path: str | Path) -> Trace:
    """Inverse of :func:`save_trace` (columnar, no per-access loop)."""
    with np.load(Path(path), allow_pickle=False) as archive:
        regions = json.loads(str(archive["regions"]))
        region_col = archive["region"]
        offset_col = archive["offset"]
        op_col = archive["op"]
    return Trace.from_columns(regions, region_col, offset_col, op_col)
