"""Machine-checking obliviousness (Definition 2.2).

An algorithm is fully oblivious when its access pattern is identical
(or statistically indistinguishable, for randomized algorithms) across
all same-length inputs.  This module turns that definition into
executable checks used by the property tests and the security analysis:

* :func:`traces_equal` / :func:`trace_distance` -- exact comparison of
  two recorded traces, optionally coarsened to cachelines;
* :func:`check_oblivious` -- run an algorithm on many random same-shape
  inputs and report whether every trace matched the first (the paper's
  delta = 0 case); a single mismatch certifies non-obliviousness with a
  witness input pair;
* :func:`empirical_statistical_distance` -- estimate the statistical
  distance between trace distributions of a *randomized* algorithm on
  two fixed inputs (used for the shuffle-based components).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..sgx.memory import Trace


def trace_key(trace: Trace, granularity: str = "word",
              line_bytes: int = 64, itemsizes: dict[str, int] | None = None):
    """Hashable projection of a trace at the chosen granularity."""
    if granularity == "word":
        return trace.signature()
    if granularity != "cacheline":
        raise ValueError(f"unknown granularity {granularity!r}")
    itemsizes = itemsizes or {}
    return tuple(
        (a.region, (a.offset * itemsizes.get(a.region, 8)) // line_bytes, a.op)
        for a in trace
    )


def traces_equal(a: Trace, b: Trace, granularity: str = "word",
                 itemsizes: dict[str, int] | None = None) -> bool:
    """True when two traces are indistinguishable at the granularity."""
    return trace_key(a, granularity, itemsizes=itemsizes) == trace_key(
        b, granularity, itemsizes=itemsizes
    )


def trace_distance(a: Trace, b: Trace) -> int:
    """Number of positions at which two traces differ (inf-type metric).

    0 means identical; any positive value is a concrete distinguisher
    for the adversary.
    """
    sa, sb = a.signature(), b.signature()
    common = sum(1 for x, y in zip(sa, sb) if x == y)
    return max(len(sa), len(sb)) - common


@dataclass
class ObliviousnessReport:
    """Outcome of an empirical obliviousness check."""

    oblivious: bool
    trials: int
    first_mismatch_trial: int | None = None

    def __bool__(self) -> bool:
        return self.oblivious


def check_oblivious(
    run: Callable[[object], Trace],
    inputs: Iterable[object],
    granularity: str = "word",
    itemsizes: dict[str, int] | None = None,
) -> ObliviousnessReport:
    """Execute ``run`` on each input; all traces must match the first.

    ``run`` receives one input and must return the recorded
    :class:`Trace`.  Deterministic algorithms only: a randomized
    algorithm needs :func:`empirical_statistical_distance`.
    """
    reference = None
    trial = -1
    for trial, item in enumerate(inputs):
        key = trace_key(run(item), granularity, itemsizes=itemsizes)
        if reference is None:
            reference = key
        elif key != reference:
            return ObliviousnessReport(
                oblivious=False, trials=trial + 1, first_mismatch_trial=trial
            )
    return ObliviousnessReport(oblivious=True, trials=trial + 1)


def empirical_statistical_distance(
    run: Callable[[object], Trace],
    input_a: object,
    input_b: object,
    samples: int = 50,
    granularity: str = "word",
    itemsizes: dict[str, int] | None = None,
) -> float:
    """Monte-Carlo total-variation distance between trace distributions.

    Runs the (randomized) algorithm ``samples`` times on each input and
    compares the empirical distributions of trace keys.  0 means the
    samples are indistinguishable; 1 means disjoint support (the
    Linear-on-sparse case of Proposition 3.2).
    """
    counts_a: Counter = Counter()
    counts_b: Counter = Counter()
    for _ in range(samples):
        counts_a[trace_key(run(input_a), granularity, itemsizes=itemsizes)] += 1
        counts_b[trace_key(run(input_b), granularity, itemsizes=itemsizes)] += 1
    support = set(counts_a) | set(counts_b)
    return 0.5 * sum(
        abs(counts_a[k] / samples - counts_b[k] / samples) for k in support
    )


def leaked_index_sets(
    trace: Trace, region: str, boundaries: Sequence[int]
) -> list[frozenset[int]]:
    """Split ``region`` accesses into per-client observed index sets.

    ``boundaries`` are the cumulative input-weight counts per client
    (client i owns input positions ``[boundaries[i], boundaries[i+1])``
    of the concatenated gradient vector ``g``).  Accesses to ``region``
    are attributed to the client whose ``g`` segment was being scanned,
    using the interleaving of the Linear algorithm (read g[pos], read
    g*[idx], write g*[idx]).
    """
    sets: list[set[int]] = [set() for _ in range(len(boundaries) - 1)]
    current_client = -1
    for access in trace:
        if access.region == "g" and access.op == "read":
            pos = access.offset
            # Find the owning client; boundaries are sorted.
            while (
                current_client + 1 < len(boundaries) - 1
                and pos >= boundaries[current_client + 1]
            ):
                current_client += 1
            if current_client < 0 and pos >= boundaries[0]:
                current_client = 0
        elif access.region == region and current_client >= 0:
            sets[current_client].add(access.offset)
    return [frozenset(s) for s in sets]
