"""Machine-checking obliviousness (Definition 2.2).

An algorithm is fully oblivious when its access pattern is identical
(or statistically indistinguishable, for randomized algorithms) across
all same-length inputs.  This module turns that definition into
executable checks used by the property tests and the security analysis:

* :func:`traces_equal` / :func:`trace_distance` -- exact comparison of
  two recorded traces, optionally coarsened to cachelines;
* :func:`check_oblivious` -- run an algorithm on many random same-shape
  inputs and report whether every trace matched the first (the paper's
  delta = 0 case); a single mismatch certifies non-obliviousness with a
  witness input pair;
* :func:`empirical_statistical_distance` -- estimate the statistical
  distance between trace distributions of a *randomized* algorithm on
  two fixed inputs (used for the shuffle-based components).

All checks operate on the trace's columnar arrays directly; the
tuple-returning :func:`trace_key` is kept for hashing (distribution
estimation) and for callers that want a materialized projection.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ..sgx.memory import OP_READ, Trace


def _coarse_columns(
    trace: Trace, itemsizes: dict[str, int], line_bytes: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Columns of the trace with offsets coarsened to cachelines."""
    rids, offs, ops = trace.columns()
    names = trace.region_names
    isz = np.array([itemsizes.get(nm, 8) for nm in names], dtype=np.int64)
    if not len(isz):
        isz = np.ones(1, dtype=np.int64)
    coarse = (offs.astype(np.int64) * isz[rids.astype(np.int64)]) // line_bytes
    return rids, coarse, ops


def trace_key(trace: Trace, granularity: str = "word",
              line_bytes: int = 64, itemsizes: dict[str, int] | None = None):
    """Hashable projection of a trace at the chosen granularity."""
    if granularity == "word":
        return trace.signature()
    if granularity != "cacheline":
        raise ValueError(f"unknown granularity {granularity!r}")
    rids, coarse, ops = _coarse_columns(trace, itemsizes or {}, line_bytes)
    names = trace.region_names
    op_names = ("read", "write")
    return tuple(
        (names[r], c, op_names[o])
        for r, c, o in zip(rids.tolist(), coarse.tolist(), ops.tolist())
    )


def _region_translation(a: Trace, b: Trace) -> np.ndarray | None:
    """Map b's region ids into a's id space; None when untranslatable."""
    names_a = a.region_names
    index_a = {nm: i for i, nm in enumerate(names_a)}
    trans = np.empty(len(b.region_names), dtype=np.int64)
    for i, nm in enumerate(b.region_names):
        j = index_a.get(nm)
        if j is None:
            trans[i] = -1
        else:
            trans[i] = j
    return trans


def traces_equal(a: Trace, b: Trace, granularity: str = "word",
                 itemsizes: dict[str, int] | None = None,
                 line_bytes: int = 64) -> bool:
    """True when two traces are indistinguishable at the granularity.

    Pure array comparison (no tuple materialization): equivalent to
    ``trace_key(a, ...) == trace_key(b, ...)`` but linear-time in numpy.
    """
    if granularity == "word":
        return a == b
    if granularity != "cacheline":
        raise ValueError(f"unknown granularity {granularity!r}")
    if len(a) != len(b):
        return False
    itemsizes = itemsizes or {}
    rids_a, coarse_a, ops_a = _coarse_columns(a, itemsizes, line_bytes)
    rids_b, coarse_b, ops_b = _coarse_columns(b, itemsizes, line_bytes)
    trans = _region_translation(a, b)
    rids_b_in_a = trans[rids_b.astype(np.int64)]
    return (
        bool(np.array_equal(ops_a, ops_b))
        and bool(np.array_equal(coarse_a, coarse_b))
        and bool(np.array_equal(rids_a.astype(np.int64), rids_b_in_a))
    )


def trace_distance(a: Trace, b: Trace) -> int:
    """Number of positions at which two traces differ (inf-type metric).

    0 means identical; any positive value is a concrete distinguisher
    for the adversary.
    """
    rids_a, offs_a, ops_a = a.columns()
    rids_b, offs_b, ops_b = b.columns()
    n = min(len(offs_a), len(offs_b))
    trans = _region_translation(a, b)
    same = (
        (offs_a[:n].astype(np.int64) == offs_b[:n].astype(np.int64))
        & (ops_a[:n] == ops_b[:n])
        & (rids_a[:n].astype(np.int64) == trans[rids_b[:n].astype(np.int64)])
    )
    common = int(same.sum())
    return max(len(offs_a), len(offs_b)) - common


@dataclass
class ObliviousnessReport:
    """Outcome of an empirical obliviousness check."""

    oblivious: bool
    trials: int
    first_mismatch_trial: int | None = None

    def __bool__(self) -> bool:
        return self.oblivious


def check_oblivious(
    run: Callable[[object], Trace],
    inputs: Iterable[object],
    granularity: str = "word",
    itemsizes: dict[str, int] | None = None,
) -> ObliviousnessReport:
    """Execute ``run`` on each input; all traces must match the first.

    ``run`` receives one input and must return the recorded
    :class:`Trace`.  Deterministic algorithms only: a randomized
    algorithm needs :func:`empirical_statistical_distance`.
    """
    reference: Trace | None = None
    trial = -1
    for trial, item in enumerate(inputs):
        trace = run(item)
        if reference is None:
            reference = trace
        elif not traces_equal(reference, trace, granularity,
                              itemsizes=itemsizes):
            return ObliviousnessReport(
                oblivious=False, trials=trial + 1, first_mismatch_trial=trial
            )
    return ObliviousnessReport(oblivious=True, trials=trial + 1)


def empirical_statistical_distance(
    run: Callable[[object], Trace],
    input_a: object,
    input_b: object,
    samples: int = 50,
    granularity: str = "word",
    itemsizes: dict[str, int] | None = None,
) -> float:
    """Monte-Carlo total-variation distance between trace distributions.

    Runs the (randomized) algorithm ``samples`` times on each input and
    compares the empirical distributions of trace keys (hashed via the
    canonical columnar digest -- exact, order-sensitive).  0 means the
    samples are indistinguishable; 1 means disjoint support (the
    Linear-on-sparse case of Proposition 3.2).
    """
    def key(trace: Trace):
        if granularity == "word":
            return trace.signature_digest()
        return trace_key(trace, granularity, itemsizes=itemsizes)

    counts_a: Counter = Counter()
    counts_b: Counter = Counter()
    for _ in range(samples):
        counts_a[key(run(input_a))] += 1
        counts_b[key(run(input_b))] += 1
    support = set(counts_a) | set(counts_b)
    return 0.5 * sum(
        abs(counts_a[k] / samples - counts_b[k] / samples) for k in support
    )


def leaked_index_sets(
    trace: Trace, region: str, boundaries: Sequence[int]
) -> list[frozenset[int]]:
    """Split ``region`` accesses into per-client observed index sets.

    ``boundaries`` are the cumulative input-weight counts per client
    (client i owns input positions ``[boundaries[i], boundaries[i+1])``
    of the concatenated gradient vector ``g``).  Accesses to ``region``
    are attributed to the client whose ``g`` segment was being scanned,
    using the interleaving of the Linear algorithm (read g[pos], read
    g*[idx], write g*[idx]).  The attribution never moves backwards:
    the owning client is the running maximum over ``g`` reads so far,
    matching a forward scan of the concatenated gradient.
    """
    n_clients = len(boundaries) - 1
    sets: list[frozenset[int]] = [frozenset() for _ in range(n_clients)]
    rids, offs, ops = trace.columns()
    if not len(offs):
        return sets
    g_id = trace.region_index("g")
    target_id = trace.region_index(region)
    if g_id is None or target_id is None:
        return sets
    bounds = np.asarray(boundaries, dtype=np.int64)

    g_read = (rids == g_id) & (ops == OP_READ)
    g_pos = np.flatnonzero(g_read)
    if not len(g_pos):
        return sets
    client_at_read = np.searchsorted(
        bounds, offs[g_pos].astype(np.int64), side="right"
    ) - 1
    client_at_read = np.minimum(client_at_read, n_clients - 1)
    client_at_read = np.maximum.accumulate(client_at_read)

    target_pos = np.flatnonzero(rids == target_id)
    if not len(target_pos):
        return sets
    # Current client at each target access = client of the last g read
    # at or before it (-1 when none yet).
    last_read = np.searchsorted(g_pos, target_pos, side="right") - 1
    valid = last_read >= 0
    clients = client_at_read[last_read[valid]]
    offsets = offs[target_pos[valid]].astype(np.int64)
    keep = clients >= 0
    clients = clients[keep]
    offsets = offsets[keep]
    if not len(clients):
        return sets
    pairs = np.unique(np.stack([clients, offsets], axis=1), axis=0)
    split = np.searchsorted(pairs[:, 0], np.arange(n_clients + 1))
    return [
        frozenset(pairs[split[c] : split[c + 1], 1].tolist())
        for c in range(n_clients)
    ]
