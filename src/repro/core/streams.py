"""Structural cacheline address streams for the cost model.

Every *oblivious* aggregation algorithm touches memory in an order
determined by the input shape alone, so its address stream can be
generated without running the algorithm.  These generators produce the
streams (as cacheline indices laid out by a
:class:`repro.sgx.memory.RegionLayout`-style packing: ``g`` first, then
``g_star``, then any auxiliary buffer) that
:class:`repro.sgx.cost.CostModel` charges to regenerate the paper's
Figures 11 and 12, where cache and EPC effects -- invisible to a Python
interpreter -- decide the winners.

All element sizes follow the paper: 8-byte gradient weights (u32 index
+ f32 value) in ``g``, 4-byte weights in ``g_star``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..oblivious.sort import network_access_offsets, next_power_of_two

G_ITEMSIZE = 8
G_STAR_ITEMSIZE = 4
LINE_BYTES = 64

_G_LINE_ELEMS = LINE_BYTES // G_ITEMSIZE          # 8 weights/line
_G_STAR_LINE_ELEMS = LINE_BYTES // G_STAR_ITEMSIZE  # 16 weights/line


def _g_lines(offsets: np.ndarray, base_line: int = 0) -> np.ndarray:
    return base_line + offsets // _G_LINE_ELEMS


def _region_lines(length_elems: int, line_elems: int) -> int:
    return (length_elems + line_elems - 1) // line_elems


def linear_stream(nk: int, d: int, indices: np.ndarray) -> Iterator[int]:
    """Linear algorithm: scan of g interleaved with g*[index] touches.

    The only *data-dependent* stream here; ``indices`` is the real
    concatenated index sequence.
    """
    if len(indices) != nk:
        raise ValueError("indices length must equal nk")
    g_lines = _region_lines(nk, _G_LINE_ELEMS)
    for pos in range(nk):
        yield pos // _G_LINE_ELEMS
        target = g_lines + int(indices[pos]) // _G_STAR_LINE_ELEMS
        yield target
        yield target


def baseline_stream(nk: int, d: int) -> Iterator[int]:
    """Baseline: per input weight, one touch per g* cacheline."""
    g_lines = _region_lines(nk, _G_LINE_ELEMS)
    gstar_lines = _region_lines(d, _G_STAR_LINE_ELEMS)
    for pos in range(nk):
        yield pos // _G_LINE_ELEMS
        for line in range(gstar_lines):
            target = g_lines + line
            yield target
            yield target


def advanced_stream(nk: int, d: int) -> Iterator[int]:
    """Advanced: fill + two bitonic sorts + folding + output scan."""
    m = next_power_of_two(nk + d)
    # Fill (m linear writes).
    for pos in range(m):
        yield pos // _G_LINE_ELEMS
    sort_offsets = network_access_offsets(m)
    sort_lines = sort_offsets // _G_LINE_ELEMS
    # First sort.
    yield from sort_lines.tolist()
    # Folding: read 0, then (read pos, write pos-1) pairs, final write.
    yield 0
    for pos in range(1, m):
        yield pos // _G_LINE_ELEMS
        yield (pos - 1) // _G_LINE_ELEMS
    yield (m - 1) // _G_LINE_ELEMS
    # Second sort.
    yield from sort_lines.tolist()
    # Output scan of the first d weights.
    for j in range(d):
        yield j // _G_LINE_ELEMS


def grouped_stream(n: int, k: int, d: int, group_size: int) -> Iterator[int]:
    """Grouped Advanced (Section 5.3): per-group Advanced + carry pass.

    Groups reuse the same enclave working buffer (that is the point of
    the optimization), so each group's stream starts at line 0 again;
    the carry accumulator is a separate region after the buffer.
    """
    if group_size < 1:
        raise ValueError("group size must be positive")
    full_groups, rem = divmod(n, group_size)
    sizes = [group_size] * full_groups + ([rem] if rem else [])
    m_max = next_power_of_two(group_size * k + d)
    acc_base = _region_lines(m_max, _G_LINE_ELEMS)
    acc_lines = _region_lines(d, _G_STAR_LINE_ELEMS)
    for h in sizes:
        yield from advanced_stream(h * k, d)
        # Accumulate the group's d outputs into the carry buffer.
        for line in range(acc_lines):
            yield acc_base + line
            yield acc_base + line
    # Final read-out of the accumulator.
    for line in range(acc_lines):
        yield acc_base + line


def path_oram_stream(
    nk: int, d: int, bucket_size: int = 4, stash_limit: int = 20,
    seed: int = 0,
) -> Iterator[int]:
    """Path ORAM aggregation: random path + stash scan per access.

    Each of the ``nk`` read-modify-writes performs two ORAM accesses
    (read then write) and the read-out adds d more; every access reads
    and rewrites the log(d)+1 buckets of a random path (1 cacheline per
    Z=4 x 16 B bucket), linearly scans the stash, and -- modelling
    Zerotrace's obliviously stored position map -- scans the d-entry
    position map (4-byte entries).
    """
    rng = np.random.default_rng(seed)
    height = max(1, (d - 1).bit_length())
    n_leaves = 1 << height
    tree_buckets = 2 * n_leaves - 1  # 1 line per bucket
    posmap_base = tree_buckets
    posmap_lines = _region_lines(d, _G_STAR_LINE_ELEMS)
    stash_base = posmap_base + posmap_lines
    stash_lines = _region_lines(
        stash_limit + bucket_size * (height + 1), LINE_BYTES // 16
    )
    accesses = 2 * nk + d
    for _ in range(accesses):
        # Oblivious position-map scan.
        for line in range(posmap_lines):
            yield posmap_base + line
        # Path read + write-back.
        leaf = int(rng.integers(n_leaves))
        node = leaf + n_leaves - 1
        path = []
        while True:
            path.append(node)
            if node == 0:
                break
            node = (node - 1) // 2
        for bucket in path:
            yield bucket
        # Stash scan (oblivious service of the request).
        for line in range(stash_lines):
            yield stash_base + line
        for bucket in reversed(path):
            yield bucket


STREAMS = {
    "baseline": baseline_stream,
    "advanced": advanced_stream,
}


# ---------------------------------------------------------------------------
# Chunked numpy emitters
# ---------------------------------------------------------------------------
# The generators above yield one Python int per access, which is the
# bottleneck once the cost-model replay itself is vectorized
# (``repro.sgx.cost.CostModel.charge_chunks``).  The ``*_stream_chunks``
# variants below emit the *same* access sequence as int64 numpy arrays
# of ``chunk_size`` accesses (last chunk short), so trace -> cost model
# is arrays the whole way.  Equality with the generator order is pinned
# by tests/test_core_streams.py.

#: Default accesses per emitted chunk; matches the cost model's
#: internal replay block size so chunks flow through unsplit.
DEFAULT_CHUNK_ACCESSES = 1 << 19


def _rechunk(segments: Iterator[np.ndarray], chunk_size: int) -> Iterator[np.ndarray]:
    """Re-slice a stream of int64 segments into ``chunk_size`` pieces.

    Yields views into the source segments where possible (a chunk that
    falls inside one segment is not copied); callers must treat the
    chunks as read-only.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    buf: list[np.ndarray] = []
    have = 0
    for seg in segments:
        while seg.size:
            take = min(seg.size, chunk_size - have)
            buf.append(seg[:take])
            have += take
            seg = seg[take:]
            if have == chunk_size:
                yield buf[0] if len(buf) == 1 else np.concatenate(buf)
                buf, have = [], 0
    if have:
        yield buf[0] if len(buf) == 1 else np.concatenate(buf)


def _linear_segments(nk: int, indices: np.ndarray, block: int) -> Iterator[np.ndarray]:
    g_lines = _region_lines(nk, _G_LINE_ELEMS)
    idx = np.asarray(indices, dtype=np.int64)
    for start in range(0, nk, block):
        stop = min(start + block, nk)
        out = np.empty((stop - start, 3), dtype=np.int64)
        out[:, 0] = np.arange(start, stop, dtype=np.int64) // _G_LINE_ELEMS
        target = g_lines + idx[start:stop] // _G_STAR_LINE_ELEMS
        out[:, 1] = target
        out[:, 2] = target
        yield out.reshape(-1)


def linear_stream_chunks(
    nk: int, d: int, indices: np.ndarray,
    chunk_size: int = DEFAULT_CHUNK_ACCESSES,
) -> Iterator[np.ndarray]:
    """:func:`linear_stream` as int64 chunks of ``chunk_size`` accesses."""
    if len(indices) != nk:
        raise ValueError("indices length must equal nk")
    block = max(1, chunk_size // 3)
    yield from _rechunk(_linear_segments(nk, indices, block), chunk_size)


def _baseline_segments(nk: int, d: int, block: int) -> Iterator[np.ndarray]:
    g_lines = _region_lines(nk, _G_LINE_ELEMS)
    gstar_lines = _region_lines(d, _G_STAR_LINE_ELEMS)
    # Per input weight: one g touch then (read, write) on every g* line.
    tail = np.repeat(g_lines + np.arange(gstar_lines, dtype=np.int64), 2)
    for start in range(0, nk, block):
        stop = min(start + block, nk)
        out = np.empty((stop - start, 1 + tail.size), dtype=np.int64)
        out[:, 0] = np.arange(start, stop, dtype=np.int64) // _G_LINE_ELEMS
        out[:, 1:] = tail
        yield out.reshape(-1)


def baseline_stream_chunks(
    nk: int, d: int, chunk_size: int = DEFAULT_CHUNK_ACCESSES
) -> Iterator[np.ndarray]:
    """:func:`baseline_stream` as int64 chunks of ``chunk_size`` accesses."""
    gstar_lines = _region_lines(d, _G_STAR_LINE_ELEMS)
    block = max(1, chunk_size // (1 + 2 * gstar_lines))
    yield from _rechunk(_baseline_segments(nk, d, block), chunk_size)


def _advanced_segments(nk: int, d: int) -> Iterator[np.ndarray]:
    m = next_power_of_two(nk + d)
    yield np.arange(m, dtype=np.int64) // _G_LINE_ELEMS
    sort_lines = network_access_offsets(m) // _G_LINE_ELEMS
    yield sort_lines
    # Folding: read 0, (read pos, write pos-1) pairs, final write.
    fold = np.empty(2 * m, dtype=np.int64)
    fold[0] = 0
    pos = np.arange(1, m, dtype=np.int64)
    fold[1:-1:2] = pos // _G_LINE_ELEMS
    fold[2:-1:2] = (pos - 1) // _G_LINE_ELEMS
    fold[-1] = (m - 1) // _G_LINE_ELEMS
    yield fold
    yield sort_lines
    yield np.arange(d, dtype=np.int64) // _G_LINE_ELEMS


def advanced_stream_chunks(
    nk: int, d: int, chunk_size: int = DEFAULT_CHUNK_ACCESSES
) -> Iterator[np.ndarray]:
    """:func:`advanced_stream` as int64 chunks of ``chunk_size`` accesses."""
    yield from _rechunk(_advanced_segments(nk, d), chunk_size)


def _grouped_segments(n: int, k: int, d: int, group_size: int) -> Iterator[np.ndarray]:
    full_groups, rem = divmod(n, group_size)
    sizes = [group_size] * full_groups + ([rem] if rem else [])
    m_max = next_power_of_two(group_size * k + d)
    acc_base = _region_lines(m_max, _G_LINE_ELEMS)
    acc_lines = _region_lines(d, _G_STAR_LINE_ELEMS)
    acc = acc_base + np.arange(acc_lines, dtype=np.int64)
    for h in sizes:
        yield from _advanced_segments(h * k, d)
        yield np.repeat(acc, 2)
    yield acc


def grouped_stream_chunks(
    n: int, k: int, d: int, group_size: int,
    chunk_size: int = DEFAULT_CHUNK_ACCESSES,
) -> Iterator[np.ndarray]:
    """:func:`grouped_stream` as int64 chunks of ``chunk_size`` accesses."""
    if group_size < 1:
        raise ValueError("group size must be positive")
    yield from _rechunk(_grouped_segments(n, k, d, group_size), chunk_size)


STREAM_CHUNKS = {
    "baseline": baseline_stream_chunks,
    "advanced": advanced_stream_chunks,
}
