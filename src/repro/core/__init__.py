"""OLIVE's core contribution: oblivious aggregation algorithms, the
grouping optimization, the differentially-oblivious alternative, the
obliviousness verifier, structural cost streams, and the end-to-end
OLIVE system."""

from .checkpoint import (
    load_checkpoint,
    load_trace,
    save_checkpoint,
    save_trace,
)
from .aggregation import (
    AGGREGATORS,
    M0,
    AggregatorSpec,
    aggregate_advanced,
    aggregate_advanced_traced,
    aggregate_baseline,
    aggregate_baseline_traced,
    aggregate_linear,
    aggregate_linear_traced,
    aggregate_path_oram,
)
from .do_aggregation import (
    DoParameters,
    aggregate_do,
    do_padding_counts,
    do_padding_overhead,
)
from .grouping import aggregate_grouped, aggregate_grouped_traced, split_groups
from .obliviousness import (
    ObliviousnessReport,
    check_oblivious,
    empirical_statistical_distance,
    leaked_index_sets,
    trace_distance,
    trace_key,
    traces_equal,
)
from .olive import OliveConfig, OliveRoundLog, OliveSystem
from .streams import (
    advanced_stream,
    advanced_stream_chunks,
    baseline_stream,
    baseline_stream_chunks,
    grouped_stream,
    grouped_stream_chunks,
    linear_stream,
    linear_stream_chunks,
    path_oram_stream,
)

__all__ = [
    "AGGREGATORS",
    "AggregatorSpec",
    "DoParameters",
    "M0",
    "ObliviousnessReport",
    "OliveConfig",
    "OliveRoundLog",
    "OliveSystem",
    "advanced_stream",
    "advanced_stream_chunks",
    "aggregate_advanced",
    "aggregate_advanced_traced",
    "aggregate_baseline",
    "aggregate_baseline_traced",
    "aggregate_do",
    "aggregate_grouped",
    "aggregate_grouped_traced",
    "aggregate_linear",
    "aggregate_linear_traced",
    "aggregate_path_oram",
    "baseline_stream",
    "baseline_stream_chunks",
    "check_oblivious",
    "do_padding_counts",
    "do_padding_overhead",
    "empirical_statistical_distance",
    "grouped_stream",
    "grouped_stream_chunks",
    "leaked_index_sets",
    "linear_stream",
    "linear_stream_chunks",
    "load_checkpoint",
    "load_trace",
    "save_checkpoint",
    "save_trace",
    "path_oram_stream",
    "split_groups",
    "trace_distance",
    "trace_key",
    "traces_equal",
]
